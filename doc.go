// Package repro is a from-scratch Go implementation of "Private and
// Efficient Federated Numerical Aggregation" (Cormode, Markov, Srinivas;
// EDBT 2024): the bit-pushing protocols for federated mean and variance
// estimation in which each client discloses at most one bit per private
// value, together with every baseline and substrate the paper evaluates
// against.
//
// The library lives under internal/ (one package per subsystem — see
// DESIGN.md for the inventory), the binaries under cmd/, runnable examples
// under examples/, and the repository-root benchmarks in bench_test.go
// regenerate reduced-scale versions of every figure in the paper's
// evaluation.
package repro
