// Census: the paper's human-data evaluation — mean and variance of ages
// under local differential privacy, with the accuracy/privacy trade-off
// swept across ε.
//
// This mirrors Figures 2 and 3: ages are 7-bit values aggregated at an
// 8-bit budget; each client discloses one randomized bit, the server
// unbiases and squashes, and the estimate lands within a few percent even
// at moderate privacy levels.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/workload"
)

func main() {
	const (
		numClients = 50000
		bits       = 8
	)
	rng := frand.New(2024)
	codec := fixedpoint.MustCodec(bits, 0, 1)
	ages := workload.CensusAges{}.Sample(rng, numClients)
	values := codec.EncodeAll(ages)

	exactMean := fixedpoint.Mean(values)
	exactVar := fixedpoint.Variance(values)
	fmt.Printf("census surrogate: %d people, exact mean age %.2f, variance %.1f\n\n",
		numClients, exactMean, exactVar)

	// Without privacy noise.
	res, err := core.RunAdaptive(core.AdaptiveConfig{Bits: bits}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no DP:   mean %.3f (error %+.2f%%)\n", res.Estimate, pct(res.Estimate, exactMean))

	variance, err := core.EstimateVariance(core.VarianceConfig{Bits: bits}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no DP:   variance %.1f (error %+.2f%%)\n\n", variance, pct(variance, exactVar))

	// Sweep the privacy parameter: stronger privacy (smaller ε) costs
	// accuracy, the Figure 3 trade-off.
	fmt.Println("ε        mean est   error     (each client discloses 1 randomized bit)")
	for _, eps := range []float64{0.5, 1, 2, 4} {
		rr, err := ldp.NewRandomizedResponse(eps)
		if err != nil {
			log.Fatal(err)
		}
		private, err := core.RunAdaptive(core.AdaptiveConfig{
			Bits: bits, RR: rr, SquashMultiple: 1,
		}, values, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %8.3f   %+.2f%%\n", eps, private.Estimate, pct(private.Estimate, exactMean))
	}

	// The same ε=2 aggregation through the moment-based and centered
	// variance estimators (Lemma 3.5) for comparison.
	fmt.Println("\nvariance estimators at ε=2:")
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		log.Fatal(err)
	}
	for _, method := range []core.VarianceMethod{core.CenteredVariance, core.MomentVariance} {
		v, err := core.EstimateVariance(core.VarianceConfig{
			Bits:     bits,
			Method:   method,
			Adaptive: core.AdaptiveConfig{RR: rr, SquashMultiple: 1},
		}, values, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %8.1f (error %+.1f%%)\n", method, v, pct(v, exactVar))
	}
}

func pct(est, exact float64) float64 { return 100 * (est - exact) / exact }
