// Percentiles: robust statistics from one-bit threshold queries — the
// §4.3 recommendation for heavy-tailed metrics ("Robust statistics are
// more appropriate, such as the median and percentiles").
//
// Each client discloses a single bit: whether its value exceeds the
// threshold it was asked about. The example estimates a latency
// distribution's median and p95 two ways (a single-round CDF sweep and a
// multi-round binary search), then uses the probe CDF to pick clipping
// bounds for a final trimmed bit-pushing mean — the full §4.3 pipeline.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/quantile"
	"repro/internal/workload"
)

func main() {
	const bits = 16
	rng := frand.New(77)

	// A latency-like distribution with a heavy tail: lognormal body plus
	// rare extreme stragglers.
	gen := workload.LogNormal{Mu: 6, Sigma: 0.6} // median e^6 ≈ 403ms
	raw := gen.Sample(rng, 60000)
	for i := 0; i < len(raw); i += 997 {
		raw[i] *= 50 // stragglers
	}
	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(raw)

	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	exactMed := sorted[len(sorted)/2]
	exactP95 := sorted[int(0.95*float64(len(sorted)))]
	fmt.Printf("population: %d clients; exact median %d, exact p95 %d, mean %.0f (tail-inflated)\n\n",
		len(values), exactMed, exactP95, fixedpoint.Mean(values))

	// Single round: spread clients across a 64-threshold grid.
	grid, err := quantile.UniformGrid(bits, 64)
	if err != nil {
		log.Fatal(err)
	}
	cdf, err := quantile.EstimateCDF(quantile.Config{Bits: bits}, grid, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	med, _ := cdf.Quantile(0.5)
	p95, _ := cdf.Quantile(0.95)
	fmt.Printf("single-round CDF sweep:  median ≈ %-6d p95 ≈ %-6d (grid step %d)\n",
		med, p95, grid[1]-grid[0])

	// Multi-round binary search: sharper, at the cost of `bits` rounds.
	medSearch, err := quantile.EstimateMedian(quantile.Config{Bits: bits}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	p95Search, err := quantile.EstimateQuantile(quantile.Config{Bits: bits}, 0.95, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary search (%d rounds): median ≈ %-6d p95 ≈ %d\n",
		medSearch.Rounds, medSearch.Quantile, p95Search.Quantile)

	// Under ε-LDP the threshold bit itself is protected — the paper flags
	// "whether a value is above or below a threshold" as privacy-revealing.
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		log.Fatal(err)
	}
	privMed, err := quantile.EstimateMedian(quantile.Config{Bits: bits, RR: rr}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary search, ε=2 LDP:  median ≈ %d\n\n", privMed.Quantile)

	// The trimmed-mean pipeline: probe CDF → clip bounds → bit-pushing
	// mean of the winsorized values. The probe uses the power-of-two grid,
	// whose resolution tracks the distribution's magnitude at both ends
	// (the uniform grid above is far too coarse near the 1% quantile).
	geoGrid, err := quantile.GeometricGrid(bits)
	if err != nil {
		log.Fatal(err)
	}
	probeCDF, err := quantile.EstimateCDF(quantile.Config{Bits: bits}, geoGrid, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, err := quantile.TrimmedMeanFromCDF(probeCDF, 0.01, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	clipBits := 1
	for uint64(1)<<uint(clipBits)-1 < hi {
		clipBits++
	}
	clipped := make([]uint64, len(values))
	for i, v := range values {
		switch {
		case v < lo:
			clipped[i] = lo
		case v > hi:
			clipped[i] = hi
		default:
			clipped[i] = v
		}
	}
	res, err := core.RunAdaptive(core.AdaptiveConfig{Bits: clipBits}, clipped, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trimmed mean pipeline: clip to [%d, %d] (%d bits), estimate %.0f\n",
		lo, hi, clipBits, res.Estimate)
	fmt.Printf("exact trimmed mean:    %.0f  (raw mean %.0f was straggler-inflated)\n",
		fixedpoint.Mean(clipped), fixedpoint.Mean(values))
}
