// Telemetry: the paper's deployment scenario (§4.3) — monitoring device
// health metrics whose distributions are heavy-tailed, sometimes constant,
// and occasionally shift underneath you.
//
// The example shows the three deployment lessons:
//  1. clipping (winsorization) to a fixed bit budget tames extreme
//     outliers that would otherwise dominate the mean;
//  2. the protocol tolerates client dropout, and the coordinator
//     auto-adjusts cohort sizes from the observed dropout rate;
//  3. the upper-bound tracker flags when a metric's magnitude regime
//     changes (heavy tail or non-stationarity), the signal §1.1 proposes
//     instead of chasing an unstable mean.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/federated"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
	"repro/internal/workload"
)

const feature = "crash_free_minutes"

func main() {
	rng := frand.New(7)

	// --- Lesson 1: clip heavy-tailed metrics to a bit budget. ---
	fmt.Println("== clipping a heavy-tailed device metric ==")
	raw := workload.DeviceMetric{OutlierMax: 1 << 30}.Sample(rng, 20000)
	var exact stats.Stream
	exact.AddAll(raw)
	fmt.Printf("raw data: mean %.2f, max %.0f (outliers %d orders above the mode)\n",
		exact.Mean(), exact.Max(), orders(exact.Max()))
	for _, bits := range []int{8, 16, 24} {
		codec := fixedpoint.MustCodec(bits, 0, 1)
		values := codec.EncodeAll(raw)
		clippedTruth := fixedpoint.Mean(values)
		res, err := core.RunAdaptive(core.AdaptiveConfig{Bits: bits}, values, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  b=%2d: clipped mean %10.3f, estimate %10.3f\n", bits, clippedTruth, res.Estimate)
	}
	fmt.Println("  (the clipped mean is the robust statistic the deployment monitors)")

	// --- Lesson 2: dropout-tolerant federated rounds. ---
	fmt.Println("\n== federated rounds with 35% dropout ==")
	codec := fixedpoint.MustCodec(12, 0, 1)
	healthy := codec.EncodeAll(workload.Normal{Mu: 1300, Sigma: 200}.Sample(rng, 50000))
	clients := federated.NewPopulation(feature, healthy)
	co, err := federated.NewCoordinator(federated.Config{
		Bits: 12, DropoutRate: 0.35, TargetReports: 8000, AutoAdjust: true,
		MinCohort: 1000, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	truth := fixedpoint.Mean(healthy)
	for round := 1; round <= 3; round++ {
		res, err := co.EstimateMean(clients, feature)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  round %d: estimate %8.2f (exact %.2f), accepted %d reports, observed dropout %.0f%%\n",
			round, res.Estimate, truth,
			res.Round1.Stats.Accepted+res.Round2.Stats.Accepted, 100*co.ObservedDropout())
	}

	// --- Lesson 3: flag magnitude-regime changes instead of trusting means. ---
	fmt.Println("\n== upper-bound tracking across a regime change ==")
	tracker := core.NewBoundTracker(4, 3)
	probs, err := core.GeometricProbs(20, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	for day := 1; day <= 10; day++ {
		gen := workload.Generator(workload.Normal{Mu: 900, Sigma: 100})
		if day >= 8 {
			// A misconfiguration ships: the metric jumps two orders of
			// magnitude (the §4.3 federated-debugging scenario).
			gen = workload.Normal{Mu: 200000, Sigma: 20000}
		}
		values := fixedpoint.MustCodec(20, 0, 1).EncodeAll(gen.Sample(rng, 10000))
		res, err := core.Run(core.Config{Bits: 20, Probs: probs}, values, rng)
		if err != nil {
			log.Fatal(err)
		}
		flagged := tracker.Observe(res)
		marker := ""
		if flagged {
			marker = "  <-- FLAGGED: magnitude regime changed"
		}
		fmt.Printf("  day %2d: upper bound %8d%s\n", day, res.UpperBound(), marker)
	}
}

func orders(x float64) int {
	n := 0
	for x >= 10 {
		x /= 10
		n++
	}
	return n
}
