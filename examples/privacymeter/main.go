// Privacy meter: the §1.1 "privacy metering" concept in action. Private
// data is metered at the bit level — each client has a budget of bits it
// may disclose per feature and a total ε budget under composition — and
// the coordinator refuses to collect from clients whose budget ran out.
//
// The example runs daily collections of the same metric until the fleet's
// per-feature bit budget is exhausted, then shows the ledger an auditing
// surface would display.
package main

import (
	"fmt"
	"log"

	"repro/internal/federated"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/meter"
	"repro/internal/workload"
)

const feature = "daily_active_minutes"

func main() {
	rng := frand.New(99)
	codec := fixedpoint.MustCodec(10, 0, 1)
	values := codec.EncodeAll(workload.Normal{Mu: 240, Sigma: 60}.Sample(rng, 2000))
	clients := federated.NewPopulation(feature, values)
	truth := fixedpoint.Mean(values)

	// Policy: one bit per value (the paper's core tenet), at most 3 bits
	// per feature over the metric's lifetime, total ε of 4.
	ledger := meter.NewLedger(meter.Policy{
		MaxBitsPerValue:   1,
		MaxBitsPerFeature: 3,
		MaxEpsilon:        4,
	})
	rr, err := ldp.NewRandomizedResponse(1)
	if err != nil {
		log.Fatal(err)
	}
	co, err := federated.NewCoordinator(federated.Config{
		Bits: 10, RR: rr, Ledger: ledger, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy: ≤1 bit/value, ≤3 bits/feature, ε ≤ 4 (collections at ε=1)\n")
	fmt.Printf("exact mean: %.2f\n\n", truth)
	for day := 1; day <= 5; day++ {
		res, err := co.EstimateMeanSingleRound(clients, feature, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: estimate %7.2f  accepted %4d  budget-denied %4d\n",
			day, res.Estimate, res.Stats.Accepted, res.Stats.Denied)
	}

	fmt.Println("\nafter day 3 every client's 3-bit feature budget is spent;")
	fmt.Println("later collections are refused by the meter, not by policy hope.")

	// The audit view for one client.
	fmt.Printf("\naudit: client-0 disclosed %d bits of %q, spent ε=%.1f",
		ledger.BitsDisclosed("client-0", feature), feature, ledger.EpsilonSpent("client-0"))
	if remaining, ok := ledger.RemainingEpsilon("client-0"); ok {
		fmt.Printf(" (%.1f remaining)\n", remaining)
	} else {
		fmt.Println()
	}
}
