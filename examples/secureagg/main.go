// Secure aggregation: bit-pushing over the masked-sum substrate (§3.3).
//
// Clients never send their bit reports in the clear. Each submits an
// additively masked vector (bit value, report count) per assigned bit
// index; pairwise masks cancel in the sum and self masks are removed via
// Shamir-share recovery, so the server learns ONLY the per-bit sums and
// counts — even while clients drop out mid-round.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/secagg"
	"repro/internal/workload"
)

func main() {
	const (
		numClients = 48
		bits       = 10
	)
	rng := frand.New(31)
	codec := fixedpoint.MustCodec(bits, 0, 1)
	values := codec.EncodeAll(workload.Normal{Mu: 400, Sigma: 60}.Sample(rng, numClients))
	exact := fixedpoint.Mean(values)

	// Server side: assign one bit index per client (central randomness).
	probs, err := core.GeometricProbs(bits, 1)
	if err != nil {
		log.Fatal(err)
	}
	counts, err := core.Allocate(probs, numClients)
	if err != nil {
		log.Fatal(err)
	}
	assignment := core.Assign(counts, rng)

	// Each client's contribution vector holds, per bit index, its bit
	// value and a participation counter: 2*bits field elements.
	proto, err := secagg.New(secagg.Config{
		NumClients: numClients,
		Threshold:  numClients / 2,
		VecLen:     2 * bits,
	})
	if err != nil {
		log.Fatal(err)
	}

	masked := make(map[int][]field.Element, numClients)
	dropouts := map[int]bool{5: true, 19: true, 33: true} // drop mid-round
	for i, v := range values {
		if dropouts[i] {
			continue
		}
		j := assignment[i]
		vec := make([]field.Element, 2*bits)
		vec[2*j] = (v >> uint(j)) & 1 // the single disclosed bit
		vec[2*j+1] = 1                // report counter
		m, err := proto.MaskedInput(i, vec)
		if err != nil {
			log.Fatal(err)
		}
		masked[i] = m
	}
	fmt.Printf("clients: %d enrolled, %d dropped mid-round, %d masked submissions\n",
		numClients, len(dropouts), len(masked))

	// The server unmasks the SUM (recovering dropped clients' mask seeds
	// from the survivors' Shamir shares) without seeing any single report.
	sums, err := proto.Aggregate(masked)
	if err != nil {
		log.Fatal(err)
	}

	// Feed the recovered per-bit sums/counts into the bit-pushing
	// aggregator as synthetic reports.
	var reports []core.Report
	for j := 0; j < bits; j++ {
		ones, total := sums[2*j], sums[2*j+1]
		for k := field.Element(0); k < total; k++ {
			bit := uint64(0)
			if k < ones {
				bit = 1
			}
			reports = append(reports, core.Report{Bit: j, Value: bit})
		}
	}
	res, err := core.Aggregate(core.Config{Bits: bits, Probs: probs}, reports)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("server sees per-bit sums only, e.g. bit %d: %d ones of %d reports\n",
		bits-1, sums[2*(bits-1)], sums[2*(bits-1)+1])
	fmt.Printf("estimate from masked sums: %.2f   (exact mean %.2f)\n", res.Estimate, exact)
	fmt.Println("no individual client's bit was ever visible to the server")
}
