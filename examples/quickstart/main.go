// Quickstart: estimate the mean of a private metric with bit-pushing.
//
// 10,000 simulated clients each hold one private value. The protocol asks
// every client for a single binary digit of its value — never the value
// itself — and reconstructs the mean from the per-bit means. The example
// runs the single-round weighted protocol and the two-round adaptive one,
// then repeats the adaptive run with an ε=2 local differential privacy
// guarantee (randomized response on the disclosed bit).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/workload"
)

func main() {
	const (
		numClients = 10000
		bits       = 14 // values are clipped to [0, 2^14)
	)
	rng := frand.New(42)

	// Draw a synthetic population: app latencies, Normal(900ms, 150ms).
	codec := fixedpoint.MustCodec(bits, 0, 1)
	latencies := workload.Normal{Mu: 900, Sigma: 150}.Sample(rng, numClients)
	values := codec.EncodeAll(latencies)
	exact := fixedpoint.Mean(values)
	fmt.Printf("population: %d clients, exact mean %.2f ms\n\n", numClients, exact)

	// Single-round weighted bit-pushing: p_j ∝ 2^j.
	probs, err := core.GeometricProbs(bits, 1)
	if err != nil {
		log.Fatal(err)
	}
	single, err := core.Run(core.Config{Bits: bits, Probs: probs}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	report("weighted single round", single.Estimate, exact)

	// Two-round adaptive bit-pushing (Algorithm 2): round 1 locates the
	// bits that matter, round 2 concentrates sampling on them.
	adaptive, err := core.RunAdaptive(core.AdaptiveConfig{Bits: bits}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	report("adaptive two rounds  ", adaptive.Estimate, exact)
	fmt.Printf("  round-2 sampling concentrated on bits 0..%d of %d\n\n",
		highestNonZero(adaptive.Probs2), bits-1)

	// The same adaptive protocol under ε-local differential privacy: each
	// disclosed bit passes through randomized response, and bit squashing
	// filters the noise-only bit positions.
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		log.Fatal(err)
	}
	private, err := core.RunAdaptive(core.AdaptiveConfig{
		Bits: bits, RR: rr, SquashMultiple: 2,
	}, values, rng)
	if err != nil {
		log.Fatal(err)
	}
	report("adaptive, ε=2 LDP    ", private.Estimate, exact)
	fmt.Println("\neach client disclosed exactly one (randomized) bit of its value")
}

func report(name string, estimate, exact float64) {
	fmt.Printf("%s: estimate %8.2f ms   (error %+.3f%%)\n",
		name, estimate, 100*(estimate-exact)/exact)
}

func highestNonZero(probs []float64) int {
	h := -1
	for j, p := range probs {
		if p > 0 {
			h = j
		}
	}
	return h
}
