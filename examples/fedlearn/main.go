// Federated learning with one-bit gradients: the application the paper
// motivates ("federated learning computes sample means for gradient
// updates", §1). Every training round, each client discloses a single
// randomized bit of one coordinate of its gradient; the server
// reconstructs the mean gradient with bit-pushing and steps the model.
//
// The example also runs the §3.4 feature-normalization recipe — per-feature
// means and variances estimated with bit-pushing, applied client-side —
// and compares against the exact-gradient baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/fedlearn"
	"repro/internal/frand"
)

func main() {
	rng := frand.New(2024)

	// Synthetic fleet: 20,000 clients each holding one example of
	// y = 2·x0 - 1.5·x1 + 0.5·x2 + 0.7, with badly scaled features.
	trueW := []float64{2, -1.5, 0.5}
	const trueB = 0.7
	data := make([]fedlearn.Example, 20000)
	scales := []float64{1, 10, 0.2}
	for i := range data {
		x := make([]float64, 3)
		y := trueB
		for k := range x {
			x[k] = rng.Normal(0, scales[k])
			y += trueW[k] * x[k] / scales[k]
		}
		data[i] = fedlearn.Example{X: x, Y: y + rng.Normal(0, 0.1)}
	}

	// Step 1 (§3.4): feature normalization from bit-pushed statistics.
	stats, err := fedlearn.EstimateFeatureStats(3, 12, 64, data, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bit-pushed feature stats: means %.3v, stds %.3v\n", stats.Mean, stats.Std)
	normalized := stats.Standardize(data)

	// Step 2: federated training, one disclosed bit per client per round.
	cfg := fedlearn.Config{Dim: 3, Rounds: 80, Seed: 7}
	model, err := fedlearn.Train(cfg, normalized, rng)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := fedlearn.TrainExact(cfg, normalized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %d rounds (each client disclosed %d bits total):\n",
		cfg.Rounds, model.BitsPerClient)
	fmt.Printf("  bit-pushed MSE: %.5f\n", model.LossHistory[len(model.LossHistory)-1])
	fmt.Printf("  exact-gradient MSE: %.5f\n", exact.LossHistory[len(exact.LossHistory)-1])

	// Step 3: the same training under ε=2 local DP on every gradient bit.
	dpModel, err := fedlearn.Train(fedlearn.Config{Dim: 3, Rounds: 80, Eps: 2, Seed: 8}, normalized, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ε=2 LDP MSE:    %.5f\n", dpModel.LossHistory[len(dpModel.LossHistory)-1])

	fmt.Println("\nlearned weights (normalized feature space):")
	fmt.Printf("  bit-pushed: %.3v  intercept %.3f\n", model.Weights, model.Intercept)
	fmt.Printf("  exact:      %.3v  intercept %.3f\n", exact.Weights, exact.Intercept)
}
