package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/frand"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

var (
	listenRe = regexp.MustCompile(`listening on (http://[\d.]+:\d+)`)
	debugRe  = regexp.MustCompile(`debug endpoint on (http://[\d.]+:\d+)`)
)

// daemon is one fednumd process under test.
type daemon struct {
	cmd      *exec.Cmd
	baseURL  string
	debugURL string
	done     chan error
}

// startDaemon launches the built binary with any extra flags appended and
// waits for its listen line (and, when -debug-addr is among the extras,
// the debug-endpoint line too).
func startDaemon(t *testing.T, bin, addr, snapshot string, extra ...string) *daemon {
	t.Helper()
	wantDebug := false
	for _, a := range extra {
		if a == "-debug-addr" {
			wantDebug = true
		}
	}
	args := append([]string{"-addr", addr, "-seed", "1", "-snapshot", snapshot, "-shutdown-grace", "5s"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting fednumd: %v", err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}
	urlc := make(chan string, 1)
	debugc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case urlc <- m[1]:
				default:
				}
			}
			if m := debugRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case debugc <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { d.done <- cmd.Wait() }()
	select {
	case d.baseURL = <-urlc:
	case err := <-d.done:
		t.Fatalf("fednumd exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("fednumd never reported its listen address")
	}
	if wantDebug {
		select {
		case d.debugURL = <-debugc:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Fatal("fednumd never reported its debug address")
		}
	}
	return d
}

// sigterm stops the daemon and waits for the graceful exit that writes the
// snapshot.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("fednumd exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("fednumd did not exit after SIGTERM")
	}
}

// TestRestartRecoversSession is the crash-safety acceptance test: kill
// fednumd with SIGTERM mid-session, restart it from the snapshot, and
// check (a) the session and its accepted reports survive, (b) clients that
// retried straight through the restart land exactly one accepted report
// each, and (c) a client that re-participates after the restart is re-acked
// as a duplicate, not double-counted.
func TestRestartRecoversSession(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fednumd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building fednumd: %v\n%s", err, out)
	}
	snap := filepath.Join(dir, "sessions.json")

	d := startDaemon(t, bin, "127.0.0.1:0", snap)
	// The kernel already released the port when the first process exited,
	// so the restart can bind the same address and retrying clients
	// converge on it.
	addr := d.baseURL[len("http://"):]

	ctx := context.Background()
	retry := &transport.RetryPolicy{
		MaxAttempts: 40, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
		Jitter: 0.5, PerTryTimeout: 2 * time.Second, Seed: 5,
	}
	admin := &transport.Admin{BaseURL: d.baseURL, Retry: retry}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "restart", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	// Phase 1: 20 clients report before the crash.
	const before, through = 20, 10
	participant := func(i int) *transport.Participant {
		return &transport.Participant{
			BaseURL:  d.baseURL,
			ClientID: fmt.Sprintf("dev-%d", i),
			RNG:      frand.New(uint64(i)),
			Retry: &transport.RetryPolicy{
				MaxAttempts: 40, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
				Jitter: 0.5, PerTryTimeout: 2 * time.Second, Seed: uint64(i),
			},
		}
	}
	for i := 0; i < before; i++ {
		if err := participant(i).Participate(ctx, session, uint64(i*12%256)); err != nil {
			t.Fatalf("client %d before restart: %v", i, err)
		}
	}

	// Phase 2: kill the daemon, then launch clients that retry through the
	// outage while it is down.
	d.sigterm(t)
	var wg sync.WaitGroup
	errs := make([]error, through)
	for i := 0; i < through; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = participant(before+i).Participate(ctx, session, uint64(i*7%256))
		}(i)
	}
	// Give the retry loops time to hit connection-refused at least once.
	time.Sleep(400 * time.Millisecond)

	// Phase 3: restart on the same address from the snapshot.
	d2 := startDaemon(t, bin, addr, snap)
	defer func() { d2.sigterm(t) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d retrying through restart: %v", before+i, err)
		}
	}

	// A pre-crash client re-participating must be re-acked as a duplicate
	// (same assignment, same deterministic bit), not double-counted.
	if err := participant(3).Participate(ctx, session, uint64(3*12%256)); err != nil {
		t.Fatalf("pre-crash client re-participating after restart: %v", err)
	}

	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatalf("finalize after restart: %v", err)
	}
	if !res.Done {
		t.Fatal("session not finalized")
	}
	if want := before + through; res.Reports != want {
		t.Fatalf("final cohort = %d, want exactly %d (pre-crash %d + retried-through %d, duplicates excluded)",
			res.Reports, want, before, through)
	}
}

// TestMetricsDebugEndpoint is the live observability acceptance test: run
// the real daemon with -debug-addr, drive a session over its public port,
// and scrape the admin listener for Prometheus metrics, expvar and pprof.
func TestMetricsDebugEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fednumd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building fednumd: %v\n%s", err, out)
	}

	d := startDaemon(t, bin, "127.0.0.1:0", filepath.Join(dir, "snap.json"),
		"-debug-addr", "127.0.0.1:0", "-log-format", "json", "-log-level", "debug")
	defer d.sigterm(t)

	const n = 3
	ctx := context.Background()
	admin := &transport.Admin{BaseURL: d.baseURL}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "dbg", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	for i := 0; i < n; i++ {
		p := &transport.Participant{
			BaseURL:  d.baseURL,
			ClientID: fmt.Sprintf("dev-%d", i),
			RNG:      frand.New(uint64(i + 1)),
		}
		if err := p.Participate(ctx, session, uint64(i*10)); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if _, err := admin.Finalize(ctx, session); err != nil {
		t.Fatalf("finalize: %v", err)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(d.debugURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if ct != obs.ContentType {
		t.Fatalf("/metrics content type = %q, want %q", ct, obs.ContentType)
	}
	for _, want := range []string{
		transport.MetricSessionsCreated + " 1",
		transport.MetricReports + `{result="accepted"} ` + fmt.Sprint(n),
		transport.MetricSessionsFinalized + `{trigger="api"} 1`,
		"# TYPE " + transport.MetricHTTPLatency + " histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, metrics)
		}
	}
	if vars, _ := get("/debug/vars"); !strings.Contains(vars, `"fednum"`) {
		t.Errorf("/debug/vars does not publish the fednum registry:\n%s", vars)
	}
	if _, ct := get("/debug/pprof/cmdline"); ct == "" {
		t.Error("/debug/pprof/cmdline served no content type")
	}
	if prof, _ := get("/debug/pprof/"); !strings.Contains(prof, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}
