// Command fednumd runs the standalone aggregation server: an HTTP service
// that creates bit-pushing sessions, hands out single-bit tasks, ingests
// randomized-response-protected reports and serves the aggregates. It is
// the deployable counterpart of the paper's Federated Analytics stack
// (§4.3); pair it with cmd/fednum-client.
//
// The daemon is crash-safe: SIGINT/SIGTERM trigger a graceful drain with a
// bounded grace period, and with -snapshot set the whole session table is
// written to disk on shutdown and restored on the next boot, so an
// in-flight aggregation survives a restart. Sessions created with a TTL
// are garbage-collected (auto-finalized or expired) by a background
// sweeper.
//
// With -wal-dir set the daemon is additionally kill-9 durable: every
// acked state transition is committed to a write-ahead log before the
// reply leaves the process, boot restores the latest snapshot and
// replays the WAL tail, and -snapshot-interval runs a background
// compactor that cuts snapshots and reclaims covered log segments. The
// ack⇒durable guarantee depends on -wal-fsync: "always" (default) and
// "grouped" survive power loss, "never" only survives process crashes.
//
// Overload control: the -*-in-flight, -queue-depth/-queue-wait,
// -report-rate/-report-burst, -max-body-bytes and -request-timeout flags
// arm per-endpoint-class admission control — excess load is shed with a
// typed 503 and adaptive Retry-After advice instead of queueing without
// bound. GET /healthz answers liveness; GET /readyz flips to 503 while
// the daemon is draining or actively shedding, so a fronting router can
// tell "back off" from "dead".
//
// Observability: logs are structured (-log-format text|json, -log-level),
// and -debug-addr starts a second, operator-only listener serving
// GET /metrics (Prometheus text format), /debug/vars (expvar) and
// /debug/pprof/* — kept off the aggregation port so profiling and
// scraping are never exposed to participant traffic.
//
// Tracing: -trace-buf N arms zero-dependency request tracing — every
// request gets a span (continuing the client's W3C traceparent when
// present), the last N finished spans are served at /debug/trace on the
// admin listener, per-session round timelines at /debug/rounds, and log
// lines carry the matching trace_id/span_id. cmd/fedtrace renders both.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	// Subcommands are checked before flag.Parse so `fednumd promote URL`
	// works without the daemon flag set.
	if len(os.Args) > 1 && os.Args[1] == "promote" {
		os.Exit(runPromote(os.Args[2:]))
	}
	addr := flag.String("addr", "127.0.0.1:8377", "listen address (port 0 picks a free port)")
	debugAddr := flag.String("debug-addr", "", "admin listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "task-assignment seed")
	snapshot := flag.String("snapshot", "", "session-state snapshot path: restored on boot, written on shutdown")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on shutdown")
	gcInterval := flag.Duration("gc-interval", time.Second, "session TTL sweep interval")
	retention := flag.Duration("retention", 0, "drop finalized/expired sessions this long after they end (0 = keep)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: acked transitions are committed here before replying (empty = disabled)")
	walFsync := flag.String("wal-fsync", "always", "WAL commit policy: always (fsync per ack), grouped (batched fsync, bounded by -wal-flush-interval) or never (benchmarks only)")
	walFlushInterval := flag.Duration("wal-flush-interval", 2*time.Millisecond, "max ack delay under -wal-fsync=grouped")
	snapInterval := flag.Duration("snapshot-interval", 0, "cut a snapshot (and compact the WAL) this often; 0 = shutdown only")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "POST body cap in bytes; oversized requests get 413 (0 = 1MiB default, negative = uncapped)")
	reportInFlight := flag.Int("report-in-flight", 0, "max concurrently handled report submissions (0 = ungated)")
	taskInFlight := flag.Int("task-in-flight", 0, "max concurrently handled task polls (0 = ungated)")
	adminInFlight := flag.Int("admin-in-flight", 0, "max concurrently handled session create/finalize calls (0 = ungated)")
	queryInFlight := flag.Int("query-in-flight", 0, "max concurrently handled session/result queries (0 = ungated)")
	queueDepth := flag.Int("queue-depth", 0, "waiters allowed per gated endpoint class before shedding outright")
	queueWait := flag.Duration("queue-wait", 0, "max time a queued request waits for a slot before being shed (0 = 250ms default)")
	reportRate := flag.Float64("report-rate", 0, "per-session sustained report rate in reports/second; excess gets 429 (0 = unlimited)")
	reportBurst := flag.Float64("report-burst", 0, "per-session report token-bucket capacity (0 = -report-rate)")
	retryAfterBase := flag.Duration("retry-after-base", 0, "initial Retry-After advice on shed responses; doubles under sustained overload (0 = 1s default)")
	retryAfterMax := flag.Duration("retry-after-max", 0, "Retry-After advice cap (0 = 30s default)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request read/write deadline cutting off slow-loris bodies on gated routes (0 = listener timeouts only)")
	sessionStripes := flag.Int("session-stripes", 0, "lock stripes of the session table, rounded up to a power of two; raise on machines with very wide report fan-in (0 = default 32)")
	traceBuf := flag.Int("trace-buf", 0, "spans kept in the in-memory trace ring served at /debug/trace on the admin listener; also records per-session round timelines at /debug/rounds (0 = tracing disabled)")
	replicaOf := flag.String("replica-of", "", "run as a standby replicating from this primary base URL (comma-separated list tries each); requires -wal-dir")
	epoch := flag.Uint64("epoch", 1, "initial fencing epoch; a promoted node serves epoch+1, and replication frames from a lower epoch are rejected")
	failoverAfter := flag.Int("failover-after", 0, "standby auto-promotes after this many consecutive primary health-probe failures (0 = manual promotion only)")
	probeInterval := flag.Duration("probe-interval", time.Second, "primary health-probe cadence on a standby")
	salvageDir := flag.String("salvage-dir", "", "the primary's WAL directory as visible from this host; at promotion the standby drains its unshipped tail so no acked report is lost")
	advertiseURL := flag.String("advertise-url", "", "this node's base URL as other nodes should reach it, used as the leader hint after promotion (default http://<addr>)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fednumd: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fednumd: %v\n", err)
		os.Exit(2)
	}
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf("fednumd: "+format, args...))
		os.Exit(1)
	}

	if *snapInterval > 0 && *snapshot == "" {
		fatalf("-snapshot-interval requires -snapshot")
	}
	if *replicaOf != "" && *walDir == "" {
		fatalf("-replica-of requires -wal-dir: the standby mirrors the primary's log sequence space")
	}

	if *traceBuf < 0 {
		fatalf("-trace-buf must be >= 0")
	}
	if *traceBuf > 0 {
		// Stamp trace_id/span_id onto every context-carrying log line, so
		// slog output and /debug/trace correlate on the same ids.
		logger = obs.WithTraceContext(logger)
	}

	agg := transport.NewServer(*seed)
	agg.Logger = logger
	agg.Retention = *retention
	if *sessionStripes > 0 {
		// Before any snapshot restore or WAL replay: the table must be
		// empty to resize.
		if err := agg.SetSessionStripes(*sessionStripes); err != nil {
			logger.Error("applying -session-stripes failed", "error", err)
			os.Exit(1)
		}
	}
	if *traceBuf > 0 {
		agg.SetTracer(trace.NewRecorder(*traceBuf))
	}
	agg.SetOverload(transport.OverloadPolicy{
		MaxBodyBytes:   *maxBodyBytes,
		ReportInFlight: *reportInFlight,
		TaskInFlight:   *taskInFlight,
		AdminInFlight:  *adminInFlight,
		QueryInFlight:  *queryInFlight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		ReportRate:     *reportRate,
		ReportBurst:    *reportBurst,
		RetryAfterBase: *retryAfterBase,
		RetryAfterMax:  *retryAfterMax,
		RequestTimeout: *requestTimeout,
	})
	agg.SetEpoch(*epoch)
	// The role must be standby before the GC loop or any traffic starts:
	// a standby never generates its own WAL records (deadline sweeps
	// arrive from the primary's stream), and the role gate refuses
	// client traffic from the first request.
	if *replicaOf != "" {
		agg.SetRole(transport.RoleStandby)
		agg.SetLeaderHint(transport.NewEndpointList(*replicaOf).Current())
	}

	// Recovery order: attach the WAL first (so restoring a snapshot can
	// cross-check its coverage against the log head), restore the latest
	// snapshot, then replay the log tail the snapshot does not cover.
	var log *wal.WAL
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			fatalf("%v", err)
		}
		log, err = wal.Open(wal.Options{
			Dir:           *walDir,
			Policy:        policy,
			FlushInterval: *walFlushInterval,
			Registry:      agg.Registry(),
		})
		if err != nil {
			fatalf("opening wal %s: %v", *walDir, err)
		}
		agg.AttachWAL(log)
	}
	if *snapshot != "" {
		if err := agg.LoadSnapshot(*snapshot); err != nil {
			fatalf("restoring snapshot %s: %v", *snapshot, err)
		}
		if n := len(agg.Sessions()); n > 0 {
			logger.Info("fednumd: restored sessions from snapshot", "sessions", n, "path", *snapshot)
		}
	}
	if log != nil {
		applied, err := agg.ReplayWAL()
		if err != nil {
			fatalf("replaying wal %s: %v", *walDir, err)
		}
		if applied > 0 {
			logger.Info("fednumd: replayed wal tail", "records", applied,
				"through_seq", agg.WALSeq(), "sessions", len(agg.Sessions()))
		}
	}
	stopGC := agg.StartGC(*gcInterval)
	defer stopGC()

	// cutSnapshot is the one snapshot path for both the periodic
	// compactor and shutdown: with a WAL it also reclaims covered
	// segments, without one it just writes the table.
	cutSnapshot := func(reason string) error {
		if log != nil {
			removed, err := agg.CompactWAL(*snapshot)
			if err != nil {
				return err
			}
			logger.Info("fednumd: snapshot cut, wal compacted", "reason", reason,
				"path", *snapshot, "through_seq", agg.WALSeq(), "segments_removed", removed)
			return nil
		}
		if err := agg.SaveSnapshot(*snapshot); err != nil {
			return err
		}
		logger.Info("fednumd: snapshot cut", "reason", reason, "path", *snapshot)
		return nil
	}
	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	if *snapInterval > 0 {
		go func() {
			defer close(snapDone)
			tick := time.NewTicker(*snapInterval)
			defer tick.Stop()
			lastSeq := agg.WALSeq()
			for {
				select {
				case <-stopSnap:
					return
				case <-tick.C:
				}
				// Skip idle ticks: with a WAL the applied sequence tells
				// us whether anything changed since the last cut.
				if log != nil {
					seq := agg.WALSeq()
					if seq == lastSeq {
						continue
					}
					lastSeq = seq
				}
				if err := cutSnapshot("interval"); err != nil {
					logger.Warn("fednumd: periodic snapshot failed", "error", err)
				}
			}
		}()
	} else {
		close(snapDone)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	srv := &http.Server{
		Handler:           agg,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	logger.Info(fmt.Sprintf("fednumd: aggregation server listening on http://%s", ln.Addr()))

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen %s: %v", *debugAddr, err)
		}
		agg.Registry().Publish("fednum")
		debugSrv = &http.Server{
			Handler:           debugMux(agg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go debugSrv.Serve(dln)
		logger.Info(fmt.Sprintf("fednumd: debug endpoint on http://%s", dln.Addr()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replicaOf != "" {
		self := *advertiseURL
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		fol, ferr := replica.New(replica.Options{
			Server:        agg,
			Primary:       transport.NewEndpointList(*replicaOf),
			SelfURL:       self,
			Logger:        logger,
			Registry:      agg.Registry(),
			Tracer:        agg.Tracer(),
			SalvageDir:    *salvageDir,
			FailoverAfter: *failoverAfter,
			ProbeInterval: *probeInterval,
		})
		if ferr != nil {
			fatalf("replica: %v", ferr)
		}
		// The admin promote verb and the automatic prober share one
		// promotion path: salvage the dead primary's tail, then flip.
		agg.SetOnPromote(fol.Promote)
		go fol.Run(ctx)
		logger.Info("fednumd: standby replicating from primary",
			"primary", *replicaOf, "salvage_dir", *salvageDir,
			"failover_after", *failoverAfter, "epoch", agg.Epoch())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	// Flip readiness first so a fronting router routes new work elsewhere
	// while the in-flight requests drain; /healthz keeps answering 200.
	agg.SetDraining(true)
	logger.Info("fednumd: signal received, draining connections", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("fednumd: drain incomplete, closing", "error", err)
		srv.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	stopGC()
	close(stopSnap)
	<-snapDone
	if *snapshot != "" {
		if err := cutSnapshot("shutdown"); err != nil {
			fatalf("writing snapshot %s: %v", *snapshot, err)
		}
	}
	if log != nil {
		if err := log.Close(); err != nil {
			fatalf("closing wal: %v", err)
		}
	}
}

// runPromote implements `fednumd promote <standby-url>`: the
// operator-facing failover verb. It POSTs the standby's promotion
// endpoint (which salvages the dead primary's log tail before flipping
// roles) and prints the answer.
func runPromote(args []string) int {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fednumd promote [-timeout d] <standby-base-url>")
		return 2
	}
	base := strings.TrimRight(strings.TrimSpace(fs.Arg(0)), "/")
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/replication/promote", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fednumd: %v\n", err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fednumd: promote %s: %v\n", base, err)
		return 1
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	fmt.Printf("%s\n", body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "fednumd: promote failed with status %d\n", resp.StatusCode)
		return 1
	}
	return 0
}

// debugMux assembles the operator-only admin handler: the server's
// metrics registry in Prometheus text format, the expvar dump, and the
// standard pprof profile endpoints.
func debugMux(agg *transport.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", agg.Registry().Handler())
	if rec := agg.Tracer(); rec != nil {
		mux.Handle("GET /debug/trace", rec.Handler())
		rounds := agg.RoundsHandler()
		mux.Handle("GET /debug/rounds", rounds)
		mux.Handle("GET /debug/rounds/{session}", rounds)
	}
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
