// Command fednumd runs the standalone aggregation server: an HTTP service
// that creates bit-pushing sessions, hands out single-bit tasks, ingests
// randomized-response-protected reports and serves the aggregates. It is
// the deployable counterpart of the paper's Federated Analytics stack
// (§4.3); pair it with cmd/fednum-client.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "task-assignment seed")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           transport.NewServer(*seed),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("fednumd: aggregation server listening on http://%s", *addr)
	log.Fatal(srv.ListenAndServe())
}
