// Command fednumd runs the standalone aggregation server: an HTTP service
// that creates bit-pushing sessions, hands out single-bit tasks, ingests
// randomized-response-protected reports and serves the aggregates. It is
// the deployable counterpart of the paper's Federated Analytics stack
// (§4.3); pair it with cmd/fednum-client.
//
// The daemon is crash-safe: SIGINT/SIGTERM trigger a graceful drain with a
// bounded grace period, and with -snapshot set the whole session table is
// written to disk on shutdown and restored on the next boot, so an
// in-flight aggregation survives a restart. Sessions created with a TTL
// are garbage-collected (auto-finalized or expired) by a background
// sweeper.
//
// Observability: logs are structured (-log-format text|json, -log-level),
// and -debug-addr starts a second, operator-only listener serving
// GET /metrics (Prometheus text format), /debug/vars (expvar) and
// /debug/pprof/* — kept off the aggregation port so profiling and
// scraping are never exposed to participant traffic.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address (port 0 picks a free port)")
	debugAddr := flag.String("debug-addr", "", "admin listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "task-assignment seed")
	snapshot := flag.String("snapshot", "", "session-state snapshot path: restored on boot, written on shutdown")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on shutdown")
	gcInterval := flag.Duration("gc-interval", time.Second, "session TTL sweep interval")
	retention := flag.Duration("retention", 0, "drop finalized/expired sessions this long after they end (0 = keep)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fednumd: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fednumd: %v\n", err)
		os.Exit(2)
	}
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf("fednumd: "+format, args...))
		os.Exit(1)
	}

	agg := transport.NewServer(*seed)
	agg.Logger = logger
	agg.Retention = *retention
	if *snapshot != "" {
		if err := agg.LoadSnapshot(*snapshot); err != nil {
			fatalf("restoring snapshot %s: %v", *snapshot, err)
		}
		if n := len(agg.Sessions()); n > 0 {
			logger.Info("fednumd: restored sessions from snapshot", "sessions", n, "path", *snapshot)
		}
	}
	stopGC := agg.StartGC(*gcInterval)
	defer stopGC()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	srv := &http.Server{
		Handler:           agg,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	logger.Info(fmt.Sprintf("fednumd: aggregation server listening on http://%s", ln.Addr()))

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("debug listen %s: %v", *debugAddr, err)
		}
		agg.Registry().Publish("fednum")
		debugSrv = &http.Server{
			Handler:           debugMux(agg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go debugSrv.Serve(dln)
		logger.Info(fmt.Sprintf("fednumd: debug endpoint on http://%s", dln.Addr()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("fednumd: signal received, draining connections", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("fednumd: drain incomplete, closing", "error", err)
		srv.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	stopGC()
	if *snapshot != "" {
		if err := agg.SaveSnapshot(*snapshot); err != nil {
			fatalf("writing snapshot %s: %v", *snapshot, err)
		}
		logger.Info("fednumd: session state saved", "path", *snapshot)
	}
}

// debugMux assembles the operator-only admin handler: the server's
// metrics registry in Prometheus text format, the expvar dump, and the
// standard pprof profile endpoints.
func debugMux(agg *transport.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", agg.Registry().Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
