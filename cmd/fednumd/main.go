// Command fednumd runs the standalone aggregation server: an HTTP service
// that creates bit-pushing sessions, hands out single-bit tasks, ingests
// randomized-response-protected reports and serves the aggregates. It is
// the deployable counterpart of the paper's Federated Analytics stack
// (§4.3); pair it with cmd/fednum-client.
//
// The daemon is crash-safe: SIGINT/SIGTERM trigger a graceful drain with a
// bounded grace period, and with -snapshot set the whole session table is
// written to disk on shutdown and restored on the next boot, so an
// in-flight aggregation survives a restart. Sessions created with a TTL
// are garbage-collected (auto-finalized or expired) by a background
// sweeper.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address (port 0 picks a free port)")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "task-assignment seed")
	snapshot := flag.String("snapshot", "", "session-state snapshot path: restored on boot, written on shutdown")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on shutdown")
	gcInterval := flag.Duration("gc-interval", time.Second, "session TTL sweep interval")
	retention := flag.Duration("retention", 0, "drop finalized/expired sessions this long after they end (0 = keep)")
	flag.Parse()

	agg := transport.NewServer(*seed)
	agg.Retention = *retention
	if *snapshot != "" {
		if err := agg.LoadSnapshot(*snapshot); err != nil {
			log.Fatalf("fednumd: restoring snapshot %s: %v", *snapshot, err)
		}
		if n := len(agg.Sessions()); n > 0 {
			log.Printf("fednumd: restored %d session(s) from %s", n, *snapshot)
		}
	}
	stopGC := agg.StartGC(*gcInterval)
	defer stopGC()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fednumd: listen %s: %v", *addr, err)
	}
	srv := &http.Server{
		Handler:           agg,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	log.Printf("fednumd: aggregation server listening on http://%s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatalf("fednumd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("fednumd: signal received, draining connections (grace %s)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("fednumd: drain incomplete, closing: %v", err)
		srv.Close()
	}
	stopGC()
	if *snapshot != "" {
		if err := agg.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("fednumd: writing snapshot %s: %v", *snapshot, err)
		}
		log.Printf("fednumd: session state saved to %s", *snapshot)
	}
}
