package main

import (
	"math"
	"testing"

	"repro/internal/frand"
)

func TestParseWorkload(t *testing.T) {
	cases := []struct {
		spec    string
		name    string
		wantErr bool
	}{
		{"normal(500,80)", "normal(mu=500,sigma=80)", false},
		{"uniform(0,100)", "uniform[0,100)", false},
		{"exponential(40)", "exponential(mean=40)", false},
		{"lognormal(2,0.5)", "lognormal(mu=2,sigma=0.5)", false},
		{"census", "census-ages", false},
		{"normal(-3,1)", "normal(mu=-3,sigma=1)", false},
		{"triangle(1,2)", "", true},
		{"normal", "", true},
		{"normal(a,b)", "", true},
		{"", "", true},
	}
	for _, c := range cases {
		gen, err := parseWorkload(c.spec)
		if (err != nil) != c.wantErr {
			t.Errorf("parseWorkload(%q) err = %v, wantErr %v", c.spec, err, c.wantErr)
			continue
		}
		if err == nil && gen.Name() != c.name {
			t.Errorf("parseWorkload(%q).Name() = %q, want %q", c.spec, gen.Name(), c.name)
		}
	}
}

func TestParsedWorkloadSamples(t *testing.T) {
	gen, err := parseWorkload("normal(100,10)")
	if err != nil {
		t.Fatal(err)
	}
	vals := gen.Sample(frand.New(1), 10000)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if mean := sum / 10000; math.Abs(mean-100) > 1 {
		t.Fatalf("parsed workload mean %v, want ~100", mean)
	}
}
