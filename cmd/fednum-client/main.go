// Command fednum-client simulates a fleet of devices against a running
// fednumd server: it creates an aggregation session, has every simulated
// client fetch its single-bit task and submit its (optionally ε-LDP
// randomized) report, finalizes the session, and prints the estimate next
// to the fleet's exact mean.
//
//	fednum-client -server http://127.0.0.1:8377 -clients 10000 \
//	    -workload 'normal(500,80)' -bits 12 -eps 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/obs"
	"repro/internal/quantile"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

// printMetricsSummary condenses the fleet's client-side registry into one
// line: request attempts, per-attempt latency quantiles, retries after
// transient failures, and reports re-acked as duplicates. A second line
// reports server pushback (Retry-After waits, breaker activity) when any
// occurred.
func printMetricsSummary(reg *obs.Registry) {
	lat := reg.Histogram(transport.MetricClientAttemptTime, "", obs.LatencyBuckets)
	fmt.Printf("metrics:   %d requests, p50=%.0fms p99=%.0fms, %d retries, %d duplicate acks\n",
		reg.Counter(transport.MetricClientAttempts, "").Value(),
		1000*lat.Quantile(0.5), 1000*lat.Quantile(0.99),
		reg.Counter(transport.MetricClientRetries, "").Value(),
		reg.Counter(transport.MetricClientDuplicateAcks, "").Value())
	waits := reg.Counter(transport.MetricClientRetryAfterWaits, "").Value()
	fastFails := reg.Counter(transport.MetricClientBreakerFastFails, "").Value()
	probes := reg.Counter(transport.MetricClientBreakerProbes, "").Value()
	if waits > 0 || fastFails > 0 || probes > 0 {
		fmt.Printf("pushback:  %d retry-after waits, %d breaker fast-fails, %d probes\n",
			waits, fastFails, probes)
	}
}

var workloadRe = regexp.MustCompile(`^(\w+)\(([-\d.]+)(?:,([-\d.]+))?\)$`)

// parseWorkload converts a spec like "normal(500,80)", "uniform(0,100)",
// "exponential(40)" or "census" into a generator.
func parseWorkload(spec string) (workload.Generator, error) {
	if spec == "census" {
		return workload.CensusAges{}, nil
	}
	m := workloadRe.FindStringSubmatch(spec)
	if m == nil {
		return nil, fmt.Errorf("unrecognized workload %q", spec)
	}
	a, err := strconv.ParseFloat(m[2], 64)
	if err != nil {
		return nil, err
	}
	var b float64
	if m[3] != "" {
		if b, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, err
		}
	}
	switch m[1] {
	case "normal":
		return workload.Normal{Mu: a, Sigma: b}, nil
	case "uniform":
		return workload.Uniform{Lo: a, Hi: b}, nil
	case "exponential":
		return workload.Exponential{Mean: a}, nil
	case "lognormal":
		return workload.LogNormal{Mu: a, Sigma: b}, nil
	default:
		return nil, fmt.Errorf("unknown workload kind %q", m[1])
	}
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8377", "fednumd base URL, or a comma-separated failover list (first healthy endpoint wins; not_primary answers redirect to the leader)")
	clients := flag.Int("clients", 10000, "number of simulated devices")
	spec := flag.String("workload", "normal(500,80)", "value distribution: normal(mu,sigma), uniform(lo,hi), exponential(mean), lognormal(mu,sigma), census")
	feature := flag.String("feature", "metric", "feature name")
	bits := flag.Int("bits", 12, "protocol bit depth")
	gamma := flag.Float64("gamma", 1, "bit-sampling exponent, p_j ∝ 2^(γj)")
	eps := flag.Float64("eps", 0, "ε for client-side randomized response (0 = off)")
	squash := flag.Float64("squash", 0, "absolute bit-squashing threshold")
	minCohort := flag.Int("min-cohort", 0, "minimum accepted reports before finalize")
	adaptive := flag.Bool("adaptive", false, "run the two-round adaptive protocol (Algorithm 2) instead of one weighted round")
	quantileQ := flag.Float64("quantile", 0, "estimate this quantile via a threshold session instead of the mean (e.g. 0.5 for the median)")
	gridK := flag.Int("grid", 32, "threshold-grid size for -quantile sessions")
	parallel := flag.Int("parallel", 32, "concurrent clients")
	retries := flag.Int("retries", 5, "attempts per request before giving up (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per retry)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request attempt timeout (0 = none)")
	breakerOff := flag.Bool("no-breaker", false, "disable the fleet-wide circuit breaker")
	breakerFails := flag.Int("breaker-failures", 5, "transient failures within -breaker-window that open the breaker")
	breakerWindow := flag.Duration("breaker-window", 10*time.Second, "rolling window over which breaker failures are counted")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "how long the breaker stays open before a half-open probe")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "fleet seed")
	traceBuf := flag.Int("trace-buf", 0, "client-side spans kept in an in-memory ring: the whole protocol run is traced (participate, per-attempt, retry backoff) and propagated to the server via traceparent (0 = off)")
	traceOut := flag.String("trace-out", "", "write the recorded client spans as JSON to this file at exit (requires -trace-buf)")
	flag.Parse()

	// One shared policy: it is safe for concurrent use, and the jitter
	// decorrelates the fleet's retry storms. The shared registry gathers
	// the whole fleet's request/retry/latency picture for the end-of-run
	// summary. The breaker is shared too — one breaker guards one server,
	// so an outage fails the whole fleet fast and recovery is a single
	// probe, not a thundering herd.
	reg := obs.NewRegistry()
	var breaker *transport.CircuitBreaker
	if !*breakerOff {
		breaker = &transport.CircuitBreaker{
			Window:           *breakerWindow,
			FailureThreshold: *breakerFails,
			Cooldown:         *breakerCooldown,
			Metrics:          reg,
		}
	}
	retry := &transport.RetryPolicy{
		MaxAttempts:   *retries,
		BaseDelay:     *retryBase,
		MaxDelay:      *retryMax,
		Jitter:        0.5,
		PerTryTimeout: *timeout,
		Seed:          *seed,
		Metrics:       reg,
		Breaker:       breaker,
	}

	if *traceOut != "" && *traceBuf <= 0 {
		log.Fatalf("fednum-client: -trace-out requires -trace-buf > 0")
	}
	var tracer *trace.Recorder
	if *traceBuf > 0 {
		tracer = trace.NewRecorder(*traceBuf)
	}

	gen, err := parseWorkload(*spec)
	if err != nil {
		log.Fatalf("fednum-client: %v", err)
	}
	root := frand.New(*seed)
	values := fixedpoint.MustCodec(*bits, 0, 1).EncodeAll(gen.Sample(root, *clients))
	truth := fixedpoint.Mean(values)

	ctx := context.Background()
	// One shared endpoint list for the whole fleet: the first client to be
	// redirected (or to fail over past a dead node) repoints everyone.
	endpoints := transport.NewEndpointList(*server)
	if endpoints.Len() == 0 {
		log.Fatalf("fednum-client: -server lists no endpoints")
	}
	admin := &transport.Admin{Endpoints: endpoints, Retry: retry, Tracer: tracer}
	if *quantileQ > 0 {
		runQuantile(ctx, admin, retry, tracer, endpoints, *feature, *bits, *eps, *quantileQ, *gridK, values, root)
		dumpTrace(tracer, *traceOut)
		return
	}
	if *adaptive {
		runAdaptive(ctx, admin, retry, tracer, endpoints, *feature, *bits, *gamma, *eps, *squash, *minCohort, values, truth, root)
		dumpTrace(tracer, *traceOut)
		return
	}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: *feature, Bits: *bits, Gamma: *gamma,
		Epsilon: *eps, SquashThreshold: *squash, MinCohort: *minCohort,
	})
	if err != nil {
		log.Fatalf("fednum-client: create session: %v", err)
	}
	log.Printf("session %s: %d clients, workload %s, b=%d, ε=%g", session, *clients, gen.Name(), *bits, *eps)

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, *parallel)
	var mu sync.Mutex
	failed := 0
	for i, v := range values {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, v uint64, rng *frand.RNG) {
			defer wg.Done()
			defer func() { <-sem }()
			p := &transport.Participant{
				Endpoints: endpoints,
				ClientID:  fmt.Sprintf("dev-%d", i),
				RNG:       rng,
				Retry:     retry,
				Metrics:   reg,
				Tracer:    tracer,
			}
			if err := p.Participate(ctx, session, v); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}(i, v, root.Split())
	}
	wg.Wait()

	res, err := admin.Finalize(ctx, session)
	if err != nil {
		log.Fatalf("fednum-client: finalize: %v", err)
	}
	fmt.Printf("reports:   %d accepted, %d failed, %.1fs\n", res.Reports, failed, time.Since(start).Seconds())
	fmt.Printf("estimate:  %.4f\n", res.Estimate)
	fmt.Printf("exact:     %.4f\n", truth)
	if truth != 0 {
		fmt.Printf("rel.error: %.3f%%\n", 100*(res.Estimate-truth)/truth)
	}
	printMetricsSummary(reg)
	dumpTrace(tracer, *traceOut)
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpTrace writes the recorded client spans as indented JSON, for offline
// inspection or feeding into fedtrace-style tooling.
func dumpTrace(rec *trace.Recorder, path string) {
	if rec == nil || path == "" {
		return
	}
	data, err := json.MarshalIndent(rec.Spans(), "", "  ")
	if err != nil {
		log.Fatalf("fednum-client: encoding trace: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("fednum-client: writing trace %s: %v", path, err)
	}
	log.Printf("fednum-client: wrote %d spans to %s", rec.Len(), path)
}

// runQuantile estimates a quantile through a threshold session: every
// client discloses one comparison bit against its assigned grid threshold.
func runQuantile(ctx context.Context, admin *transport.Admin, retry *transport.RetryPolicy, tracer *trace.Recorder, endpoints *transport.EndpointList, feature string, bits int, eps, q float64, gridK int, values []uint64, root *frand.RNG) {
	grid, err := quantile.UniformGrid(bits, gridK)
	if err != nil {
		log.Fatalf("fednum-client: %v", err)
	}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: feature, Bits: bits, Thresholds: grid, Epsilon: eps,
	})
	if err != nil {
		log.Fatalf("fednum-client: create threshold session: %v", err)
	}
	start := time.Now()
	for i, v := range values {
		p := &transport.Participant{
			Endpoints: endpoints, ClientID: fmt.Sprintf("dev-%d", i), RNG: root.Split(),
			Retry: retry, Metrics: retry.Metrics, Tracer: tracer,
		}
		if err := p.Participate(ctx, session, v); err != nil {
			log.Fatalf("fednum-client: client %d: %v", i, err)
		}
	}
	res, err := admin.Finalize(ctx, session)
	if err != nil {
		log.Fatalf("fednum-client: finalize: %v", err)
	}
	est, err := transport.TailQuantile(res, q)
	if err != nil {
		log.Fatalf("fednum-client: %v", err)
	}
	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	exact := sorted[int(q*float64(len(sorted)-1))]
	fmt.Printf("reports:   %d, %.1fs\n", res.Reports, time.Since(start).Seconds())
	fmt.Printf("q=%.2f quantile estimate: %d (grid step %d)\n", q, est, grid[1]-grid[0])
	fmt.Printf("exact:                    %d\n", exact)
	printMetricsSummary(retry.Metrics)
}

// runAdaptive drives the two-round Algorithm 2 campaign over HTTP.
func runAdaptive(ctx context.Context, admin *transport.Admin, retry *transport.RetryPolicy, tracer *trace.Recorder, endpoints *transport.EndpointList, feature string, bits int, gamma, eps, squash float64, minCohort int, values []uint64, truth float64, root *frand.RNG) {
	devices := make([]transport.Device, len(values))
	for i, v := range values {
		devices[i] = transport.Device{
			Participant: transport.Participant{
				Endpoints: endpoints,
				ClientID:  fmt.Sprintf("dev-%d", i),
				RNG:       root.Split(),
				Metrics:   retry.Metrics,
				Tracer:    tracer,
			},
			Value: v,
		}
	}
	start := time.Now()
	out, err := transport.RunAdaptiveCampaign(ctx, admin, transport.AdaptiveSpec{
		Feature: feature, Bits: bits, Gamma: gamma,
		Epsilon: eps, SquashThreshold: squash, MinCohort: minCohort,
		Retry: retry,
	}, devices, root)
	if err != nil {
		log.Fatalf("fednum-client: adaptive campaign: %v", err)
	}
	fmt.Printf("rounds:    %d + %d reports (%d devices participated), %.1fs\n",
		out.Round1.Reports, out.Round2.Reports, out.Participated, time.Since(start).Seconds())
	fmt.Printf("estimate:  %.4f\n", out.Estimate)
	fmt.Printf("exact:     %.4f\n", truth)
	if truth != 0 {
		fmt.Printf("rel.error: %.3f%%\n", 100*(out.Estimate-truth)/truth)
	}
	printMetricsSummary(retry.Metrics)
}
