// Command bitpush aggregates numbers from a file or stdin with the
// bit-pushing protocols, printing the private estimate next to the exact
// statistic. It is a one-shot, in-process driver for exploring the
// accuracy/privacy trade-off on your own data.
//
//	seq 1 10000 | bitpush -bits 14 -method adaptive -eps 2
//	bitpush -f values.txt -stat variance
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
)

func main() {
	file := flag.String("f", "", "input file of numbers, one per line (default stdin)")
	bits := flag.Int("bits", 16, "protocol bit depth; values clip to [0, 2^bits)")
	method := flag.String("method", "adaptive", "protocol: adaptive, weighted, uniform")
	gamma := flag.Float64("gamma", 1, "weighted-method exponent p_j ∝ 2^(γj)")
	eps := flag.Float64("eps", 0, "ε for randomized response (0 = no DP)")
	squash := flag.Float64("squash-multiple", 2, "bit-squashing threshold in noise multiples (DP only)")
	stat := flag.String("stat", "mean", "statistic: mean or variance")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "protocol seed")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatalf("bitpush: %v", err)
		}
		defer f.Close()
		in = f
	}
	raw, err := readValues(in)
	if err != nil {
		log.Fatalf("bitpush: %v", err)
	}
	if len(raw) < 4 {
		log.Fatalf("bitpush: need at least 4 values, got %d", len(raw))
	}

	codec := fixedpoint.MustCodec(*bits, 0, 1)
	values := codec.EncodeAll(raw)
	clipped := 0
	for _, v := range raw {
		if codec.Clipped(v) {
			clipped++
		}
	}

	var rr *ldp.RandomizedResponse
	if *eps > 0 {
		if rr, err = ldp.NewRandomizedResponse(*eps); err != nil {
			log.Fatalf("bitpush: %v", err)
		}
	}
	r := frand.New(*seed)

	var estimate, exact float64
	switch *stat {
	case "mean":
		estimate, err = estimateMean(*method, *gamma, *bits, rr, *squash, values, r)
		exact = fixedpoint.Mean(values)
	case "variance":
		estimate, err = core.EstimateVariance(core.VarianceConfig{
			Bits:     *bits,
			Adaptive: core.AdaptiveConfig{RR: rr, SquashMultiple: squashFor(rr, *squash)},
		}, values, r)
		exact = fixedpoint.Variance(values)
	default:
		log.Fatalf("bitpush: unknown stat %q", *stat)
	}
	if err != nil {
		log.Fatalf("bitpush: %v", err)
	}

	fmt.Printf("clients:   %d (%d clipped to %d bits)\n", len(values), clipped, *bits)
	fmt.Printf("bits sent: 1 per client")
	if rr != nil {
		fmt.Printf(", randomized response ε=%g", *eps)
	}
	fmt.Println()
	fmt.Printf("private %s estimate: %.6g\n", *stat, estimate)
	fmt.Printf("exact   %s:          %.6g\n", *stat, exact)
	if exact != 0 {
		fmt.Printf("relative error:        %.3f%%\n", 100*(estimate-exact)/exact)
	}
}

func squashFor(rr *ldp.RandomizedResponse, multiple float64) float64 {
	if rr == nil {
		return 0
	}
	return multiple
}

func estimateMean(method string, gamma float64, bits int, rr *ldp.RandomizedResponse, squash float64, values []uint64, r *frand.RNG) (float64, error) {
	switch method {
	case "adaptive":
		res, err := core.RunAdaptive(core.AdaptiveConfig{
			Bits: bits, RR: rr, SquashMultiple: squashFor(rr, squash),
		}, values, r)
		if err != nil {
			return 0, err
		}
		return res.Estimate, nil
	case "weighted", "uniform":
		var probs []float64
		var err error
		if method == "uniform" {
			probs, err = core.UniformProbs(bits)
		} else {
			probs, err = core.GeometricProbs(bits, gamma)
		}
		if err != nil {
			return 0, err
		}
		res, err := core.Run(core.Config{
			Bits: bits, Probs: probs, RR: rr, SquashMultiple: squashFor(rr, squash),
		}, values, r)
		if err != nil {
			return 0, err
		}
		return res.Estimate, nil
	default:
		return 0, fmt.Errorf("unknown method %q", method)
	}
}

func readValues(in io.Reader) ([]float64, error) {
	var out []float64
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
