package main

import (
	"strings"
	"testing"

	"repro/internal/frand"
)

func TestReadValues(t *testing.T) {
	in := strings.NewReader("1\n2.5\n\n# comment\n  7  \n-3\n")
	got, err := readValues(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 7, -3}
	if len(got) != len(want) {
		t.Fatalf("readValues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("readValues[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadValuesBadInput(t *testing.T) {
	if _, err := readValues(strings.NewReader("1\nnope\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestReadValuesEmpty(t *testing.T) {
	got, err := readValues(strings.NewReader("# only comments\n\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestEstimateMeanMethods(t *testing.T) {
	values := make([]uint64, 2000)
	for i := range values {
		values[i] = uint64(i % 256)
	}
	for _, method := range []string{"adaptive", "weighted", "uniform"} {
		est, err := estimateMean(method, 1, 8, nil, 2, values, newTestRNG())
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		// True mean is 127.5; one protocol round over 2000 clients should
		// be in the right region for every method.
		if est < 100 || est > 155 {
			t.Errorf("%s estimate %v, want ~127.5", method, est)
		}
	}
	if _, err := estimateMean("nope", 1, 8, nil, 2, values, newTestRNG()); err == nil {
		t.Error("unknown method accepted")
	}
}

func newTestRNG() *frand.RNG { return frand.New(7) }
