// Command fedsim simulates a multi-day federated-analytics deployment —
// the §4.3 operating scenario: every day the coordinator runs a
// multi-feature campaign over a device fleet with dropout and stragglers,
// under ε-LDP and privacy metering, while the upper-bound tracker and
// poisoning detector watch for trouble. Midway through, the simulation
// injects the two §4.3 incidents: a misconfiguration that inflates one
// metric by orders of magnitude (federated debugging), and a byzantine
// cohort that attacks another.
//
//	fedsim -days 14 -clients 20000 -eps 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/federated"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

const bits = 16

// metricSpec defines one monitored metric's healthy behaviour.
type metricSpec struct {
	name string
	gen  workload.Generator
}

func main() {
	days := flag.Int("days", 14, "days to simulate")
	clients := flag.Int("clients", 20000, "fleet size")
	eps := flag.Float64("eps", 2, "per-collection ε (0 disables DP)")
	dropout := flag.Float64("dropout", 0.2, "per-round dropout rate")
	incidentDay := flag.Int("incident-day", 8, "day the incidents start (0 disables)")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "simulation seed")
	server := flag.String("server", "", "run the campaign against live fednumd processes at this comma-separated endpoint list (first healthy wins, not_primary redirects follow the leader hint) instead of in-process; the byzantine cohort is in-process only")
	parallel := flag.Int("parallel", 64, "concurrent clients in -server mode")
	flag.Parse()

	rng := frand.New(*seed)
	metrics := []metricSpec{
		{"startup_ms", workload.Normal{Mu: 900, Sigma: 150}},
		{"cache_hits", workload.Normal{Mu: 4000, Sigma: 600}},
		{"crash_count", workload.Exponential{Mean: 3}},
	}
	features := make([]string, len(metrics))
	for i, m := range metrics {
		features[i] = m.name
	}

	if *server != "" {
		runLive(rng, metrics, *server, *days, *clients, *eps, *dropout, *incidentDay, *parallel, *seed)
		return
	}

	var rr *ldp.RandomizedResponse
	if *eps > 0 {
		var err error
		if rr, err = ldp.NewRandomizedResponse(*eps); err != nil {
			log.Fatalf("fedsim: %v", err)
		}
	}
	// One registry spans the whole simulation: the coordinator's round
	// outcomes and the privacy meter's running totals land in the same
	// place a deployment would scrape.
	reg := obs.NewRegistry()
	ledger := meter.NewLedger(meter.Policy{MaxBitsPerValue: 1, MaxEpsilon: float64(*days+1) * (*eps) * float64(len(metrics))})
	ledger.SetMetrics(reg)
	co, err := federated.NewCoordinator(federated.Config{
		Bits: bits, RR: rr, SquashThreshold: squashFor(rr),
		DropoutRate: *dropout, StragglerRate: 0.05, StragglerDelay: 20, RoundDeadline: 12,
		MinCohort: 500, Ledger: ledger, Metrics: reg, Seed: rng.Uint64(),
	})
	if err != nil {
		log.Fatalf("fedsim: %v", err)
	}

	trackers := make(map[string]*core.BoundTracker, len(metrics))
	for _, m := range metrics {
		trackers[m.name] = core.NewBoundTracker(4, 3)
	}
	codec := fixedpoint.MustCodec(bits, 0, 1)

	fmt.Printf("fedsim: %d devices, %d days, ε=%g, dropout %.0f%%, incidents on day %d\n\n",
		*clients, *days, *eps, 100**dropout, *incidentDay)
	fmt.Printf("%-4s %-12s %12s %10s %9s %8s  %s\n",
		"day", "metric", "estimate", "±95% CI", "accepted", "latency", "alerts")

	for day := 1; day <= *days; day++ {
		population := buildFleet(rng, metrics, *clients, day, *incidentDay, codec)
		res, err := co.RunCampaign(population, features)
		if err != nil {
			log.Fatalf("fedsim: day %d: %v", day, err)
		}
		for _, name := range res.Order {
			fr := res.Results[name]
			if fr.Err != nil {
				fmt.Printf("%-4d %-12s %12s\n", day, name, "FAILED: "+fr.Err.Error())
				continue
			}
			mean := fr.Mean
			iv, err := core.ConfidenceInterval(&mean.Result, rr, 1.96)
			if err != nil {
				log.Fatalf("fedsim: %v", err)
			}
			alerts := ""
			if trackers[name].Observe(&mean.Result) {
				alerts += "MAGNITUDE-SHIFT "
			}
			if mean.Round1.SelectionAnomalous(5) || mean.Round2.SelectionAnomalous(5) {
				alerts += "SELECTION-ANOMALY "
			}
			if iso := mean.IsolatedActiveBits(3, 0.01); len(iso) > 0 {
				alerts += fmt.Sprintf("ISOLATED-BIT%v ", iso)
			}
			rejected := mean.Round1.Stats.Rejected + mean.Round2.Stats.Rejected
			if rejected > 0 {
				alerts += fmt.Sprintf("REJECTED=%d ", rejected)
			}
			accepted := mean.Round1.Stats.Accepted + mean.Round2.Stats.Accepted
			latency := mean.Round1.Stats.Latency + mean.Round2.Stats.Latency
			fmt.Printf("%-4d %-12s %12.1f %10.1f %9d %7.1fm  %s\n",
				day, name, mean.Estimate, iv.Width()/2, accepted, latency, alerts)
		}
		fmt.Println()
	}
	fmt.Printf("privacy: client-0 spent ε=%.1f across %d days (1 bit per metric per day, metered)\n",
		ledger.EpsilonSpent("client-0"), *days)

	// One-line registry summary: total per-client requests the campaign
	// made, the simulated round-latency distribution, and the resilience
	// counters (zero in-process — the line keeps the same shape as
	// fednum-client's so dashboards can treat both uniformly).
	outcomes := reg.CounterVec(federated.MetricReports, "", "result")
	requests := uint64(0)
	for _, result := range []string{"accepted", "dropped", "straggler", "abstained", "rejected", "denied"} {
		requests += outcomes.With(result).Value()
	}
	lat := reg.Histogram(federated.MetricRoundLatency, "", nil)
	fmt.Printf("metrics: %d requests (%d accepted, %d denied), round latency p50=%.1fm p99=%.1fm, %d retries, %d duplicates\n",
		requests, outcomes.With("accepted").Value(), outcomes.With("denied").Value(),
		lat.Quantile(0.5), lat.Quantile(0.99),
		reg.Counter(transport.MetricClientRetries, "").Value(),
		reg.Counter(transport.MetricClientDuplicateAcks, "").Value())
}

// buildFleet draws the day's metric values, injecting the incidents after
// incidentDay: startup_ms jumps two orders of magnitude (a shipped
// misconfiguration) and cache_hits gains a byzantine cohort.
func buildFleet(rng *frand.RNG, metrics []metricSpec, clients, day, incidentDay int, codec *fixedpoint.Codec) []federated.Client {
	population := make([]federated.Client, 0, clients+clients/50)
	values := dayValues(rng, metrics, clients, day, incidentDay, codec)
	for i := 0; i < clients; i++ {
		vals := make(map[string][]uint64, len(metrics))
		for name := range values {
			vals[name] = []uint64{values[name][i]}
		}
		population = append(population, &federated.SimClient{
			Name:   fmt.Sprintf("client-%d", i),
			Values: vals,
		})
	}
	if incidentDay > 0 && day >= incidentDay {
		// 2% byzantine cohort attacking cache_hits' top bit.
		for i := 0; i < clients/50; i++ {
			population = append(population, &federated.ByzantineClient{
				Name: fmt.Sprintf("byz-%d", i), TargetBit: bits - 1,
			})
		}
	}
	return population
}

// dayValues draws one day's fixed-point value per client per metric,
// applying the startup_ms misconfiguration incident after incidentDay.
// Both the in-process fleet and -server live mode sample from here, so
// the incident is visible either way.
func dayValues(rng *frand.RNG, metrics []metricSpec, clients, day, incidentDay int, codec *fixedpoint.Codec) map[string][]uint64 {
	values := make(map[string][]uint64, len(metrics))
	for _, m := range metrics {
		gen := m.gen
		if incidentDay > 0 && day >= incidentDay && m.name == "startup_ms" {
			gen = workload.Normal{Mu: 45000, Sigma: 5000} // misconfiguration ships
		}
		values[m.name] = codec.EncodeAll(gen.Sample(rng, clients))
	}
	return values
}

// runLive drives the same daily campaign against live fednumd processes:
// one aggregation session per metric per day, a concurrent device fleet
// submitting over HTTP, dropout applied client-side. The endpoint list is
// shared by every device and the admin, so a mid-campaign failover (a
// standby answering not_primary with a leader hint, or a dead node) is
// absorbed once and the whole fleet follows the new primary.
func runLive(rng *frand.RNG, metrics []metricSpec, server string, days, clients int, eps, dropout float64, incidentDay, parallel int, seed uint64) {
	endpoints := transport.NewEndpointList(server)
	if endpoints.Len() == 0 {
		log.Fatalf("fedsim: -server lists no endpoints")
	}
	reg := obs.NewRegistry()
	retry := &transport.RetryPolicy{
		MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second,
		Jitter: 0.5, PerTryTimeout: 10 * time.Second, Seed: seed, Metrics: reg,
	}
	admin := &transport.Admin{Endpoints: endpoints, Retry: retry}
	codec := fixedpoint.MustCodec(bits, 0, 1)
	ctx := context.Background()

	fmt.Printf("fedsim: %d devices, %d days, ε=%g, dropout %.0f%%, live against %v\n\n",
		clients, days, eps, 100*dropout, endpoints.URLs())
	fmt.Printf("%-4s %-12s %12s %12s %9s %7s\n", "day", "metric", "estimate", "exact", "accepted", "failed")
	for day := 1; day <= days; day++ {
		values := dayValues(rng, metrics, clients, day, incidentDay, codec)
		for _, m := range metrics {
			session, err := admin.CreateSession(ctx, wire.SessionConfig{
				Feature: fmt.Sprintf("%s-day%d", m.name, day), Bits: bits, Gamma: 1, Epsilon: eps,
			})
			if err != nil {
				log.Fatalf("fedsim: day %d %s: create session: %v", day, m.name, err)
			}
			var wg sync.WaitGroup
			sem := make(chan struct{}, parallel)
			var mu sync.Mutex
			failed := 0
			for i, v := range values[m.name] {
				if rng.Float64() < dropout {
					continue
				}
				wg.Add(1)
				sem <- struct{}{}
				go func(i int, v uint64, devRNG *frand.RNG) {
					defer wg.Done()
					defer func() { <-sem }()
					p := &transport.Participant{
						Endpoints: endpoints,
						ClientID:  fmt.Sprintf("client-%d", i),
						RNG:       devRNG,
						Retry:     retry,
						Metrics:   reg,
					}
					if err := p.Participate(ctx, session, v); err != nil {
						mu.Lock()
						failed++
						mu.Unlock()
					}
				}(i, v, rng.Split())
			}
			wg.Wait()
			res, err := admin.Finalize(ctx, session)
			if err != nil {
				log.Fatalf("fedsim: day %d %s: finalize: %v", day, m.name, err)
			}
			fmt.Printf("%-4d %-12s %12.4f %12.4f %9d %7d\n",
				day, m.name, res.Estimate, fixedpoint.Mean(values[m.name]), res.Reports, failed)
		}
		fmt.Println()
	}
	lat := reg.Histogram(transport.MetricClientAttemptTime, "", obs.LatencyBuckets)
	fmt.Printf("metrics: %d requests, p50=%.0fms p99=%.0fms, %d retries, %d duplicate acks\n",
		reg.Counter(transport.MetricClientAttempts, "").Value(),
		1000*lat.Quantile(0.5), 1000*lat.Quantile(0.99),
		reg.Counter(transport.MetricClientRetries, "").Value(),
		reg.Counter(transport.MetricClientDuplicateAcks, "").Value())
}

func squashFor(rr *ldp.RandomizedResponse) float64 {
	if rr == nil {
		return 0
	}
	return 0.02
}
