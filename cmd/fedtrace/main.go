// Command fedtrace renders fednumd's debug tracing endpoints for humans:
// the per-round lifecycle timelines at /debug/rounds and the span ring at
// /debug/trace (both served when the daemon runs with -trace-buf > 0).
//
// Usage:
//
//	fedtrace -addr http://localhost:6061                  # list sessions with timelines
//	fedtrace -addr ... -session s-1                       # one round's event timeline + stage breakdown
//	fedtrace -addr ... -trace 4bf92f3577b34da6a3ce929d0e0e4736  # one trace as a span tree
//	fedtrace -addr ... -trace ... -min-ms 5               # only spans >= 5ms
//
// The timeline view replays a session's story in order — creation, task
// assignments, each report's fate, WAL commit latency, injected chaos
// faults, the straggler deadline, finalize, estimate — and closes with a
// per-stage latency breakdown (setup, assignment window, reporting
// window, finalize fan-in) plus WAL and fault aggregates. The trace view
// reconstructs the parent/child span tree, marking spans whose parent
// lives on the other side of the wire (the client's attempt span for a
// server request span, or vice versa).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "http://localhost:6061", "base URL of fednumd's debug listener")
	session := flag.String("session", "", "render this session's round timeline")
	traceID := flag.String("trace", "", "render this trace id as a span tree")
	minMS := flag.Float64("min-ms", 0, "with -trace: hide spans shorter than this many milliseconds")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	var err error
	switch {
	case *session != "" && *traceID != "":
		fmt.Fprintln(os.Stderr, "fedtrace: -session and -trace are mutually exclusive")
		os.Exit(2)
	case *session != "":
		err = renderSession(base, *session)
	case *traceID != "":
		err = renderTrace(base, *traceID, *minMS)
	default:
		err = listSessions(base)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedtrace: %v\n", err)
		os.Exit(1)
	}
}

// fetchJSON GETs url and decodes the body into out.
func fetchJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s (is fednumd running with -trace-buf > 0?)", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("GET %s: decoding: %w", url, err)
	}
	return nil
}

func listSessions(base string) error {
	var sessions []transport.RoundSummary
	if err := fetchJSON(base+"/debug/rounds", &sessions); err != nil {
		return err
	}
	if len(sessions) == 0 {
		fmt.Println("no round timelines recorded")
		return nil
	}
	fmt.Printf("%-20s %7s %8s  %s\n", "SESSION", "EVENTS", "DROPPED", "LAST EVENT")
	for _, s := range sessions {
		fmt.Printf("%-20s %7d %8d  %s\n",
			s.SessionID, s.Events, s.Dropped, s.LastEvent.Format(time.RFC3339Nano))
	}
	return nil
}

func renderSession(base, session string) error {
	var tl transport.RoundTimeline
	if err := fetchJSON(base+"/debug/rounds/"+session, &tl); err != nil {
		return err
	}
	if len(tl.Events) == 0 {
		return fmt.Errorf("session %s has an empty timeline", session)
	}
	fmt.Printf("session %s: %d events", tl.SessionID, len(tl.Events))
	if tl.Dropped > 0 {
		fmt.Printf(" (%d older events overwritten)", tl.Dropped)
	}
	fmt.Println()

	t0 := tl.Events[0].At
	for _, ev := range tl.Events {
		line := fmt.Sprintf("  %+10.2fms  %-18s", msBetween(t0, ev.At), ev.Kind)
		if ev.Client != "" {
			line += " client=" + ev.Client
		}
		if ev.Reason != "" {
			line += " reason=" + ev.Reason
		}
		if ev.DurationMS > 0 {
			line += fmt.Sprintf(" took=%.2fms", ev.DurationMS)
		}
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Println(line)
	}
	renderStages(tl.Events)
	return nil
}

// renderStages summarizes the round as per-stage latencies: how long setup,
// the assignment window, the reporting window, and the finalize fan-in
// took, plus WAL-commit and chaos-fault aggregates.
func renderStages(events []transport.RoundEvent) {
	var created, firstAssign, lastAssign, firstReport, lastReport, finalized, estimated time.Time
	var deadlined, expired time.Time
	var assigns, accepts, dups, rejects, ratelimits, sheds, promotes int
	var walCount int
	var walSum, walMax float64
	faults := map[string]int{}
	for _, ev := range events {
		switch ev.Kind {
		case transport.RoundSessionCreate:
			created = ev.At
		case transport.RoundTaskAssign:
			assigns++
			if firstAssign.IsZero() {
				firstAssign = ev.At
			}
			lastAssign = ev.At
		case transport.RoundReportAccept:
			accepts++
			if firstReport.IsZero() {
				firstReport = ev.At
			}
			lastReport = ev.At
		case transport.RoundReportDuplicate:
			dups++
		case transport.RoundReportReject:
			rejects++
		case transport.RoundReportRatelimit:
			ratelimits++
		case transport.RoundShed:
			sheds++
		case transport.RoundWALCommit:
			walCount++
			walSum += ev.DurationMS
			if ev.DurationMS > walMax {
				walMax = ev.DurationMS
			}
		case transport.RoundChaosFault:
			faults[ev.Reason]++
		case transport.RoundFinalize:
			finalized = ev.At
		case transport.RoundEstimate:
			estimated = ev.At
		case transport.RoundDeadline:
			deadlined = ev.At
		case transport.RoundExpire:
			expired = ev.At
		case transport.RoundPromote:
			promotes++
		}
	}

	fmt.Println("\nstage breakdown:")
	stage := func(name string, from, to time.Time) {
		// A negative gap means the windows interleaved (a concurrent
		// fleet reports while later tasks are still being assigned) or
		// the ring clipped the early events; skip rather than mislead.
		if from.IsZero() || to.IsZero() || to.Before(from) {
			return
		}
		fmt.Printf("  %-34s %10.2fms\n", name, msBetween(from, to))
	}
	stage("create -> first assignment", created, firstAssign)
	stage(fmt.Sprintf("assignment window (%d tasks)", assigns), firstAssign, lastAssign)
	stage("last assignment -> first report", lastAssign, firstReport)
	stage(fmt.Sprintf("reporting window (%d accepted)", accepts), firstReport, lastReport)
	stage("last report -> finalize", lastReport, finalized)
	stage("straggler deadline -> finalize", deadlined, finalized)
	stage("finalize -> estimate", finalized, estimated)
	if !created.IsZero() && !estimated.IsZero() {
		stage("total (create -> estimate)", created, estimated)
	}
	if !deadlined.IsZero() || !expired.IsZero() || promotes > 0 {
		var parts []string
		if !deadlined.IsZero() {
			parts = append(parts, "straggler deadline fired")
		}
		if promotes > 0 {
			parts = append(parts, fmt.Sprintf("%d failover takeover(s)", promotes))
		}
		if !expired.IsZero() {
			parts = append(parts, "session expired")
		}
		fmt.Printf("  lifecycle: %s\n", strings.Join(parts, ", "))
	}

	if dups+rejects+ratelimits+sheds > 0 {
		fmt.Printf("  report fates beyond accept: %d duplicate, %d rejected, %d ratelimited, %d shed\n",
			dups, rejects, ratelimits, sheds)
	}
	if walCount > 0 {
		fmt.Printf("  wal commits: %d, mean %.2fms, max %.2fms\n", walCount, walSum/float64(walCount), walMax)
	}
	if len(faults) > 0 {
		classes := make([]string, 0, len(faults))
		for class := range faults {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, class := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", class, faults[class]))
		}
		fmt.Printf("  injected faults: %s\n", strings.Join(parts, " "))
	}
}

func renderTrace(base, traceID string, minMS float64) error {
	url := fmt.Sprintf("%s/debug/trace?trace=%s", base, traceID)
	if minMS > 0 {
		url += fmt.Sprintf("&min_ms=%g", minMS)
	}
	var resp trace.TraceResponse
	if err := fetchJSON(url, &resp); err != nil {
		return err
	}
	if len(resp.Spans) == 0 {
		return fmt.Errorf("no spans recorded for trace %s (ring dropped %d)", traceID, resp.Dropped)
	}

	byID := make(map[string]trace.SpanData, len(resp.Spans))
	children := make(map[string][]trace.SpanData)
	for _, sp := range resp.Spans {
		byID[sp.SpanID] = sp
	}
	var roots []trace.SpanData
	for _, sp := range resp.Spans {
		if _, ok := byID[sp.Parent]; sp.Parent != "" && ok {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(spans []trace.SpanData) {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	fmt.Printf("trace %s: %d spans (ring dropped %d)\n", traceID, resp.Total, resp.Dropped)
	var walk func(sp trace.SpanData, depth int)
	walk = func(sp trace.SpanData, depth int) {
		line := fmt.Sprintf("  %s%-*s %8.2fms", strings.Repeat("  ", depth), 36-2*depth, sp.Name, sp.DurationMS)
		for _, a := range sp.Attrs {
			line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if sp.Parent != "" {
			if _, local := byID[sp.Parent]; !local {
				line += " (remote parent " + sp.Parent + ")"
			}
		}
		fmt.Println(line)
		for _, c := range children[sp.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return nil
}

func msBetween(from, to time.Time) float64 {
	return float64(to.Sub(from).Nanoseconds()) / 1e6
}
