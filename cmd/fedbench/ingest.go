package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// fedbench -ingest: an ingestion load generator for the report path. It
// drives a swarm of concurrent submitters against a fednumd — a live
// one via -ingest-url, or an in-process server on a real loopback
// listener by default — sweeping submitter count × batch size ×
// JSON-vs-binary codec, and reports sustained reports/sec plus request
// latency percentiles per grid cell as JSON.
//
// Each cell gets a fresh session and a pool of pre-assigned clients
// (assignment cost is setup, not measurement). The swarm then submits
// continuously for the measurement window: the first pass over the pool
// accepts every report, later passes re-ack as duplicates — both paths
// run the full acceptance machine, and the accepted/duplicate split is
// reported so the two regimes stay distinguishable.

// ingestOptions configures one load-generator run.
type ingestOptions struct {
	// TargetURL is a running fednumd's base URL; empty starts an
	// in-process server (seeded with Seed) on a loopback listener.
	TargetURL string
	// Duration is the measurement window per grid cell.
	Duration time.Duration
	// Short selects the calibration grid: one small cell per codec, for
	// CI smoke coverage rather than steady-state numbers.
	Short bool
	Seed  uint64
}

// ingestCell is one grid cell's measurement.
type ingestCell struct {
	Codec         string  `json:"codec"`   // "json" or "binary"
	Clients       int     `json:"clients"` // concurrent submitters
	Batch         int     `json:"batch"`   // reports per request (1 on the JSON codec)
	Requests      uint64  `json:"requests"`
	Reports       uint64  `json:"reports"`
	Accepted      uint64  `json:"accepted"`
	Duplicate     uint64  `json:"duplicate"`
	Seconds       float64 `json:"seconds"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP90  float64 `json:"latency_ms_p90"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
}

// ingestSummary is the machine-readable output of -ingest.
type ingestSummary struct {
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Target     string       `json:"target"`
	Short      bool         `json:"short,omitempty"`
	Cells      []ingestCell `json:"cells"`
	// BinaryVsJSONSpeedup compares the best batched-binary cell against
	// the best single-report JSON cell at the same submitter count:
	// sustained reports/sec ratio.
	BinaryVsJSONSpeedup float64 `json:"binary_vs_json_speedup"`
}

// ingestClient is one pre-assigned pool member.
type ingestClient struct {
	id  string
	bit int
}

func runIngest(opts ingestOptions, out io.Writer, jsonPath string) error {
	base := opts.TargetURL
	target := base
	if base == "" {
		srv := httptest.NewServer(transport.NewServer(opts.Seed))
		defer srv.Close()
		base = srv.URL
		target = "in-process"
	}
	type cellSpec struct {
		codec   string
		clients int
		batch   int
	}
	var grid []cellSpec
	if opts.Short {
		grid = []cellSpec{
			{"json", 4, 1},
			{"binary", 4, 256},
		}
	} else {
		for _, c := range []int{1, 4, 16} {
			grid = append(grid, cellSpec{"json", c, 1})
		}
		for _, c := range []int{1, 4, 16} {
			for _, b := range []int{16, 128, 512} {
				grid = append(grid, cellSpec{"binary", c, b})
			}
		}
	}
	sum := &ingestSummary{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Target:     target,
		Short:      opts.Short,
	}
	for _, spec := range grid {
		cell, err := runIngestCell(base, spec.codec, spec.clients, spec.batch, opts.Duration)
		if err != nil {
			return fmt.Errorf("ingest cell %s/c%d/b%d: %w", spec.codec, spec.clients, spec.batch, err)
		}
		sum.Cells = append(sum.Cells, *cell)
		fmt.Fprintf(out, "%-6s clients=%-3d batch=%-4d  %10.0f reports/s  p50 %.2fms  p99 %.2fms\n",
			cell.Codec, cell.Clients, cell.Batch, cell.ReportsPerSec, cell.LatencyMsP50, cell.LatencyMsP99)
	}
	sum.BinaryVsJSONSpeedup = ingestSpeedup(sum.Cells)
	fmt.Fprintf(out, "batched binary vs single-report JSON: %.1fx\n", sum.BinaryVsJSONSpeedup)
	if jsonPath != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ingestSpeedup compares the best binary and JSON cells sharing the
// highest common submitter count.
func ingestSpeedup(cells []ingestCell) float64 {
	best := map[string]map[int]float64{"json": {}, "binary": {}}
	for _, c := range cells {
		if c.ReportsPerSec > best[c.Codec][c.Clients] {
			best[c.Codec][c.Clients] = c.ReportsPerSec
		}
	}
	speedup, clients := 0.0, -1
	for n, j := range best["json"] {
		if b, ok := best["binary"][n]; ok && j > 0 && n > clients {
			clients, speedup = n, b/j
		}
	}
	return speedup
}

// runIngestCell measures one grid cell: set up a fresh session and an
// assigned client pool, then run the swarm for the window.
func runIngestCell(base, codec string, clients, batch int, window time.Duration) (*ingestCell, error) {
	ctx := context.Background()
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
	defer hc.CloseIdleConnections()
	admin := &transport.Admin{BaseURL: base, HTTPClient: hc}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: fmt.Sprintf("ingest-%s-c%d-b%d", codec, clients, batch),
		Bits:    8, Gamma: 1,
	})
	if err != nil {
		return nil, err
	}
	// Pool: one batch worth of unique clients per submitter, tasks
	// assigned before the clock starts.
	pools := make([][]ingestClient, clients)
	var pg sync.WaitGroup
	perr := make(chan error, clients)
	for w := 0; w < clients; w++ {
		pg.Add(1)
		go func(w int) {
			defer pg.Done()
			pool := make([]ingestClient, 0, batch)
			for k := 0; k < batch; k++ {
				id := fmt.Sprintf("%s-c%d-b%d-w%d-k%d", codec, clients, batch, w, k)
				p := &transport.Participant{BaseURL: base, ClientID: id, HTTPClient: hc}
				task, err := p.FetchTask(ctx, session)
				if err != nil {
					perr <- err
					return
				}
				pool = append(pool, ingestClient{id: id, bit: task.Bit})
			}
			pools[w] = pool
		}(w)
	}
	pg.Wait()
	close(perr)
	for err := range perr {
		return nil, err
	}
	// Swarm: every submitter loops over its pool until the deadline.
	type workerStats struct {
		requests, reports, accepted, duplicate uint64
		lat                                    []float64 // milliseconds per request
	}
	stats := make([]workerStats, clients)
	deadline := time.Now().Add(window)
	start := time.Now()
	var wg sync.WaitGroup
	werr := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			pool := pools[w]
			if codec == "binary" {
				br := &transport.BinaryReporter{BaseURL: base, HTTPClient: hc}
				for time.Now().Before(deadline) {
					for _, c := range pool {
						if err := br.Add(c.id, c.bit, 1); err != nil {
							werr <- err
							return
						}
					}
					t0 := time.Now()
					acks, err := br.Flush(ctx, session)
					if err != nil {
						werr <- err
						return
					}
					st.lat = append(st.lat, float64(time.Since(t0).Microseconds())/1000)
					st.requests++
					st.reports += uint64(len(acks))
					for _, a := range acks {
						switch a {
						case wire.AckAccepted:
							st.accepted++
						case wire.AckDuplicate:
							st.duplicate++
						case wire.AckInvalidValue, wire.AckNoTask, wire.AckWrongBit, wire.AckConflict:
							werr <- fmt.Errorf("swarm report rejected: %v", a)
							return
						}
					}
				}
				return
			}
			p := &transport.Participant{BaseURL: base, ClientID: "swarm", HTTPClient: hc}
			i := 0
			for time.Now().Before(deadline) {
				c := pool[i%len(pool)]
				i++
				t0 := time.Now()
				ack, err := p.SubmitReport(ctx, session, wire.Report{ClientID: c.id, Bit: c.bit, Value: 1})
				if err != nil {
					werr <- err
					return
				}
				st.lat = append(st.lat, float64(time.Since(t0).Microseconds())/1000)
				st.requests++
				st.reports++
				switch {
				case ack.Duplicate:
					st.duplicate++
				case ack.Accepted:
					st.accepted++
				default:
					werr <- fmt.Errorf("swarm report rejected: %s", ack.Reason)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(werr)
	for err := range werr {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	cell := &ingestCell{Codec: codec, Clients: clients, Batch: batch, Seconds: elapsed}
	var lat []float64
	for i := range stats {
		cell.Requests += stats[i].requests
		cell.Reports += stats[i].reports
		cell.Accepted += stats[i].accepted
		cell.Duplicate += stats[i].duplicate
		lat = append(lat, stats[i].lat...)
	}
	if elapsed > 0 {
		cell.ReportsPerSec = float64(cell.Reports) / elapsed
	}
	sort.Float64s(lat)
	cell.LatencyMsP50 = percentile(lat, 0.50)
	cell.LatencyMsP90 = percentile(lat, 0.90)
	cell.LatencyMsP99 = percentile(lat, 0.99)
	return cell, nil
}

// percentile reads the p-quantile off a sorted sample, 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
