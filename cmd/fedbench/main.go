// Command fedbench regenerates the paper's evaluation: every figure
// (1a-4c) plus the text-claim and ablation experiments, as aligned tables
// on stdout and optionally CSV files.
//
// Usage:
//
//	fedbench -all                      # every registered experiment
//	fedbench -fig 1a -fig 3b           # specific figures
//	fedbench -all -reps 20 -seed 7     # faster, still deterministic
//	fedbench -all -csv results/        # also write one CSV per figure
//	fedbench -all -workers 8           # parallel grid execution
//	fedbench -fig 1a -bench-json BENCH.json  # serial-vs-parallel baseline
//
// The engine derives every grid cell's randomness from (seed, cell index),
// so output is bit-identical at any -workers setting. -cpuprofile and
// -memprofile write pprof profiles of the run; -bench-json times each
// figure serially and in parallel and writes a machine-readable summary
// (wall time, cells/sec, allocations, speedup).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

type figList []string

func (f *figList) String() string { return fmt.Sprint(*f) }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to run (repeatable); see -list")
	all := flag.Bool("all", false, "run every registered experiment")
	list := flag.Bool("list", false, "list experiment ids and exit")
	reps := flag.Int("reps", 100, "repetitions per point (paper uses 100)")
	n := flag.Int("n", 0, "override the default client population size")
	seed := flag.Uint64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files into")
	workers := flag.Int("workers", 0, "grid-cell worker goroutines (0 = GOMAXPROCS; output is identical at any setting)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := flag.String("bench-json", "", "time each figure serially and in parallel and write a JSON benchmark summary to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Registry[id].Description)
		}
		return
	}
	if *all {
		figs = experiments.IDs()
	}
	if len(figs) == 0 {
		fmt.Fprintln(os.Stderr, "fedbench: nothing to run; use -all, -fig <id> or -list")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("creating cpu profile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.Options{Reps: *reps, N: *n, Seed: *seed, Workers: *workers}
	if *benchJSON != "" {
		if err := runBench(*benchJSON, figs, opts); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, id := range figs {
			start := time.Now()
			result, err := experiments.Run(id, opts)
			if err != nil {
				fatalf("figure %s: %v", id, err)
			}
			if err := result.WriteTable(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("(%d reps, %.1fs)\n\n", opts.Reps, time.Since(start).Seconds())
			if *csvDir != "" {
				if err := writeCSV(*csvDir, result); err != nil {
					fatalf("%v", err)
				}
			}
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("creating mem profile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("writing mem profile: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedbench: "+format+"\n", args...)
	os.Exit(1)
}

func writeCSV(dir string, result *experiments.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+result.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := result.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// benchFigure is one figure's serial-vs-parallel measurement.
type benchFigure struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Cells           uint64  `json:"cells"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	SerialMallocs   uint64  `json:"serial_mallocs"`
	ParallelMallocs uint64  `json:"parallel_mallocs"`
	Deterministic   bool    `json:"deterministic"`
}

// benchSummary is the machine-readable baseline -bench-json writes.
type benchSummary struct {
	GoVersion            string        `json:"go_version"`
	NumCPU               int           `json:"num_cpu"`
	GoMaxProcs           int           `json:"gomaxprocs"`
	Workers              int           `json:"workers"`
	Reps                 int           `json:"reps"`
	N                    int           `json:"n,omitempty"`
	Seed                 uint64        `json:"seed"`
	Note                 string        `json:"note,omitempty"`
	Figures              []benchFigure `json:"figures"`
	TotalSerialSeconds   float64       `json:"total_serial_seconds"`
	TotalParallelSeconds float64       `json:"total_parallel_seconds"`
	Speedup              float64       `json:"speedup"`
}

// runBench times every requested figure twice — Workers:1 and the
// configured parallel worker count — verifies the two results are
// identical, and writes the summary JSON. The parallel timing uses a
// metrics registry to report executed cells and throughput.
func runBench(path string, figs []string, opts experiments.Options) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sum := benchSummary{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Reps:       opts.Reps,
		N:          opts.N,
		Seed:       opts.Seed,
	}
	if runtime.NumCPU() < 2 {
		sum.Note = "single-CPU host: parallel timings cannot show speedup; rerun on a multi-core machine for the throughput figure"
	}
	for _, id := range figs {
		serialOpts := opts
		serialOpts.Workers = 1
		serialRes, serialSec, serialMallocs, err := timedRun(id, serialOpts)
		if err != nil {
			return fmt.Errorf("figure %s (serial): %w", id, err)
		}
		reg := obs.NewRegistry()
		parallelOpts := opts
		parallelOpts.Workers = workers
		parallelOpts.Metrics = reg
		parallelRes, parallelSec, parallelMallocs, err := timedRun(id, parallelOpts)
		if err != nil {
			return fmt.Errorf("figure %s (parallel): %w", id, err)
		}
		cells, _ := reg.ExpvarMap()[experiments.MetricCells].(uint64)
		fig := benchFigure{
			ID:              id,
			SerialSeconds:   serialSec,
			ParallelSeconds: parallelSec,
			Cells:           cells,
			SerialMallocs:   serialMallocs,
			ParallelMallocs: parallelMallocs,
			Deterministic:   reflect.DeepEqual(serialRes, parallelRes),
		}
		if parallelSec > 0 {
			fig.Speedup = serialSec / parallelSec
			fig.CellsPerSec = float64(cells) / parallelSec
		}
		if !fig.Deterministic {
			return fmt.Errorf("figure %s: parallel result differs from serial — engine invariant violated", id)
		}
		sum.Figures = append(sum.Figures, fig)
		sum.TotalSerialSeconds += serialSec
		sum.TotalParallelSeconds += parallelSec
		fmt.Printf("bench %-6s serial %.2fs  parallel(%d) %.2fs  speedup %.2fx\n",
			id, serialSec, workers, parallelSec, fig.Speedup)
	}
	if sum.TotalParallelSeconds > 0 {
		sum.Speedup = sum.TotalSerialSeconds / sum.TotalParallelSeconds
	}
	out, err := json.MarshalIndent(&sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// timedRun executes one figure and reports wall seconds and the number of
// heap objects allocated during the run.
func timedRun(id string, opts experiments.Options) (*experiments.FigureResult, float64, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := experiments.Run(id, opts)
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, sec, after.Mallocs - before.Mallocs, nil
}
