// Command fedbench regenerates the paper's evaluation: every figure
// (1a-4c) plus the text-claim and ablation experiments, as aligned tables
// on stdout and optionally CSV files.
//
// Usage:
//
//	fedbench -all                      # every registered experiment
//	fedbench -fig 1a -fig 3b           # specific figures
//	fedbench -all -reps 20 -seed 7     # faster, still deterministic
//	fedbench -all -csv results/        # also write one CSV per figure
//	fedbench -all -workers 8           # parallel grid execution
//	fedbench -fig 1a -bench-json BENCH.json  # serial-vs-parallel baseline
//	fedbench -trace                    # tracing-layer overhead on the report path
//
// The engine derives every grid cell's randomness from (seed, cell index),
// so output is bit-identical at any -workers setting. -cpuprofile and
// -memprofile write pprof profiles of the run; -bench-json times each
// figure serially and in parallel and writes a machine-readable summary
// (wall time, cells/sec, allocations, speedup).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

type figList []string

func (f *figList) String() string { return fmt.Sprint(*f) }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to run (repeatable); see -list")
	all := flag.Bool("all", false, "run every registered experiment")
	list := flag.Bool("list", false, "list experiment ids and exit")
	reps := flag.Int("reps", 100, "repetitions per point (paper uses 100)")
	n := flag.Int("n", 0, "override the default client population size")
	seed := flag.Uint64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files into")
	workers := flag.Int("workers", 0, "grid-cell worker goroutines (0 = GOMAXPROCS; output is identical at any setting)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := flag.String("bench-json", "", "time each figure serially and in parallel and write a JSON benchmark summary to this file")
	traceBench := flag.Bool("trace", false, "measure tracing overhead on the report hot path (recorder off vs on) and exit")
	ingest := flag.Bool("ingest", false, "run the ingestion load generator (JSON vs binary batch) and exit")
	ingestURL := flag.String("ingest-url", "", "target a running fednumd at this base URL (empty = in-process server)")
	ingestJSON := flag.String("ingest-json", "", "write the ingestion benchmark summary JSON to this file")
	ingestDur := flag.Duration("ingest-duration", 2*time.Second, "measurement window per ingestion grid cell")
	ingestShort := flag.Bool("ingest-short", false, "calibration grid for -ingest: one small cell per codec")
	flag.Parse()

	if *ingest {
		opts := ingestOptions{TargetURL: *ingestURL, Duration: *ingestDur, Short: *ingestShort, Seed: *seed}
		if err := runIngest(opts, os.Stdout, *ingestJSON); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *traceBench {
		if err := runTraceBench(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Registry[id].Description)
		}
		return
	}
	if *all {
		figs = experiments.IDs()
	}
	if len(figs) == 0 {
		fmt.Fprintln(os.Stderr, "fedbench: nothing to run; use -all, -fig <id> or -list")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("creating cpu profile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.Options{Reps: *reps, N: *n, Seed: *seed, Workers: *workers}
	if *benchJSON != "" {
		if err := runBench(*benchJSON, figs, opts); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, id := range figs {
			start := time.Now()
			result, err := experiments.Run(id, opts)
			if err != nil {
				fatalf("figure %s: %v", id, err)
			}
			if err := result.WriteTable(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("(%d reps, %.1fs)\n\n", opts.Reps, time.Since(start).Seconds())
			if *csvDir != "" {
				if err := writeCSV(*csvDir, result); err != nil {
					fatalf("%v", err)
				}
			}
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("creating mem profile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("writing mem profile: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedbench: "+format+"\n", args...)
	os.Exit(1)
}

func writeCSV(dir string, result *experiments.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+result.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := result.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// benchFigure is one figure's serial-vs-parallel measurement.
type benchFigure struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Cells           uint64  `json:"cells"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	SerialMallocs   uint64  `json:"serial_mallocs"`
	ParallelMallocs uint64  `json:"parallel_mallocs"`
	Deterministic   bool    `json:"deterministic"`
}

// benchSummary is the machine-readable baseline -bench-json writes.
type benchSummary struct {
	GoVersion            string        `json:"go_version"`
	NumCPU               int           `json:"num_cpu"`
	GoMaxProcs           int           `json:"gomaxprocs"`
	Workers              int           `json:"workers"`
	Reps                 int           `json:"reps"`
	N                    int           `json:"n,omitempty"`
	Seed                 uint64        `json:"seed"`
	Note                 string        `json:"note,omitempty"`
	Figures              []benchFigure `json:"figures"`
	TotalSerialSeconds   float64       `json:"total_serial_seconds"`
	TotalParallelSeconds float64       `json:"total_parallel_seconds"`
	Speedup              float64       `json:"speedup"`
}

// runBench times every requested figure twice — Workers:1 and the
// configured parallel worker count — verifies the two results are
// identical, and writes the summary JSON. The parallel timing uses a
// metrics registry to report executed cells and throughput.
func runBench(path string, figs []string, opts experiments.Options) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sum := benchSummary{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Reps:       opts.Reps,
		N:          opts.N,
		Seed:       opts.Seed,
	}
	if runtime.NumCPU() < 2 {
		sum.Note = "single-CPU host: parallel timings cannot show speedup; rerun on a multi-core machine for the throughput figure"
	}
	for _, id := range figs {
		serialOpts := opts
		serialOpts.Workers = 1
		serialRes, serialSec, serialMallocs, err := timedRun(id, serialOpts)
		if err != nil {
			return fmt.Errorf("figure %s (serial): %w", id, err)
		}
		reg := obs.NewRegistry()
		parallelOpts := opts
		parallelOpts.Workers = workers
		parallelOpts.Metrics = reg
		parallelRes, parallelSec, parallelMallocs, err := timedRun(id, parallelOpts)
		if err != nil {
			return fmt.Errorf("figure %s (parallel): %w", id, err)
		}
		cells, _ := reg.ExpvarMap()[experiments.MetricCells].(uint64)
		fig := benchFigure{
			ID:              id,
			SerialSeconds:   serialSec,
			ParallelSeconds: parallelSec,
			Cells:           cells,
			SerialMallocs:   serialMallocs,
			ParallelMallocs: parallelMallocs,
			Deterministic:   reflect.DeepEqual(serialRes, parallelRes),
		}
		if parallelSec > 0 {
			fig.Speedup = serialSec / parallelSec
			fig.CellsPerSec = float64(cells) / parallelSec
		}
		if !fig.Deterministic {
			return fmt.Errorf("figure %s: parallel result differs from serial — engine invariant violated", id)
		}
		sum.Figures = append(sum.Figures, fig)
		sum.TotalSerialSeconds += serialSec
		sum.TotalParallelSeconds += parallelSec
		fmt.Printf("bench %-6s serial %.2fs  parallel(%d) %.2fs  speedup %.2fx\n",
			id, serialSec, workers, parallelSec, fig.Speedup)
	}
	if sum.TotalParallelSeconds > 0 {
		sum.Speedup = sum.TotalSerialSeconds / sum.TotalParallelSeconds
	}
	out, err := json.MarshalIndent(&sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runTraceBench measures what the tracing layer costs on the report path.
// Two benchmarks, each run with the recorder detached and attached:
//
//   - the in-memory duplicate-submit fast path, where the disabled case is
//     the 0-alloc guarantee the tracing layer ships with (see
//     TestTracingDisabledReportAllocs), and
//   - a full HTTP submit-report request through the instrumented mux,
//     which is what a deployed fednumd pays per report when -trace-buf is
//     set.
func runTraceBench(w io.Writer) error {
	newSession := func(rec *trace.Recorder) (*transport.Server, string, wire.Report, error) {
		s := transport.NewServer(1)
		if rec != nil {
			s.SetTracer(rec)
		}
		ctx := context.Background()
		id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "bench", Bits: 4, Gamma: 1})
		if err != nil {
			return nil, "", wire.Report{}, err
		}
		task, err := s.AssignTask(ctx, id, "bench-client")
		if err != nil {
			return nil, "", wire.Report{}, err
		}
		rep := wire.Report{ClientID: "bench-client", Bit: task.Bit, Value: 1}
		if _, err := s.SubmitReport(ctx, id, rep); err != nil {
			return nil, "", wire.Report{}, err
		}
		return s, id, rep, nil
	}

	direct := func(rec *trace.Recorder) (testing.BenchmarkResult, error) {
		s, id, rep, err := newSession(rec)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		ctx := context.Background()
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SubmitReport(ctx, id, rep); err != nil {
					b.Fatal(err)
				}
			}
		}), nil
	}

	overHTTP := func(rec *trace.Recorder) (testing.BenchmarkResult, error) {
		s, id, rep, err := newSession(rec)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		body, err := json.Marshal(rep)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		url := "/v1/sessions/" + id + "/reports"
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", url, bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				rw := httptest.NewRecorder()
				s.ServeHTTP(rw, req)
				if rw.Code/100 != 2 {
					b.Fatalf("submit: HTTP %d: %s", rw.Code, rw.Body.String())
				}
			}
		}), nil
	}

	type lane struct {
		name string
		run  func(*trace.Recorder) (testing.BenchmarkResult, error)
	}
	// The recorder is sized so the armed runs never wrap mid-benchmark in a
	// way that changes the cost profile (the ring overwrites in place either
	// way; 1<<12 just keeps Dropped() readable if someone instruments this).
	for _, l := range []lane{
		{"duplicate submit (in-memory fast path)", direct},
		{"HTTP submit-report request", overHTTP},
	} {
		off, err := l.run(nil)
		if err != nil {
			return fmt.Errorf("trace bench %s (off): %w", l.name, err)
		}
		on, err := l.run(trace.NewRecorder(1 << 12))
		if err != nil {
			return fmt.Errorf("trace bench %s (on): %w", l.name, err)
		}
		offNs := float64(off.NsPerOp())
		onNs := float64(on.NsPerOp())
		fmt.Fprintf(w, "%s\n", l.name)
		fmt.Fprintf(w, "  tracing off: %8d ns/op  %4d allocs/op\n", off.NsPerOp(), off.AllocsPerOp())
		fmt.Fprintf(w, "  tracing on:  %8d ns/op  %4d allocs/op\n", on.NsPerOp(), on.AllocsPerOp())
		pct := 0.0
		if offNs > 0 {
			pct = (onNs - offNs) / offNs * 100
		}
		fmt.Fprintf(w, "  overhead:    %+8d ns/op (%+.1f%%)  %+d allocs/op\n\n",
			on.NsPerOp()-off.NsPerOp(), pct, on.AllocsPerOp()-off.AllocsPerOp())
	}
	return nil
}

// timedRun executes one figure and reports wall seconds and the number of
// heap objects allocated during the run.
func timedRun(id string, opts experiments.Options) (*experiments.FigureResult, float64, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := experiments.Run(id, opts)
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, sec, after.Mallocs - before.Mallocs, nil
}
