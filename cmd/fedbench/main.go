// Command fedbench regenerates the paper's evaluation: every figure
// (1a-4c) plus the text-claim and ablation experiments, as aligned tables
// on stdout and optionally CSV files.
//
// Usage:
//
//	fedbench -all                      # every registered experiment
//	fedbench -fig 1a -fig 3b           # specific figures
//	fedbench -all -reps 20 -seed 7     # faster, still deterministic
//	fedbench -all -csv results/        # also write one CSV per figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

type figList []string

func (f *figList) String() string { return fmt.Sprint(*f) }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to run (repeatable); see -list")
	all := flag.Bool("all", false, "run every registered experiment")
	list := flag.Bool("list", false, "list experiment ids and exit")
	reps := flag.Int("reps", 100, "repetitions per point (paper uses 100)")
	n := flag.Int("n", 0, "override the default client population size")
	seed := flag.Uint64("seed", 1, "experiment seed")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files into")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Registry[id].Description)
		}
		return
	}
	if *all {
		figs = experiments.IDs()
	}
	if len(figs) == 0 {
		fmt.Fprintln(os.Stderr, "fedbench: nothing to run; use -all, -fig <id> or -list")
		os.Exit(2)
	}
	opts := experiments.Options{Reps: *reps, N: *n, Seed: *seed}
	for _, id := range figs {
		start := time.Now()
		result, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := result.WriteTable(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%d reps, %.1fs)\n\n", opts.Reps, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, result); err != nil {
				fmt.Fprintf(os.Stderr, "fedbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, result *experiments.FigureResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+result.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := result.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
