// Command fedlint is the repository's invariant checker: a multichecker of
// custom analyzers that machine-check the privacy, determinism, and
// durability disciplines the compiler cannot see (see
// internal/analysis/README.md for the invariant catalogue).
//
// It speaks the go vet vettool protocol, so CI and developers run it as:
//
//	go build -o "$(go env GOPATH)/bin/fedlint" ./cmd/fedlint
//	go vet -vettool="$(go env GOPATH)/bin/fedlint" ./...
//
// or directly — `fedlint ./...` re-execs go vet on itself. Single checks
// run via their flag (`fedlint -randsource ./...`), and mechanical
// diagnostics are applied with `fedlint -fix ./...`.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/errcode"
	"repro/internal/analysis/exhaustenum"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/lockheld"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/noprintflog"
	"repro/internal/analysis/randsource"
	"repro/internal/analysis/rngshare"
	"repro/internal/analysis/spanend"
)

func main() {
	analysis.Main(
		randsource.Analyzer,
		rngshare.Analyzer,
		floateq.Analyzer,
		noprintflog.Analyzer,
		errcode.Analyzer,
		ctxflow.Analyzer,
		spanend.Analyzer,
		lockorder.Analyzer,
		lockheld.Analyzer,
		atomicmix.Analyzer,
		exhaustenum.Analyzer,
	)
}
