// Repository-root benchmarks: one benchmark per figure of the paper's
// evaluation (see DESIGN.md §4 for the index), each running a
// reduced-repetition version of the same experiment code cmd/fedbench uses
// at full scale, plus protocol micro-benchmarks and the secure-aggregation
// overhead ablation (A-SECAGG).
//
// Accuracy benchmarks report the headline method's error via
// b.ReportMetric (NRMSE or RMSE per the figure's y-axis), so `go test
// -bench=.` doubles as a quick reproduction check.
package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/secagg"
	"repro/internal/workload"
)

// benchFigure runs one registered experiment per iteration and reports the
// named series' sweep-averaged y value as a metric.
func benchFigure(b *testing.B, id, series string, opts experiments.Options) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i) + 1
		result, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = seriesMeanY(b, result, series)
	}
	unit := "nrmse"
	if !strings.Contains(result0YLabel(id), "NRMSE") {
		unit = "rmse"
	}
	b.ReportMetric(last, unit)
}

// result0YLabel returns the y-label a figure reports, without re-running it.
func result0YLabel(id string) string {
	switch id {
	case "3a", "3b", "4a", "4c", "tdp":
		return "RMSE"
	case "4b":
		return "bit mean"
	default:
		return "NRMSE"
	}
}

func seriesMeanY(b *testing.B, f *experiments.FigureResult, name string) float64 {
	b.Helper()
	for _, s := range f.Series {
		if s.Method != name {
			continue
		}
		var sum float64
		for _, p := range s.Points {
			switch {
			case strings.Contains(f.YLabel, "NRMSE"):
				sum += p.Summary.NRMSE
			default:
				sum += p.Summary.RMSE
			}
		}
		return sum / float64(len(s.Points))
	}
	b.Fatalf("figure %s has no series %q", f.ID, name)
	return 0
}

func BenchmarkFig1aMeanVsMu(b *testing.B) {
	benchFigure(b, "1a", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkFig1bVarianceVsMu(b *testing.B) {
	benchFigure(b, "1b", "adaptive", experiments.Options{Reps: 3, N: 20000})
}

func BenchmarkFig1cMeanVsBitDepth(b *testing.B) {
	benchFigure(b, "1c", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkFig2aMeanVsN(b *testing.B) {
	benchFigure(b, "2a", "adaptive(α=0.5)", experiments.Options{Reps: 5})
}

func BenchmarkFig2bVarianceVsN(b *testing.B) {
	benchFigure(b, "2b", "adaptive", experiments.Options{Reps: 3})
}

func BenchmarkFig2cMeanVsBitDepth(b *testing.B) {
	benchFigure(b, "2c", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkFig3aDPHighPrivacy(b *testing.B) {
	benchFigure(b, "3a", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkFig3bDPModerate(b *testing.B) {
	benchFigure(b, "3b", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkFig4aSquashThreshold(b *testing.B) {
	benchFigure(b, "4a", "adaptive+squash", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkFig4bBitMeanHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("4b", experiments.Options{Reps: 5, N: 4000, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4cDPBitDepth(b *testing.B) {
	benchFigure(b, "4c", "adaptive(α=0.5)+squash", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkTextDPAlternatives(b *testing.B) {
	benchFigure(b, "tdp", "laplace", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkAblationPoisoning(b *testing.B) {
	benchFigure(b, "pois", "bitpush-local", experiments.Options{Reps: 5, N: 2000})
}

func BenchmarkAblationCaching(b *testing.B) {
	benchFigure(b, "cache", "adaptive(α=0.5)", experiments.Options{Reps: 8})
}

func BenchmarkAblationBSend(b *testing.B) {
	benchFigure(b, "bsend", "weighted(γ=1)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkAblationSampleThreshold(b *testing.B) {
	benchFigure(b, "stdp", "no-noise", experiments.Options{Reps: 5})
}

func BenchmarkSensitivityDelta(b *testing.B) {
	benchFigure(b, "delta", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

func BenchmarkSensitivityGamma(b *testing.B) {
	benchFigure(b, "gamma", "adaptive(α=0.5)", experiments.Options{Reps: 5, N: 4000})
}

// --- Protocol micro-benchmarks ---

// benchValues draws the micro-benchmark population: Normal(500, 80) scaled
// so the encoded values span the full b-bit range. The unscaled codec used
// previously left every bit above ~10 permanently zero (500±80 needs only
// 10 bits), so the bit-level protocol benchmarks ran on degenerate inputs
// whose top bits carried no work; the scale keeps the distribution's shape
// while making every bit position genuinely random.
func benchValues(n, bits int) []uint64 {
	vals := workload.Normal{Mu: 500, Sigma: 80}.Sample(frand.New(1), n)
	scale := float64(uint64(1)<<uint(bits)) / 1024
	return fixedpoint.MustCodec(bits, 0, scale).EncodeAll(vals)
}

// TestBenchValuesNonDegenerate guards that fix: every bit position of the
// benchmark population must be neither always clear nor always set.
func TestBenchValuesNonDegenerate(t *testing.T) {
	for _, bits := range []int{8, 12, 16} {
		values := benchValues(10000, bits)
		for j, m := range fixedpoint.BitMeans(values, bits) {
			if m < 0.005 || m > 0.995 {
				t.Errorf("bits=%d: bit %d has mean %v, degenerate input", bits, j, m)
			}
		}
	}
}

func BenchmarkCoreRun10K(b *testing.B) {
	values := benchValues(10000, 12)
	probs, err := core.GeometricProbs(12, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Bits: 12, Probs: probs}
	r := frand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, values, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreAdaptive10K(b *testing.B) {
	values := benchValues(10000, 12)
	cfg := core.AdaptiveConfig{Bits: 12}
	r := frand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunAdaptive(cfg, values, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreRunWithRR10K(b *testing.B) {
	values := benchValues(10000, 12)
	probs, err := core.GeometricProbs(12, 1)
	if err != nil {
		b.Fatal(err)
	}
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Bits: 12, Probs: probs, RR: rr, SquashMultiple: 2}
	r := frand.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, values, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSecAgg compares summing bit-report vectors in the clear
// against the full masked protocol with Shamir-backed dropout recovery
// (A-SECAGG in DESIGN.md).
func BenchmarkAblationSecAgg(b *testing.B) {
	const clients, vecLen = 64, 16
	inputs := make([][]uint64, clients)
	r := frand.New(5)
	for i := range inputs {
		inputs[i] = make([]uint64, vecLen)
		for k := range inputs[i] {
			inputs[i][k] = r.Uint64n(2)
		}
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum := make([]uint64, vecLen)
			for _, in := range inputs {
				for k, v := range in {
					sum[k] += v
				}
			}
		}
	})
	b.Run("masked", func(b *testing.B) {
		p, err := secagg.New(secagg.Config{NumClients: clients, Threshold: clients / 2, VecLen: vecLen})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.SumUints(inputs, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("masked-dropouts", func(b *testing.B) {
		p, err := secagg.New(secagg.Config{NumClients: clients, Threshold: clients / 2, VecLen: vecLen})
		if err != nil {
			b.Fatal(err)
		}
		dropouts := []int{3, 17, 42}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.SumUints(inputs, dropouts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
