// Package integration holds cross-module end-to-end tests: pipelines that
// chain the probe/clip, aggregation, privacy, metering, secure-aggregation
// and transport layers the way a deployment would. The package has no
// library code; see the _test files.
package integration
