package integration

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/distdp"
	"repro/internal/federated"
	"repro/internal/field"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/meter"
	"repro/internal/quantile"
	"repro/internal/secagg"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

// TestProbeClipThenAdaptiveMean chains the §4.3 bit-depth pipeline: a
// probe cohort answers power-of-two threshold bits to pick the clipping
// depth, then the remaining clients run adaptive bit-pushing at that
// depth. The data lives in ~10 bits of a 24-bit domain; the probe must
// recover that, and the clipped pipeline must beat a single wide-depth
// weighted round.
func TestProbeClipThenAdaptiveMean(t *testing.T) {
	const domainBits = 24
	r := frand.New(1)
	vals := workload.Normal{Mu: 700, Sigma: 90}.Sample(r, 30000)
	wide := fixedpoint.MustCodec(domainBits, 0, 1).EncodeAll(vals)
	truth := fixedpoint.Mean(wide)

	probeN := len(wide) / 10
	bits, err := quantile.AdaptiveClipBits(quantile.Config{Bits: domainBits}, 0.999, wide[:probeN], r)
	if err != nil {
		t.Fatal(err)
	}
	if bits < 10 || bits > 12 {
		t.Fatalf("probe chose %d bits, want 10-12", bits)
	}

	clipped := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals[probeN:])
	var pipeline, naive []float64
	probsWide, err := core.GeometricProbs(domainBits, 1)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 40; rep++ {
		res, err := core.RunAdaptive(core.AdaptiveConfig{Bits: bits}, clipped, r)
		if err != nil {
			t.Fatal(err)
		}
		pipeline = append(pipeline, res.Estimate)
		nres, err := core.Run(core.Config{Bits: domainBits, Probs: probsWide}, wide[probeN:], r)
		if err != nil {
			t.Fatal(err)
		}
		naive = append(naive, nres.Estimate)
	}
	pe := stats.RMSE(pipeline, truth)
	ne := stats.RMSE(naive, truth)
	if pe*3 >= ne {
		t.Fatalf("probe+clip pipeline RMSE %v not well below naive wide-depth %v", pe, ne)
	}
}

// TestSecureMeteredDPPipeline runs the full privacy stack at once: clients
// apply ε-LDP randomized response locally, the ledger meters every
// disclosure, reports travel as masked secure-aggregation vectors with
// dropouts, the unmasked tallies pass through central count thresholding,
// and the final estimate still lands near the truth.
func TestSecureMeteredDPPipeline(t *testing.T) {
	const (
		numClients = 96
		bits       = 8
		eps        = 4.0
	)
	r := frand.New(2)
	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(
		workload.Normal{Mu: 120, Sigma: 25}.Sample(r, numClients))

	rr, err := ldp.NewRandomizedResponse(eps)
	if err != nil {
		t.Fatal(err)
	}
	ledger := meter.NewLedger(meter.DefaultPolicy)

	// Server-side assignment (central randomness).
	probs, err := core.GeometricProbs(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := core.Allocate(probs, numClients)
	if err != nil {
		t.Fatal(err)
	}
	assignment := core.Assign(counts, r)

	proto, err := secagg.New(secagg.Config{
		NumClients: numClients, Threshold: numClients / 2, VecLen: 2 * bits,
	})
	if err != nil {
		t.Fatal(err)
	}

	dropped := map[int]bool{7: true, 31: true}
	masked := make(map[int][]field.Element)
	for i, v := range values {
		if dropped[i] {
			continue
		}
		clientID := fmt.Sprintf("c%d", i)
		if err := ledger.Charge(clientID, "metric", 1, eps); err != nil {
			t.Fatalf("ledger rejected first disclosure: %v", err)
		}
		j := assignment[i]
		bit := rr.Apply((v>>uint(j))&1, r) // client-side LDP
		vec := make([]field.Element, 2*bits)
		vec[2*j] = bit
		vec[2*j+1] = 1
		m, err := proto.MaskedInput(i, vec)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
	}

	sums, err := proto.Aggregate(masked)
	if err != nil {
		t.Fatal(err)
	}
	// Central thresholding (the enclave step): tiny tallies removed.
	tallies := make([]uint64, 2*bits)
	copy(tallies, sums)
	tallies = distdp.ThresholdCounts(tallies, 2)

	var reports []core.Report
	for j := 0; j < bits; j++ {
		ones, total := tallies[2*j], tallies[2*j+1]
		for k := uint64(0); k < total; k++ {
			bit := uint64(0)
			if k < ones {
				bit = 1
			}
			reports = append(reports, core.Report{Bit: j, Value: bit})
		}
	}
	res, err := core.Aggregate(core.Config{Bits: bits, Probs: probs, RR: rr}, reports)
	if err != nil {
		t.Fatal(err)
	}
	truth := fixedpoint.Mean(values)
	if math.Abs(res.Estimate-truth)/truth > 0.35 {
		t.Fatalf("full-stack estimate %v vs truth %v", res.Estimate, truth)
	}
	// Metering: every surviving client charged exactly once.
	if got := ledger.EpsilonSpent("c0"); got != eps {
		t.Errorf("client c0 spent ε=%v, want %v", got, eps)
	}
	if got := ledger.BitsDisclosed("c0", "metric"); got != 1 {
		t.Errorf("client c0 disclosed %d bits, want 1", got)
	}
}

// TestInProcessMatchesHTTP compares the in-process federated coordinator
// and the HTTP campaign on the same population: both unbiased, both
// within a few percent of the truth, proving the transport introduces no
// statistical distortion.
func TestInProcessMatchesHTTP(t *testing.T) {
	const bits = 12
	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 80}.Sample(frand.New(4), 4000))
	truth := fixedpoint.Mean(values)

	// In-process coordinator.
	co, err := federated.NewCoordinator(federated.Config{Bits: bits, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := co.EstimateMean(federated.NewPopulation("m", values), "m")
	if err != nil {
		t.Fatal(err)
	}

	// HTTP campaign.
	srv := httptest.NewServer(transport.NewServer(6))
	defer srv.Close()
	admin := &transport.Admin{BaseURL: srv.URL}
	root := frand.New(7)
	devices := make([]transport.Device, len(values))
	for i, v := range values {
		devices[i] = transport.Device{
			Participant: transport.Participant{
				BaseURL: srv.URL, ClientID: fmt.Sprintf("d%d", i), RNG: root.Split(),
			},
			Value: v,
		}
	}
	campaign, err := transport.RunAdaptiveCampaign(context.Background(), admin,
		transport.AdaptiveSpec{Feature: "m", Bits: bits}, devices, root)
	if err != nil {
		t.Fatal(err)
	}

	for name, est := range map[string]float64{"in-process": inproc.Estimate, "http": campaign.Estimate} {
		if math.Abs(est-truth)/truth > 0.05 {
			t.Errorf("%s estimate %v vs truth %v", name, est, truth)
		}
	}
}

// TestTransportSessionAgainstDistDP exercises the remaining §3.3 combo: a
// plain HTTP session whose finalized tallies pass through the
// sample-and-threshold mechanism server-side, with the estimate surviving.
func TestTransportSessionAgainstDistDP(t *testing.T) {
	const bits = 8
	srv := httptest.NewServer(transport.NewServer(8))
	defer srv.Close()
	admin := &transport.Admin{BaseURL: srv.URL}
	ctx := context.Background()

	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(
		workload.CensusAges{}.Sample(frand.New(9), 20000))
	truth := fixedpoint.Mean(values)

	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "age", Bits: bits, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := frand.New(10)
	for i, v := range values {
		p := &transport.Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: root.Split()}
		if err := p.Participate(ctx, id, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	// Server-side distributed DP on the per-bit binary histograms.
	st, err := distdp.NewSampleThreshold(0.8, 10)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]uint64, bits)
	zeros := make([]uint64, bits)
	for j := 0; j < bits; j++ {
		ones[j] = uint64(res.Sums[j])
		zeros[j] = uint64(res.Counts[j]) - ones[j]
	}
	onesS := st.Apply(ones, root)
	zerosS := st.Apply(zeros, root)
	var est float64
	for j := 0; j < bits; j++ {
		if total := onesS[j] + zerosS[j]; total > 0 {
			est += math.Ldexp(float64(onesS[j])/float64(total), j)
		}
	}
	if math.Abs(est-truth)/truth > 0.1 {
		t.Fatalf("dist-DP over HTTP estimate %v vs truth %v", est, truth)
	}
}
