package workload

import "repro/internal/frand"

// CensusAges is a synthetic surrogate for the US Census age data used in
// the paper's Figures 2–4. The original experiments use the
// Census-Income (KDD) dataset's age column; that dataset is not available
// offline, so this generator reproduces the *distribution of ages* from
// published US Census 5-year age-bucket shares instead (see DESIGN.md §2).
//
// The surrogate matches the properties the experiments exercise: integer
// ages on [0, 95) — a 7-bit quantity inside a wider bit budget — with mean
// around the mid-30s, standard deviation in the low 20s, and a mild right
// skew that tapers at high ages.
type CensusAges struct{}

// censusBuckets holds the approximate share of the US population in each
// 5-year age bucket (0–4, 5–9, ..., 90–94), in tenths of a percent. Shares
// are normalized at sampling time, so only the relative shape matters.
var censusBuckets = []int{
	60, // 0-4
	61, // 5-9
	64, // 10-14
	65, // 15-19
	66, // 20-24
	70, // 25-29
	69, // 30-34
	66, // 35-39
	61, // 40-44
	62, // 45-49
	63, // 50-54
	67, // 55-59
	64, // 60-64
	54, // 65-69
	45, // 70-74
	30, // 75-79
	19, // 80-84
	12, // 85-89
	6,  // 90-94
}

// censusCum caches the cumulative bucket weights.
var censusCum = func() []int {
	cum := make([]int, len(censusBuckets))
	total := 0
	for i, w := range censusBuckets {
		total += w
		cum[i] = total
	}
	return cum
}()

// Name implements Generator.
func (CensusAges) Name() string { return "census-ages" }

// Sample implements Generator. Ages are integers in [0, 95).
func (CensusAges) Sample(r *frand.RNG, n int) []float64 {
	total := censusCum[len(censusCum)-1]
	out := make([]float64, n)
	for i := range out {
		u := int(r.Uint64n(uint64(total)))
		// Linear scan: 19 buckets, dominated by the RNG call anyway.
		b := 0
		for u >= censusCum[b] {
			b++
		}
		out[i] = float64(b*5 + r.Intn(5))
	}
	return out
}

// MaxAge is the exclusive upper bound on generated ages.
const MaxAge = 95
