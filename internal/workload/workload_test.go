package workload

import (
	"math"
	"testing"

	"repro/internal/frand"
	"repro/internal/stats"
)

func sampleStats(t *testing.T, g Generator, n int, seed uint64) *stats.Stream {
	t.Helper()
	var s stats.Stream
	s.AddAll(g.Sample(frand.New(seed), n))
	if s.N() != n {
		t.Fatalf("%s: sample size %d, want %d", g.Name(), s.N(), n)
	}
	return &s
}

func TestNormalMoments(t *testing.T) {
	s := sampleStats(t, Normal{Mu: 1000, Sigma: 100}, 100000, 1)
	if math.Abs(s.Mean()-1000) > 2 {
		t.Errorf("mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-100) > 2 {
		t.Errorf("stddev = %v", s.StdDev())
	}
}

func TestUniformMoments(t *testing.T) {
	s := sampleStats(t, Uniform{Lo: 10, Hi: 30}, 100000, 2)
	if math.Abs(s.Mean()-20) > 0.2 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() < 10 || s.Max() >= 30 {
		t.Errorf("range [%v, %v] outside [10,30)", s.Min(), s.Max())
	}
	// Var of U[10,30) is 400/12.
	if math.Abs(s.Variance()-400.0/12) > 1 {
		t.Errorf("variance = %v", s.Variance())
	}
}

func TestExponentialMoments(t *testing.T) {
	s := sampleStats(t, Exponential{Mean: 50}, 100000, 3)
	if math.Abs(s.Mean()-50) > 1 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() < 0 {
		t.Errorf("negative draw %v", s.Min())
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := sampleStats(t, LogNormal{Mu: 2, Sigma: 1}, 50000, 4)
	if s.Min() <= 0 {
		t.Errorf("non-positive lognormal draw %v", s.Min())
	}
	// Mean of LogNormal(2,1) is exp(2.5) ≈ 12.18.
	if math.Abs(s.Mean()-math.Exp(2.5)) > 0.6 {
		t.Errorf("mean = %v, want ~%v", s.Mean(), math.Exp(2.5))
	}
}

func TestConstant(t *testing.T) {
	s := sampleStats(t, Constant{Value: 7}, 1000, 5)
	if s.Mean() != 7 || s.Variance() != 0 {
		t.Errorf("constant stats mean=%v var=%v", s.Mean(), s.Variance())
	}
}

func TestBimodalModes(t *testing.T) {
	g := Bimodal{Mu1: 10, Sigma1: 1, Mu2: 100, Sigma2: 1, W1: 0.5}
	vals := g.Sample(frand.New(6), 50000)
	low, high := 0, 0
	for _, v := range vals {
		switch {
		case v < 50:
			low++
		default:
			high++
		}
	}
	ratio := float64(low) / float64(low+high)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("mode balance = %v, want ~0.5", ratio)
	}
}

func TestHeavyTailShape(t *testing.T) {
	g := HeavyTail{S: 1.5, Max: 1 << 20}
	vals := g.Sample(frand.New(7), 50000)
	zeros, big := 0, 0
	for _, v := range vals {
		if v == 0 {
			zeros++
		}
		if v > 1000 {
			big++
		}
		if v < 0 || v > float64(g.Max) {
			t.Fatalf("out-of-range draw %v", v)
		}
	}
	if float64(zeros)/50000 < 0.2 {
		t.Errorf("heavy tail head mass = %v, want dominant", float64(zeros)/50000)
	}
	if big == 0 {
		t.Error("heavy tail produced no large outliers")
	}
}

func TestParetoShape(t *testing.T) {
	g := Pareto{Xm: 10, Alpha: 2.5}
	vals := g.Sample(frand.New(20), 100000)
	var s stats.Stream
	for _, v := range vals {
		if v < 10 {
			t.Fatalf("draw %v below scale", v)
		}
		s.Add(v)
	}
	// Mean of Pareto(xm, alpha) is alpha·xm/(alpha-1) = 16.67.
	if math.Abs(s.Mean()-50.0/3) > 0.5 {
		t.Errorf("pareto mean %v, want ~16.67", s.Mean())
	}
	// Tail check: P(X > 40) = (10/40)^2.5 = 0.03125.
	over := 0
	for _, v := range vals {
		if v > 40 {
			over++
		}
	}
	if f := float64(over) / 100000; math.Abs(f-0.03125) > 0.003 {
		t.Errorf("tail mass beyond 40 = %v, want ~0.03125", f)
	}
}

func TestParetoInfiniteMeanRegime(t *testing.T) {
	// Alpha <= 1: the sample mean is dominated by the maximum — the §4.3
	// situation where mean estimation breaks down.
	g := Pareto{Xm: 1, Alpha: 0.9}
	vals := g.Sample(frand.New(21), 50000)
	var s stats.Stream
	s.AddAll(vals)
	if s.Max() < 100*s.Mean()/10 {
		t.Errorf("max %v not dominating mean %v for alpha<1", s.Max(), s.Mean())
	}
}

func TestDeviceMetricMixture(t *testing.T) {
	g := DeviceMetric{OutlierMax: 1 << 24}
	vals := g.Sample(frand.New(8), 100000)
	var zeros, ones, small, outliers int
	for _, v := range vals {
		switch {
		case v == 0:
			zeros++
		case v == 1:
			ones++
		case v < 10:
			small++
		default:
			outliers++
		}
	}
	if f := float64(zeros) / 100000; math.Abs(f-0.55) > 0.02 {
		t.Errorf("zero fraction %v, want ~0.55", f)
	}
	if f := float64(ones) / 100000; math.Abs(f-0.30) > 0.02 {
		t.Errorf("one fraction %v, want ~0.30", f)
	}
	if outliers == 0 {
		t.Error("no outliers produced")
	}
	if f := float64(outliers) / 100000; f > 0.05 {
		t.Errorf("outlier fraction %v, want rare", f)
	}
}

func TestDeviceMetricDefaultOutlierMax(t *testing.T) {
	g := DeviceMetric{} // zero OutlierMax must not panic
	vals := g.Sample(frand.New(9), 10000)
	for _, v := range vals {
		if v < 0 {
			t.Fatalf("negative value %v", v)
		}
	}
}

func TestCensusAgesMoments(t *testing.T) {
	s := sampleStats(t, CensusAges{}, 200000, 10)
	// The US age distribution has mean in the mid/high 30s and stddev in
	// the low 20s; the surrogate must land in those bands.
	if s.Mean() < 33 || s.Mean() > 42 {
		t.Errorf("census mean = %v, want mid-to-high 30s", s.Mean())
	}
	if s.StdDev() < 19 || s.StdDev() > 26 {
		t.Errorf("census stddev = %v, want low 20s", s.StdDev())
	}
	if s.Min() < 0 || s.Max() >= MaxAge {
		t.Errorf("ages outside [0,%d): [%v, %v]", MaxAge, s.Min(), s.Max())
	}
}

func TestCensusAgesIntegers(t *testing.T) {
	vals := CensusAges{}.Sample(frand.New(11), 1000)
	for _, v := range vals {
		if v != math.Trunc(v) {
			t.Fatalf("non-integer age %v", v)
		}
	}
}

func TestCensusAgesRightSkewTaper(t *testing.T) {
	vals := CensusAges{}.Sample(frand.New(12), 200000)
	var under20, over80 int
	for _, v := range vals {
		if v < 20 {
			under20++
		}
		if v >= 80 {
			over80++
		}
	}
	if under20 <= over80 {
		t.Errorf("age pyramid inverted: under20=%d over80=%d", under20, over80)
	}
	if float64(over80)/200000 > 0.06 {
		t.Errorf("too much mass over 80: %v", float64(over80)/200000)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []Generator{
		Normal{Mu: 5, Sigma: 2},
		Uniform{Lo: 0, Hi: 1},
		Exponential{Mean: 3},
		LogNormal{Mu: 0, Sigma: 1},
		Constant{Value: 9},
		Bimodal{Mu1: 0, Sigma1: 1, Mu2: 10, Sigma2: 1, W1: 0.3},
		HeavyTail{S: 2, Max: 1000},
		Pareto{Xm: 5, Alpha: 2},
		DeviceMetric{OutlierMax: 10000},
		CensusAges{},
	}
	for _, g := range gens {
		a := g.Sample(frand.New(77), 100)
		b := g.Sample(frand.New(77), 100)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: non-deterministic at %d (%v vs %v)", g.Name(), i, a[i], b[i])
				break
			}
		}
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
}
