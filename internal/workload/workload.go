// Package workload generates the client-value populations used by the
// paper's evaluation (§4): Normal, uniform and exponential synthetic data,
// the US-census age distribution, and the heavy-tailed device-health
// metrics described in the deployment section.
//
// Each generator draws a population of real values; the experiment harness
// encodes them with internal/fixedpoint and compares estimators against the
// empirical (ground-truth) mean of the drawn sample, exactly as the paper
// does ("we compare the true (empirical) value of the mean μ to the
// estimate").
package workload

import (
	"fmt"
	"math"

	"repro/internal/frand"
)

// Generator draws a population of n client values.
type Generator interface {
	// Name identifies the workload in experiment output.
	Name() string
	// Sample draws n values using the provided RNG.
	Sample(r *frand.RNG, n int) []float64
}

// Normal draws from Normal(Mu, Sigma), the synthetic workload of Figure 1.
type Normal struct {
	Mu, Sigma float64
}

// Name implements Generator.
func (g Normal) Name() string { return fmt.Sprintf("normal(mu=%g,sigma=%g)", g.Mu, g.Sigma) }

// Sample implements Generator.
func (g Normal) Sample(r *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Normal(g.Mu, g.Sigma)
	}
	return out
}

// Uniform draws from Uniform[Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Name implements Generator.
func (g Uniform) Name() string { return fmt.Sprintf("uniform[%g,%g)", g.Lo, g.Hi) }

// Sample implements Generator.
func (g Uniform) Sample(r *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Lo + (g.Hi-g.Lo)*r.Float64()
	}
	return out
}

// Exponential draws from an exponential distribution with the given mean.
type Exponential struct {
	Mean float64
}

// Name implements Generator.
func (g Exponential) Name() string { return fmt.Sprintf("exponential(mean=%g)", g.Mean) }

// Sample implements Generator.
func (g Exponential) Sample(r *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Exponential(g.Mean)
	}
	return out
}

// LogNormal draws exp(Normal(Mu, Sigma)), a mildly heavy-tailed workload.
type LogNormal struct {
	Mu, Sigma float64
}

// Name implements Generator.
func (g LogNormal) Name() string { return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", g.Mu, g.Sigma) }

// Sample implements Generator.
func (g LogNormal) Sample(r *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.LogNormal(g.Mu, g.Sigma)
	}
	return out
}

// Constant emits the same value for every client. §4.3 observes that some
// deployed metrics "turn out to be constant, making mean and variance
// estimation moot"; this generator exercises that corner case.
type Constant struct {
	Value float64
}

// Name implements Generator.
func (g Constant) Name() string { return fmt.Sprintf("constant(%g)", g.Value) }

// Sample implements Generator.
func (g Constant) Sample(_ *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Value
	}
	return out
}

// Bimodal draws from a two-component normal mixture.
type Bimodal struct {
	Mu1, Sigma1 float64
	Mu2, Sigma2 float64
	W1          float64 // weight of the first component in [0,1]
}

// Name implements Generator.
func (g Bimodal) Name() string {
	return fmt.Sprintf("bimodal(%g±%g @%g, %g±%g)", g.Mu1, g.Sigma1, g.W1, g.Mu2, g.Sigma2)
}

// Sample implements Generator.
func (g Bimodal) Sample(r *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if r.Bernoulli(g.W1) {
			out[i] = r.Normal(g.Mu1, g.Sigma1)
		} else {
			out[i] = r.Normal(g.Mu2, g.Sigma2)
		}
	}
	return out
}

// HeavyTail draws a Zipf-distributed workload over [0, Max]: most values
// tiny, a few enormous. It models the §4.3 observation of metrics "whose
// most typical values are 0 and 1 ... but some rare clients report values
// that are orders of magnitude higher".
type HeavyTail struct {
	S   float64 // Zipf exponent, > 1
	Max uint64  // largest emitted value
}

// Name implements Generator.
func (g HeavyTail) Name() string { return fmt.Sprintf("heavytail(s=%g,max=%d)", g.S, g.Max) }

// Sample implements Generator.
func (g HeavyTail) Sample(r *frand.RNG, n int) []float64 {
	z := frand.NewZipf(r, g.S, 1, g.Max)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(z.Uint64())
	}
	return out
}

// Pareto draws from a Pareto distribution with scale Xm > 0 and tail index
// Alpha > 0 via inverse transform: values start at Xm and the survival
// function decays like (Xm/x)^Alpha. With Alpha <= 1 the mean diverges —
// the regime where §4.3 argues "estimating the mean might not be
// appropriate" and robust statistics or clipping must take over.
type Pareto struct {
	Xm, Alpha float64
}

// Name implements Generator.
func (g Pareto) Name() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", g.Xm, g.Alpha) }

// Sample implements Generator.
func (g Pareto) Sample(r *frand.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := 1 - r.Float64() // in (0, 1]
		out[i] = g.Xm * math.Pow(u, -1/g.Alpha)
	}
	return out
}

// DeviceMetric models the §4.3 device-health metric mixture: a large mass
// at 0 and 1, some single-digit values, and rare extreme outliers.
type DeviceMetric struct {
	OutlierMax uint64 // magnitude ceiling of the rare outliers
}

// Name implements Generator.
func (g DeviceMetric) Name() string { return fmt.Sprintf("devicemetric(outlierMax=%d)", g.OutlierMax) }

// Sample implements Generator.
func (g DeviceMetric) Sample(r *frand.RNG, n int) []float64 {
	max := g.OutlierMax
	if max < 100 {
		max = 1 << 20
	}
	out := make([]float64, n)
	for i := range out {
		u := r.Float64()
		switch {
		case u < 0.55:
			out[i] = 0
		case u < 0.85:
			out[i] = 1
		case u < 0.97:
			out[i] = float64(2 + r.Intn(8)) // single digits
		default:
			// Rare outliers spanning orders of magnitude.
			out[i] = float64(100 + r.Uint64n(max-100))
		}
	}
	return out
}
