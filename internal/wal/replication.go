// Replication support: the read side of WAL shipping. A primary serves
// its log to a standby as (seq, payload) records resumable from any
// sequence number (ReadFrom + WaitFor), the standby mirrors the
// primary's sequence space into its own log (AppendAt, AlignTo), and a
// promoting standby drains the unshipped tail of a dead primary's log
// directly from its directory (ScanDir) so that nothing a client was
// ever acked can be lost to a failover.
package wal

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// ErrCompacted reports a ReadFrom/ScanDir start sequence that has been
// compacted away: the caller's resume point predates the oldest record
// still on disk, so it must re-bootstrap from a snapshot instead of
// tailing the log.
var ErrCompacted = errors.New("wal: sequence compacted away")

// errStopRead is the internal sentinel a ReadFrom scan callback returns
// to stop early once the batch caps are met; never escapes the package.
var errStopRead = errors.New("wal: stop read")

// Record is one shipped log record: the payload plus the sequence
// number it holds in the primary's log.
type Record struct {
	Seq     uint64
	Payload []byte
}

// ReadFrom returns records starting at sequence from, bounded by
// maxRecords and maxBytes (payload plus framing; at least one record is
// returned when any is available, whatever its size). An empty, non-nil
// result never occurs: a from past the head returns (nil, nil) — poll
// again after WaitFor — and a from below the oldest on-disk sequence
// returns ErrCompacted, telling a follower to re-bootstrap from a
// snapshot. Payloads are fresh copies, safe to retain.
//
// ReadFrom is safe against concurrent appends: it scans a point-in-time
// copy of the segment list and tolerates a mid-write tail in the active
// segment the way Open does (the torn suffix is simply not returned
// yet).
func (w *WAL) ReadFrom(from uint64, maxRecords int, maxBytes int64) ([]Record, error) {
	if from == 0 {
		return nil, errors.New("wal: ReadFrom requires from >= 1")
	}
	if maxRecords <= 0 {
		maxRecords = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	first := w.firstSeq
	head := w.nextSeq - 1
	segs := append([]segment(nil), w.sealed...)
	segs = append(segs, segment{base: w.segBase, count: w.segCount, path: segmentPath(w.opts.Dir, w.segBase)})
	w.mu.Unlock()

	if from > head {
		return nil, nil
	}
	if first == 0 || from < first {
		return nil, fmt.Errorf("%w: want seq %d, oldest on disk is %d", ErrCompacted, from, first)
	}
	var out []Record
	var outBytes int64
	for i, s := range segs {
		if s.base+s.count <= from {
			continue
		}
		sealed := i < len(segs)-1
		seq := s.base
		_, err := scanSegment(s.path, sealed, func(payload []byte) error {
			if seq < from {
				seq++
				return nil
			}
			if len(out) >= maxRecords || (len(out) > 0 && outBytes+int64(len(payload))+headerBytes > maxBytes) {
				return errStopRead
			}
			p := make([]byte, len(payload))
			copy(p, payload)
			out = append(out, Record{Seq: seq, Payload: p})
			outBytes += int64(len(payload)) + headerBytes
			seq++
			return nil
		})
		if err != nil {
			if errors.Is(err, errStopRead) {
				return out, nil
			}
			return nil, err
		}
		if len(out) >= maxRecords {
			break
		}
	}
	return out, nil
}

// WaitFor blocks until the log head reaches at least seq, the timeout
// elapses, or the log closes, and returns the head it observed last —
// the long-poll primitive behind tail-following replication. It costs
// the append path nothing until a waiter is actually parked.
func (w *WAL) WaitFor(seq uint64, timeout time.Duration) uint64 {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return 0
		}
		head := w.nextSeq - 1
		if head >= seq {
			w.mu.Unlock()
			return head
		}
		if w.tailWait == nil {
			w.tailWait = make(chan struct{})
		}
		ch := w.tailWait
		w.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return head
		}
	}
}

// SizeBytes returns the frame bytes appended over the log's life within
// this process, seeded with what was on disk at Open. Monotonic — the
// byte analogue of LastSeq, which replication lag-in-bytes is measured
// against.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// AlignTo repositions an empty, never-appended log so that the next
// append receives seq+1: the bootstrap step for a standby that just
// restored a primary snapshot covering history through seq and will
// mirror everything after it via AppendAt. A log that holds (or within
// this process ever held) records refuses to move — realigning live
// history is how silent divergence starts.
func (w *WAL) AlignTo(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.failed != nil {
		return w.failed
	}
	if w.firstSeq != 0 || len(w.sealed) > 0 || w.segCount > 0 || w.nextSeq != w.segBase {
		return fmt.Errorf("wal: AlignTo(%d): log is not empty (next seq %d)", seq, w.nextSeq)
	}
	if seq+1 == w.segBase {
		return nil
	}
	old := segmentPath(w.opts.Dir, w.segBase)
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Remove(old); err != nil {
		return err
	}
	if err := w.startSegment(seq + 1); err != nil {
		w.failed = fmt.Errorf("wal: align: %w", err)
		return w.failed
	}
	w.nextSeq = seq + 1
	w.flushMu.Lock()
	w.syncedSeq = seq
	w.flushMu.Unlock()
	return nil
}

// ScanDir reads a WAL directory no live process owns — the
// promotion-time salvage path, where a standby drains the unapplied
// tail of a dead primary's log straight from (shared) disk before
// taking over. Records with sequence >= from stream to fn in order; a
// torn tail on the newest segment is tolerated (a torn record was never
// committed, hence never acked), while interior defects and sealed-
// segment damage are ErrCorrupt. When from predates the oldest record
// present, ErrCompacted is returned: the caller is missing history this
// directory cannot supply. The directory is only read, never modified.
func ScanDir(dir string, from uint64, fn func(seq uint64, payload []byte) error) error {
	if from == 0 {
		return errors.New("wal: ScanDir requires from >= 1")
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].base <= segs[i].base {
			return fmt.Errorf("wal: segment bases out of order: %s then %s", segs[i].path, segs[i+1].path)
		}
		segs[i].count = segs[i+1].base - segs[i].base
	}
	if from < segs[0].base {
		return fmt.Errorf("%w: want seq %d, oldest in %s is %d", ErrCompacted, from, dir, segs[0].base)
	}
	for i, s := range segs {
		sealed := i < len(segs)-1
		if sealed && s.base+s.count <= from {
			continue
		}
		seq := s.base
		res, err := scanSegment(s.path, sealed, func(payload []byte) error {
			if seq < from {
				seq++
				return nil
			}
			err := fn(seq, payload)
			seq++
			return err
		})
		if err != nil {
			return err
		}
		if sealed && res.records != s.count {
			return fmt.Errorf("%w: segment %s holds %d records, expected %d from the segment index",
				ErrCorrupt, s.path, res.records, s.count)
		}
	}
	return nil
}
