package wal

import "repro/internal/obs"

// Metric names published into the registry passed via Options.Registry,
// exported as constants so tests and dashboards reference one spelling.
const (
	// MetricAppends counts records appended.
	MetricAppends = "fednum_wal_appends_total"
	// MetricAppendBytes counts framed bytes appended.
	MetricAppendBytes = "fednum_wal_append_bytes_total"
	// MetricFsyncs counts successful fsyncs of segment files.
	MetricFsyncs = "fednum_wal_fsyncs_total"
	// MetricFsyncErrors counts failed fsyncs (each poisons the commit
	// path until restart — an acked report is never backed by one).
	MetricFsyncErrors = "fednum_wal_fsync_errors_total"
	// MetricFlushSeconds is the flush (fsync) latency histogram.
	MetricFlushSeconds = "fednum_wal_flush_seconds"
	// MetricAppendSeconds is the append (frame + segment write) latency
	// histogram — the in-lock cost of Append, as distinct from the
	// commit-to-durable wait MetricFlushSeconds measures. Together the two
	// split "where does a report's durability wait go": writing the
	// record, or fsyncing it.
	MetricAppendSeconds = "fednum_wal_append_seconds"
	// MetricReplayed counts records streamed by Replay.
	MetricReplayed = "fednum_wal_replayed_records_total"
	// MetricTornTruncations counts torn tails cut off at Open.
	MetricTornTruncations = "fednum_wal_torn_truncations_total"
	// MetricRotations counts segment seals.
	MetricRotations = "fednum_wal_rotations_total"
	// MetricCompactions counts TruncateThrough calls that removed at
	// least one sealed segment.
	MetricCompactions = "fednum_wal_compactions_total"
	// MetricSegmentsRemoved counts sealed segment files reclaimed.
	MetricSegmentsRemoved = "fednum_wal_segments_removed_total"
	// MetricSegments gauges segment files currently on disk (sealed +
	// active).
	MetricSegments = "fednum_wal_segments"
)

// walMetrics bundles the registered instruments. A nil Options.Registry
// still gets working instruments, registered into a private registry
// nobody scrapes.
type walMetrics struct {
	appends         *obs.Counter
	appendBytes     *obs.Counter
	fsyncs          *obs.Counter
	fsyncErrors     *obs.Counter
	flushSeconds    *obs.Histogram
	appendSeconds   *obs.Histogram
	replayed        *obs.Counter
	tornTruncations *obs.Counter
	rotations       *obs.Counter
	compactions     *obs.Counter
	segmentsRemoved *obs.Counter
	segments        *obs.Gauge
}

func newWALMetrics(reg *obs.Registry) *walMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &walMetrics{
		appends:     reg.Counter(MetricAppends, "WAL records appended."),
		appendBytes: reg.Counter(MetricAppendBytes, "Framed WAL bytes appended."),
		fsyncs:      reg.Counter(MetricFsyncs, "Successful WAL fsyncs."),
		fsyncErrors: reg.Counter(MetricFsyncErrors, "Failed WAL fsyncs."),
		flushSeconds: reg.Histogram(MetricFlushSeconds,
			"WAL flush (fsync) latency in seconds.", obs.LatencyBuckets),
		appendSeconds: reg.Histogram(MetricAppendSeconds,
			"WAL append (frame + write) latency in seconds.", obs.LatencyBuckets),
		replayed: reg.Counter(MetricReplayed, "WAL records streamed by replay."),
		tornTruncations: reg.Counter(MetricTornTruncations,
			"Torn segment tails truncated during recovery."),
		rotations: reg.Counter(MetricRotations, "WAL segments sealed."),
		compactions: reg.Counter(MetricCompactions,
			"WAL compactions that reclaimed at least one sealed segment."),
		segmentsRemoved: reg.Counter(MetricSegmentsRemoved,
			"Sealed WAL segment files removed by compaction."),
		segments: reg.Gauge(MetricSegments, "WAL segment files on disk."),
	}
}
