package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// appendN appends records "rec-<i>" for i in [0,n), committing each.
func appendN(t *testing.T, w *WAL, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
}

// collect replays the whole log into ordered (seq, payload) pairs.
func collect(t *testing.T, w *WAL) (seqs []uint64, payloads []string) {
	t.Helper()
	err := w.Replay(func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if got := w.LastSeq(); got != 10 {
		t.Fatalf("LastSeq = %d, want 10", got)
	}
	seqs, payloads := collect(t, w)
	if len(seqs) != 10 || seqs[0] != 1 || seqs[9] != 10 {
		t.Fatalf("replayed seqs %v", seqs)
	}
	if payloads[7] != "rec-7" {
		t.Fatalf("payload[7] = %q", payloads[7])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequence numbering continues, old records still replay.
	w2, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after reopen = %d, want 10", got)
	}
	appendN(t, w2, 10, 2)
	seqs, _ = collect(t, w2)
	if len(seqs) != 12 || seqs[11] != 12 {
		t.Fatalf("after reopen+append, seqs %v", seqs)
	}
}

func TestRotationAndSegmentNaming(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record after the first in a segment trips the
	// size check on the next append.
	w, err := Open(Options{Dir: dir, SegmentBytes: 1, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	seqs, _ := collect(t, w)
	if len(seqs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(seqs))
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(files) < 5 {
		t.Fatalf("expected ≥5 segment files with 1-byte segments, got %d", len(files))
	}
	w.Close()

	w2, err := Open(Options{Dir: dir, SegmentBytes: 1, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
}

func TestTornFinalRecordIsTruncated(t *testing.T) {
	for _, cut := range []struct {
		name  string
		bytes int64 // bytes to keep past the second record's end minus...
	}{
		{"mid_payload", 5},
		{"mid_header", 3},
		{"header_only", 8},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			w, err := Open(Options{Dir: dir, Policy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 0, 3)
			w.Close()

			// Tear the tail: drop the last record's end, keeping `bytes`
			// bytes of its frame.
			path := segmentPath(dir, 1)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			frame := int64(headerBytes + len("rec-2"))
			keep := int64(len(data)) - frame + cut.bytes
			if err := os.Truncate(path, keep); err != nil {
				t.Fatal(err)
			}

			w2, err := Open(Options{Dir: dir, Policy: SyncAlways, Registry: reg})
			if err != nil {
				t.Fatalf("open over torn tail: %v", err)
			}
			defer w2.Close()
			seqs, payloads := collect(t, w2)
			if len(seqs) != 2 || payloads[1] != "rec-1" {
				t.Fatalf("recovered %v %v, want the 2 complete records", seqs, payloads)
			}
			if got := reg.Counter(MetricTornTruncations, "").Value(); got != 1 {
				t.Fatalf("torn truncations = %d, want 1", got)
			}
			// The next append reuses the torn record's sequence.
			seq, err := w2.Append([]byte("rec-2b"))
			if err != nil || seq != 3 {
				t.Fatalf("append after torn recovery: seq=%d err=%v, want 3", seq, err)
			}
		})
	}
}

func TestBadCRCInteriorRecordFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 3)
	w.Close()

	// Flip a payload byte of the FIRST record: complete frame, records
	// behind it — corruption, never a torn tail.
	path := segmentPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir, Policy: SyncAlways}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over interior corruption = %v, want ErrCorrupt", err)
	}
}

func TestBadCRCInSealedSegmentFailsOnReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, SegmentBytes: 1, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 4) // rotations seal segments behind the head
	w.Close()

	// Corrupt the tail record of the FIRST (sealed) segment: even a
	// tail defect is corruption once the segment is sealed.
	path := segmentPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(Options{Dir: dir, SegmentBytes: 1, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Replay(func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over sealed-segment corruption = %v, want ErrCorrupt", err)
	}
}

func TestZeroLengthTailGarbageIsTorn(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 2)
	w.Close()

	// A crash-recovered filesystem can hand back a zeroed tail; a zero
	// length field must read as torn, not as a valid empty record
	// (crc32("") == 0 would otherwise make all-zeroes verify).
	f, err := os.OpenFile(segmentPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatalf("open over zeroed tail: %v", err)
	}
	defer w2.Close()
	if seqs, _ := collect(t, w2); len(seqs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(seqs))
	}
}

func TestTruncateThroughReclaimsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Open(Options{Dir: dir, SegmentBytes: 1, Policy: SyncNever, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 6)
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	removed, err := w.TruncateThrough(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 3 {
		t.Fatalf("removed %d segments, want ≥3", removed)
	}
	if got := w.FirstSeq(); got != 5 {
		t.Fatalf("FirstSeq after truncate = %d, want 5", got)
	}
	seqs, payloads := collect(t, w)
	if len(seqs) != 2 || seqs[0] != 5 || payloads[1] != "rec-5" {
		t.Fatalf("post-truncate replay %v %v, want seqs 5..6", seqs, payloads)
	}
	if got := reg.Counter(MetricCompactions, "").Value(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	// Appends continue seamlessly and survive a reopen.
	appendN(t, w, 6, 1)
	w.Close()
	w2, err := Open(Options{Dir: dir, SegmentBytes: 1, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 7 {
		t.Fatalf("LastSeq after reopen = %d, want 7", got)
	}
	if got := w2.FirstSeq(); got != 5 {
		t.Fatalf("FirstSeq after reopen = %d, want 5", got)
	}
}

func TestGroupedCommitIsDurableAndBatched(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Open(Options{
		Dir: dir, Policy: SyncGrouped, FlushInterval: time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := w.Append([]byte(fmt.Sprintf("g-%d", i)))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := w.Commit(seq); err != nil {
				t.Errorf("commit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	fsyncs := reg.Counter(MetricFsyncs, "").Value()
	if fsyncs == 0 {
		t.Fatal("grouped policy never fsynced")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir, Policy: SyncGrouped})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if seqs, _ := collect(t, w2); len(seqs) != n {
		t.Fatalf("recovered %d records, want %d", len(seqs), n)
	}
}

func TestConcurrentAppendsAssignDenseSequences(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 200
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := w.Append([]byte(fmt.Sprintf("c-%d", i)))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			seqs[i] = seq
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n)
	for _, s := range seqs {
		if s < 1 || s > n || seen[s] {
			t.Fatalf("sequence %d out of range or duplicated", s)
		}
		seen[s] = true
	}
	count := 0
	if err := w.Replay(func(uint64, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("replayed %d, want %d", count, n)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir(), Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "grouped": SyncGrouped, "off": SyncNever, "never": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus) succeeded")
	}
}

// TestFrameLayout pins the on-disk format so a refactor cannot silently
// change it under existing logs.
func TestFrameLayout(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != headerBytes+3 {
		t.Fatalf("frame is %d bytes, want %d", len(data), headerBytes+3)
	}
	if n := binary.LittleEndian.Uint32(data); n != 3 {
		t.Fatalf("length field = %d, want 3", n)
	}
	if string(data[headerBytes:]) != "abc" {
		t.Fatalf("payload = %q", data[headerBytes:])
	}
}

func TestAppendLatencyObserved(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Open(Options{Dir: dir, Policy: SyncNever, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 5)
	if got := w.m.appendSeconds.Count(); got != 5 {
		t.Fatalf("append latency observations = %d, want 5", got)
	}
}
