package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// smallSegs opens a WAL with tiny segments so tests cross segment
// boundaries cheaply.
func smallSegs(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReadFromReturnsSuffix(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 20)

	recs, err := w.ReadFrom(7, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 14 {
		t.Fatalf("got %d records, want 14", len(recs))
	}
	for i, r := range recs {
		wantSeq := uint64(7 + i)
		if r.Seq != wantSeq {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, wantSeq)
		}
		if want := fmt.Sprintf("rec-%d", wantSeq-1); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}
}

func TestReadFromPastHeadReturnsNothing(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 3)
	recs, err := w.ReadFrom(4, 10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if recs != nil {
		t.Fatalf("got %d records past head, want none", len(recs))
	}
}

func TestReadFromHonorsBatchCaps(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 20)

	recs, err := w.ReadFrom(1, 5, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Seq != 1 || recs[4].Seq != 5 {
		t.Fatalf("maxRecords cap: got %d records starting %d", len(recs), recs[0].Seq)
	}
	// A byte cap below one frame still yields exactly one record —
	// progress is guaranteed whatever the record size.
	recs, err = w.ReadFrom(1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("maxBytes cap: got %d records, want 1", len(recs))
	}
}

func TestReadFromCompactedSeqErrs(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 12)
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	head := w.LastSeq()
	if _, err := w.TruncateThrough(head); err != nil {
		t.Fatal(err)
	}
	first := w.FirstSeq()
	if first != 0 {
		t.Fatalf("log should be empty after full truncation, FirstSeq = %d", first)
	}
	if _, err := w.ReadFrom(1, 10, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom(1) after compaction: err = %v, want ErrCompacted", err)
	}
	// The head itself is still resumable: from = head+1 means "caught
	// up", not "lost history".
	recs, err := w.ReadFrom(head+1, 10, 1<<20)
	if err != nil || recs != nil {
		t.Fatalf("ReadFrom(head+1) = %d records, %v; want none, nil", len(recs), err)
	}
}

func TestWaitForReturnsOnAppend(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 2)

	done := make(chan uint64, 1)
	go func() { done <- w.WaitFor(3, 5*time.Second) }()
	// Give the waiter a moment to park, then append the record it wants.
	time.Sleep(10 * time.Millisecond)
	seq, err := w.Append([]byte("wake"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case head := <-done:
		if head < seq {
			t.Fatalf("WaitFor returned head %d, want >= %d", head, seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor did not wake on append")
	}
	// Already-satisfied waits return immediately.
	if head := w.WaitFor(1, time.Millisecond); head != seq {
		t.Fatalf("satisfied WaitFor head = %d, want %d", head, seq)
	}
}

func TestWaitForTimesOut(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 1)
	start := time.Now()
	head := w.WaitFor(99, 20*time.Millisecond)
	if head != 1 {
		t.Fatalf("timed-out WaitFor head = %d, want 1", head)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("WaitFor returned before its timeout without the sequence arriving")
	}
}

func TestAppendAtMirrorsSequencesAndRejectsGaps(t *testing.T) {
	src := smallSegs(t, t.TempDir())
	defer src.Close()
	appendN(t, src, 0, 10)

	dstDir := t.TempDir()
	dst := smallSegs(t, dstDir)
	recs, err := src.ReadFrom(1, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		seq, err := dst.AppendAt(r.Seq, r.Payload)
		if err != nil {
			t.Fatalf("AppendAt(%d): %v", r.Seq, err)
		}
		if seq != r.Seq {
			t.Fatalf("AppendAt(%d) assigned %d", r.Seq, seq)
		}
	}
	if err := dst.Commit(dst.LastSeq()); err != nil {
		t.Fatal(err)
	}
	// A gap (skipping seq 11 for 12) must refuse, not silently renumber.
	if _, err := dst.AppendAt(12, []byte("gap")); err == nil {
		t.Fatal("AppendAt with a sequence gap succeeded")
	}
	// Mirror survives reopen with identical sequences.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dstDir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, payloads := collect(t, re)
	if len(seqs) != 10 || seqs[0] != 1 || seqs[9] != 10 || payloads[9] != "rec-9" {
		t.Fatalf("mirrored replay seqs %v payload[9] %q", seqs, payloads[9])
	}
}

func TestAlignToPositionsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	w := smallSegs(t, dir)
	if err := w.AlignTo(41); err != nil {
		t.Fatal(err)
	}
	seq, err := w.AppendAt(42, []byte("first-after-snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("first append after AlignTo(41) got seq %d, want 42", seq)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.FirstSeq() != 42 || re.LastSeq() != 42 {
		t.Fatalf("reopened aligned log spans [%d,%d], want [42,42]", re.FirstSeq(), re.LastSeq())
	}
}

func TestAlignToRefusesNonEmptyLog(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 1)
	if err := w.AlignTo(100); err == nil {
		t.Fatal("AlignTo on a log holding records succeeded")
	}
}

func TestScanDirSalvagesTornDeadLog(t *testing.T) {
	dir := t.TempDir()
	w := smallSegs(t, dir)
	appendN(t, w, 0, 12)
	// Simulate SIGKILL: the process dies without Close; the OS still has
	// the file contents, plus a torn half-written record at the tail.
	w.mu.Lock()
	active := segmentPath(dir, w.segBase)
	w.mu.Unlock()
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var seqs []uint64
	err = ScanDir(dir, 5, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		if want := fmt.Sprintf("rec-%d", seq-1); string(payload) != want {
			t.Fatalf("seq %d payload %q, want %q", seq, payload, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 8 || seqs[0] != 5 || seqs[7] != 12 {
		t.Fatalf("salvaged seqs %v, want 5..12", seqs)
	}
	// Salvage reads only: the torn tail must still be on disk untouched.
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("salvage modified the dead log")
	}
	// A resume point beyond everything present yields nothing.
	err = ScanDir(dir, 13, func(seq uint64, payload []byte) error {
		t.Fatalf("unexpected record %d", seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A resume point before the oldest segment is missing history.
	sub := t.TempDir()
	w2 := smallSegs(t, sub)
	appendN(t, w2, 0, 8)
	if err := w2.Rotate(); err != nil {
		t.Fatal(err)
	}
	if n, err := w2.TruncateThrough(5); err != nil || n == 0 {
		t.Fatalf("TruncateThrough(5) removed %d segments, err %v", n, err)
	}
	w2.Close()
	if err := ScanDir(sub, 1, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ScanDir below oldest = %v, want ErrCompacted", err)
	}
}

// TestTruncateThroughAtExactSegmentSeal pins the snapshot/WAL boundary
// case where the snapshot's WALSeq lands exactly on a segment seal:
// compaction must reclaim every sealed segment, the survivor set must
// start exactly at WALSeq+1, and both replay and ReadFrom must resume
// there after a reopen.
func TestTruncateThroughAtExactSegmentSeal(t *testing.T) {
	dir := t.TempDir()
	w := smallSegs(t, dir)
	appendN(t, w, 0, 9)
	// Seal at exactly seq 9 (the snapshot point), then write the tail
	// the snapshot does not cover.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	sealSeq := w.LastSeq()
	if sealSeq != 9 {
		t.Fatalf("seal at seq %d, want 9", sealSeq)
	}
	appendN(t, w, 9, 4)

	if _, err := w.TruncateThrough(sealSeq); err != nil {
		t.Fatal(err)
	}
	if got := w.FirstSeq(); got != sealSeq+1 {
		t.Fatalf("FirstSeq after boundary truncation = %d, want %d", got, sealSeq+1)
	}
	// Exactly-at-boundary resume: from = WALSeq+1 must succeed, from =
	// WALSeq must report compacted.
	recs, err := w.ReadFrom(sealSeq+1, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].Seq != 10 {
		t.Fatalf("post-seal ReadFrom got %d records starting %d", len(recs), recs[0].Seq)
	}
	if _, err := w.ReadFrom(sealSeq, 100, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom(sealSeq) = %v, want ErrCompacted", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != 4 || seqs[0] != 10 || seqs[3] != 13 {
		t.Fatalf("reopened replay seqs %v, want 10..13", seqs)
	}
}

// TestReplayResumesMidSegmentAfterTornTail pins the other boundary
// case: a crash tears the final record mid-segment, the reopen
// truncates the tear, and both replay and new appends resume mid-
// segment at the exact next sequence — no renumbering, no gap.
func TestReplayResumesMidSegmentAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 7)
	w.mu.Lock()
	active := segmentPath(dir, w.segBase)
	w.mu.Unlock()
	// Abandon the handle (crash) and tear the last record: chop 3 bytes
	// off the file so record 7's frame is incomplete.
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(active, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, Policy: SyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.LastSeq(); got != 6 {
		t.Fatalf("LastSeq after torn-tail reopen = %d, want 6", got)
	}
	// Mid-segment resume: the next append lands at seq 7, in the same
	// segment file, and replay sees a dense 1..8.
	seq, err := re.Append([]byte("rec-after-tear"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("post-tear append got seq %d, want 7", seq)
	}
	if err := re.Commit(seq); err != nil {
		t.Fatal(err)
	}
	seqs, payloads := collect(t, re)
	if len(seqs) != 7 || seqs[0] != 1 || seqs[6] != 7 {
		t.Fatalf("replay seqs %v, want dense 1..7", seqs)
	}
	if payloads[6] != "rec-after-tear" {
		t.Fatalf("payload[6] = %q", payloads[6])
	}
	if payloads[5] != "rec-5" {
		t.Fatalf("payload[5] = %q (pre-tear record lost?)", payloads[5])
	}
	// And ReadFrom resumes mid-segment too.
	recs, err := re.ReadFrom(6, 100, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 6 || recs[1].Seq != 7 {
		t.Fatalf("mid-segment ReadFrom got %v", recs)
	}
}

func TestReadFromConcurrentWithAppends(t *testing.T) {
	w := smallSegs(t, t.TempDir())
	defer w.Close()
	appendN(t, w, 0, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < 200; i++ {
			seq, err := w.Append([]byte(fmt.Sprintf("rec-%d", i)))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := w.Commit(seq); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
		close(stop)
	}()
	// Follow the tail while the writer runs; sequences must arrive dense.
	next := uint64(1)
	for {
		select {
		case <-stop:
		default:
		}
		recs, err := w.ReadFrom(next, 64, 1<<20)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", next, err)
		}
		for _, r := range recs {
			if r.Seq != next {
				t.Fatalf("got seq %d, want %d", r.Seq, next)
			}
			next++
		}
		if next > 200 {
			break
		}
		w.WaitFor(next, 50*time.Millisecond)
	}
	wg.Wait()
	if next != 201 {
		t.Fatalf("followed through seq %d, want 200", next-1)
	}
}

func TestSizeBytesGrowsAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w := smallSegs(t, dir)
	if got := w.SizeBytes(); got != 0 {
		t.Fatalf("fresh SizeBytes = %d", got)
	}
	appendN(t, w, 0, 10)
	size := w.SizeBytes()
	if size <= 0 {
		t.Fatalf("SizeBytes after appends = %d", size)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.SizeBytes(); got != size {
		t.Fatalf("reopened SizeBytes = %d, want %d", got, size)
	}
}

// TestScanDirRefusesInteriorCorruption pins the salvage hard-error path:
// a flipped byte inside a record that has intact records behind it is
// damage, not a torn tail. ScanDir must refuse with ErrCorrupt rather
// than silently truncating committed history at the defect — a standby
// promoted over a quietly shortened log would ack data it never saw.
func TestScanDirRefusesInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	w := smallSegs(t, dir)
	appendN(t, w, 0, 12)
	w.mu.Lock()
	active := segmentPath(dir, w.segBase)
	w.mu.Unlock()
	// The log belongs to a "dead" process: no Close, files as the OS left
	// them.

	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	// First frame: 4-byte length, 4-byte CRC, payload. Flip a payload
	// byte; the frame stays boundable and the records behind it intact,
	// so the defect is interior, not torn.
	n := int64(binary.LittleEndian.Uint32(data))
	if int64(len(data)) <= headerBytes+n {
		t.Fatalf("active segment holds a single record (%d bytes); corruption would look torn", len(data))
	}
	data[headerBytes] ^= 0xFF
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []uint64
	err = ScanDir(dir, 1, func(seq uint64, payload []byte) error {
		got = append(got, seq)
		return nil
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ScanDir over interior damage = %v (delivered seqs %v), want ErrCorrupt", err, got)
	}
	// Refusal is read-only: the damaged evidence stays on disk untouched.
	after, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, data) {
		t.Fatal("ScanDir modified the damaged segment")
	}
}
