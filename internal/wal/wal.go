// Package wal is a segmented, checksummed write-ahead log: the durability
// substrate under the aggregation server's ack ⇒ durable contract. The
// paper's deployment setting (§1, §3.3) is a long-lived server collecting
// one-bit reports from millions of intermittently connected clients;
// silently losing accepted reports biases the bit-sum estimators in
// exactly the way the accuracy analysis assumes cannot happen, so every
// acked state transition is appended here — and committed to stable
// storage — before the reply leaves the server.
//
// Records are length-prefixed and CRC32C-framed, written to segment files
// named by the sequence number of their first record. Replay is
// torn-tail tolerant: a record cut short by a crash at the very end of
// the newest segment is truncated away, while a corrupted record anywhere
// records follow it is a hard error — silent skips would resurface as
// unexplained state divergence. Three fsync policies are supported:
// SyncAlways (fsync before every commit returns), SyncGrouped (commits
// batch behind a max-delay flush ticker — group commit), and SyncNever
// (benchmarks only; a crash may lose the page-cache tail).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Frame layout: [length uint32le][crc32c(payload) uint32le][payload].
const (
	headerBytes = 8
	// MaxRecordBytes bounds one record's payload; anything larger is a
	// framing error (and on disk, evidence of corruption).
	MaxRecordBytes = 16 << 20

	segSuffix = ".wal"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the WAL.
var (
	// ErrCorrupt marks an interior record whose checksum or framing is
	// invalid with further data behind it — not a torn tail, and never
	// skipped silently.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by operations on a closed WAL.
	ErrClosed = errors.New("wal: closed")
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Commit returns. Slowest, zero loss
	// window even under power failure.
	SyncAlways SyncPolicy = iota
	// SyncGrouped batches commits behind a background flush ticker:
	// Commit blocks until a flush covering its record completes, at most
	// FlushInterval plus one fsync later. Amortizes fsyncs under load.
	SyncGrouped
	// SyncNever performs no fsyncs on the append path (segment seals and
	// Close still sync). For benchmarks; a crash can lose the tail that
	// was still in the page cache.
	SyncNever
)

// ParseSyncPolicy maps the -wal-fsync flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always", "record", "per-record":
		return SyncAlways, nil
	case "grouped", "group", "batch":
		return SyncGrouped, nil
	case "never", "off", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, grouped or never)", s)
}

// String returns the canonical flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGrouped:
		return "grouped"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rolls to a new segment once the active one reaches
	// this size. Zero means 16 MiB.
	SegmentBytes int64
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// FlushInterval is the SyncGrouped max delay between fsyncs. Zero
	// means 2ms.
	FlushInterval time.Duration
	// Registry, when non-nil, receives the fednum_wal_* metrics.
	Registry *obs.Registry
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 16 << 20
	}
	return o.SegmentBytes
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval <= 0 {
		return 2 * time.Millisecond
	}
	return o.FlushInterval
}

// segment is one sealed (no longer written) segment file.
type segment struct {
	base  uint64 // sequence number of the first record
	count uint64 // records in the segment
	path  string
}

// WAL is an open write-ahead log. All methods are safe for concurrent
// use.
type WAL struct {
	opts Options
	m    *walMetrics

	// mu serializes appends, rotation and truncation, and guards the
	// active-segment file state. Lock ordering: mu before flushMu.
	mu       sync.Mutex
	f        *os.File
	segBase  uint64 // first seq of the active segment
	segCount uint64 // records written to the active segment
	segSize  int64  // bytes written to the active segment
	sealed   []segment
	firstSeq uint64 // first seq present on disk, 0 when empty
	nextSeq  uint64 // seq the next Append receives
	closed   bool
	failed   error // sticky append-path failure (unrecoverable torn state)
	// appended counts frame bytes over the log's life within this
	// process, seeded with the on-disk bytes found at Open. Monotonic
	// (TruncateThrough does not roll it back): it is the byte analogue of
	// the sequence head, which replication lag is measured against.
	appended int64
	// tailWait, when non-nil, is closed by the next append — the
	// tail-following hand-off WaitFor blocks on. Lazily created so the
	// append fast path pays nothing when nobody is following.
	tailWait chan struct{}

	// flushMu guards the durability frontier and the group-commit
	// hand-off.
	flushMu   sync.Mutex
	flushCond *sync.Cond
	syncedSeq uint64
	syncErr   error
	flushing  bool // a leader is running fsync (SyncAlways coalescing)

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open scans dir, truncates a torn tail off the newest segment, and
// returns a WAL ready for appends. The first boot (empty dir) starts the
// sequence at 1.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{opts: opts, m: newWALMetrics(opts.Registry)}
	w.flushCond = sync.NewCond(&w.flushMu)

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.startSegment(1); err != nil {
			return nil, err
		}
	} else {
		// Sealed segments get their record counts from the next
		// segment's base; the newest is scanned (and its torn tail cut).
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].base <= segs[i].base {
				return nil, fmt.Errorf("wal: segment bases out of order: %s then %s", segs[i].path, segs[i+1].path)
			}
			segs[i].count = segs[i+1].base - segs[i].base
		}
		last := &segs[len(segs)-1]
		res, err := scanSegment(last.path, false, nil)
		if err != nil {
			return nil, err
		}
		if res.tornBytes > 0 {
			if err := os.Truncate(last.path, res.goodBytes); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, err)
			}
			w.m.tornTruncations.Inc()
		}
		last.count = res.records
		w.sealed = segs[:len(segs)-1]
		for _, s := range w.sealed {
			st, err := os.Stat(s.path)
			if err != nil {
				return nil, err
			}
			w.appended += st.Size()
		}
		w.appended += res.goodBytes
		w.firstSeq = segs[0].base
		w.segBase = last.base
		w.segCount = last.count
		w.segSize = res.goodBytes
		w.nextSeq = last.base + last.count
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = f
		if w.firstSeq == w.nextSeq {
			// Every segment is empty (e.g. fresh post-compaction tail
			// with no appends yet): nothing on disk.
			w.firstSeq = 0
		}
	}
	w.flushMu.Lock()
	w.syncedSeq = w.nextSeq - 1
	w.flushMu.Unlock()
	w.m.segments.Set(float64(len(w.sealed) + 1))

	if opts.Policy == SyncGrouped {
		w.flushStop = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// listSegments returns the dir's segment files sorted by base sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil || base == 0 {
			return nil, fmt.Errorf("wal: alien file %s in wal dir", name)
		}
		segs = append(segs, segment{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", base, segSuffix))
}

// startSegment creates the active segment whose first record will carry
// seq base; the caller holds mu (or is Open, single-threaded).
func (w *WAL) startSegment(base uint64) error {
	f, err := os.OpenFile(segmentPath(w.opts.Dir, base), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.opts.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.segBase = base
	w.segCount = 0
	w.segSize = 0
	if w.nextSeq < base {
		w.nextSeq = base
	}
	return nil
}

// scanResult reports what one segment scan found.
type scanResult struct {
	records   uint64
	goodBytes int64 // offset just past the last valid record
	tornBytes int64 // trailing bytes belonging to a torn write
}

// scanSegment walks a segment's records, calling fn (when non-nil) with
// each payload. With sealed set, any framing or checksum defect is
// ErrCorrupt; otherwise a defect at the very tail — the only place a
// crashed append can tear — is reported as torn bytes, while a defect
// with intact data behind it is still ErrCorrupt.
func scanSegment(path string, sealed bool, fn func(payload []byte) error) (scanResult, error) {
	var res scanResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	size := int64(len(data))
	off := int64(0)
	for off < size {
		torn := func() (scanResult, error) {
			if sealed {
				return res, fmt.Errorf("%w: %s: defective record at offset %d inside a sealed segment", ErrCorrupt, path, off)
			}
			res.tornBytes = size - off
			return res, nil
		}
		if size-off < headerBytes {
			return torn()
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		end := off + headerBytes + n
		if n == 0 || n > MaxRecordBytes || end > size {
			// The frame runs off the end of the file (or its length field
			// is garbage, which makes the frame unboundable): if nothing
			// verifiable follows this is a torn tail; a defect we can
			// bound with data behind it is corruption.
			if end < size && n != 0 && n <= MaxRecordBytes {
				return res, fmt.Errorf("%w: %s: bad frame at offset %d", ErrCorrupt, path, off)
			}
			return torn()
		}
		payload := data[off+headerBytes : end]
		if crc32.Checksum(payload, crcTable) != crc {
			if end < size {
				return res, fmt.Errorf("%w: %s: checksum mismatch at offset %d with %d bytes following",
					ErrCorrupt, path, off, size-end)
			}
			return torn()
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return res, err
			}
		}
		res.records++
		res.goodBytes = end
		off = end
	}
	return res, nil
}

// syncDir fsyncs a directory so entry creations/removals survive power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append frames payload and writes it to the active segment, returning
// the record's sequence number. The record is NOT durable until a Commit
// covering the sequence returns (SyncAlways/SyncGrouped) — callers must
// not ack external effects before then.
func (w *WAL) Append(payload []byte) (uint64, error) {
	return w.append1(payload, 0)
}

// AppendAt appends payload asserting it will receive exactly sequence
// seq — the replication apply path, where a standby mirrors the
// primary's sequence space record for record and a gap means records
// were lost in flight. The durability contract is Append's.
func (w *WAL) AppendAt(seq uint64, payload []byte) (uint64, error) {
	if seq == 0 {
		return 0, errors.New("wal: AppendAt requires seq >= 1")
	}
	return w.append1(payload, seq)
}

// append1 is the shared append path; want, when non-zero, asserts the
// sequence the record must receive.
func (w *WAL) append1(payload []byte, want uint64) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("wal: empty payload")
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[headerBytes:], payload)

	start := time.Now()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	if want != 0 && want != w.nextSeq {
		next := w.nextSeq
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append gap: next sequence is %d, caller asserts %d", next, want)
	}
	if w.segSize >= w.opts.segmentBytes() && w.segCount > 0 {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		// A short write leaves an unframed tail; roll the file back to
		// the last good offset so later appends stay parseable. If even
		// that fails the log is poisoned and every append must error.
		if terr := w.f.Truncate(w.segSize); terr != nil {
			w.failed = fmt.Errorf("wal: append failed (%v) and truncate-back failed: %w", err, terr)
		}
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	seq := w.nextSeq
	w.nextSeq++
	w.segCount++
	w.segSize += int64(len(frame))
	w.appended += int64(len(frame))
	if w.firstSeq == 0 {
		w.firstSeq = seq
	}
	if w.tailWait != nil {
		close(w.tailWait)
		w.tailWait = nil
	}
	w.mu.Unlock()

	w.m.appends.Inc()
	w.m.appendBytes.Add(uint64(len(frame)))
	w.m.appendSeconds.Observe(time.Since(start).Seconds())
	return seq, nil
}

// Commit blocks until the record with sequence seq is durable under the
// configured policy (a no-op for SyncNever). An error means durability
// could not be established and the caller must not ack.
func (w *WAL) Commit(seq uint64) error {
	switch w.opts.Policy {
	case SyncNever:
		return nil
	case SyncGrouped:
		return w.waitFlushed(seq)
	default:
		return w.syncTo(seq)
	}
}

// syncTo is the SyncAlways path: the first waiter becomes the flush
// leader and fsyncs on behalf of everyone who appended before it.
func (w *WAL) syncTo(seq uint64) error {
	w.flushMu.Lock()
	for {
		if w.syncErr != nil {
			err := w.syncErr
			w.flushMu.Unlock()
			return err
		}
		if w.syncedSeq >= seq {
			w.flushMu.Unlock()
			return nil
		}
		if !w.flushing {
			break
		}
		w.flushCond.Wait()
	}
	w.flushing = true
	w.flushMu.Unlock()

	covered, err := w.fsyncActive()

	w.flushMu.Lock()
	w.flushing = false
	if err != nil {
		w.syncErr = err
	} else if covered > w.syncedSeq {
		w.syncedSeq = covered
	}
	w.flushCond.Broadcast()
	w.flushMu.Unlock()
	return err
}

// waitFlushed is the SyncGrouped path: block until the flush loop's
// frontier passes seq.
func (w *WAL) waitFlushed(seq uint64) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	for w.syncedSeq < seq && w.syncErr == nil {
		w.flushCond.Wait()
	}
	return w.syncErr
}

// fsyncActive syncs the active segment and returns the highest sequence
// the sync covers. Racing a rotation is benign: rotation itself fsyncs
// the sealed file before reopening, so if the file we held was swapped
// out underneath us the covered records are durable regardless.
func (w *WAL) fsyncActive() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	f := w.f
	covered := w.nextSeq - 1
	w.mu.Unlock()

	start := time.Now()
	err := f.Sync()
	w.m.flushSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		w.mu.Lock()
		rotated := w.f != f
		w.mu.Unlock()
		if rotated {
			// The handle was sealed (fsynced) and closed by a rotation
			// after we captured it; everything we meant to cover is
			// already durable.
			w.m.fsyncs.Inc()
			return covered, nil
		}
		w.m.fsyncErrors.Inc()
		return 0, fmt.Errorf("wal: fsync: %w", err)
	}
	w.m.fsyncs.Inc()
	return covered, nil
}

// flushLoop is the SyncGrouped ticker: at most FlushInterval between the
// first post-flush append and the fsync that makes it durable.
func (w *WAL) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.opts.flushInterval())
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			w.flushOnce()
			return
		case <-t.C:
			w.flushOnce()
		}
	}
}

// flushOnce fsyncs if any record is waiting and advances the frontier.
func (w *WAL) flushOnce() {
	w.mu.Lock()
	dirty := !w.closed && w.nextSeq-1 > w.syncedFrontier()
	w.mu.Unlock()
	if !dirty {
		return
	}
	covered, err := w.fsyncActive()
	w.flushMu.Lock()
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
	} else if covered > w.syncedSeq {
		w.syncedSeq = covered
	}
	w.flushCond.Broadcast()
	w.flushMu.Unlock()
}

// syncedFrontier reads the durability frontier; used only as a dirtiness
// hint, so the brief flushMu acquisition is fine.
func (w *WAL) syncedFrontier() uint64 {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	return w.syncedSeq
}

// rotateLocked seals the active segment (fsync + close) and starts the
// next one; the caller holds mu.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		w.m.fsyncErrors.Inc()
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	w.m.fsyncs.Inc()
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, segment{base: w.segBase, count: w.segCount, path: segmentPath(w.opts.Dir, w.segBase)})
	sealedThrough := w.nextSeq - 1
	if err := w.startSegment(w.nextSeq); err != nil {
		w.failed = fmt.Errorf("wal: rotate: %w", err)
		return w.failed
	}
	// Everything in the sealed file is on stable storage now.
	w.flushMu.Lock()
	if sealedThrough > w.syncedSeq {
		w.syncedSeq = sealedThrough
	}
	w.flushCond.Broadcast()
	w.flushMu.Unlock()
	w.m.segments.Set(float64(len(w.sealed) + 1))
	w.m.rotations.Inc()
	return nil
}

// Rotate seals the active segment if it holds any records, so a
// following TruncateThrough can reclaim them once a snapshot covers
// them. A WAL whose active segment is empty is left untouched.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.segCount == 0 {
		return nil
	}
	return w.rotateLocked()
}

// TruncateThrough removes sealed segments whose every record has
// sequence ≤ seq — called after a snapshot covering seq is durably on
// disk. The active segment is never removed. Returns how many segment
// files were deleted.
func (w *WAL) TruncateThrough(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(w.sealed) > 0 {
		s := w.sealed[0]
		if s.base+s.count-1 > seq {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, err
		}
		w.sealed = w.sealed[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.opts.Dir); err != nil {
			return removed, err
		}
		if len(w.sealed) > 0 {
			w.firstSeq = w.sealed[0].base
		} else if w.segCount > 0 {
			w.firstSeq = w.segBase
		} else {
			w.firstSeq = 0
		}
		w.m.segments.Set(float64(len(w.sealed) + 1))
		w.m.segmentsRemoved.Add(uint64(removed))
		w.m.compactions.Inc()
	}
	return removed, nil
}

// Replay streams every record on disk, oldest first, to fn with its
// sequence number. Defects in sealed segments, or interior defects in
// the active one, return ErrCorrupt; call Replay before concurrent
// appends start (boot-time recovery).
func (w *WAL) Replay(fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	segs := append([]segment(nil), w.sealed...)
	segs = append(segs, segment{base: w.segBase, count: w.segCount, path: segmentPath(w.opts.Dir, w.segBase)})
	w.mu.Unlock()

	for i, s := range segs {
		sealed := i < len(segs)-1
		seq := s.base
		res, err := scanSegment(s.path, sealed, func(payload []byte) error {
			err := fn(seq, payload)
			seq++
			return err
		})
		if err != nil {
			return err
		}
		if res.records != s.count {
			return fmt.Errorf("%w: segment %s holds %d records, expected %d from the segment index",
				ErrCorrupt, s.path, res.records, s.count)
		}
		w.m.replayed.Add(res.records)
	}
	return nil
}

// FirstSeq returns the oldest sequence still on disk, 0 when the log is
// empty.
func (w *WAL) FirstSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstSeq
}

// LastSeq returns the newest appended sequence — the WAL head — or
// base-1 when nothing was ever appended (0 on a fresh log).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Close flushes and closes the log. Further appends return ErrClosed.
func (w *WAL) Close() error {
	if w.flushStop != nil {
		close(w.flushStop)
		<-w.flushDone
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.closed = true
	if w.tailWait != nil {
		close(w.tailWait)
		w.tailWait = nil
	}
	// Seal outside the lock: once closed is set every other path returns
	// ErrClosed before touching the file, so holding mu across the final
	// fsync would only stall those callers on a disk wait.
	f, dirty := w.f, w.segCount > 0
	w.mu.Unlock()

	var err error
	if dirty {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	w.flushMu.Lock()
	if w.syncErr == nil {
		w.syncErr = ErrClosed
	}
	w.flushCond.Broadcast()
	w.flushMu.Unlock()
	return err
}
