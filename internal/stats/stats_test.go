package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Variance() != 4 {
		t.Errorf("Variance = %v, want 4", s.Variance())
	}
	if s.StdDev() != 2 {
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty stream should report zeros")
	}
}

func TestStreamSampleVariance(t *testing.T) {
	var s Stream
	s.AddAll([]float64{1, 2, 3})
	if !almostEqual(s.SampleVariance(), 1, 1e-12) {
		t.Errorf("SampleVariance = %v, want 1", s.SampleVariance())
	}
	var one Stream
	one.Add(5)
	if one.SampleVariance() != 0 {
		t.Error("single-element sample variance should be 0")
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var s Stream
		for i, v := range raw {
			xs[i] = float64(v)
			s.Add(xs[i])
		}
		return almostEqual(s.Mean(), Mean(xs), 1e-6) &&
			almostEqual(s.Variance(), Variance(xs), math.Max(1e-6, 1e-9*s.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamMerge(t *testing.T) {
	r := frand.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Normal(3, 2)
	}
	var whole, a, b Stream
	whole.AddAll(xs)
	a.AddAll(xs[:300])
	b.AddAll(xs[300:])
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestStreamMergeEmptyCases(t *testing.T) {
	var empty, full Stream
	full.AddAll([]float64{1, 2, 3})
	cp := full
	full.Merge(&empty)
	if full != cp {
		t.Error("merging empty changed the stream")
	}
	empty.Merge(&full)
	if empty.N() != 3 || empty.Mean() != 2 {
		t.Error("merge into empty failed")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.9, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 0.5) },
		func() { Percentile([]float64{1}, -0.1) },
		func() { Percentile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRMSE(t *testing.T) {
	// errors: 1, -1, 3 -> mean square (1+1+9)/3
	got := RMSE([]float64{11, 9, 13}, 10)
	want := math.Sqrt(11.0 / 3.0)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if RMSE(nil, 5) != 0 {
		t.Error("RMSE of no estimates should be 0")
	}
}

func TestNRMSE(t *testing.T) {
	if got := NRMSE([]float64{12}, 10); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("NRMSE = %v, want 0.2", got)
	}
	// Normalization by a negative truth uses |truth|.
	if got := NRMSE([]float64{-12}, -10); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("NRMSE negative truth = %v, want 0.2", got)
	}
	// Zero truth falls back to RMSE.
	if got := NRMSE([]float64{1}, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("NRMSE zero truth = %v, want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{11, 9, 10}, 10)
	if s.Reps != 3 {
		t.Errorf("Reps = %d", s.Reps)
	}
	wantRMSE := math.Sqrt(2.0 / 3.0)
	if !almostEqual(s.RMSE, wantRMSE, 1e-12) {
		t.Errorf("RMSE = %v, want %v", s.RMSE, wantRMSE)
	}
	if !almostEqual(s.NRMSE, wantRMSE/10, 1e-12) {
		t.Errorf("NRMSE = %v", s.NRMSE)
	}
	if !almostEqual(s.Bias, 0, 1e-12) {
		t.Errorf("Bias = %v, want 0", s.Bias)
	}
	if s.StdErr <= 0 {
		t.Errorf("StdErr = %v, want > 0", s.StdErr)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 5)
	if s.Reps != 0 || s.RMSE != 0 || s.NRMSE != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestSummarizeUnbiasedEstimatorHasSmallBias(t *testing.T) {
	r := frand.New(99)
	ests := make([]float64, 2000)
	for i := range ests {
		ests[i] = r.Normal(50, 5)
	}
	s := Summarize(ests, 50)
	if math.Abs(s.Bias) > 0.5 {
		t.Errorf("bias of unbiased noisy estimates = %v", s.Bias)
	}
	if !almostEqual(s.RMSE, 5, 0.3) {
		t.Errorf("RMSE = %v, want ~5", s.RMSE)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	// buckets: [0,2) [2,4) [4,6) [6,8) [8,10); -3 clamps to first, 42 to last.
	want := []int{3, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.BucketCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BucketCenter(0) = %v, want 1", got)
	}
	if got := h.BucketCenter(4); !almostEqual(got, 9, 1e-12) {
		t.Errorf("BucketCenter(4) = %v, want 9", got)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(6, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-3, false},
		{0, 1e-10, 1e-9, true},
		{0, 1e-3, 1e-9, false},
		{1e15, 1e15 * (1 + 1e-12), 1e-9, true},
		{inf, inf, 1e-9, true},
		{inf, -inf, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{1, math.NaN(), 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
