// Package stats provides the statistical machinery of the evaluation
// harness: streaming moments, percentiles, histograms, and the error
// metrics (RMSE, normalized RMSE, standard error) the paper reports.
package stats

import (
	"math"
	"sort"
)

// Stream accumulates count, mean and variance online using Welford's
// algorithm. The zero value is an empty stream ready for use.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the stream.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll folds every value in xs into the stream.
func (s *Stream) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the population variance (dividing by n).
func (s *Stream) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
func (s *Stream) SampleVariance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the population standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean, the paper's error bars.
func (s *Stream) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.SampleVariance() / float64(s.n))
}

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds another stream into s (parallel-Welford combination).
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// Percentile returns the q-quantile of xs (q in [0,1]) by linear
// interpolation between order statistics. It panics on an empty slice or a
// q outside [0,1], both programmer errors.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Percentile quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMSE returns sqrt(mean((estimates - truth)^2)), the paper's root mean
// squared error over repeated runs.
func RMSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 {
		return 0
	}
	var ss float64
	for _, e := range estimates {
		d := e - truth
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(estimates)))
}

// NRMSE returns RMSE divided by |truth|, the normalized error of §4. For
// truth == 0 it returns the unnormalized RMSE, the only sensible fallback.
func NRMSE(estimates []float64, truth float64) float64 {
	r := RMSE(estimates, truth)
	if truth == 0 {
		return r
	}
	return r / math.Abs(truth)
}

// ErrorSummary holds the accuracy of one experimental configuration over
// repeated independent runs, as plotted in Figures 1–4.
type ErrorSummary struct {
	Reps   int     // number of repetitions
	Truth  float64 // ground-truth value being estimated
	RMSE   float64
	NRMSE  float64
	StdErr float64 // standard error of the squared errors' mean, scaled to the RMSE curve
	Bias   float64 // mean(estimate) - truth
}

// Summarize computes the error summary for a set of repeated estimates of
// the same ground truth.
func Summarize(estimates []float64, truth float64) ErrorSummary {
	s := ErrorSummary{Reps: len(estimates), Truth: truth}
	if len(estimates) == 0 {
		return s
	}
	var errStream Stream
	var meanStream Stream
	for _, e := range estimates {
		d := e - truth
		errStream.Add(d * d)
		meanStream.Add(e)
	}
	s.RMSE = math.Sqrt(errStream.Mean())
	if truth != 0 {
		s.NRMSE = s.RMSE / math.Abs(truth)
	} else {
		s.NRMSE = s.RMSE
	}
	// Delta-method propagation of the standard error of the mean squared
	// error through sqrt: se(sqrt(m)) ≈ se(m) / (2 sqrt(m)).
	if s.RMSE > 0 {
		s.StdErr = errStream.StdErr() / (2 * s.RMSE)
	}
	s.Bias = meanStream.Mean() - truth
	return s
}

// Histogram bins values into k equal-width buckets over [lo, hi]. Values
// outside the range are clamped into the end buckets, mirroring how the
// paper's Figure 4b shows noisy bit means escaping [0, 1].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with k buckets over [lo, hi]. It panics
// if k < 1 or hi <= lo.
func NewHistogram(lo, hi float64, k int) *Histogram {
	if k < 1 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, k)}
}

// Add places x into its bucket, clamping out-of-range values.
func (h *Histogram) Add(x float64) {
	k := len(h.Counts)
	pos := (x - h.Lo) / (h.Hi - h.Lo) * float64(k)
	i := int(math.Floor(pos))
	if i < 0 {
		i = 0
	}
	if i >= k {
		i = k - 1
	}
	h.Counts[i]++
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Total returns the number of values added.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// ApproxEqual reports whether a and b agree to within tol, combining an
// absolute test (for values near zero) with a relative one (for large
// magnitudes): |a-b| <= tol * max(1, |a|, |b|). It is the comparison
// estimator code should reach for instead of == on floats — exact equality
// silently changes meaning whenever the arithmetic is refactored, which is
// why fedlint/floateq flags it. NaN compares unequal to everything,
// including itself; equal infinities compare equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Same-signed infinities agree; anything else involving an
		// infinity never does (tol*Inf would absorb any finite gap).
		return math.IsInf(a, 1) && math.IsInf(b, 1) || math.IsInf(a, -1) && math.IsInf(b, -1)
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
