package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
)

// ErrUnknownFigure reports a figure id outside the registry.
var ErrUnknownFigure = errors.New("experiments: unknown figure")

// Options tunes an experiment run.
type Options struct {
	// Reps is the number of independent repetitions per point. Zero means
	// 100, the paper's setting. Benchmarks use small values.
	Reps int
	// N overrides the default client population size (0 keeps each
	// figure's paper default, typically 10000).
	N int
	// Seed makes the whole figure reproducible.
	Seed uint64
}

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 100
	}
	return o.Reps
}

func (o Options) n(def int) int {
	if o.N <= 0 {
		return def
	}
	return o.N
}

// Point is one x-position of one series.
type Point struct {
	X       float64
	Summary stats.ErrorSummary
}

// Series is one method's curve across the sweep.
type Series struct {
	Method string
	Points []Point
}

// FigureResult is a regenerated figure: the paper's plotted series as data.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// population produces encoded values and their bit depth for one sweep
// position and repetition.
type population func(x float64, rep int, r *frand.RNG) (values []uint64, bits int)

// estimate runs one method once.
type estimate func(values []uint64, bits int, r *frand.RNG) (float64, error)

// runSweep executes the generic figure loop: for every x and repetition,
// draw a fresh population, compute its empirical ground truth, run every
// method, and summarize errors per (method, x).
//
// Because each repetition redraws the population, errors are measured
// against that repetition's own empirical truth (the paper's protocol) and
// the summary normalizes by the mean truth across repetitions.
func runSweep(xs []float64, pop population, names []string, run []estimate, truthFn func([]uint64) float64, opts Options) ([]Series, error) {
	series := make([]Series, len(run))
	for m := range series {
		series[m] = Series{Method: names[m], Points: make([]Point, 0, len(xs))}
	}
	root := frand.New(opts.Seed)
	for _, x := range xs {
		errsPerMethod := make([][]float64, len(run))
		var truthSum float64
		reps := opts.reps()
		for rep := 0; rep < reps; rep++ {
			r := root.Split()
			values, bits := pop(x, rep, r)
			truth := truthFn(values)
			truthSum += truth
			for m, f := range run {
				est, err := f(values, bits, r)
				if err != nil {
					return nil, fmt.Errorf("experiments: method %s at x=%v: %w", names[m], x, err)
				}
				errsPerMethod[m] = append(errsPerMethod[m], est-truth)
			}
		}
		meanTruth := truthSum / float64(reps)
		for m := range run {
			// Re-center the errors onto the mean truth so stats.Summarize
			// yields the same RMSE/NRMSE as a per-repetition-truth
			// computation.
			shifted := make([]float64, len(errsPerMethod[m]))
			for i, e := range errsPerMethod[m] {
				shifted[i] = meanTruth + e
			}
			series[m].Points = append(series[m].Points, Point{
				X:       x,
				Summary: stats.Summarize(shifted, meanTruth),
			})
		}
	}
	return series, nil
}

// runMeanSweep adapts Method implementations to runSweep with the exact
// mean as ground truth.
func runMeanSweep(xs []float64, pop population, methods []Method, opts Options) ([]Series, error) {
	names := make([]string, len(methods))
	fns := make([]estimate, len(methods))
	for i, m := range methods {
		names[i] = m.Name()
		fns[i] = m.EstimateMean
	}
	return runSweep(xs, pop, names, fns, fixedpoint.Mean, opts)
}

// runVarianceSweep adapts VarEstimator implementations with the exact
// population variance as ground truth.
func runVarianceSweep(xs []float64, pop population, methods []VarEstimator, opts Options) ([]Series, error) {
	names := make([]string, len(methods))
	fns := make([]estimate, len(methods))
	for i, m := range methods {
		names[i] = m.Name()
		fns[i] = m.EstimateVariance
	}
	return runSweep(xs, pop, names, fns, fixedpoint.Variance, opts)
}

// WriteTable renders the figure as an aligned text table.
func (f *FigureResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "  %-22s", s.Method); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "   [%s]\n", f.YLabel); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		if _, err := fmt.Fprintf(w, "%-14g", f.Series[0].Points[i].X); err != nil {
			return err
		}
		for _, s := range f.Series {
			p := s.Points[i]
			if _, err := fmt.Fprintf(w, "  %-22s", fmt.Sprintf("%.4g ±%.2g", yValue(f.YLabel, p), yErr(f.YLabel, p))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// yErr returns the standard error on the same scale as yValue.
func yErr(ylabel string, p Point) float64 {
	if strings.Contains(ylabel, "NRMSE") && p.Summary.Truth != 0 {
		return p.Summary.StdErr / math.Abs(p.Summary.Truth)
	}
	return p.Summary.StdErr
}

// WriteCSV renders the figure as CSV rows (figure, method, x, y, stderr).
func (f *FigureResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,method,x,y,stderr,rmse,nrmse,bias,reps"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g,%g,%d\n",
				f.ID, csvEscape(s.Method), p.X, yValue(f.YLabel, p), p.Summary.StdErr,
				p.Summary.RMSE, p.Summary.NRMSE, p.Summary.Bias, p.Summary.Reps); err != nil {
				return err
			}
		}
	}
	return nil
}

// yValue picks the plotted quantity: figures labelled NRMSE plot the
// normalized error (Figures 1–2), "bit mean" figures plot the mean
// estimated value itself (Figure 4b), and the rest plot the raw RMSE
// (Figures 3–4).
func yValue(ylabel string, p Point) float64 {
	switch {
	case strings.Contains(ylabel, "NRMSE"):
		return p.Summary.NRMSE
	case strings.Contains(ylabel, "bit mean"):
		return p.Summary.Truth + p.Summary.Bias
	default:
		return p.Summary.RMSE
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
