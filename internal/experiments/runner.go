package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ErrUnknownFigure reports a figure id outside the registry.
var ErrUnknownFigure = errors.New("experiments: unknown figure")

// Options tunes an experiment run.
type Options struct {
	// Reps is the number of independent repetitions per point. Zero means
	// 100, the paper's setting. Benchmarks use small values.
	Reps int
	// N overrides the default client population size (0 keeps each
	// figure's paper default, typically 10000).
	N int
	// Seed makes the whole figure reproducible.
	Seed uint64
	// Workers bounds the number of goroutines executing grid cells. Zero
	// means runtime.GOMAXPROCS(0); 1 forces serial execution. Every cell's
	// RNG is derived purely from (Seed, cell index), so a figure's result
	// is bit-identical at any worker count.
	Workers int
	// Metrics optionally receives engine counters (cells executed, worker
	// busy seconds); nil disables instrumentation.
	Metrics *obs.Registry
}

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 100
	}
	return o.Reps
}

func (o Options) n(def int) int {
	if o.N <= 0 {
		return def
	}
	return o.N
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// withSeed copies the options (keeping Workers, Metrics and every future
// field) with a different seed, for figures that run sub-sweeps.
func (o Options) withSeed(seed uint64) Options {
	o.Seed = seed
	return o
}

// Point is one x-position of one series.
type Point struct {
	X       float64
	Summary stats.ErrorSummary
}

// Series is one method's curve across the sweep.
type Series struct {
	Method string
	Points []Point
}

// FigureResult is a regenerated figure: the paper's plotted series as data.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// population produces encoded values and their bit depth for one sweep
// position and repetition.
type population func(x float64, rep int, r *frand.RNG) (values []uint64, bits int)

// estimate runs one method once. The core.Scratch is the executing
// worker's reusable buffer; estimates may ignore it or pass it to the
// core's Into variants.
type estimate func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error)

// runSweep executes the generic figure loop: for every x and repetition,
// draw a fresh population, compute its empirical ground truth, run every
// method, and summarize errors per (method, x).
//
// The (x, rep) grid cells execute on the engine's worker pool. Cell i's
// RNG is the i-th Split of frand.New(opts.Seed) in x-major, rep-minor
// order — exactly the stream the historical serial loop consumed — and the
// reduction runs serially in the same order, so the result is bit-identical
// at any worker count.
//
// Because each repetition redraws the population, errors are measured
// against that repetition's own empirical truth (the paper's protocol) and
// the summary normalizes by the mean truth across repetitions.
func runSweep(xs []float64, pop population, names []string, run []estimate, truthFn func([]uint64) float64, opts Options) ([]Series, error) {
	series := make([]Series, len(run))
	for m := range series {
		series[m] = Series{Method: names[m], Points: make([]Point, 0, len(xs))}
	}
	reps := opts.reps()
	nCells := len(xs) * reps
	rngs := frand.New(opts.Seed).SplitN(nCells)

	type cellOut struct {
		truth float64
		ests  []float64
		err   error
	}
	cells := make([]cellOut, nCells)
	estSlab := make([]float64, nCells*len(run))
	for ci := range cells {
		cells[ci].ests = estSlab[ci*len(run) : (ci+1)*len(run) : (ci+1)*len(run)]
	}
	runCells(nCells, opts.workers(), newEngineMetrics(opts.Metrics), func(ci int, s *core.Scratch) {
		c := &cells[ci]
		x := xs[ci/reps]
		r := rngs[ci]
		values, bits := pop(x, ci%reps, r)
		c.truth = truthFn(values)
		for m, f := range run {
			est, err := f(values, bits, r, s)
			if err != nil {
				c.err = fmt.Errorf("experiments: method %s at x=%v: %w", names[m], x, err)
				return
			}
			c.ests[m] = est
		}
	})

	// Serial reduction in the original (x, rep) order; the lowest-index
	// cell error wins, matching the serial loop's first-error semantics.
	errsPerMethod := make([][]float64, len(run))
	for xi, x := range xs {
		var truthSum float64
		for m := range run {
			errsPerMethod[m] = errsPerMethod[m][:0]
		}
		for rep := 0; rep < reps; rep++ {
			c := &cells[xi*reps+rep]
			if c.err != nil {
				return nil, c.err
			}
			truthSum += c.truth
			for m := range run {
				errsPerMethod[m] = append(errsPerMethod[m], c.ests[m]-c.truth)
			}
		}
		meanTruth := truthSum / float64(reps)
		for m := range run {
			// Re-center the errors onto the mean truth so stats.Summarize
			// yields the same RMSE/NRMSE as a per-repetition-truth
			// computation.
			shifted := make([]float64, len(errsPerMethod[m]))
			for i, e := range errsPerMethod[m] {
				shifted[i] = meanTruth + e
			}
			series[m].Points = append(series[m].Points, Point{
				X:       x,
				Summary: stats.Summarize(shifted, meanTruth),
			})
		}
	}
	return series, nil
}

// methodEstimate adapts a Method to the engine's estimate signature,
// preferring the allocation-lean ScratchMethod entry point when available.
func methodEstimate(m Method) estimate {
	if sm, ok := m.(ScratchMethod); ok {
		return sm.EstimateMeanInto
	}
	return func(values []uint64, bits int, r *frand.RNG, _ *core.Scratch) (float64, error) {
		return m.EstimateMean(values, bits, r)
	}
}

// runMeanSweep adapts Method implementations to runSweep with the exact
// mean as ground truth.
func runMeanSweep(xs []float64, pop population, methods []Method, opts Options) ([]Series, error) {
	names := make([]string, len(methods))
	fns := make([]estimate, len(methods))
	for i, m := range methods {
		names[i] = m.Name()
		fns[i] = methodEstimate(m)
	}
	return runSweep(xs, pop, names, fns, fixedpoint.Mean, opts)
}

// runVarianceSweep adapts VarEstimator implementations with the exact
// population variance as ground truth.
func runVarianceSweep(xs []float64, pop population, methods []VarEstimator, opts Options) ([]Series, error) {
	names := make([]string, len(methods))
	fns := make([]estimate, len(methods))
	for i, m := range methods {
		names[i] = m.Name()
		ev := m.EstimateVariance
		fns[i] = func(values []uint64, bits int, r *frand.RNG, _ *core.Scratch) (float64, error) {
			return ev(values, bits, r)
		}
	}
	return runSweep(xs, pop, names, fns, fixedpoint.Variance, opts)
}

// WriteTable renders the figure as an aligned text table.
func (f *FigureResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "  %-22s", s.Method); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "   [%s]\n", f.YLabel); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		if _, err := fmt.Fprintf(w, "%-14g", f.Series[0].Points[i].X); err != nil {
			return err
		}
		for _, s := range f.Series {
			p := s.Points[i]
			if _, err := fmt.Fprintf(w, "  %-22s", fmt.Sprintf("%.4g ±%.2g", yValue(f.YLabel, p), yErr(f.YLabel, p))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// yErr returns the standard error on the same scale as yValue.
func yErr(ylabel string, p Point) float64 {
	if strings.Contains(ylabel, "NRMSE") && p.Summary.Truth != 0 {
		return p.Summary.StdErr / math.Abs(p.Summary.Truth)
	}
	return p.Summary.StdErr
}

// WriteCSV renders the figure as CSV rows (figure, method, x, y, stderr).
func (f *FigureResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,method,x,y,stderr,rmse,nrmse,bias,reps"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g,%g,%d\n",
				f.ID, csvEscape(s.Method), p.X, yValue(f.YLabel, p), p.Summary.StdErr,
				p.Summary.RMSE, p.Summary.NRMSE, p.Summary.Bias, p.Summary.Reps); err != nil {
				return err
			}
		}
	}
	return nil
}

// yValue picks the plotted quantity: figures labelled NRMSE plot the
// normalized error (Figures 1–2), "bit mean" figures plot the mean
// estimated value itself (Figure 4b), and the rest plot the raw RMSE
// (Figures 3–4).
func yValue(ylabel string, p Point) float64 {
	switch {
	case strings.Contains(ylabel, "NRMSE"):
		return p.Summary.NRMSE
	case strings.Contains(ylabel, "bit mean"):
		return p.Summary.Truth + p.Summary.Bias
	default:
		return p.Summary.RMSE
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
