package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/federated"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FigPoisoning quantifies the §5 poisoning discussion: byzantine clients
// always claim the most significant bit is set. Under local randomness
// they choose that bit themselves every round; under central randomness
// the server only accepts their fabricated value when it happens to assign
// them the target bit, cutting the bias by the bit's sampling probability.
func FigPoisoning(opts Options) (*FigureResult, error) {
	xs := []float64{0, 0.01, 0.02, 0.05, 0.1}
	n := opts.n(5000)
	const bits = 12
	const featureName = "metric"
	codec := fixedpoint.MustCodec(bits, 0, 1)

	runMode := func(mode core.RandomnessMode) (Series, error) {
		s := Series{Method: "bitpush-" + mode.String()}
		reps := opts.reps()
		// One cell per (fraction, repetition), RNGs pre-split in the serial
		// frac-major, rep-minor order so the figure is worker-count invariant.
		nCells := len(xs) * reps
		rngs := frand.New(opts.Seed + uint64(mode)).SplitN(nCells)
		type cellOut struct {
			truth, est float64
			err        error
		}
		cells := make([]cellOut, nCells)
		runCells(nCells, opts.workers(), newEngineMetrics(opts.Metrics), func(ci int, _ *core.Scratch) {
			c := &cells[ci]
			frac := xs[ci/reps]
			r := rngs[ci]
			honest := codec.EncodeAll(workload.Normal{Mu: 500, Sigma: 80}.Sample(r, n))
			c.truth = fixedpoint.Mean(honest)
			clients := federated.NewPopulation(featureName, honest)
			evil := int(frac * float64(n))
			for i := 0; i < evil; i++ {
				clients = append(clients, &federated.ByzantineClient{
					Name: fmt.Sprintf("evil-%d", i), TargetBit: bits - 1,
				})
			}
			co, err := federated.NewCoordinator(federated.Config{
				Bits: bits, Randomness: mode, Seed: r.Uint64(),
			})
			if err != nil {
				c.err = err
				return
			}
			res, err := co.EstimateMeanSingleRound(clients, featureName, 0.5)
			if err != nil {
				c.err = err
				return
			}
			c.est = res.Estimate
		})
		for fi, frac := range xs {
			errsShifted := make([]float64, 0, reps)
			var truthSum float64
			for rep := 0; rep < reps; rep++ {
				c := &cells[fi*reps+rep]
				if c.err != nil {
					return s, c.err
				}
				truthSum += c.truth
				errsShifted = append(errsShifted, c.est-c.truth)
			}
			meanTruth := truthSum / float64(reps)
			for i := range errsShifted {
				errsShifted[i] += meanTruth
			}
			s.Points = append(s.Points, Point{X: frac, Summary: stats.Summarize(errsShifted, meanTruth)})
		}
		return s, nil
	}

	local, err := runMode(core.LocalRandomness)
	if err != nil {
		return nil, err
	}
	central, err := runMode(core.CentralRandomness)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "pois",
		Title:  fmt.Sprintf("poisoning: byzantine fraction vs error, Normal(500,80), n=%d, b=%d, γ=0.5", n, bits),
		XLabel: "byzantine fraction", YLabel: "NRMSE", Series: []Series{central, local},
	}, nil
}
