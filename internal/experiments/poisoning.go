package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/federated"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FigPoisoning quantifies the §5 poisoning discussion: byzantine clients
// always claim the most significant bit is set. Under local randomness
// they choose that bit themselves every round; under central randomness
// the server only accepts their fabricated value when it happens to assign
// them the target bit, cutting the bias by the bit's sampling probability.
func FigPoisoning(opts Options) (*FigureResult, error) {
	xs := []float64{0, 0.01, 0.02, 0.05, 0.1}
	n := opts.n(5000)
	const bits = 12
	const featureName = "metric"
	codec := fixedpoint.MustCodec(bits, 0, 1)

	runMode := func(mode core.RandomnessMode) (Series, error) {
		s := Series{Method: "bitpush-" + mode.String()}
		root := frand.New(opts.Seed + uint64(mode))
		for _, frac := range xs {
			var errsShifted []float64
			var truthSum float64
			reps := opts.reps()
			for rep := 0; rep < reps; rep++ {
				r := root.Split()
				honest := codec.EncodeAll(workload.Normal{Mu: 500, Sigma: 80}.Sample(r, n))
				truth := fixedpoint.Mean(honest)
				clients := federated.NewPopulation(featureName, honest)
				evil := int(frac * float64(n))
				for i := 0; i < evil; i++ {
					clients = append(clients, &federated.ByzantineClient{
						Name: fmt.Sprintf("evil-%d", i), TargetBit: bits - 1,
					})
				}
				co, err := federated.NewCoordinator(federated.Config{
					Bits: bits, Randomness: mode, Seed: r.Uint64(),
				})
				if err != nil {
					return s, err
				}
				res, err := co.EstimateMeanSingleRound(clients, featureName, 0.5)
				if err != nil {
					return s, err
				}
				truthSum += truth
				errsShifted = append(errsShifted, res.Estimate-truth)
			}
			meanTruth := truthSum / float64(reps)
			for i := range errsShifted {
				errsShifted[i] += meanTruth
			}
			s.Points = append(s.Points, Point{X: frac, Summary: stats.Summarize(errsShifted, meanTruth)})
		}
		return s, nil
	}

	local, err := runMode(core.LocalRandomness)
	if err != nil {
		return nil, err
	}
	central, err := runMode(core.CentralRandomness)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "pois",
		Title:  fmt.Sprintf("poisoning: byzantine fraction vs error, Normal(500,80), n=%d, b=%d, γ=0.5", n, bits),
		XLabel: "byzantine fraction", YLabel: "NRMSE", Series: []Series{central, local},
	}, nil
}
