package experiments

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestFiguresDeterministicAcrossWorkers is the engine's core contract: every
// registered figure produces a bit-identical FigureResult whether its grid
// cells run serially or across 8 workers, because each cell's RNG is a pure
// function of (seed, cell index) and the reduction is serial.
func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opts := Options{Reps: 3, N: 400, Seed: 42}
			serial := opts
			serial.Workers = 1
			parallel := opts
			parallel.Workers = 8
			got1, err := Run(id, serial)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			got8, err := Run(id, parallel)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if !reflect.DeepEqual(got1, got8) {
				t.Errorf("figure %s differs between Workers:1 and Workers:8", id)
			}
		})
	}
}

// TestRunRecordsEngineMetrics checks that a figure run wired to a registry
// reports its executed cells and accumulated busy time.
func TestRunRecordsEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	opts := Options{Reps: 2, N: 200, Seed: 1, Workers: 2, Metrics: reg}
	if _, err := Run("1a", opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	vars := reg.ExpvarMap()
	cells, ok := vars[MetricCells].(uint64)
	if !ok || cells == 0 {
		t.Errorf("%s = %v, want positive count", MetricCells, vars[MetricCells])
	}
	// Fig1a sweeps 7 x-positions at 2 reps: 14 cells.
	if cells != 14 {
		t.Errorf("cells = %d, want 14", cells)
	}
	busy, ok := vars[MetricWorkerBusy].(float64)
	if !ok || busy <= 0 {
		t.Errorf("%s = %v, want positive seconds", MetricWorkerBusy, vars[MetricWorkerBusy])
	}
}

// TestRunSweepErrorDeterministicAcrossWorkers checks that when several cells
// fail, the reported error is the same (the first in serial order) at any
// worker count.
func TestRunSweepErrorDeterministicAcrossWorkers(t *testing.T) {
	// Adaptive needs >= 2 clients; a 1-client population fails every cell.
	opts := Options{Reps: 4, N: 1, Seed: 9}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 8
	_, err1 := Run("1a", serial)
	_, err8 := Run("1a", parallel)
	if err1 == nil || err8 == nil {
		t.Fatalf("expected errors, got %v and %v", err1, err8)
	}
	if err1.Error() != err8.Error() {
		t.Errorf("error differs across worker counts:\n  serial:   %v\n  parallel: %v", err1, err8)
	}
}
