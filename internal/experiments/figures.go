package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure is a registered experiment regenerating one paper figure.
type Figure struct {
	ID          string
	Description string
	Run         func(Options) (*FigureResult, error)
}

// Registry lists every reproducible figure and ablation, keyed by id.
var Registry = map[string]Figure{
	"1a":    {"1a", "mean NRMSE vs distribution mean (Normal, σ=100, n=10K)", Fig1a},
	"1b":    {"1b", "variance NRMSE vs distribution mean (Normal, σ=100, n=100K)", Fig1b},
	"1c":    {"1c", "mean NRMSE vs bit depth (Normal(1000,100), n=10K)", Fig1c},
	"2a":    {"2a", "mean NRMSE vs number of clients (census ages)", Fig2a},
	"2b":    {"2b", "variance NRMSE vs number of clients (census ages)", Fig2b},
	"2c":    {"2c", "mean NRMSE vs bit depth (census ages, n=10K)", Fig2c},
	"3a":    {"3a", "mean RMSE vs ε, high-privacy regime ε<1 (census ages)", Fig3a},
	"3b":    {"3b", "mean RMSE vs ε, moderate regime ε≥1 (census ages)", Fig3b},
	"4a":    {"4a", "RMSE vs bit-squashing threshold multiple (ε=2)", Fig4a},
	"4b":    {"4b", "noisy per-bit means under ε=2 with squash threshold 0.05", Fig4b},
	"4c":    {"4c", "RMSE vs bit depth under DP ε=2 with squashing", Fig4c},
	"tdp":   {"tdp", "§4 text: Laplace and randomized rounding 2-3x worse under DP", FigTextDP},
	"pois":  {"pois", "§5 ablation: poisoning impact, local vs central randomness", FigPoisoning},
	"stdp":  {"stdp", "§4.3: sample-and-threshold distributed DP adds negligible noise", FigSampleThreshold},
	"cache": {"cache", "§3.2 ablation: adaptive caching (pooled rounds) vs round-2 only", FigCaching},
	"bsend": {"bsend", "Corollary 3.2 ablation: bits sent per client", FigBSend},
	"delta": {"delta", "§3.2 sensitivity: adaptive round-1 fraction δ", FigDeltaSweep},
	"gamma": {"gamma", "§3.1 sensitivity: round-1 shaping exponent γ", FigGammaSweep},
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one registered figure by id.
func Run(id string, opts Options) (*FigureResult, error) {
	fig, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownFigure, id, IDs())
	}
	return fig.Run(opts)
}

// normalPop builds a population generator drawing Normal(mu(x), sigma) at
// a fixed bit depth.
func normalPop(mu func(x float64) float64, sigma float64, bits, n int) population {
	codec := fixedpoint.MustCodec(bits, 0, 1)
	return func(x float64, _ int, r *frand.RNG) ([]uint64, int) {
		vals := workload.Normal{Mu: mu(x), Sigma: sigma}.Sample(r, n)
		return codec.EncodeAll(vals), bits
	}
}

// censusPop builds a census-age population generator at a fixed size.
func censusPop(bits int, n func(x float64) int) population {
	codec := fixedpoint.MustCodec(bits, 0, 1)
	return func(x float64, _ int, r *frand.RNG) ([]uint64, int) {
		vals := workload.CensusAges{}.Sample(r, n(x))
		return codec.EncodeAll(vals), bits
	}
}

// standardMethods is the noise-free method set of Figures 1 and 2.
func standardMethods() []Method {
	return []Method{
		Dithering{},
		Weighted{Gamma: 0.5},
		Weighted{Gamma: 1},
		Adaptive{Alpha: 0.5},
		Adaptive{Alpha: 1},
	}
}

// Fig1a regenerates Figure 1a: mean estimation accuracy as the Normal
// mean μ varies, with σ = 100 and 10K clients at 13-bit depth.
func Fig1a(opts Options) (*FigureResult, error) {
	xs := []float64{100, 200, 400, 800, 1600, 3200, 6400}
	n := opts.n(10000)
	series, err := runMeanSweep(xs, normalPop(func(x float64) float64 { return x }, 100, 13, n), standardMethods(), opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "1a", Title: fmt.Sprintf("mean estimation, Normal(μ,100), n=%d, b=13", n),
		XLabel: "mu", YLabel: "NRMSE", Series: series,
	}, nil
}

// Fig1b regenerates Figure 1b: variance estimation with a 100K cohort.
func Fig1b(opts Options) (*FigureResult, error) {
	xs := []float64{100, 200, 400, 800, 1600, 3200, 6400}
	n := opts.n(100000)
	methods := []VarEstimator{
		DitherVariance{},
		BPVariance{Method: core.CenteredVariance, SingleRoundGamma: 0.5},
		BPVariance{Method: core.CenteredVariance, SingleRoundGamma: 1},
		BPVariance{Method: core.CenteredVariance},
	}
	series, err := runVarianceSweep(xs, normalPop(func(x float64) float64 { return x }, 100, 13, n), methods, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "1b", Title: fmt.Sprintf("variance estimation, Normal(μ,100), n=%d, b=13", n),
		XLabel: "mu", YLabel: "NRMSE", Series: series,
	}, nil
}

// Fig1c regenerates Figure 1c: mean estimation as the assumed bit depth
// grows past what the data needs.
func Fig1c(opts Options) (*FigureResult, error) {
	xs := []float64{11, 12, 14, 16, 20, 24}
	n := opts.n(10000)
	pop := func(x float64, _ int, r *frand.RNG) ([]uint64, int) {
		bits := int(x)
		vals := workload.Normal{Mu: 1000, Sigma: 100}.Sample(r, n)
		return fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals), bits
	}
	series, err := runMeanSweep(xs, pop, standardMethods(), opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "1c", Title: fmt.Sprintf("mean estimation vs bit depth, Normal(1000,100), n=%d", n),
		XLabel: "bit depth", YLabel: "NRMSE", Series: series,
	}, nil
}

// Fig2a regenerates Figure 2a: census-age mean accuracy as the cohort
// size grows.
func Fig2a(opts Options) (*FigureResult, error) {
	xs := []float64{1000, 2000, 5000, 10000, 20000, 50000, 100000}
	series, err := runMeanSweep(xs, censusPop(8, func(x float64) int { return int(x) }), standardMethods(), opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "2a", Title: "mean estimation, census ages, b=8",
		XLabel: "clients", YLabel: "NRMSE", Series: series,
	}, nil
}

// Fig2b regenerates Figure 2b: census-age variance accuracy vs cohort size.
func Fig2b(opts Options) (*FigureResult, error) {
	xs := []float64{1000, 2000, 5000, 10000, 20000, 50000, 100000}
	methods := []VarEstimator{
		DitherVariance{},
		BPVariance{Method: core.CenteredVariance, SingleRoundGamma: 0.5},
		BPVariance{Method: core.CenteredVariance, SingleRoundGamma: 1},
		BPVariance{Method: core.CenteredVariance},
	}
	series, err := runVarianceSweep(xs, censusPop(8, func(x float64) int { return int(x) }), methods, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "2b", Title: "variance estimation, census ages, b=8",
		XLabel: "clients", YLabel: "NRMSE", Series: series,
	}, nil
}

// Fig2c regenerates Figure 2c: census-age mean accuracy vs bit depth.
func Fig2c(opts Options) (*FigureResult, error) {
	xs := []float64{8, 10, 12, 16, 20, 24}
	n := opts.n(10000)
	pop := func(x float64, _ int, r *frand.RNG) ([]uint64, int) {
		bits := int(x)
		vals := workload.CensusAges{}.Sample(r, n)
		return fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals), bits
	}
	series, err := runMeanSweep(xs, pop, standardMethods(), opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "2c", Title: fmt.Sprintf("mean estimation vs bit depth, census ages, n=%d", n),
		XLabel: "bit depth", YLabel: "NRMSE", Series: series,
	}, nil
}

// dpMethodSet builds the Figure 3 method set at a given ε.
func dpMethodSet(eps float64) []Method {
	return []Method{
		Dithering{Eps: eps},
		PiecewiseMethod{Eps: eps},
		Weighted{Gamma: 0.5, Eps: eps},
		Weighted{Gamma: 1, Eps: eps},
		Adaptive{Eps: eps},
	}
}

// runEpsSweep runs an ε sweep where methods are rebuilt per x from the
// factory. runSweep keeps methods fixed across xs, so each x runs as its
// own one-point sweep.
func runEpsSweep(xs []float64, pop population, names []string, factory func(eps float64) []Method, opts Options) ([]Series, error) {
	series := make([]Series, len(names))
	for i, name := range names {
		series[i] = Series{Method: name}
	}
	for _, eps := range xs {
		sub, err := runMeanSweep([]float64{eps}, pop, factory(eps), opts.withSeed(opts.Seed+uint64(eps*1000)))
		if err != nil {
			return nil, err
		}
		for i := range series {
			series[i].Points = append(series[i].Points, sub[i].Points[0])
		}
	}
	return series, nil
}

// Fig3a regenerates Figure 3a: DP mean estimation in the high-privacy
// regime (ε < 1) on census ages.
func Fig3a(opts Options) (*FigureResult, error) {
	return dpFigure("3a", []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9}, opts)
}

// Fig3b regenerates Figure 3b: the moderate-privacy regime (ε ≥ 1).
func Fig3b(opts Options) (*FigureResult, error) {
	return dpFigure("3b", []float64{1, 1.5, 2, 3, 4, 5}, opts)
}

func dpFigure(id string, xs []float64, opts Options) (*FigureResult, error) {
	n := opts.n(10000)
	names := make([]string, 0, 5)
	for _, m := range dpMethodSet(1) {
		names = append(names, m.Name())
	}
	series, err := runEpsSweep(xs, censusPop(8, func(float64) int { return n }), names, dpMethodSet, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: id, Title: fmt.Sprintf("DP mean estimation, census ages, n=%d, b=8", n),
		XLabel: "epsilon", YLabel: "RMSE", Series: series,
	}, nil
}

// Fig4a regenerates Figure 4a: accuracy as the bit-squashing threshold
// (expressed as a multiple of the expected DP noise) varies, at ε = 2 on
// synthetic data with vacuous high bits.
func Fig4a(opts Options) (*FigureResult, error) {
	xs := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 3, 5}
	n := opts.n(10000)
	const eps, bits = 2.0, 16
	pop := normalPop(func(float64) float64 { return 800 }, 100, bits, n)
	names := []string{"weighted(γ=1)+squash", "adaptive+squash"}
	series := make([]Series, len(names))
	for i, name := range names {
		series[i] = Series{Method: name}
	}
	for _, mult := range xs {
		methods := []Method{
			Weighted{Gamma: 1, Eps: eps, SquashMultiple: mult},
			Adaptive{Eps: eps, SquashMultiple: mult},
		}
		sub, err := runMeanSweep([]float64{mult}, pop, methods, opts.withSeed(opts.Seed+uint64(mult*1000)))
		if err != nil {
			return nil, err
		}
		for i := range series {
			series[i].Points = append(series[i].Points, sub[i].Points[0])
		}
	}
	return &FigureResult{
		ID: "4a", Title: fmt.Sprintf("bit squashing threshold sweep, Normal(800,100), ε=%g, b=%d, n=%d", eps, bits, n),
		XLabel: "threshold multiple", YLabel: "RMSE", Series: series,
	}, nil
}

// Fig4b regenerates Figure 4b: the per-bit noisy means under ε = 2, the
// picture motivating squashing — a dense region over the active bits and
// symmetric noise (some means outside [0,1]) above them.
func Fig4b(opts Options) (*FigureResult, error) {
	const bits, eps = 16, 2.0
	n := opts.n(10000)
	rr, err := ldp.NewRandomizedResponse(eps)
	if err != nil {
		return nil, err
	}
	probs, err := core.GeometricProbs(bits, 0.5)
	if err != nil {
		return nil, err
	}
	codec := fixedpoint.MustCodec(bits, 0, 1)
	reps := opts.reps()
	// One cell per repetition; cell RNGs pre-split in repetition order so
	// the figure matches the historical serial loop at any worker count.
	rngs := frand.New(opts.Seed).SplitN(reps)
	type cellOut struct {
		bitMeans  []float64
		trueMeans []float64
		err       error
	}
	cells := make([]cellOut, reps)
	runCells(reps, opts.workers(), newEngineMetrics(opts.Metrics), func(rep int, s *core.Scratch) {
		c := &cells[rep]
		r := rngs[rep]
		values := codec.EncodeAll(workload.Normal{Mu: 800, Sigma: 100}.Sample(r, n))
		if rep == 0 {
			c.trueMeans = fixedpoint.BitMeans(values, bits)
		}
		res, err := core.RunInto(core.Config{Bits: bits, Probs: probs, RR: rr}, values, r, s)
		if err != nil {
			c.err = err
			return
		}
		// The Result aliases the worker's Scratch; copy what outlives the cell.
		c.bitMeans = append([]float64(nil), res.BitMeans...)
	})
	perBit := make([][]float64, bits)
	var trueMeans []float64
	for rep := range cells {
		c := &cells[rep]
		if c.err != nil {
			return nil, c.err
		}
		if rep == 0 {
			trueMeans = c.trueMeans
		}
		for j, m := range c.bitMeans {
			perBit[j] = append(perBit[j], m)
		}
	}
	series := Series{Method: "noisy bit mean"}
	for j := 0; j < bits; j++ {
		series.Points = append(series.Points, Point{
			X:       float64(j),
			Summary: stats.Summarize(perBit[j], trueMeans[j]),
		})
	}
	return &FigureResult{
		ID: "4b", Title: fmt.Sprintf("estimated bit means under ε=%g (squash threshold 0.05), Normal(800,100), b=%d", eps, bits),
		XLabel: "bit index", YLabel: "bit mean", Series: []Series{series},
	}, nil
}

// Fig4c regenerates Figure 4c: DP accuracy vs bit depth at ε = 2, where
// squashing keeps the adaptive method flat while every bound-scaled method
// grows with the (noisy) magnitude.
func Fig4c(opts Options) (*FigureResult, error) {
	xs := []float64{11, 12, 14, 16, 20, 24}
	n := opts.n(10000)
	const eps = 2.0
	pop := func(x float64, _ int, r *frand.RNG) ([]uint64, int) {
		bits := int(x)
		vals := workload.Normal{Mu: 800, Sigma: 100}.Sample(r, n)
		return fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals), bits
	}
	methods := []Method{
		Dithering{Eps: eps},
		PiecewiseMethod{Eps: eps},
		Weighted{Gamma: 1, Eps: eps},
		Adaptive{Eps: eps},
		Adaptive{Eps: eps, SquashMultiple: 2},
	}
	series, err := runMeanSweep(xs, pop, methods, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "4c", Title: fmt.Sprintf("DP mean estimation vs bit depth, ε=%g, Normal(800,100), n=%d", eps, n),
		XLabel: "bit depth", YLabel: "RMSE", Series: series,
	}, nil
}

// FigTextDP reproduces the §4 text claim that the omitted DP baselines
// (Laplace noise and Duchi et al. randomized rounding) trail the plotted
// methods by 2-3x.
func FigTextDP(opts Options) (*FigureResult, error) {
	xs := []float64{0.5, 1, 2, 4}
	n := opts.n(10000)
	factory := func(eps float64) []Method {
		return []Method{
			LaplaceMethod{Eps: eps},
			DuchiMethod{Eps: eps},
			PiecewiseMethod{Eps: eps},
			Weighted{Gamma: 1, Eps: eps},
			Adaptive{Eps: eps},
		}
	}
	names := make([]string, 0, 5)
	for _, m := range factory(1) {
		names = append(names, m.Name())
	}
	series, err := runEpsSweep(xs, censusPop(8, func(float64) int { return n }), names, factory, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "tdp", Title: fmt.Sprintf("omitted DP baselines, census ages, n=%d, b=8", n),
		XLabel: "epsilon", YLabel: "RMSE", Series: series,
	}, nil
}

// FigBSend sweeps the number of bits each client sends (Corollary 3.2).
func FigBSend(opts Options) (*FigureResult, error) {
	xs := []float64{1, 2, 4, 8}
	n := opts.n(10000)
	const bits = 12
	pop := normalPop(func(float64) float64 { return 1000 }, 100, bits, n)
	series := []Series{{Method: "weighted(γ=1)"}}
	for _, bsend := range xs {
		b := int(bsend)
		fn := func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
			probs, err := s.GeometricProbs(bits, 1)
			if err != nil {
				return 0, err
			}
			res, err := core.RunInto(core.Config{Bits: bits, Probs: probs, BSend: b}, values, r, s)
			if err != nil {
				return 0, err
			}
			return res.Estimate, nil
		}
		sub, err := runSweep([]float64{bsend}, pop, []string{"weighted(γ=1)"}, []estimate{fn}, fixedpoint.Mean, opts.withSeed(opts.Seed+uint64(bsend)))
		if err != nil {
			return nil, err
		}
		series[0].Points = append(series[0].Points, sub[0].Points[0])
	}
	return &FigureResult{
		ID: "bsend", Title: fmt.Sprintf("bits sent per client, Normal(1000,100), n=%d, b=%d", n, bits),
		XLabel: "b_send", YLabel: "NRMSE", Series: series,
	}, nil
}

// FigCaching compares pooled (cached) adaptive aggregation against using
// round-2 reports only, across cohort sizes, on a full-range uniform
// population where every bit is active.
func FigCaching(opts Options) (*FigureResult, error) {
	xs := []float64{1000, 3000, 10000, 30000}
	const bits = 12
	pop := func(x float64, _ int, r *frand.RNG) ([]uint64, int) {
		values := make([]uint64, int(x))
		for i := range values {
			values[i] = r.Uint64n(1 << bits)
		}
		return values, bits
	}
	methods := []Method{Adaptive{}, Adaptive{NoCache: true}}
	series, err := runMeanSweep(xs, pop, methods, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID: "cache", Title: "adaptive caching ablation, Uniform[0,4096), b=12",
		XLabel: "clients", YLabel: "NRMSE", Series: series,
	}, nil
}
