// Package experiments regenerates the paper's evaluation (Figures 1–4 and
// the ablations DESIGN.md calls out). Each figure is a registered
// experiment producing series of (x, error-summary) points; cmd/fedbench
// renders them as tables and CSV, and the repository-root benchmarks run
// reduced-repetition versions of the same code.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dither"
	"repro/internal/frand"
	"repro/internal/ldp"
)

// Method estimates a population mean from encoded b-bit client values,
// adapting every estimator in the repository to one evaluation interface.
type Method interface {
	// Name labels the series in figure output.
	Name() string
	// EstimateMean runs one full estimation over the population.
	EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error)
}

// ScratchMethod is a Method that can run allocation-lean by reusing the
// executing worker's core.Scratch. The engine prefers EstimateMeanInto when
// a method implements it; both entry points must consume the identical RNG
// stream and produce the identical estimate.
type ScratchMethod interface {
	Method
	EstimateMeanInto(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error)
}

// rrFor builds the optional randomized-response layer for a method.
func rrFor(eps float64) (*ldp.RandomizedResponse, error) {
	if eps == 0 {
		return nil, nil
	}
	return ldp.NewRandomizedResponse(eps)
}

// toFloats decodes encoded values for the baselines that consume reals.
func toFloats(values []uint64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = float64(v)
	}
	return out
}

// Weighted is the paper's single-round "weighted" method: one round of
// bit-pushing with p_j ∝ 2^{γj}. Eps > 0 adds randomized response;
// SquashMultiple > 0 squashes bit means below that multiple of the
// expected DP noise.
type Weighted struct {
	Gamma          float64
	Eps            float64
	SquashMultiple float64
}

// Name implements Method.
func (m Weighted) Name() string {
	n := fmt.Sprintf("weighted(γ=%g)", m.Gamma)
	if m.SquashMultiple > 0 {
		n += "+squash"
	}
	return n
}

// EstimateMean implements Method.
func (m Weighted) EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error) {
	probs, err := core.GeometricProbs(bits, m.Gamma)
	if err != nil {
		return 0, err
	}
	rr, err := rrFor(m.Eps)
	if err != nil {
		return 0, err
	}
	cfg := core.Config{Bits: bits, Probs: probs, RR: rr, SquashMultiple: m.SquashMultiple}
	res, err := core.Run(cfg, values, r)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// EstimateMeanInto implements ScratchMethod: the same round through
// core.RunInto and the Scratch's geometric-probs cache.
func (m Weighted) EstimateMeanInto(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
	probs, err := s.GeometricProbs(bits, m.Gamma)
	if err != nil {
		return 0, err
	}
	rr, err := rrFor(m.Eps)
	if err != nil {
		return 0, err
	}
	cfg := core.Config{Bits: bits, Probs: probs, RR: rr, SquashMultiple: m.SquashMultiple}
	res, err := core.RunInto(cfg, values, r, s)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Adaptive is the two-round adaptive bit-pushing method (Algorithm 2).
type Adaptive struct {
	Alpha          float64 // round-2 exponent; 0 means the 0.5 default
	Eps            float64
	SquashMultiple float64
	NoCache        bool
}

// Name implements Method.
func (m Adaptive) Name() string {
	alpha := m.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	n := fmt.Sprintf("adaptive(α=%g)", alpha)
	if m.SquashMultiple > 0 {
		n += "+squash"
	}
	if m.NoCache {
		n += "-nocache"
	}
	return n
}

// EstimateMean implements Method.
func (m Adaptive) EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error) {
	rr, err := rrFor(m.Eps)
	if err != nil {
		return 0, err
	}
	cfg := core.AdaptiveConfig{
		Bits: bits, Alpha: m.Alpha, RR: rr,
		NoCache: m.NoCache, SquashMultiple: m.SquashMultiple,
	}
	res, err := core.RunAdaptive(cfg, values, r)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// EstimateMeanInto implements ScratchMethod via core.RunAdaptiveInto.
func (m Adaptive) EstimateMeanInto(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
	rr, err := rrFor(m.Eps)
	if err != nil {
		return 0, err
	}
	cfg := core.AdaptiveConfig{
		Bits: bits, Alpha: m.Alpha, RR: rr,
		NoCache: m.NoCache, SquashMultiple: m.SquashMultiple,
	}
	res, err := core.RunAdaptiveInto(cfg, values, r, s)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Dithering is the subtractive-dithering baseline with the [0, 2^b) bound.
type Dithering struct {
	Eps float64
}

// Name implements Method.
func (m Dithering) Name() string { return "dithering" }

// EstimateMean implements Method.
func (m Dithering) EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error) {
	bound := float64(uint64(1) << uint(bits))
	var d *dither.Dithering
	var err error
	if m.Eps > 0 {
		d, err = dither.NewLDP(bound, m.Eps)
	} else {
		d, err = dither.New(bound)
	}
	if err != nil {
		return 0, err
	}
	return d.EstimateMean(toFloats(values), r), nil
}

// PiecewiseMethod is the Wang et al. piecewise mechanism baseline.
type PiecewiseMethod struct {
	Eps float64
}

// Name implements Method.
func (m PiecewiseMethod) Name() string { return "piecewise" }

// EstimateMean implements Method.
func (m PiecewiseMethod) EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error) {
	p, err := ldp.NewPiecewise(m.Eps, 0, float64(uint64(1)<<uint(bits)))
	if err != nil {
		return 0, err
	}
	return p.EstimateMean(toFloats(values), r), nil
}

// DuchiMethod is the Duchi et al. randomized-rounding baseline.
type DuchiMethod struct {
	Eps float64
}

// Name implements Method.
func (m DuchiMethod) Name() string { return "duchi" }

// EstimateMean implements Method.
func (m DuchiMethod) EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error) {
	d, err := ldp.NewDuchi(m.Eps, 0, float64(uint64(1)<<uint(bits)))
	if err != nil {
		return 0, err
	}
	return d.EstimateMean(toFloats(values), r), nil
}

// LaplaceMethod is the Laplace-mechanism baseline.
type LaplaceMethod struct {
	Eps float64
}

// Name implements Method.
func (m LaplaceMethod) Name() string { return "laplace" }

// EstimateMean implements Method.
func (m LaplaceMethod) EstimateMean(values []uint64, bits int, r *frand.RNG) (float64, error) {
	l, err := ldp.NewLaplace(m.Eps, 0, float64(uint64(1)<<uint(bits)))
	if err != nil {
		return 0, err
	}
	return l.EstimateMean(toFloats(values), r), nil
}

// VarEstimator is the variance analogue of Method, for Figures 1b and 2b.
type VarEstimator interface {
	Name() string
	EstimateVariance(values []uint64, bits int, r *frand.RNG) (float64, error)
}

// BPVariance estimates variance via bit-pushing (Lemma 3.5). A zero
// SingleRoundGamma uses the two-round adaptive inner protocol.
type BPVariance struct {
	Method           core.VarianceMethod
	SingleRoundGamma float64
	Eps              float64
}

// Name implements VarEstimator.
func (m BPVariance) Name() string {
	if m.SingleRoundGamma > 0 {
		return fmt.Sprintf("weighted(γ=%g)", m.SingleRoundGamma)
	}
	return "adaptive"
}

// EstimateVariance implements VarEstimator.
func (m BPVariance) EstimateVariance(values []uint64, bits int, r *frand.RNG) (float64, error) {
	rr, err := rrFor(m.Eps)
	if err != nil {
		return 0, err
	}
	return core.EstimateVariance(core.VarianceConfig{
		Bits:             bits,
		Method:           m.Method,
		SingleRoundGamma: m.SingleRoundGamma,
		Adaptive:         core.AdaptiveConfig{RR: rr},
	}, values, r)
}

// DitherVariance is the dithering baseline applied to variance estimation.
type DitherVariance struct {
	Eps float64
}

// Name implements VarEstimator.
func (m DitherVariance) Name() string { return "dithering" }

// EstimateVariance implements VarEstimator.
func (m DitherVariance) EstimateVariance(values []uint64, bits int, r *frand.RNG) (float64, error) {
	bound := float64(uint64(1) << uint(bits))
	var d *dither.Dithering
	var err error
	if m.Eps > 0 {
		d, err = dither.NewLDP(bound, m.Eps)
	} else {
		d, err = dither.New(bound)
	}
	if err != nil {
		return 0, err
	}
	return d.EstimateVariance(toFloats(values), r), nil
}
