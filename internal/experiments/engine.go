package experiments

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Engine metric names, exposed when Options.Metrics is set.
const (
	// MetricCells counts grid cells (one population draw plus every
	// method's estimate) executed by the experiment engine.
	MetricCells = "fednum_experiment_cells_total"
	// MetricWorkerBusy accumulates the seconds workers spent executing
	// cells, across all workers. Comparing it against wall time gives the
	// engine's parallel efficiency.
	MetricWorkerBusy = "fednum_experiment_worker_busy_seconds_total"
)

// engineMetrics bundles the engine's instruments; nil disables recording.
type engineMetrics struct {
	cells *obs.Counter
	busy  *obs.FloatCounter
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		cells: reg.Counter(MetricCells, "experiment grid cells executed"),
		busy:  reg.FloatCounter(MetricWorkerBusy, "cumulative seconds experiment workers spent executing cells"),
	}
}

// runCells executes fn(cell, scratch) for every cell in [0, n) across a
// pool of workers. Each worker owns one core.Scratch; fn must confine
// itself to cell-indexed data (its own pre-split RNG, its own output slot)
// so that execution order cannot influence results — determinism across
// worker counts is the engine's contract, enforced by tests and by the
// fedlint rngshare analyzer (no *frand.RNG may cross a goroutine).
func runCells(n, workers int, m *engineMetrics, fn func(cell int, s *core.Scratch)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := new(core.Scratch)
		for ci := 0; ci < n; ci++ {
			runCell(ci, s, m, fn)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := new(core.Scratch)
			for ci := range jobs {
				runCell(ci, s, m, fn)
			}
		}()
	}
	for ci := 0; ci < n; ci++ {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
}

func runCell(ci int, s *core.Scratch, m *engineMetrics, fn func(int, *core.Scratch)) {
	if m == nil {
		fn(ci, s)
		return
	}
	start := time.Now()
	fn(ci, s)
	m.busy.Add(time.Since(start).Seconds())
	m.cells.Inc()
}
