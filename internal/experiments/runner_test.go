package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
)

func TestRunSweepPropagatesMethodErrors(t *testing.T) {
	boom := errors.New("boom")
	pop := func(float64, int, *frand.RNG) ([]uint64, int) { return []uint64{1, 2}, 4 }
	fail := func([]uint64, int, *frand.RNG, *core.Scratch) (float64, error) { return 0, boom }
	_, err := runSweep([]float64{1}, pop, []string{"failing"}, []estimate{fail}, fixedpoint.Mean, Options{Reps: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Errorf("error %q does not name the method", err)
	}
}

func TestWriteTableEmptyFigure(t *testing.T) {
	f := &FigureResult{ID: "x", Title: "empty", XLabel: "x", YLabel: "NRMSE"}
	var buf bytes.Buffer
	if err := f.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("table output %q", buf.String())
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"with,comma": `"with,comma"`,
		`with"quote`: `"with""quote"`,
		"with\nnl":   "\"with\nnl\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestYValueAndErrSelection(t *testing.T) {
	p := Point{Summary: stats.ErrorSummary{RMSE: 10, NRMSE: 0.1, Truth: 100, Bias: -2, StdErr: 1}}
	if yValue("NRMSE", p) != 0.1 {
		t.Error("NRMSE label should plot NRMSE")
	}
	if yValue("RMSE", p) != 10 {
		t.Error("RMSE label should plot RMSE")
	}
	if yValue("bit mean", p) != 98 {
		t.Error("bit-mean label should plot Truth+Bias")
	}
	if yErr("NRMSE", p) != 0.01 {
		t.Errorf("yErr NRMSE = %v, want 0.01", yErr("NRMSE", p))
	}
	if yErr("RMSE", p) != 1 {
		t.Error("yErr RMSE should be raw StdErr")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.reps() != 100 {
		t.Errorf("default reps = %d", o.reps())
	}
	if o.n(1234) != 1234 {
		t.Errorf("default n = %d", o.n(1234))
	}
	o = Options{Reps: 7, N: 50}
	if o.reps() != 7 || o.n(1234) != 50 {
		t.Error("overrides ignored")
	}
}
