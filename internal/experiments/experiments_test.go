package experiments

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// quick returns reduced-repetition options for test runs.
func quick(reps int, n int) Options {
	return Options{Reps: reps, N: n, Seed: 7}
}

// meanY averages a series' plotted values across the sweep.
func meanY(ylabel string, s Series) float64 {
	var sum float64
	for _, p := range s.Points {
		sum += yValue(ylabel, p)
	}
	return sum / float64(len(s.Points))
}

// byName finds a series by method name.
func byName(t *testing.T, f *FigureResult, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Method == name {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q (have %v)", f.ID, name, names(f))
	return Series{}
}

func names(f *FigureResult) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Method
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"1a", "1b", "1c", "2a", "2b", "2c", "3a", "3b", "4a", "4b", "4c", "bsend", "cache", "delta", "gamma", "pois", "stdp", "tdp"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry ids = %v, want %v", got, want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("9z", Options{}); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("err = %v", err)
	}
}

func TestFig1aShape(t *testing.T) {
	f, err := Fig1a(quick(15, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 5 {
		t.Fatalf("series = %v", names(f))
	}
	adaptive := byName(t, f, "adaptive(α=0.5)")
	dith := byName(t, f, "dithering")
	if a, d := meanY(f.YLabel, adaptive), meanY(f.YLabel, dith); a >= d {
		t.Fatalf("adaptive mean NRMSE %v not below dithering %v", a, d)
	}
	// NRMSE broadly decreases as the mean grows (normalizer outpaces error).
	for _, s := range f.Series {
		first, last := yValue(f.YLabel, s.Points[0]), yValue(f.YLabel, s.Points[len(s.Points)-1])
		if last > first*2 {
			t.Errorf("%s: NRMSE grew from %v to %v across μ sweep", s.Method, first, last)
		}
	}
}

func TestFig1bShape(t *testing.T) {
	f, err := Fig1b(quick(6, 20000))
	if err != nil {
		t.Fatal(err)
	}
	// "the dithering approach is orders of magnitude worse" at variance.
	adaptive := byName(t, f, "adaptive")
	dith := byName(t, f, "dithering")
	if a, d := meanY(f.YLabel, adaptive), meanY(f.YLabel, dith); a*5 >= d {
		t.Fatalf("dithering variance NRMSE %v not far above adaptive %v", d, a)
	}
}

func TestFig1cShape(t *testing.T) {
	f, err := Fig1c(quick(15, 4000))
	if err != nil {
		t.Fatal(err)
	}
	// One-round methods grow with bit depth; adaptive stays flat
	// ("largely oblivious to the increase in bit depth").
	for _, name := range []string{"dithering", "weighted(γ=1)"} {
		s := byName(t, f, name)
		lo, hi := yValue(f.YLabel, s.Points[0]), yValue(f.YLabel, s.Points[len(s.Points)-1])
		if hi < 3*lo {
			t.Errorf("%s: error did not grow with depth (%v -> %v)", name, lo, hi)
		}
	}
	s := byName(t, f, "adaptive(α=0.5)")
	lo, hi := yValue(f.YLabel, s.Points[0]), yValue(f.YLabel, s.Points[len(s.Points)-1])
	if hi > 3*lo {
		t.Errorf("adaptive grew with depth (%v -> %v)", lo, hi)
	}
}

func TestFig2aShape(t *testing.T) {
	f, err := Fig2a(Options{Reps: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Error decreases with n, broadly like 1/sqrt(n): from n=1000 to
	// n=100000 expect roughly a 10x drop; allow wide slack.
	for _, s := range f.Series {
		first := yValue(f.YLabel, s.Points[0])
		last := yValue(f.YLabel, s.Points[len(s.Points)-1])
		if last > first/2 {
			t.Errorf("%s: NRMSE %v at n=1K -> %v at n=100K: no 1/sqrt(n) trend", s.Method, first, last)
		}
	}
	// At the largest cohort (100K) the adaptive error must be well below
	// 1% — the regime the paper calls "comfortably below 1%".
	adaptive := byName(t, f, "adaptive(α=0.5)")
	last := adaptive.Points[len(adaptive.Points)-1]
	if last.Summary.NRMSE > 0.01 {
		t.Errorf("adaptive NRMSE %v at n=%v, want < 1%%", last.Summary.NRMSE, last.X)
	}
}

func TestFig2bRuns(t *testing.T) {
	f, err := Fig2b(Options{Reps: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := byName(t, f, "adaptive")
	dith := byName(t, f, "dithering")
	if a, d := meanY(f.YLabel, adaptive), meanY(f.YLabel, dith); a >= d {
		t.Fatalf("adaptive variance error %v not below dithering %v", a, d)
	}
}

func TestFig2cShape(t *testing.T) {
	f, err := Fig2c(quick(12, 4000))
	if err != nil {
		t.Fatal(err)
	}
	adaptive := byName(t, f, "adaptive(α=0.5)")
	dith := byName(t, f, "dithering")
	// At the largest depth the adaptive method must dominate.
	last := len(adaptive.Points) - 1
	if a, d := yValue(f.YLabel, adaptive.Points[last]), yValue(f.YLabel, dith.Points[last]); a >= d {
		t.Fatalf("at b=24 adaptive %v not below dithering %v", a, d)
	}
}

func TestFig3aShape(t *testing.T) {
	f, err := Fig3a(quick(10, 4000))
	if err != nil {
		t.Fatal(err)
	}
	// RMSE decreases as ε grows for every method.
	for _, s := range f.Series {
		first := yValue(f.YLabel, s.Points[0])
		last := yValue(f.YLabel, s.Points[len(s.Points)-1])
		if last >= first {
			t.Errorf("%s: RMSE did not fall from ε=0.1 (%v) to ε=0.9 (%v)", s.Method, first, last)
		}
	}
}

func TestFig3bShape(t *testing.T) {
	f, err := Fig3b(quick(10, 4000))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			y := yValue(f.YLabel, p)
			if math.IsNaN(y) || math.IsInf(y, 0) {
				t.Errorf("%s: non-finite RMSE at ε=%v", s.Method, p.X)
			}
		}
	}
}

func TestFig4aSquashingHelps(t *testing.T) {
	f, err := Fig4a(quick(10, 6000))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4a: moderate thresholds improve accuracy by a large factor
	// over no squashing. The adaptive method gains the most (its learned
	// allocation concentrates reports on the surviving bits); the
	// single-round weighted method still improves clearly.
	factors := map[string]float64{"weighted(γ=1)+squash": 2, "adaptive+squash": 5}
	for _, s := range f.Series {
		atZero := yValue(f.YLabel, s.Points[0])
		var best float64 = math.Inf(1)
		for _, p := range s.Points[1:] {
			best = math.Min(best, yValue(f.YLabel, p))
		}
		if best*factors[s.Method] >= atZero {
			t.Errorf("%s: best squashed RMSE %v not %gx below unsquashed %v",
				s.Method, best, factors[s.Method], atZero)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	f, err := Fig4b(quick(10, 8000))
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.Points) != 16 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Dense region: bits around 8-9 of Normal(800,100) have substantial
	// means; bits 12+ are noise near zero.
	means := make([]float64, 16)
	for j, p := range s.Points {
		means[j] = yValue(f.YLabel, p)
	}
	if means[9] < 0.3 {
		t.Errorf("active bit 9 mean %v too small", means[9])
	}
	for j := 12; j < 16; j++ {
		if math.Abs(means[j]) > 0.05 {
			t.Errorf("vacuous bit %d mean %v not near zero", j, means[j])
		}
	}
}

func TestFig4cAdaptiveSquashFlat(t *testing.T) {
	f, err := Fig4c(quick(10, 6000))
	if err != nil {
		t.Fatal(err)
	}
	squash := byName(t, f, "adaptive(α=0.5)+squash")
	lo := yValue(f.YLabel, squash.Points[0])
	hi := yValue(f.YLabel, squash.Points[len(squash.Points)-1])
	if hi > 3*lo {
		t.Errorf("adaptive+squash grew with depth under DP: %v -> %v", lo, hi)
	}
	dith := byName(t, f, "dithering")
	dlo := yValue(f.YLabel, dith.Points[0])
	dhi := yValue(f.YLabel, dith.Points[len(dith.Points)-1])
	if dhi < 3*dlo {
		t.Errorf("dithering did not grow with depth under DP: %v -> %v", dlo, dhi)
	}
}

func TestTextDPBaselinesWorse(t *testing.T) {
	f, err := FigTextDP(quick(10, 6000))
	if err != nil {
		t.Fatal(err)
	}
	lap := meanY(f.YLabel, byName(t, f, "laplace"))
	best := math.Min(meanY(f.YLabel, byName(t, f, "weighted(γ=1)")),
		meanY(f.YLabel, byName(t, f, "piecewise")))
	// "errors 2-3 times larger in all cases"; require a clear gap on the
	// sweep average under reduced repetitions.
	if lap < 1.5*best {
		t.Errorf("laplace RMSE %v not well above best one-bit method %v", lap, best)
	}
	// Duchi randomized rounding loses to the piecewise mechanism most
	// clearly at the largest ε (the Wang et al. headline result).
	duchi := byName(t, f, "duchi")
	piece := byName(t, f, "piecewise")
	last := len(duchi.Points) - 1
	if d, p := yValue(f.YLabel, duchi.Points[last]), yValue(f.YLabel, piece.Points[last]); d < 1.3*p {
		t.Errorf("at ε=4 duchi RMSE %v not well above piecewise %v", d, p)
	}
}

func TestPoisoningCentralSafer(t *testing.T) {
	f, err := FigPoisoning(quick(8, 3000))
	if err != nil {
		t.Fatal(err)
	}
	central := byName(t, f, "bitpush-central")
	local := byName(t, f, "bitpush-local")
	last := len(central.Points) - 1
	c := yValue(f.YLabel, central.Points[last])
	l := yValue(f.YLabel, local.Points[last])
	if l <= c {
		t.Fatalf("at 10%% byzantine, local error %v not above central %v", l, c)
	}
	// With no adversaries the two modes are comparable.
	c0, l0 := yValue(f.YLabel, central.Points[0]), yValue(f.YLabel, local.Points[0])
	if c0 > 5*l0 || l0 > 5*c0 {
		t.Errorf("clean-population errors diverge: central %v local %v", c0, l0)
	}
}

func TestDeltaSweepShallowOptimum(t *testing.T) {
	f, err := FigDeltaSweep(quick(20, 6000))
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	// The paper's guided δ=1/3 must not be much worse than the best
	// sampled δ, and the extreme δ=0.9 (starved round 2) must be worse
	// than the recommendation.
	var atThird, best, atNine float64
	best = math.Inf(1)
	for _, p := range s.Points {
		y := yValue(f.YLabel, p)
		best = math.Min(best, y)
		if math.Abs(p.X-1.0/3) < 1e-9 {
			atThird = y
		}
		if p.X == 0.9 {
			atNine = y
		}
	}
	if atThird > 1.8*best {
		t.Errorf("δ=1/3 NRMSE %v far above best %v", atThird, best)
	}
	if atNine < 1.3*atThird {
		t.Errorf("δ=0.9 NRMSE %v not clearly worse than δ=1/3 %v", atNine, atThird)
	}
}

func TestGammaSweepShapes(t *testing.T) {
	f, err := FigGammaSweep(quick(15, 6000))
	if err != nil {
		t.Fatal(err)
	}
	weighted := byName(t, f, "weighted")
	adaptive := byName(t, f, "adaptive(α=0.5)")
	// At b=16 with only ~10 active bits, larger γ starves the active bits
	// (their share of reports shrinks like 2^{j-b}), so the one-round
	// method degrades as γ grows — the fixed-depth cross-section of the
	// Figure 1c story. Without DP the vacuous bits report exact zeros, so
	// uniform sampling is actually the strongest fixed allocation here.
	var atZero, atTop float64
	for _, p := range weighted.Points {
		y := yValue(f.YLabel, p)
		if p.X == 0 {
			atZero = y
		}
		if p.X == 1.5 {
			atTop = y
		}
	}
	if atTop < 2*atZero {
		t.Errorf("weighted γ=1.5 NRMSE %v not well above γ=0 %v", atTop, atZero)
	}
	// The adaptive protocol is far less sensitive to γ than the one-round
	// method: its worst-to-best ratio across the sweep must be smaller.
	ratio := func(s Series) float64 {
		lo, hi := math.Inf(1), 0.0
		for _, p := range s.Points {
			y := yValue(f.YLabel, p)
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		return hi / lo
	}
	if ratio(adaptive) >= ratio(weighted) {
		t.Errorf("adaptive γ-sensitivity %v not below weighted %v", ratio(adaptive), ratio(weighted))
	}
}

func TestSampleThresholdNegligibleNoise(t *testing.T) {
	f, err := FigSampleThreshold(Options{Reps: 25, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	plain := byName(t, f, "no-noise")
	noisy := f.Series[1] // the sample+threshold series, name carries τ
	if noisy.Method == plain.Method {
		t.Fatal("series mislabeled")
	}
	// §4.3: "a negligible amount of noise compared to the non-thresholded
	// sample" — at deployment scale ("10s of thousands" of devices). At
	// the largest cohort every bit's tallies clear the removal threshold
	// and only the γ=0.8 sampling penalty (~12%) remains; small cohorts
	// legitimately degrade, which is why deployments enforce minimum
	// cohort sizes.
	last := len(plain.Points) - 1
	p := yValue(f.YLabel, plain.Points[last])
	n := yValue(f.YLabel, noisy.Points[last])
	if n > 1.4*p {
		t.Fatalf("at n=%v sample+threshold NRMSE %v vs plain %v: not negligible", plain.Points[last].X, n, p)
	}
	if n < p/2 {
		t.Fatalf("sample+threshold NRMSE %v implausibly below plain %v", n, p)
	}
}

func TestCachingFigure(t *testing.T) {
	f, err := FigCaching(Options{Reps: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cached := meanY(f.YLabel, byName(t, f, "adaptive(α=0.5)"))
	nocache := meanY(f.YLabel, byName(t, f, "adaptive(α=0.5)-nocache"))
	if cached >= nocache {
		t.Fatalf("cached NRMSE %v not below no-cache %v", cached, nocache)
	}
}

func TestBSendFigure(t *testing.T) {
	f, err := FigBSend(quick(15, 4000))
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	first := yValue(f.YLabel, s.Points[0])
	last := yValue(f.YLabel, s.Points[len(s.Points)-1])
	// Corollary 3.2: b_send=8 should cut error roughly by sqrt(8)≈2.8x.
	if last > first/1.7 {
		t.Fatalf("b_send sweep error %v -> %v: no 1/sqrt(b_send) trend", first, last)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	f, err := Fig1a(quick(3, 500))
	if err != nil {
		t.Fatal(err)
	}
	var table bytes.Buffer
	if err := f.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	out := table.String()
	if !strings.Contains(out, "1a") || !strings.Contains(out, "dithering") {
		t.Errorf("table missing headers:\n%s", out)
	}
	var csv bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// Header + 5 methods x 7 points.
	if len(lines) != 1+5*7 {
		t.Errorf("csv has %d lines, want %d", len(lines), 1+5*7)
	}
	if !strings.HasPrefix(lines[0], "figure,method,x,y") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestRunByIDDeterministic(t *testing.T) {
	a, err := Run("1a", quick(3, 500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("1a", quick(3, 500))
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for pi := range a.Series[si].Points {
			if a.Series[si].Points[pi].Summary.RMSE != b.Series[si].Points[pi].Summary.RMSE {
				t.Fatalf("figure 1a not deterministic at series %d point %d", si, pi)
			}
		}
	}
}
