package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/distdp"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
)

// FigSampleThreshold reproduces the §4.3 deployment finding on distributed
// DP: "achieving a central differential privacy guarantee by having the
// enclave apply thresholding to the reported bit counts was effective, and
// introduced a negligible amount of noise compared to the non-thresholded
// sample". Bit-pushing's per-bit tallies are binary histograms, so the
// sample-and-threshold mechanism of Bharadwaj and Cormode applies
// directly: each report survives with probability γ and small counts are
// removed, after which the per-bit means are reconstructed from the
// sampled tallies.
func FigSampleThreshold(opts Options) (*FigureResult, error) {
	xs := []float64{2000, 5000, 10000, 20000, 50000}
	const bits = 8
	const gamma, eps, delta = 0.8, 1.0, 1e-6
	tau, err := distdp.TauForPrivacy(eps, delta, gamma)
	if err != nil {
		return nil, err
	}
	pop := censusPop(bits, func(x float64) int { return int(x) })
	names := []string{
		"no-noise",
		fmt.Sprintf("sample+threshold(γ=%g,τ=%d)", gamma, tau),
		"bernoulli-noise",
	}
	fns := []estimate{
		plainBitPushEstimate(),
		sampleThresholdEstimate(gamma, tau),
		bernoulliNoiseEstimate(eps, delta),
	}
	series, err := runSweep(xs, pop, names, fns, fixedpoint.Mean, opts)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "stdp",
		Title:  fmt.Sprintf("sample-and-threshold distributed DP, census ages, b=%d, (ε,δ)=(%g,%g)", bits, eps, delta),
		XLabel: "clients", YLabel: "NRMSE", Series: series,
	}, nil
}

// plainBitPushEstimate is one weighted round without any noise.
func plainBitPushEstimate() estimate {
	return func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
		probs, err := s.GeometricProbs(bits, 1)
		if err != nil {
			return 0, err
		}
		res, err := core.RunInto(core.Config{Bits: bits, Probs: probs}, values, r, s)
		if err != nil {
			return 0, err
		}
		return res.Estimate, nil
	}
}

// bernoulliNoiseEstimate applies the Balcer–Cheu-style distributed noise:
// every reporting client contributes one extra Bernoulli(q) increment to
// its bit's ones-tally and one to its zeros-tally, with q calibrated for
// (ε, δ)-DP at the per-bit cohort size; the server subtracts the expected
// noise before reconstructing.
func bernoulliNoiseEstimate(eps, delta float64) estimate {
	return func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
		probs, err := s.GeometricProbs(bits, 1)
		if err != nil {
			return 0, err
		}
		reports, err := core.MakeReportsInto(core.Config{Bits: bits, Probs: probs}, values, r, s)
		if err != nil {
			return 0, err
		}
		ones := make([]uint64, bits)
		total := make([]int, bits)
		for _, rep := range reports {
			total[rep.Bit]++
			if rep.Value == 1 {
				ones[rep.Bit]++
			}
		}
		var est float64
		for j := 0; j < bits; j++ {
			if total[j] == 0 {
				continue
			}
			q, err := distdp.QForPrivacy(eps, delta, total[j])
			if err != nil {
				return 0, err
			}
			bn, err := distdp.NewBernoulliNoise(q, total[j])
			if err != nil {
				return 0, err
			}
			zeros := uint64(total[j]) - ones[j]
			onesU := bn.Unbias(bn.Perturb(ones[j], r))
			zerosU := bn.Unbias(bn.Perturb(zeros, r))
			if sum := onesU + zerosU; sum > 0 {
				m := math.Max(0, math.Min(1, onesU/sum))
				est += math.Ldexp(m, j)
			}
		}
		return est, nil
	}
}

// sampleThresholdEstimate runs the same round but passes the per-bit
// binary histograms (ones and zeros tallies) through sample-and-threshold
// before reconstruction. The sampling rate cancels in the ratio
// ones/(ones+zeros), so no unbiasing step is needed beyond the mechanism's
// own; a bit whose both tallies are removed contributes zero.
func sampleThresholdEstimate(gamma float64, tau uint64) estimate {
	return func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
		probs, err := s.GeometricProbs(bits, 1)
		if err != nil {
			return 0, err
		}
		reports, err := core.MakeReportsInto(core.Config{Bits: bits, Probs: probs}, values, r, s)
		if err != nil {
			return 0, err
		}
		ones := make([]uint64, bits)
		zeros := make([]uint64, bits)
		for _, rep := range reports {
			if rep.Value == 1 {
				ones[rep.Bit]++
			} else {
				zeros[rep.Bit]++
			}
		}
		st, err := distdp.NewSampleThreshold(gamma, tau)
		if err != nil {
			return 0, err
		}
		onesS := st.Apply(ones, r)
		zerosS := st.Apply(zeros, r)
		var estimateSum float64
		for j := 0; j < bits; j++ {
			total := onesS[j] + zerosS[j]
			if total == 0 {
				continue
			}
			m := float64(onesS[j]) / float64(total)
			estimateSum += math.Ldexp(m, j)
		}
		return estimateSum, nil
	}
}
