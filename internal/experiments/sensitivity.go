package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
)

// FigDeltaSweep sweeps the adaptive round-1 fraction δ. §3.2: "Naively, we
// might choose δ = 1/2 to balance accuracy of learned β'_j s and accuracy
// of reported results ... Our full analysis guides the choice of δ as 1/3,
// and we will try different settings for both these choices in our
// empirical evaluations." The sweep shows a shallow optimum around small
// δ: too little round-1 budget mislearns the weights, too much starves
// round 2.
func FigDeltaSweep(opts Options) (*FigureResult, error) {
	xs := []float64{0.1, 0.2, 1.0 / 3, 0.5, 0.7, 0.9}
	n := opts.n(10000)
	const bits = 16
	pop := normalPop(func(float64) float64 { return 800 }, 100, bits, n)
	series := []Series{{Method: "adaptive(α=0.5)"}}
	for _, delta := range xs {
		d := delta
		fn := func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
			res, err := core.RunAdaptiveInto(core.AdaptiveConfig{Bits: bits, Delta: d}, values, r, s)
			if err != nil {
				return 0, err
			}
			return res.Estimate, nil
		}
		sub, err := runSweep([]float64{delta}, pop, []string{series[0].Method}, []estimate{fn}, fixedpoint.Mean, opts.withSeed(opts.Seed+uint64(delta*1000)))
		if err != nil {
			return nil, err
		}
		series[0].Points = append(series[0].Points, sub[0].Points[0])
	}
	return &FigureResult{
		ID: "delta", Title: fmt.Sprintf("adaptive round-1 fraction δ sweep, Normal(800,100), n=%d, b=%d", n, bits),
		XLabel: "delta", YLabel: "NRMSE", Series: series,
	}, nil
}

// FigGammaSweep sweeps the round-1 shaping exponent γ of p1[j] ∝ (2^j)^γ
// (§3.1's "p_j ∝ c^j = 2^{αj}" family), for both the single-round weighted
// method and as the adaptive protocol's first round. γ=0 is uniform
// sampling, γ=1 the pessimistic-optimal 2^j allocation; the paper defaults
// to γ=0.5 for round 1.
func FigGammaSweep(opts Options) (*FigureResult, error) {
	xs := []float64{0, 0.25, 0.5, 0.75, 1, 1.5}
	n := opts.n(10000)
	const bits = 16
	pop := normalPop(func(float64) float64 { return 800 }, 100, bits, n)
	series := []Series{{Method: "weighted"}, {Method: "adaptive(α=0.5)"}}
	for _, gamma := range xs {
		g := gamma
		weighted := func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
			probs, err := s.GeometricProbs(bits, g)
			if err != nil {
				return 0, err
			}
			res, err := core.RunInto(core.Config{Bits: bits, Probs: probs}, values, r, s)
			if err != nil {
				return 0, err
			}
			return res.Estimate, nil
		}
		adaptive := func(values []uint64, bits int, r *frand.RNG, s *core.Scratch) (float64, error) {
			cfg := core.AdaptiveConfig{Bits: bits, Gamma: g}
			if g == 0 {
				// AdaptiveConfig treats Gamma=0 as "use the default"; a
				// tiny positive value selects a near-uniform round 1.
				cfg.Gamma = 1e-9
			}
			res, err := core.RunAdaptiveInto(cfg, values, r, s)
			if err != nil {
				return 0, err
			}
			return res.Estimate, nil
		}
		sub, err := runSweep([]float64{gamma}, pop,
			[]string{series[0].Method, series[1].Method},
			[]estimate{weighted, adaptive}, fixedpoint.Mean, opts.withSeed(opts.Seed+uint64(gamma*1000)))
		if err != nil {
			return nil, err
		}
		for i := range series {
			series[i].Points = append(series[i].Points, sub[i].Points[0])
		}
	}
	return &FigureResult{
		ID: "gamma", Title: fmt.Sprintf("round-1 shaping exponent γ sweep, Normal(800,100), n=%d, b=%d", n, bits),
		XLabel: "gamma", YLabel: "NRMSE", Series: series,
	}, nil
}
