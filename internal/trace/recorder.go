package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DefaultCapacity bounds a Recorder built with NewRecorder(0).
const DefaultCapacity = 4096

// SpanData is one finished span, frozen for the ring buffer and the JSON
// exposition. Ids are hex strings so the wire form equals the log form
// (the slog bridge stamps the same spellings).
type SpanData struct {
	TraceID string    `json:"trace_id"`
	SpanID  string    `json:"span_id"`
	Parent  string    `json:"parent_span_id,omitempty"`
	Remote  bool      `json:"remote_parent,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	// DurationMS is the span's monotonic duration in fractional
	// milliseconds.
	DurationMS float64  `json:"duration_ms"`
	Attrs      []Attrib `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute, or "".
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Recorder collects finished spans into a bounded ring buffer: the
// newest spans win, the oldest are overwritten, and the drop count says
// how many were lost. One recorder typically serves one process side
// (the fednumd server, or a simulated client fleet); it is safe for
// concurrent use.
type Recorder struct {
	mu      sync.Mutex
	buf     []SpanData
	next    int
	full    bool
	dropped uint64
}

// NewRecorder returns a recorder holding at most capacity finished spans
// (0 means DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]SpanData, 0, capacity)}
}

// enabled reports whether the recorder collects at all; nil-safe.
func (r *Recorder) enabled() bool { return r != nil }

// record appends one finished span, overwriting the oldest at capacity.
func (r *Recorder) record(d SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.next] = d
		r.next = (r.next + 1) % len(r.buf)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// StartSpan begins a root span recording directly to r, for libraries
// whose APIs are not context-threaded (the in-process coordinator). A nil
// recorder returns a nil span, whose every method no-ops. Start/End
// pairing rules apply exactly as for Start; fedlint/spanend checks both.
func (r *Recorder) StartSpan(name string) *Span {
	if !r.enabled() {
		return nil
	}
	sp := &Span{name: name, rec: r, start: time.Now()}
	sp.sc.TraceID = NewTraceID()
	sp.sc.SpanID = NewSpanID()
	return sp
}

// Len returns the number of buffered spans; 0 on a nil recorder.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many spans have been overwritten since creation;
// 0 on a nil recorder.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the buffered spans, oldest first.
func (r *Recorder) Spans() []SpanData {
	return r.Filter(Filter{})
}

// Filter selects spans from a recorder. Zero fields match everything.
type Filter struct {
	// TraceID keeps only spans of one trace (hex form).
	TraceID string
	// Name keeps only spans with this exact name.
	Name string
	// Attr/AttrValue keep only spans carrying attribute Attr == AttrValue
	// (the /debug/trace session filter is Attr="session").
	Attr      string
	AttrValue string
	// MinDuration keeps only spans at least this long.
	MinDuration time.Duration
}

func (f Filter) match(d SpanData) bool {
	if f.TraceID != "" && d.TraceID != f.TraceID {
		return false
	}
	if f.Name != "" && d.Name != f.Name {
		return false
	}
	if f.Attr != "" && d.Attr(f.Attr) != f.AttrValue {
		return false
	}
	if f.MinDuration > 0 && d.DurationMS < float64(f.MinDuration.Nanoseconds())/1e6 {
		return false
	}
	return true
}

// Filter returns the buffered spans matching f, oldest first.
func (r *Recorder) Filter(f Filter) []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, len(r.buf))
	appendMatch := func(span SpanData) {
		if f.match(span) {
			out = append(out, span)
		}
	}
	if r.full {
		for _, d := range r.buf[r.next:] {
			appendMatch(d)
		}
		for _, d := range r.buf[:r.next] {
			appendMatch(d)
		}
		return out
	}
	for _, d := range r.buf {
		appendMatch(d)
	}
	return out
}

// TraceResponse is the JSON envelope /debug/trace serves.
type TraceResponse struct {
	Spans   []SpanData `json:"spans"`
	Total   int        `json:"total"`
	Dropped uint64     `json:"dropped"`
}

// Handler serves the recorder as JSON — mount it at GET /debug/trace.
// Query parameters filter the result: trace (hex trace id), session
// (spans whose session attribute matches), name (exact span name), and
// min_ms (minimum span duration in milliseconds).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		f := Filter{
			TraceID: q.Get("trace"),
			Name:    q.Get("name"),
		}
		if s := q.Get("session"); s != "" {
			f.Attr, f.AttrValue = "session", s
		}
		if ms := q.Get("min_ms"); ms != "" {
			v, err := strconv.ParseFloat(ms, 64)
			if err != nil || v < 0 {
				http.Error(w, "trace: min_ms must be a non-negative number", http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(v * float64(time.Millisecond))
		}
		spans := r.Filter(f)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// A write failure means the scraper hung up; nothing to do.
		_ = enc.Encode(TraceResponse{Spans: spans, Total: len(spans), Dropped: r.Dropped()})
	})
}

// formatInt stringifies an attribute integer.
func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat stringifies an attribute float in shortest round-trip form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
