package trace

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestDisabledPathAllocs is the bench guard for the issue's acceptance
// criterion: with no recorder armed on the context, the full span
// lifecycle — Start, every attribute setter, End, Inject — must add zero
// allocations to the hot path.
func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	h := make(http.Header, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		sctx, sp := Start(ctx, "hot")
		sp.Attr("k", "v")
		sp.AttrInt("n", 42)
		sp.AttrFloat("f", 3.14)
		sp.AttrBool("ok", true)
		sp.AttrDuration("wait", 3*time.Millisecond)
		Inject(sctx, h)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestActiveLookupAllocs guards the slog-bridge lookup: reading the
// active span identity off a context must not allocate, since it runs on
// every request-scoped log line whether or not tracing is on.
func TestActiveLookupAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := Active(ctx); ok {
			t.Error("phantom active span")
		}
	})
	if allocs != 0 {
		t.Fatalf("Active on a span-free context allocates %.1f allocs/op, want 0", allocs)
	}
}
