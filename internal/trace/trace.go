// Package trace is a zero-dependency distributed-tracing layer in the
// style of internal/obs: spans with monotonic timings and typed key/value
// attributes, carried through context.Context, propagated across HTTP
// hops via the W3C traceparent header, and collected into a bounded
// in-process ring buffer (Recorder) that an admin endpoint serves as
// JSON. It exists so one report or one round can be followed end to end —
// client submit, retry waits, admission gate, session-table work, WAL
// commit, finalize — across process boundaries, which aggregate counters
// (internal/obs) cannot do.
//
// The design center is a free disabled path: tracing is off unless a
// *Recorder has been placed in the context (WithRecorder), and every
// operation — Start, the attribute setters, End, Inject — is a nil-safe
// no-op that performs zero allocations when it is. The report hot path
// therefore carries its instrumentation unconditionally; attaching a
// recorder is what turns it on. Attribute setters are monomorphic
// (Attr/AttrInt/AttrFloat/AttrBool) instead of variadic or interface-
// typed precisely so the disabled path never boxes a value or
// materializes a slice.
//
// Spans are single-goroutine by contract: the goroutine that Starts a
// span sets its attributes and Ends it. The Recorder is safe for
// concurrent use from any number of such goroutines.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace (one client protocol run).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: what crosses process
// boundaries in the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both ids are non-zero, per the W3C spec.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Header is the W3C trace-context propagation header.
const Header = "traceparent"

// Traceparent renders the context in W3C traceparent version-00 form:
// 00-<32 hex trace id>-<16 hex span id>-01 (sampled, since a context is
// only propagated when a recorder is collecting).
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", sc.TraceID, sc.SpanID)
}

// ParseTraceparent parses a W3C traceparent value. Unknown versions are
// accepted as long as the version-00 prefix shape holds (per spec,
// parsers must not reject higher versions with compatible prefixes);
// malformed values and all-zero ids are errors.
func ParseTraceparent(v string) (SpanContext, error) {
	// version(2) - trace(32) - span(16) - flags(2) = 55 bytes minimum.
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, fmt.Errorf("trace: malformed traceparent %q", v)
	}
	if v[0] == 'f' && v[1] == 'f' {
		return SpanContext{}, fmt.Errorf("trace: forbidden traceparent version ff")
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: bad trace id in %q", v)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, fmt.Errorf("trace: bad span id in %q", v)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("trace: all-zero id in %q", v)
	}
	return sc, nil
}

// Extract reads the traceparent header from h; ok is false when the
// header is absent or malformed (propagation degrades to a fresh trace,
// never to an error).
func Extract(h http.Header) (sc SpanContext, ok bool) {
	v := h.Get(Header)
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceparent(v)
	return sc, err == nil
}

// Inject writes the context's active span into h as a traceparent header,
// so the next hop's server span becomes a child of the calling span. A
// context without an active span injects nothing.
func Inject(ctx context.Context, h http.Header) {
	sp := FromContext(ctx)
	if sp == nil {
		return
	}
	h.Set(Header, sp.sc.Traceparent())
}

// idCounter drives span/trace id generation: a process-wide counter mixed
// through splitmix64, seeded once from crypto/rand. Ids are unique and
// unpredictable enough for correlation without per-id syscall cost; they
// protect no secret.
var idCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idCounter.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		// Entropy source unreadable: fall back to a fixed odd offset; ids
		// stay unique within the process, which is all correlation needs.
		idCounter.Store(0x9e3779b97f4a7c15)
	}
}

// splitmix64 is the finalizer of the splitmix64 generator: a bijective
// mixer, so distinct counter values can never collide.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a fresh trace id.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], splitmix64(idCounter.Add(1)))
	binary.BigEndian.PutUint64(t[8:], splitmix64(idCounter.Add(1)))
	return t
}

// NewSpanID mints a fresh span id.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], splitmix64(idCounter.Add(1)))
	return s
}

// ctxKey keys the context values this package owns.
type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
	remoteKey
)

// WithRecorder arms tracing on the context: Start calls below it create
// real spans delivered to rec on End. A nil rec returns ctx unchanged, so
// callers can thread an optional recorder without branching.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, rec)
}

// RecorderFrom returns the recorder armed on ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	return rec
}

// WithRemote records a propagated parent (an Extracted traceparent) on
// the context: the next Start becomes a child of the remote span instead
// of opening a fresh trace. Invalid contexts are ignored.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// FromContext returns the context's active span, or nil. A nil *Span is
// fully usable — every method no-ops — so callers never need to check.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// Active returns the propagated identity of the context's active span;
// ok is false when no span is active. The slog bridge uses this to stamp
// trace_id/span_id onto request-scoped log lines.
func Active(ctx context.Context) (sc SpanContext, ok bool) {
	sp := FromContext(ctx)
	if sp == nil {
		return SpanContext{}, false
	}
	return sp.sc, true
}

// Span is one timed operation. The zero of usefulness is nil: every
// method on a nil span is a no-op, which is how the disabled path stays
// allocation-free.
type Span struct {
	name   string
	sc     SpanContext
	parent SpanID
	remote bool // parent arrived over the wire (traceparent)
	start  time.Time
	attrs  []Attrib
	rec    *Recorder
	ended  atomic.Bool
}

// Attrib is one key/value annotation on a span. Values are stored
// stringified; the typed setters do the conversion only when a span is
// actually recording.
type Attrib struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Start begins a span named name. With no recorder armed on ctx it
// returns (ctx, nil) without allocating — the disabled fast path. With a
// recorder, the new span becomes ctx's active span (children parent to
// it); the parent is the context's active span if any, else a remote
// parent recorded by WithRemote, else the span roots a fresh trace.
//
// Every Start must be paired with exactly one End on all paths (defer
// sp.End() dominating the call is the canonical shape); the spanend
// fedlint analyzer machine-checks this.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	rec := RecorderFrom(ctx)
	if rec == nil || !rec.enabled() {
		return ctx, nil
	}
	sp := &Span{name: name, rec: rec, start: time.Now()}
	switch parent := FromContext(ctx); {
	case parent != nil:
		sp.sc.TraceID = parent.sc.TraceID
		sp.parent = parent.sc.SpanID
	default:
		if rsc, ok := ctx.Value(remoteKey).(SpanContext); ok && rsc.Valid() {
			sp.sc.TraceID = rsc.TraceID
			sp.parent = rsc.SpanID
			sp.remote = true
		} else {
			sp.sc.TraceID = NewTraceID()
		}
	}
	sp.sc.SpanID = NewSpanID()
	return context.WithValue(ctx, spanKey, sp), sp
}

// Context returns the span's propagated identity; the zero SpanContext
// for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Attr annotates the span with a string value. No-op on a nil span.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attrib{Key: key, Value: value})
}

// AttrInt annotates the span with an integer value. No-op on a nil span;
// the conversion runs only when recording.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attrib{Key: key, Value: formatInt(v)})
}

// AttrFloat annotates the span with a float value (shortest round-trip
// form). No-op on a nil span.
func (s *Span) AttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attrib{Key: key, Value: formatFloat(v)})
}

// AttrBool annotates the span with a boolean value. No-op on a nil span.
func (s *Span) AttrBool(key string, v bool) {
	if s == nil {
		return
	}
	val := "false"
	if v {
		val = "true"
	}
	s.attrs = append(s.attrs, Attrib{Key: key, Value: val})
}

// AttrDuration annotates the span with a duration in fractional
// milliseconds, the unit every duration attribute in this repository
// uses. No-op on a nil span.
func (s *Span) AttrDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attrib{Key: key, Value: formatFloat(float64(d.Nanoseconds()) / 1e6)})
}

// End finishes the span and delivers it to the recorder. The duration is
// monotonic (time.Since). End is idempotent — a second End is ignored —
// and a nil span Ends as a no-op.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.rec.record(SpanData{
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.sc.SpanID.String(),
		Parent:     parentString(s.parent),
		Remote:     s.remote,
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(time.Since(s.start).Nanoseconds()) / 1e6,
		Attrs:      s.attrs,
	})
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}
