package trace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestStartDisabledReturnsNil(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "op")
	if sp != nil {
		t.Fatalf("Start without a recorder returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a recorder rebuilt the context")
	}
	// Every operation on the nil span is a no-op.
	sp.Attr("k", "v")
	sp.AttrInt("n", 1)
	sp.AttrFloat("f", 1.5)
	sp.AttrBool("b", true)
	sp.AttrDuration("d", time.Second)
	sp.End()
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span has a valid context: %+v", sc)
	}
	h := http.Header{}
	Inject(ctx2, h)
	if h.Get(Header) != "" {
		t.Fatalf("Inject without a span wrote a header: %q", h.Get(Header))
	}
}

func TestSpanLifecycleAndParentage(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := Start(ctx, "root")
	root.Attr("session", "s1")
	cctx, child := Start(ctx, "child")
	child.AttrInt("try", 2)
	if got, want := child.Context().TraceID, root.Context().TraceID; got != want {
		t.Fatalf("child trace id %s != root trace id %s", got, want)
	}
	_ = cctx
	child.End()
	root.End()
	root.End() // idempotent

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Ring order is end order: child first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("span order %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].SpanID {
		t.Fatalf("child parent %q != root span id %q", spans[0].Parent, spans[1].SpanID)
	}
	if spans[1].Parent != "" {
		t.Fatalf("root has parent %q", spans[1].Parent)
	}
	if spans[0].Attr("try") != "2" || spans[1].Attr("session") != "s1" {
		t.Fatalf("attrs lost: %+v", spans)
	}
	if spans[0].DurationMS < 0 {
		t.Fatalf("negative duration %v", spans[0].DurationMS)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	hdr := sc.Traceparent()
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != sc {
		t.Fatalf("round trip %+v != %+v", got, sc)
	}
	for _, bad := range []string{
		"",
		"00-short",
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-01",
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace id
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01", // zero span id
		"ff-0102030405060708090a0b0c0d0e0f10-0102030405060708-01", // forbidden version
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted garbage", bad)
		}
	}
	// Higher versions with a compatible prefix parse (W3C forward compat).
	if _, err := ParseTraceparent("42-0102030405060708090a0b0c0d0e0f10-0102030405060708-01-extradata"); err != nil {
		t.Errorf("future traceparent version rejected: %v", err)
	}
}

func TestInjectExtractRemoteParent(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)
	ctx, client := Start(ctx, "client")
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(Header) == "" {
		t.Fatal("Inject wrote no traceparent")
	}

	// Server side: fresh context, own recorder, remote parent extracted.
	srvRec := NewRecorder(16)
	sc, ok := Extract(h)
	if !ok {
		t.Fatal("Extract failed on an injected header")
	}
	sctx := WithRecorder(context.Background(), srvRec)
	sctx = WithRemote(sctx, sc)
	_, server := Start(sctx, "server")
	server.End()
	client.End()

	srv := srvRec.Spans()
	if len(srv) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(srv))
	}
	if srv[0].TraceID != client.Context().TraceID.String() {
		t.Fatalf("server trace %s != client trace %s", srv[0].TraceID, client.Context().TraceID)
	}
	if srv[0].Parent != client.Context().SpanID.String() {
		t.Fatalf("server parent %s != client span %s", srv[0].Parent, client.Context().SpanID)
	}
	if !srv[0].Remote {
		t.Fatal("server span not marked remote")
	}
	if _, ok := Extract(http.Header{}); ok {
		t.Fatal("Extract reported ok on an empty header set")
	}
}

func TestRecorderRingOverwrites(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "op")
		sp.AttrInt("i", int64(i))
		sp.End()
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if got := rec.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// Oldest-first order across the wrap point.
	for i, sp := range spans {
		if want := formatInt(int64(6 + i)); sp.Attr("i") != want {
			t.Fatalf("span %d has i=%s, want %s", i, sp.Attr("i"), want)
		}
	}
}

func TestRecorderFilterAndHandler(t *testing.T) {
	rec := NewRecorder(32)
	ctx := WithRecorder(context.Background(), rec)
	ctx1, a := Start(ctx, "submit")
	a.Attr("session", "s1")
	time.Sleep(2 * time.Millisecond)
	a.End()
	_, b := Start(ctx, "task")
	b.Attr("session", "s2")
	b.End()
	traceID := FromContextID(ctx1)

	if got := rec.Filter(Filter{Name: "submit"}); len(got) != 1 || got[0].Name != "submit" {
		t.Fatalf("name filter: %+v", got)
	}
	if got := rec.Filter(Filter{Attr: "session", AttrValue: "s2"}); len(got) != 1 || got[0].Attr("session") != "s2" {
		t.Fatalf("session filter: %+v", got)
	}
	if got := rec.Filter(Filter{MinDuration: time.Millisecond}); len(got) != 1 || got[0].Name != "submit" {
		t.Fatalf("min duration filter: %+v", got)
	}

	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/trace?session=s1&min_ms=1&trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 1 || len(out.Spans) != 1 || out.Spans[0].Name != "submit" {
		t.Fatalf("handler filtered wrong: %+v", out)
	}
	if resp, err := http.Get(srv.URL + "/debug/trace?min_ms=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bogus min_ms got %d, want 400", resp.StatusCode)
		}
	}
}

// FromContextID is a test helper returning the active span's trace id.
func FromContextID(ctx context.Context) string {
	sc, _ := Active(ctx)
	return sc.TraceID.String()
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if id.IsZero() || seen[id] {
			t.Fatalf("span id collision or zero at %d: %s", i, id)
		}
		seen[id] = true
	}
	if NewTraceID() == NewTraceID() {
		t.Fatal("trace id collision")
	}
}

func TestTraceparentShape(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	parts := strings.Split(sc.Traceparent(), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || parts[3] != "01" {
		t.Fatalf("traceparent shape wrong: %q", sc.Traceparent())
	}
}
