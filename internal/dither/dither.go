// Package dither implements the subtractive dithering one-bit estimator of
// Ben-Basat, Mitzenmacher and Vargaftik, the paper's strongest prior
// baseline (§2): "When we evaluated in our setting several approaches that
// were described in [3], subtractive dithering was a clear frontrunner."
//
// For a value x scaled into [0, 1], the client draws h uniform in [0, 1]
// (shared randomness, so the server knows h) and sends the single bit
// b = 1{x >= h}. The server's per-report estimate is b + h - 1/2, which is
// unbiased with constant variance on [0, 1]. To compare under local DP the
// bit is additionally passed through randomized response and the estimate
// is unbiased at the server (§2, §4.2).
//
// Like the other scale-and-estimate baselines, dithering needs an a-priori
// bound on the values: with bit depth b the bound is 2^b, and its error
// scales with the bound (paper §2, "the variance of their estimates scales
// with (H-L)^2") — the behaviour Figures 1c, 2c and 4c exhibit.
package dither

import (
	"errors"
	"fmt"

	"repro/internal/frand"
	"repro/internal/ldp"
)

// ErrBound reports a non-positive scaling bound.
var ErrBound = errors.New("dither: bound must be positive")

// Dithering estimates a population mean from one subtractive-dithering bit
// per client.
type Dithering struct {
	// Bound is the assumed upper bound H on values; inputs are scaled by
	// 1/Bound into [0, 1] and clamped.
	Bound float64
	// RR, when non-nil, applies randomized response to each bit for an
	// ε-LDP guarantee, with server-side unbiasing.
	RR *ldp.RandomizedResponse
}

// New returns a plain (non-private) subtractive dithering estimator for
// values in [0, bound].
func New(bound float64) (*Dithering, error) {
	if !(bound > 0) {
		return nil, fmt.Errorf("%w: %v", ErrBound, bound)
	}
	return &Dithering{Bound: bound}, nil
}

// NewLDP returns a dithering estimator whose bit is protected with ε-LDP
// randomized response.
func NewLDP(bound, eps float64) (*Dithering, error) {
	d, err := New(bound)
	if err != nil {
		return nil, err
	}
	rr, err := ldp.NewRandomizedResponse(eps)
	if err != nil {
		return nil, err
	}
	d.RR = rr
	return d, nil
}

// Report produces one client report: the (possibly randomized-response
// protected) threshold bit and the public dither value h.
func (d *Dithering) Report(x float64, r *frand.RNG) (bit uint64, h float64) {
	scaled := x / d.Bound
	if scaled < 0 {
		scaled = 0
	}
	if scaled > 1 {
		scaled = 1
	}
	h = r.Float64()
	if scaled >= h {
		bit = 1
	}
	if d.RR != nil {
		bit = d.RR.Apply(bit, r)
	}
	return bit, h
}

// Estimate converts one report into an unbiased per-client estimate on the
// original scale.
func (d *Dithering) Estimate(bit uint64, h float64) float64 {
	b := float64(bit)
	if d.RR != nil {
		b = d.RR.UnbiasMean(b)
	}
	return (b + h - 0.5) * d.Bound
}

// EstimateMean gathers one report per value and returns the mean of the
// per-client estimates.
func (d *Dithering) EstimateMean(values []float64, r *frand.RNG) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		bit, h := d.Report(v, r)
		sum += d.Estimate(bit, h)
	}
	return sum / float64(len(values))
}

// EstimateVariance estimates the population variance by dithering both the
// values (scaled by Bound) and their squares (scaled by Bound^2) on
// independent halves of the population, then combining via
// Var[X] = E[X^2] - E[X]^2. This mirrors how the paper's Figure 1b applies
// the baseline to variance estimation, where "the dithering approach is
// orders of magnitude worse, due to its inability to adapt to the scale of
// the input values".
func (d *Dithering) EstimateVariance(values []float64, r *frand.RNG) float64 {
	if len(values) < 2 {
		return 0
	}
	half := len(values) / 2
	meanEst := d.EstimateMean(values[:half], r)
	sq := &Dithering{Bound: d.Bound * d.Bound, RR: d.RR}
	squares := make([]float64, len(values)-half)
	for i, v := range values[half:] {
		squares[i] = v * v
	}
	meanSqEst := sq.EstimateMean(squares, r)
	return meanSqEst - meanEst*meanEst
}
