package dither

import (
	"errors"
	"math"
	"testing"

	"repro/internal/frand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	for _, b := range []float64{0, -5} {
		if _, err := New(b); !errors.Is(err, ErrBound) {
			t.Errorf("New(%v): err = %v, want ErrBound", b, err)
		}
	}
	if _, err := NewLDP(0, 1); !errors.Is(err, ErrBound) {
		t.Errorf("NewLDP bad bound: err = %v", err)
	}
	if _, err := NewLDP(1, 0); err == nil {
		t.Error("NewLDP eps=0 accepted")
	}
}

func TestReportBitThreshold(t *testing.T) {
	d, _ := New(1)
	r := frand.New(1)
	// x = 1 always exceeds h in [0,1): bit must always be 1.
	for i := 0; i < 1000; i++ {
		if bit, _ := d.Report(1, r); bit != 1 {
			t.Fatal("x=1 produced bit 0")
		}
	}
	// x = 0 ties h only when h == 0 (measure zero): expect all zeros.
	for i := 0; i < 1000; i++ {
		if bit, h := d.Report(0, r); bit != 0 && h != 0 {
			t.Fatal("x=0 produced bit 1 for positive h")
		}
	}
}

func TestPerReportUnbiased(t *testing.T) {
	d, _ := New(1)
	r := frand.New(2)
	for _, x := range []float64{0.1, 0.33, 0.5, 0.77, 0.95} {
		var s stats.Stream
		for i := 0; i < 200000; i++ {
			bit, h := d.Report(x, r)
			s.Add(d.Estimate(bit, h))
		}
		if math.Abs(s.Mean()-x) > 0.005 {
			t.Errorf("x=%v: per-report estimate mean %v", x, s.Mean())
		}
	}
}

func TestPerReportVarianceBounded(t *testing.T) {
	// On [0,1] each report's variance is bounded by a constant (<= 1/4+1/12
	// style bounds; empirically around 0.08 at x=0.5).
	d, _ := New(1)
	r := frand.New(3)
	var s stats.Stream
	for i := 0; i < 100000; i++ {
		bit, h := d.Report(0.5, r)
		s.Add(d.Estimate(bit, h))
	}
	if s.Variance() > 0.25 {
		t.Fatalf("per-report variance %v exceeds constant bound", s.Variance())
	}
}

func TestEstimateMeanScaled(t *testing.T) {
	d, _ := New(1 << 10)
	r := frand.New(4)
	vals := workload.Normal{Mu: 400, Sigma: 50}.Sample(r, 50000)
	var truth stats.Stream
	truth.AddAll(vals)
	est := d.EstimateMean(vals, r)
	if math.Abs(est-truth.Mean()) > 6 {
		t.Fatalf("estimate %v, truth %v", est, truth.Mean())
	}
}

func TestErrorGrowsWithBound(t *testing.T) {
	// The defining weakness: with the same data, a looser bound gives a
	// worse estimate (variance scales with the bound squared).
	r := frand.New(5)
	vals := workload.Normal{Mu: 500, Sigma: 100}.Sample(r, 10000)
	var truth stats.Stream
	truth.AddAll(vals)
	errAt := func(bound float64) float64 {
		d, _ := New(bound)
		rr := frand.New(99)
		var ests []float64
		for rep := 0; rep < 30; rep++ {
			ests = append(ests, d.EstimateMean(vals, rr))
		}
		return stats.RMSE(ests, truth.Mean())
	}
	tight, loose := errAt(1<<10), errAt(1<<16)
	if loose < 4*tight {
		t.Fatalf("loose-bound RMSE %v not much worse than tight-bound %v", loose, tight)
	}
}

func TestLDPUnbiased(t *testing.T) {
	d, err := NewLDP(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(6)
	var s stats.Stream
	for i := 0; i < 300000; i++ {
		bit, h := d.Report(0.4, r)
		s.Add(d.Estimate(bit, h))
	}
	if math.Abs(s.Mean()-0.4) > 0.01 {
		t.Fatalf("LDP per-report mean %v, want ~0.4", s.Mean())
	}
}

func TestLDPNoisier(t *testing.T) {
	r := frand.New(7)
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = 0.6
	}
	plain, _ := New(1)
	private, _ := NewLDP(1, 0.5)
	var plainErrs, privErrs []float64
	for rep := 0; rep < 50; rep++ {
		plainErrs = append(plainErrs, plain.EstimateMean(vals, r))
		privErrs = append(privErrs, private.EstimateMean(vals, r))
	}
	if stats.RMSE(privErrs, 0.6) <= stats.RMSE(plainErrs, 0.6) {
		t.Fatal("LDP dithering not noisier than plain dithering")
	}
}

func TestEstimateVarianceRoughly(t *testing.T) {
	r := frand.New(8)
	vals := workload.Normal{Mu: 200, Sigma: 40}.Sample(r, 200000)
	var truth stats.Stream
	truth.AddAll(vals)
	d, _ := New(1 << 9)
	est := d.EstimateVariance(vals, r)
	// Dithering variance estimation is very noisy (the paper's point);
	// only require the right order of magnitude.
	if est < truth.Variance()/4 || est > truth.Variance()*4 {
		t.Fatalf("variance estimate %v, truth %v", est, truth.Variance())
	}
}

func TestEstimateMeanEmpty(t *testing.T) {
	d, _ := New(1)
	if d.EstimateMean(nil, frand.New(1)) != 0 {
		t.Error("empty estimate should be 0")
	}
	if d.EstimateVariance([]float64{1}, frand.New(1)) != 0 {
		t.Error("single-value variance should be 0")
	}
}

func TestClamping(t *testing.T) {
	d, _ := New(10)
	r := frand.New(9)
	var s stats.Stream
	for i := 0; i < 100000; i++ {
		bit, h := d.Report(1e9, r) // clamps to 10
		s.Add(d.Estimate(bit, h))
	}
	if math.Abs(s.Mean()-10) > 0.2 {
		t.Fatalf("clamped estimate mean %v, want ~10", s.Mean())
	}
}
