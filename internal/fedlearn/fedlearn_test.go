package fedlearn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/frand"
)

// synthetic builds n examples of y = w·x + b + noise.
func synthetic(n int, w []float64, b, noise float64, seed uint64) []Example {
	r := frand.New(seed)
	out := make([]Example, n)
	for i := range out {
		x := make([]float64, len(w))
		y := b
		for k := range x {
			x[k] = r.Normal(0, 1)
			y += w[k] * x[k]
		}
		out[i] = Example{X: x, Y: y + r.Normal(0, noise)}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	data := synthetic(100, []float64{1}, 0, 0.1, 1)
	r := frand.New(2)
	cases := []Config{
		{Dim: 0},
		{Dim: 1, Bits: 1},
		{Dim: 1, Bits: 40},
		{Dim: 1, Clip: -1},
		{Dim: 1, LR: -0.1},
		{Dim: 1, Rounds: -1},
		{Dim: 1, Eps: -1},
	}
	for i, cfg := range cases {
		if _, err := Train(cfg, data, r); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	// Too few clients for the coordinate partition.
	if _, err := Train(Config{Dim: 50}, data, r); !errors.Is(err, ErrData) {
		t.Errorf("undersized cohort: %v", err)
	}
	// Dimension mismatch in the data.
	bad := append([]Example{}, data...)
	bad[3] = Example{X: []float64{1, 2}, Y: 0}
	if _, err := Train(Config{Dim: 1}, bad, r); !errors.Is(err, ErrData) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestTrainConvergesToTruth(t *testing.T) {
	trueW := []float64{2, -1.5, 0.5}
	data := synthetic(12000, trueW, 0.7, 0.1, 3)
	model, err := Train(Config{Dim: 3, Rounds: 80, Seed: 4}, data, frand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range trueW {
		if math.Abs(model.Weights[k]-w) > 0.15 {
			t.Errorf("weight %d = %v, want ~%v", k, model.Weights[k], w)
		}
	}
	if math.Abs(model.Intercept-0.7) > 0.15 {
		t.Errorf("intercept = %v, want ~0.7", model.Intercept)
	}
	if model.BitsPerClient != 80 {
		t.Errorf("BitsPerClient = %d, want 80 (one per round)", model.BitsPerClient)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	data := synthetic(8000, []float64{1, 1}, 0, 0.2, 5)
	model, err := Train(Config{Dim: 2, Rounds: 40}, data, frand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	first, last := model.LossHistory[0], model.LossHistory[len(model.LossHistory)-1]
	if last > first/5 {
		t.Fatalf("loss went %v -> %v: no convergence", first, last)
	}
}

func TestTrainTracksExactBaseline(t *testing.T) {
	data := synthetic(16000, []float64{1.2, -0.8}, 0.3, 0.15, 7)
	cfg := Config{Dim: 2, Rounds: 60}
	private, err := Train(cfg, data, frand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TrainExact(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	pLoss := private.LossHistory[len(private.LossHistory)-1]
	eLoss := exact.LossHistory[len(exact.LossHistory)-1]
	// One bit per client per round costs accuracy; the final loss should
	// still be within a modest factor of the exact-gradient baseline's.
	if pLoss > 5*eLoss+0.05 {
		t.Fatalf("bit-pushed training loss %v vs exact %v", pLoss, eLoss)
	}
}

func TestTrainWithDPStillLearns(t *testing.T) {
	data := synthetic(30000, []float64{1.5}, 0, 0.1, 9)
	model, err := Train(Config{Dim: 1, Rounds: 60, Eps: 2, Seed: 10}, data, frand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Weights[0]-1.5) > 0.4 {
		t.Errorf("DP-trained weight %v, want ~1.5", model.Weights[0])
	}
	first, last := model.LossHistory[0], model.LossHistory[len(model.LossHistory)-1]
	if last > first/2 {
		t.Fatalf("DP loss went %v -> %v", first, last)
	}
}

func TestModelPredictAndMSE(t *testing.T) {
	m := &Model{Weights: []float64{2, 3}, Intercept: 1}
	if got := m.Predict([]float64{1, 1}); got != 6 {
		t.Errorf("Predict = %v", got)
	}
	data := []Example{{X: []float64{1, 1}, Y: 6}, {X: []float64{0, 0}, Y: 2}}
	if got := m.MSE(data); got != 0.5 {
		t.Errorf("MSE = %v, want 0.5", got)
	}
	if m.MSE(nil) != 0 {
		t.Error("empty MSE should be 0")
	}
}

func TestEstimateFeatureStats(t *testing.T) {
	r := frand.New(11)
	data := make([]Example, 40000)
	for i := range data {
		data[i] = Example{X: []float64{r.Normal(3, 2), r.Normal(-1, 0.5)}, Y: 0}
	}
	stats, err := EstimateFeatureStats(2, 12, 16, data, frand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Mean[0]-3) > 0.15 || math.Abs(stats.Mean[1]+1) > 0.1 {
		t.Errorf("means = %v", stats.Mean)
	}
	if math.Abs(stats.Std[0]-2) > 0.2 || math.Abs(stats.Std[1]-0.5) > 0.1 {
		t.Errorf("stds = %v", stats.Std)
	}
}

func TestStandardize(t *testing.T) {
	stats := &FeatureStats{Mean: []float64{10, 0}, Std: []float64{2, 0}}
	data := []Example{{X: []float64{14, 5}, Y: 3}}
	out := stats.Standardize(data)
	if out[0].X[0] != 2 {
		t.Errorf("standardized x0 = %v, want 2", out[0].X[0])
	}
	// Zero std falls back to no scaling.
	if out[0].X[1] != 5 {
		t.Errorf("zero-std feature = %v, want 5", out[0].X[1])
	}
	if out[0].Y != 3 {
		t.Error("target modified")
	}
	// Original untouched.
	if data[0].X[0] != 14 {
		t.Error("Standardize mutated input")
	}
}

func TestNormalizationImprovesConditioning(t *testing.T) {
	// Badly scaled features (std 100 vs 0.1) stall plain GD at a fixed
	// learning rate; standardizing with bit-pushed stats fixes it.
	r := frand.New(13)
	data := make([]Example, 16000)
	for i := range data {
		x := []float64{r.Normal(0, 100), r.Normal(0, 0.1)}
		data[i] = Example{X: x, Y: 0.02*x[0] + 8*x[1]}
	}
	stats, err := EstimateFeatureStats(2, 12, 512, data, frand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	normalized := stats.Standardize(data)
	cfg := Config{Dim: 2, Rounds: 60, LR: 0.1, Clip: 16}
	rawModel, err := Train(Config{Dim: 2, Rounds: 60, LR: 0.1, Clip: 16}, data, frand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	normModel, err := Train(cfg, normalized, frand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	rawLoss := rawModel.LossHistory[len(rawModel.LossHistory)-1]
	normLoss := normModel.LossHistory[len(normModel.LossHistory)-1]
	if normLoss*2 >= rawLoss {
		t.Fatalf("normalized training loss %v not well below raw %v", normLoss, rawLoss)
	}
}

func TestEstimateFeatureStatsValidation(t *testing.T) {
	r := frand.New(16)
	if _, err := EstimateFeatureStats(0, 12, 1, nil, r); !errors.Is(err, ErrConfig) {
		t.Errorf("dim=0: %v", err)
	}
	if _, err := EstimateFeatureStats(1, 12, 1, []Example{{X: []float64{1}}}, r); !errors.Is(err, ErrData) {
		t.Errorf("tiny data: %v", err)
	}
}
