package fedlearn_test

import (
	"fmt"

	"repro/internal/fedlearn"
	"repro/internal/frand"
)

// Training a one-dimensional model where every client discloses a single
// gradient bit per round.
func ExampleTrain() {
	r := frand.New(5)
	data := make([]fedlearn.Example, 8000)
	for i := range data {
		x := r.Normal(0, 1)
		data[i] = fedlearn.Example{X: []float64{x}, Y: 3*x + 1}
	}
	model, _ := fedlearn.Train(fedlearn.Config{Dim: 1, Rounds: 60}, data, r)
	fmt.Printf("weight within 0.1 of 3: %v\n", model.Weights[0] > 2.9 && model.Weights[0] < 3.1)
	fmt.Printf("intercept within 0.1 of 1: %v\n", model.Intercept > 0.9 && model.Intercept < 1.1)
	fmt.Printf("bits disclosed per client: %d\n", model.BitsPerClient)
	// Output:
	// weight within 0.1 of 3: true
	// intercept within 0.1 of 1: true
	// bits disclosed per client: 60
}
