// Package fedlearn uses bit-pushing as the aggregation subroutine of
// federated learning, the application the paper motivates throughout
// (§1: "federated learning computes sample means for gradient updates";
// §3: "Bit-pushing can be used as a subroutine in many applications
// including federated learning").
//
// The package trains a linear model by federated gradient descent where
// each round's mean gradient is estimated one bit per client: the server
// partitions the cohort across gradient coordinates, and every client
// discloses a single binary digit of its clipped, fixed-point-encoded
// gradient coordinate — optionally through randomized response. It also
// implements the §3.4 feature-normalization recipe: per-feature means and
// variances estimated with bit-pushing, used to standardize features
// client-side before training.
package fedlearn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/quantile"
)

// Errors returned by the trainer.
var (
	ErrConfig = errors.New("fedlearn: invalid configuration")
	ErrData   = errors.New("fedlearn: invalid data")
)

// Example is one client's private training example.
type Example struct {
	X []float64 // features
	Y float64   // target
}

// Config parametrizes federated linear-regression training.
type Config struct {
	// Dim is the feature dimension (the model learns Dim weights plus an
	// intercept).
	Dim int
	// Bits is the fixed-point depth for gradient coordinates. Zero means 12.
	Bits int
	// Clip bounds each gradient coordinate to [-Clip, Clip] before
	// encoding (the §4.3 winsorization applied to gradients). Zero means 8.
	Clip float64
	// LR is the learning rate. Zero means 0.1.
	LR float64
	// Rounds is the number of gradient steps. Zero means 50.
	Rounds int
	// Eps, when positive, applies ε-LDP randomized response to every
	// disclosed gradient bit.
	Eps float64
	// Seed drives all protocol randomness.
	Seed uint64
}

func (c *Config) bits() int {
	if c.Bits == 0 {
		return 12
	}
	return c.Bits
}

func (c *Config) clip() float64 {
	if c.Clip == 0 {
		return 8
	}
	return c.Clip
}

func (c *Config) lr() float64 {
	if c.LR == 0 {
		return 0.1
	}
	return c.LR
}

func (c *Config) rounds() int {
	if c.Rounds == 0 {
		return 50
	}
	return c.Rounds
}

func (c *Config) validate(n int) error {
	if c.Dim < 1 {
		return fmt.Errorf("%w: Dim=%d", ErrConfig, c.Dim)
	}
	if b := c.bits(); b < 2 || b > 32 {
		return fmt.Errorf("%w: Bits=%d", ErrConfig, c.Bits)
	}
	if !(c.clip() > 0) || !(c.lr() > 0) || c.rounds() < 1 {
		return fmt.Errorf("%w: Clip=%v LR=%v Rounds=%d", ErrConfig, c.Clip, c.LR, c.Rounds)
	}
	if c.Eps < 0 {
		return fmt.Errorf("%w: Eps=%v", ErrConfig, c.Eps)
	}
	// Every round partitions the cohort across 2·(Dim+1) coordinate
	// sign-parts.
	if n < 8*(c.Dim+1) {
		return fmt.Errorf("%w: %d clients cannot cover %d gradient coordinates", ErrData, n, c.Dim+1)
	}
	return nil
}

// Model is a trained linear model.
type Model struct {
	Weights   []float64
	Intercept float64
	// LossHistory records the exact population MSE after each round
	// (computable in simulation; a deployment would estimate it too).
	LossHistory []float64
	// BitsPerClient is the total number of bits each client disclosed
	// about its gradients over the whole training run (one per round).
	BitsPerClient int
}

// Predict evaluates the model on features x.
func (m *Model) Predict(x []float64) float64 {
	var y float64
	for i, w := range m.Weights {
		y += w * x[i]
	}
	return y + m.Intercept
}

// MSE returns the model's mean squared error on a dataset.
func (m *Model) MSE(data []Example) float64 {
	if len(data) == 0 {
		return 0
	}
	var s float64
	for _, ex := range data {
		d := m.Predict(ex.X) - ex.Y
		s += d * d
	}
	return s / float64(len(data))
}

// Train runs federated gradient descent: each round, every client
// computes its local gradient of the squared loss at the broadcast model,
// is assigned ONE coordinate by the server, and discloses ONE bit of that
// coordinate's clipped fixed-point encoding. The server reconstructs the
// mean gradient per coordinate from the bit reports and steps the model.
func Train(cfg Config, data []Example, r *frand.RNG) (*Model, error) {
	if err := cfg.validate(len(data)); err != nil {
		return nil, err
	}
	for i, ex := range data {
		if len(ex.X) != cfg.Dim {
			return nil, fmt.Errorf("%w: example %d has %d features, want %d", ErrData, i, len(ex.X), cfg.Dim)
		}
	}
	var rr *ldp.RandomizedResponse
	if cfg.Eps > 0 {
		var err error
		if rr, err = ldp.NewRandomizedResponse(cfg.Eps); err != nil {
			return nil, err
		}
	}
	coords := cfg.Dim + 1 // weights + intercept
	clip := cfg.clip()
	// Signed gradient coordinates are estimated by positive/negative part
	// decomposition: E[g] = E[max(g,0)] - E[max(-g,0)], each part a
	// non-negative quantity in [0, Clip]. Offset-encoding the signed value
	// instead would make the estimator's error scale with the encoding
	// offset rather than the (typically small) gradient magnitude.
	codec, err := fixedpoint.NewCodec(cfg.bits(), 0, math.Ldexp(1, cfg.bits())/clip)
	if err != nil {
		return nil, err
	}
	probs, err := core.GeometricProbs(cfg.bits(), 1)
	if err != nil {
		return nil, err
	}
	protoCfg := core.Config{Bits: cfg.bits(), Probs: probs, RR: rr}

	model := &Model{Weights: make([]float64, cfg.Dim)}
	grad := make([]float64, coords)
	for round := 0; round < cfg.rounds(); round++ {
		// Server-side: partition clients across (coordinate, sign-part).
		assignment := r.Perm(len(data))
		per := len(data) / (2 * coords)
		for k := 0; k < coords; k++ {
			parts := [2]float64{}
			for side := 0; side < 2; side++ {
				cohort := make([]uint64, per)
				for idx := 0; idx < per; idx++ {
					ex := data[assignment[(2*k+side)*per+idx]]
					g := clientGradient(model, ex, k)
					if side == 1 {
						g = -g
					}
					cohort[idx] = codec.Encode(math.Max(0, g))
				}
				res, err := core.Run(protoCfg, cohort, r)
				if err != nil {
					return nil, err
				}
				parts[side] = codec.DecodeMean(res.Estimate)
			}
			grad[k] = parts[0] - parts[1]
		}
		for k := 0; k < cfg.Dim; k++ {
			model.Weights[k] -= cfg.lr() * grad[k]
		}
		model.Intercept -= cfg.lr() * grad[coords-1]
		model.LossHistory = append(model.LossHistory, model.MSE(data))
		model.BitsPerClient++
	}
	return model, nil
}

// clientGradient computes coordinate k of one client's squared-loss
// gradient at the current model: residual times feature (or 1 for the
// intercept). This runs on the client; only one bit of its encoding ever
// leaves the device.
func clientGradient(m *Model, ex Example, k int) float64 {
	residual := m.Predict(ex.X) - ex.Y
	if k == len(m.Weights) {
		return residual
	}
	return residual * ex.X[k]
}

// TrainExact is the non-private baseline: full-gradient descent with the
// same schedule, as if every client shipped its entire gradient.
func TrainExact(cfg Config, data []Example) (*Model, error) {
	if err := cfg.validate(len(data)); err != nil {
		return nil, err
	}
	coords := cfg.Dim + 1
	model := &Model{Weights: make([]float64, cfg.Dim)}
	grad := make([]float64, coords)
	for round := 0; round < cfg.rounds(); round++ {
		for k := range grad {
			grad[k] = 0
		}
		for _, ex := range data {
			for k := 0; k < coords; k++ {
				grad[k] += clientGradient(model, ex, k)
			}
		}
		for k := range grad {
			grad[k] /= float64(len(data))
		}
		for k := 0; k < cfg.Dim; k++ {
			model.Weights[k] -= cfg.lr() * grad[k]
		}
		model.Intercept -= cfg.lr() * grad[coords-1]
		model.LossHistory = append(model.LossHistory, model.MSE(data))
	}
	return model, nil
}

// FeatureStats holds per-feature standardization parameters.
type FeatureStats struct {
	Mean []float64
	Std  []float64
}

// EstimateFeatureStats runs the §3.4 feature-normalization recipe: the
// mean and variance of every feature estimated with bit-pushing (each
// participating client discloses one bit per feature statistic). Features
// are assumed to lie within [-bound, bound].
func EstimateFeatureStats(dim, bits int, bound float64, data []Example, r *frand.RNG) (*FeatureStats, error) {
	if dim < 1 || bits < 2 || bits > 26 || !(bound > 0) {
		return nil, fmt.Errorf("%w: dim=%d bits=%d bound=%v", ErrConfig, dim, bits, bound)
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: need at least 8 examples", ErrData)
	}
	// Parts and squared deviations are non-negative; signed features are
	// handled by positive/negative decomposition so estimation error
	// scales with the feature's magnitude, not an encoding offset.
	//
	// `bound` only caps the domain. Each feature's own magnitude is first
	// located with a one-bit threshold probe (the §2 "zoom in on the
	// range where the data truly lies"), and its codecs are scaled to
	// that magnitude — a globally scaled codec would quantize a
	// small-variance feature's squared deviations to zero.
	globalScale := math.Ldexp(1, bits) / bound
	globalCodec, err := fixedpoint.NewCodec(bits, 0, globalScale)
	if err != nil {
		return nil, err
	}
	for i, ex := range data {
		if len(ex.X) != dim {
			return nil, fmt.Errorf("%w: example %d has %d features", ErrData, i, len(ex.X))
		}
	}
	stats := &FeatureStats{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for k := 0; k < dim; k++ {
		// Disjoint cohorts: magnitude probe, positive part, negative
		// part, squared deviations.
		perm := r.Perm(len(data))
		quarter := len(data) / 4

		probe := make([]uint64, quarter)
		for i := 0; i < quarter; i++ {
			probe[i] = globalCodec.Encode(math.Abs(data[perm[i]].X[k]))
		}
		clipBits, err := quantile.AdaptiveClipBits(quantile.Config{Bits: bits}, 0.99, probe, r)
		if err != nil {
			return nil, err
		}
		boundK := math.Ldexp(1, clipBits) / globalScale // feature magnitude cap
		scale := math.Ldexp(1, bits) / boundK
		codec, err := fixedpoint.NewCodec(bits, 0, scale)
		if err != nil {
			return nil, err
		}
		sqCodec, err := fixedpoint.NewCodec(bits, 0, math.Ldexp(1, bits)/(4*boundK*boundK))
		if err != nil {
			return nil, err
		}
		meanOf := func(xs []float64) (float64, error) {
			encoded := make([]uint64, len(xs))
			for i, v := range xs {
				encoded[i] = codec.Encode(v)
			}
			res, err := core.RunAdaptive(core.AdaptiveConfig{Bits: bits}, encoded, r)
			if err != nil {
				return 0, err
			}
			return codec.DecodeMean(res.Estimate), nil
		}
		pos := make([]float64, quarter)
		neg := make([]float64, quarter)
		for i := 0; i < quarter; i++ {
			pos[i] = math.Max(0, data[perm[quarter+i]].X[k])
			neg[i] = math.Max(0, -data[perm[2*quarter+i]].X[k])
		}
		posMean, err := meanOf(pos)
		if err != nil {
			return nil, err
		}
		negMean, err := meanOf(neg)
		if err != nil {
			return nil, err
		}
		stats.Mean[k] = posMean - negMean

		devs := make([]uint64, len(data)-3*quarter)
		for i := range devs {
			d := data[perm[3*quarter+i]].X[k] - stats.Mean[k]
			devs[i] = sqCodec.Encode(d * d)
		}
		res, err := core.RunAdaptive(core.AdaptiveConfig{Bits: bits}, devs, r)
		if err != nil {
			return nil, err
		}
		stats.Std[k] = math.Sqrt(math.Max(0, sqCodec.DecodeMean(res.Estimate)))
	}
	return stats, nil
}

// Standardize returns a copy of the dataset with features centered and
// scaled by the estimated statistics (client-side preprocessing).
func (s *FeatureStats) Standardize(data []Example) []Example {
	out := make([]Example, len(data))
	for i, ex := range data {
		x := make([]float64, len(ex.X))
		for k := range x {
			sd := s.Std[k]
			if sd <= 1e-12 {
				sd = 1
			}
			x[k] = (ex.X[k] - s.Mean[k]) / sd
		}
		out[i] = Example{X: x, Y: ex.Y}
	}
	return out
}
