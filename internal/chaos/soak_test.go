package chaos_test

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

// TestChaosSoak runs hundreds of concurrent flaky clients through one
// aggregation session behind a fault injector — dropped requests, lost
// acks (duplicate server deliveries), network retransmissions, injected
// 503s and delays — and asserts the protocol converges: every retried
// client lands exactly one accepted report, and the estimate matches a
// fault-free in-process core.Aggregate run within statistical tolerance.
func TestChaosSoak(t *testing.T) {
	const (
		n    = 600
		bits = 8
	)
	in, err := chaos.NewInjector(chaos.Faults{
		Seed:      42,
		Drop:      0.12, // ≥10% dropped requests
		LoseAck:   0.06,
		Duplicate: 0.06, // ≥5% duplicated
		ServerErr: 0.06,
		Delay:     0.20,
		MaxDelay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := transport.NewServer(1)
	// Share one registry between the server and the injector so the soak
	// can reconcile the instrumented pipeline against injected ground truth.
	in.SetMetrics(agg.Registry())
	srv := httptest.NewServer(in.Middleware(agg))
	defer srv.Close()

	root := frand.New(7)
	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(
		workload.Normal{Mu: 140, Sigma: 35}.Sample(root, n))
	truth := fixedpoint.Mean(values)

	retry := func(seed uint64) *transport.RetryPolicy {
		return &transport.RetryPolicy{
			MaxAttempts:   10,
			BaseDelay:     2 * time.Millisecond,
			MaxDelay:      40 * time.Millisecond,
			Jitter:        0.5,
			PerTryTimeout: 5 * time.Second,
			Seed:          seed,
		}
	}
	ctx := context.Background()
	// The admin traverses the same faulty middleware, so it retries too.
	admin := &transport.Admin{BaseURL: srv.URL, Retry: retry(1)}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "soak", Bits: bits, Gamma: 1, MinCohort: n / 2,
	})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for i, v := range values {
		wg.Add(1)
		go func(i int, v uint64, rng *frand.RNG) {
			defer wg.Done()
			p := &transport.Participant{
				BaseURL:    srv.URL,
				ClientID:   clientID(i),
				RNG:        rng,
				Retry:      retry(uint64(i) + 1000),
				HTTPClient: &http.Client{Transport: in.Transport(nil)},
			}
			if err := p.Participate(ctx, session, v); err == nil {
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}(i, v, root.Split())
	}
	wg.Wait()

	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}

	// The injector must actually have exercised every fault mode at the
	// advertised rates (within loose binomial slack).
	c := in.Counters()
	t.Logf("faults: %+v over %d requests; %d/%d clients succeeded, %d reports",
		c, c.Requests, succeeded, n, res.Reports)
	if c.Dropped < c.Requests/20 || c.Duplicated == 0 || c.AcksLost == 0 || c.ServerErrs == 0 || c.Delayed == 0 {
		t.Fatalf("fault injector barely fired: %+v", c)
	}

	// Exactly-once: the cohort can never exceed the client count (no
	// duplicate delivery may double-count), and every client whose
	// Participate succeeded is in it. With 10 attempts per request the
	// overwhelming majority pushes through the ~20% per-attempt fault rate.
	if res.Reports > n {
		t.Fatalf("%d reports from %d clients: duplicates double-counted", res.Reports, n)
	}
	if res.Reports < succeeded {
		t.Fatalf("%d reports < %d acked participations", res.Reports, succeeded)
	}
	if succeeded < (n*9)/10 {
		t.Fatalf("only %d/%d clients pushed through the chaos", succeeded, n)
	}

	// Fault-free baseline: the same values aggregated in-process with the
	// same allocation. Both estimators are unbiased with σ ≈ truth/√n, so
	// the two estimates and the exact mean must agree within a few σ.
	probs, err := core.GeometricProbs(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := core.Allocate(probs, n)
	if err != nil {
		t.Fatal(err)
	}
	assign := core.Assign(counts, frand.New(11))
	reports := make([]core.Report, n)
	for i, v := range values {
		reports[i] = core.Report{Bit: assign[i], Value: (v >> uint(assign[i])) & 1}
	}
	clean, err := core.Aggregate(core.Config{Bits: bits, Probs: probs}, reports)
	if err != nil {
		t.Fatal(err)
	}

	sigma := truth / math.Sqrt(n)
	if d := math.Abs(res.Estimate - truth); d > 4*sigma {
		t.Fatalf("chaos estimate %.2f vs exact mean %.2f: off by %.1fσ", res.Estimate, truth, d/sigma)
	}
	if d := math.Abs(res.Estimate - clean.Estimate); d > 6*sigma {
		t.Fatalf("chaos estimate %.2f vs fault-free estimate %.2f: off by %.1fσ", res.Estimate, clean.Estimate, d/sigma)
	}

	// Metrics reconciliation: the instrumented pipeline's counters must
	// agree exactly with the injector's ground truth for the reports route.
	// Every client send either vanished (dropped) or was delivered — twice
	// when duplicated — and every delivery either got an injected 503 or
	// reached the report handler, which classified it into exactly one
	// fednum_reports_total result.
	reg := agg.Registry()
	cr := in.ClassCounters(chaos.ClassReport)
	deliveries := cr.Requests - cr.Dropped + cr.Duplicated
	handlerCalls := deliveries - cr.ServerErrs
	results := reg.CounterVec(transport.MetricReports, "", "result")
	var classified uint64
	for _, result := range []string{
		transport.ReportAccepted, transport.ReportDuplicate, transport.ReportConflict,
		transport.ReportWrongBit, transport.ReportNoTask, transport.ReportInvalid,
	} {
		classified += results.With(result).Value()
	}
	if classified != uint64(handlerCalls) {
		t.Fatalf("reports classified = %d, want %d (= %d sends - %d dropped + %d duplicated - %d injected 503s)",
			classified, handlerCalls, cr.Requests, cr.Dropped, cr.Duplicated, cr.ServerErrs)
	}
	if accepted := results.With(transport.ReportAccepted).Value(); accepted != uint64(res.Reports) {
		t.Fatalf("accepted counter = %d, finalized cohort = %d", accepted, res.Reports)
	}
	// The injector's own registry mirror must match its Go-side counters.
	faults := reg.CounterVec(chaos.MetricFaults, "", "kind", "class")
	if got := faults.With("drop", chaos.ClassReport).Value(); got != uint64(cr.Dropped) {
		t.Fatalf("chaos_faults_total{drop,report} = %d, counters say %d", got, cr.Dropped)
	}
	if got := reg.CounterVec(chaos.MetricRequests, "", "class").With(chaos.ClassReport).Value(); got != uint64(cr.Requests) {
		t.Fatalf("chaos_requests_total{report} = %d, counters say %d", got, cr.Requests)
	}
	t.Logf("reconciled: %d report sends, %d handler calls, %d classified (%d accepted)",
		cr.Requests, handlerCalls, classified, results.With(transport.ReportAccepted).Value())
}

func clientID(i int) string { return fmt.Sprintf("dev-%d", i) }
