package chaos_test

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

// TestChaosSoak runs hundreds of concurrent flaky clients through one
// aggregation session behind a fault injector — dropped requests, lost
// acks (duplicate server deliveries), network retransmissions, injected
// 503s and delays — and asserts the protocol converges: every retried
// client lands exactly one accepted report, and the estimate matches a
// fault-free in-process core.Aggregate run within statistical tolerance.
func TestChaosSoak(t *testing.T) {
	const (
		n    = 600
		bits = 8
		// perTry must be generous enough that honest requests never time
		// out even under -race scheduling (a timed-out client breaks the
		// delivery accounting below), while stallFor must exceed it so
		// every stalled request IS a client-visible timeout.
		perTry   = 3 * time.Second
		stallFor = 4 * time.Second
	)
	in, err := chaos.NewInjector(chaos.Faults{
		Seed:      42,
		Drop:      0.12, // ≥10% dropped requests
		LoseAck:   0.06,
		Duplicate: 0.06, // ≥5% duplicated
		ServerErr: 0.06,
		Delay:     0.20,
		MaxDelay:  5 * time.Millisecond,
		// Stalls are held past the client's per-try timeout (below), so
		// every stalled request is a client-visible timeout the server
		// still processes — the time-domain lost ack.
		Stall:    0.008,
		StallFor: stallFor,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := transport.NewServer(1)
	// Share one registry between the server and the injector so the soak
	// can reconcile the instrumented pipeline against injected ground truth.
	in.SetMetrics(agg.Registry())
	srv := httptest.NewServer(in.Middleware(agg))
	defer srv.Close()

	root := frand.New(7)
	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(
		workload.Normal{Mu: 140, Sigma: 35}.Sample(root, n))
	truth := fixedpoint.Mean(values)

	retry := func(seed uint64) *transport.RetryPolicy {
		return &transport.RetryPolicy{
			MaxAttempts:   10,
			BaseDelay:     2 * time.Millisecond,
			MaxDelay:      40 * time.Millisecond,
			Jitter:        0.5,
			PerTryTimeout: perTry, // < StallFor: stalled tries time out and retry
			Seed:          seed,
		}
	}
	ctx := context.Background()
	// The admin traverses the same faulty middleware, so it retries too.
	admin := &transport.Admin{BaseURL: srv.URL, Retry: retry(1)}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "soak", Bits: bits, Gamma: 1, MinCohort: n / 2,
	})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for i, v := range values {
		wg.Add(1)
		go func(i int, v uint64, rng *frand.RNG) {
			defer wg.Done()
			p := &transport.Participant{
				BaseURL:    srv.URL,
				ClientID:   clientID(i),
				RNG:        rng,
				Retry:      retry(uint64(i) + 1000),
				HTTPClient: &http.Client{Transport: in.Transport(nil)},
			}
			if err := p.Participate(ctx, session, v); err == nil {
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}(i, v, root.Split())
	}
	wg.Wait()
	// Stalled requests are still being held (and will be processed) after
	// their clients gave up; let them drain before finalizing so every
	// delivered report meets a live session and lands in exactly one
	// ingestion classification.
	if in.Counters().Stalled > 0 {
		time.Sleep(stallFor + 200*time.Millisecond)
	}

	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}

	// The injector must actually have exercised every fault mode at the
	// advertised rates (within loose binomial slack).
	c := in.Counters()
	t.Logf("faults: %+v over %d requests; %d/%d clients succeeded, %d reports",
		c, c.Requests, succeeded, n, res.Reports)
	if c.Dropped < c.Requests/20 || c.Duplicated == 0 || c.AcksLost == 0 || c.ServerErrs == 0 || c.Delayed == 0 || c.Stalled == 0 {
		t.Fatalf("fault injector barely fired: %+v", c)
	}

	// Exactly-once: the cohort can never exceed the client count (no
	// duplicate delivery may double-count), and every client whose
	// Participate succeeded is in it. With 10 attempts per request the
	// overwhelming majority pushes through the ~20% per-attempt fault rate.
	if res.Reports > n {
		t.Fatalf("%d reports from %d clients: duplicates double-counted", res.Reports, n)
	}
	if res.Reports < succeeded {
		t.Fatalf("%d reports < %d acked participations", res.Reports, succeeded)
	}
	if succeeded < (n*9)/10 {
		t.Fatalf("only %d/%d clients pushed through the chaos", succeeded, n)
	}

	// Fault-free baseline: the same values aggregated in-process with the
	// same allocation. Both estimators are unbiased with σ ≈ truth/√n, so
	// the two estimates and the exact mean must agree within a few σ.
	probs, err := core.GeometricProbs(bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := core.Allocate(probs, n)
	if err != nil {
		t.Fatal(err)
	}
	assign := core.Assign(counts, frand.New(11))
	reports := make([]core.Report, n)
	for i, v := range values {
		reports[i] = core.Report{Bit: assign[i], Value: (v >> uint(assign[i])) & 1}
	}
	clean, err := core.Aggregate(core.Config{Bits: bits, Probs: probs}, reports)
	if err != nil {
		t.Fatal(err)
	}

	sigma := truth / math.Sqrt(n)
	if d := math.Abs(res.Estimate - truth); d > 4*sigma {
		t.Fatalf("chaos estimate %.2f vs exact mean %.2f: off by %.1fσ", res.Estimate, truth, d/sigma)
	}
	if d := math.Abs(res.Estimate - clean.Estimate); d > 6*sigma {
		t.Fatalf("chaos estimate %.2f vs fault-free estimate %.2f: off by %.1fσ", res.Estimate, clean.Estimate, d/sigma)
	}

	// Metrics reconciliation: the instrumented pipeline's counters must
	// agree exactly with the injector's ground truth for the reports route.
	// The middleware's Delivered tally is the server-side ground truth:
	// every delivery either got an injected 503 or reached the report
	// handler, which classified it into exactly one fednum_reports_total
	// result. The client-side arithmetic (sends - dropped + duplicated)
	// bounds deliveries from above — a duplicate's second copy is never
	// sent when the per-try context died during the first (e.g. a stalled
	// first delivery), so it may overshoot by those suppressed copies.
	reg := agg.Registry()
	cr := in.ClassCounters(chaos.ClassReport)
	if sent := cr.Requests - cr.Dropped + cr.Duplicated; cr.Delivered > sent {
		t.Fatalf("server saw %d report deliveries, client-side arithmetic caps it at %d", cr.Delivered, sent)
	}
	handlerCalls := cr.Delivered - cr.ServerErrs
	results := reg.CounterVec(transport.MetricReports, "", "result")
	var classified uint64
	for _, result := range []string{
		transport.ReportAccepted, transport.ReportDuplicate, transport.ReportConflict,
		transport.ReportWrongBit, transport.ReportNoTask, transport.ReportInvalid,
	} {
		classified += results.With(result).Value()
	}
	if classified != uint64(handlerCalls) {
		t.Fatalf("reports classified = %d, want %d (= %d deliveries - %d injected 503s)",
			classified, handlerCalls, cr.Delivered, cr.ServerErrs)
	}
	if accepted := results.With(transport.ReportAccepted).Value(); accepted != uint64(res.Reports) {
		t.Fatalf("accepted counter = %d, finalized cohort = %d", accepted, res.Reports)
	}
	// The injector's own registry mirror must match its Go-side counters.
	faults := reg.CounterVec(chaos.MetricFaults, "", "kind", "class")
	if got := faults.With("drop", chaos.ClassReport).Value(); got != uint64(cr.Dropped) {
		t.Fatalf("chaos_faults_total{drop,report} = %d, counters say %d", got, cr.Dropped)
	}
	// Stall reconciliation: the per-class mirrors must sum to the global
	// ground-truth tally, and stalled deliveries are part of the handler
	// accounting above (a stall delays the handler, never skips it).
	var stalledByClass int
	for _, class := range []string{chaos.ClassReport, chaos.ClassTask, chaos.ClassAdmin} {
		got := faults.With("stall", class).Value()
		if want := uint64(in.ClassCounters(class).Stalled); got != want {
			t.Fatalf("chaos_faults_total{stall,%s} = %d, counters say %d", class, got, want)
		}
		stalledByClass += in.ClassCounters(class).Stalled
	}
	if stalledByClass != c.Stalled {
		t.Fatalf("per-class stalls sum to %d, global counter says %d", stalledByClass, c.Stalled)
	}
	if got := reg.CounterVec(chaos.MetricRequests, "", "class").With(chaos.ClassReport).Value(); got != uint64(cr.Requests) {
		t.Fatalf("chaos_requests_total{report} = %d, counters say %d", got, cr.Requests)
	}
	if got := reg.CounterVec(chaos.MetricDeliveries, "", "class").With(chaos.ClassReport).Value(); got != uint64(cr.Delivered) {
		t.Fatalf("chaos_deliveries_total{report} = %d, counters say %d", got, cr.Delivered)
	}
	t.Logf("reconciled: %d report sends, %d handler calls, %d classified (%d accepted)",
		cr.Requests, handlerCalls, classified, results.With(transport.ReportAccepted).Value())
}

func clientID(i int) string { return fmt.Sprintf("dev-%d", i) }
