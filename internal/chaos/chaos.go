// Package chaos injects seeded, deterministic faults into the HTTP paths
// of the aggregation protocol, simulating the flaky fleets the paper's
// production stack runs on (§4.3): dropped connections, lost acks,
// network-level retransmission (duplicate delivery), transient server
// errors and response delays. It provides both a client-side
// http.RoundTripper wrapper and server-side middleware, driven by one
// Injector so a test controls the whole fault mix from a single seed.
//
// The injector never touches payloads — it only drops, delays, duplicates
// or fails whole exchanges — so any state the server reaches is one a real
// lossy network could have produced.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/frand"
	"repro/internal/obs"
)

// Request classes, used to label fault tallies so a soak test can
// reconcile per-endpoint metrics against ground truth (reports behave
// differently from task polls under loss: a lost report ack is
// re-submitted and deduplicated, a lost task ack is simply re-polled).
const (
	// ClassReport is a report submission (POST .../reports).
	ClassReport = "report"
	// ClassTask is a task poll (GET .../task).
	ClassTask = "task"
	// ClassAdmin is everything else: create, finalize, result.
	ClassAdmin = "admin"
)

// ClassOf maps a request path to its fault-accounting class.
func ClassOf(path string) string {
	switch {
	case strings.HasSuffix(path, "/reports"):
		return ClassReport
	case strings.HasSuffix(path, "/task") || strings.Contains(path, "/task?"):
		return ClassTask
	default:
		return ClassAdmin
	}
}

// Metric names the injector publishes when a registry is attached via
// SetMetrics. Faults are labeled by kind (drop, lose_ack, duplicate,
// server_err, delay, stall) and request class.
const (
	MetricRequests   = "chaos_requests_total"
	MetricDeliveries = "chaos_deliveries_total"
	MetricFaults     = "chaos_faults_total"
)

// Faults is the injection mix. All probabilities are independent per
// request and in [0,1]; zero values inject nothing.
type Faults struct {
	// Seed drives the fault stream; the same seed over the same request
	// sequence reproduces the same faults.
	Seed uint64
	// Drop is the probability a client request never reaches the server
	// (connection refused): the client sees a transport error, the server
	// sees nothing.
	Drop float64
	// LoseAck is the probability the server processes the request but the
	// response is lost (connection reset after delivery): the client sees
	// a transport error, the server has committed the effect. This is the
	// case that forces honest idempotency.
	LoseAck float64
	// Duplicate is the probability a request is delivered twice (network
	// retransmission): the server handles both copies, the client sees
	// the second response.
	Duplicate float64
	// ServerErr is the probability the server middleware answers 503
	// without invoking the handler.
	ServerErr float64
	// Delay is the probability the server middleware stalls a request by
	// a uniform duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected delays; ignored when Delay is zero.
	MaxDelay time.Duration
	// Stall is the probability the server middleware holds a request for
	// the full StallFor before handling it, deliberately NOT aborting
	// when the client hangs up. Set StallFor past the client's per-try
	// timeout and the client sees a timeout while the server still
	// processes the request — the time-domain version of a lost ack,
	// which only honest idempotency survives.
	Stall float64
	// StallFor is the fixed hold applied to stalled requests; required
	// when Stall is positive.
	StallFor time.Duration
}

// Counters tallies injected faults, for asserting a soak actually
// exercised each failure mode.
type Counters struct {
	Requests int // client-side requests seen by the RoundTripper
	// Delivered is the server-side ground truth: requests that actually
	// reached the middleware. It can undershoot the client-side arithmetic
	// (Requests - Dropped + Duplicated) because a duplicate's second copy
	// is never sent when the caller's context died during the first — e.g.
	// a stalled first delivery outliving the per-try timeout.
	Delivered  int
	Dropped    int
	AcksLost   int
	Duplicated int
	ServerErrs int
	Delayed    int
	Stalled    int
}

// Injector applies a Faults mix. It is safe for concurrent use; one
// Injector can back any number of clients and one server.
type Injector struct {
	faults Faults

	mu       sync.Mutex
	rng      *frand.RNG
	counters Counters
	byClass  map[string]*Counters

	reqVec   *obs.CounterVec
	delivVec *obs.CounterVec
	faultVec *obs.CounterVec

	onFault func(kind, class, path string)
}

// OnFault registers a hook invoked (outside the injector lock) for every
// injected fault with its kind, request class and URL path. The transport
// layer uses it to stamp chaos faults into the per-session round timeline
// so a traced round's story includes the faults it survived. Set before
// injecting; at most one hook is supported.
func (in *Injector) OnFault(fn func(kind, class, path string)) {
	in.mu.Lock()
	in.onFault = fn
	in.mu.Unlock()
}

// notify calls the hook, if any, outside the lock.
func (in *Injector) notify(kind, class, path string) {
	in.mu.Lock()
	fn := in.onFault
	in.mu.Unlock()
	if fn != nil {
		fn(kind, class, path)
	}
}

// NewInjector validates the mix and returns an injector.
func NewInjector(f Faults) (*Injector, error) {
	for _, p := range []float64{f.Drop, f.LoseAck, f.Duplicate, f.ServerErr, f.Delay, f.Stall} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("chaos: probability %v out of [0,1]", p)
		}
	}
	if f.Delay > 0 && f.MaxDelay <= 0 {
		return nil, fmt.Errorf("chaos: Delay=%v needs a positive MaxDelay", f.Delay)
	}
	if f.Stall > 0 && f.StallFor <= 0 {
		return nil, fmt.Errorf("chaos: Stall=%v needs a positive StallFor", f.Stall)
	}
	return &Injector{faults: f, rng: frand.New(f.Seed), byClass: make(map[string]*Counters)}, nil
}

// SetMetrics mirrors the fault tallies into reg as chaos_requests_total
// and chaos_faults_total, both labeled by request class. Attach before
// injecting; faults recorded earlier are not backfilled.
func (in *Injector) SetMetrics(reg *obs.Registry) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reqVec = reg.CounterVec(MetricRequests,
		"Client requests seen by the chaos round tripper.", "class")
	in.delivVec = reg.CounterVec(MetricDeliveries,
		"Requests delivered to the server-side middleware, by class.", "class")
	in.faultVec = reg.CounterVec(MetricFaults,
		"Faults injected, by kind and request class.", "kind", "class")
}

// Counters returns a snapshot of the global fault tallies.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// ClassCounters returns a snapshot of the tallies for one request class
// (ClassReport, ClassTask or ClassAdmin).
func (in *Injector) ClassCounters(class string) Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c := in.byClass[class]; c != nil {
		return *c
	}
	return Counters{}
}

// classLocked returns the mutable per-class tally; callers hold in.mu.
func (in *Injector) classLocked(class string) *Counters {
	c := in.byClass[class]
	if c == nil {
		c = &Counters{}
		in.byClass[class] = c
	}
	return c
}

// roll draws one Bernoulli; callers hold in.mu. Counters are bumped by
// the caller so the RNG draw order stays independent of the accounting.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Bernoulli(p)
}

// fault records one injected fault of the given kind, in the global
// tally, the per-class tally and (when attached) the registry; callers
// hold in.mu and pass the matching counter fields.
func (in *Injector) fault(kind, class string, global, perClass *int) {
	*global++
	*perClass++
	if in.faultVec != nil {
		in.faultVec.With(kind, class).Inc()
	}
}

// delayFor draws a uniform delay in (0, MaxDelay].
func (in *Injector) delayFor() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rng.Float64() * float64(in.faults.MaxDelay))
}

// Transport wraps inner with client-side fault injection. A nil inner uses
// http.DefaultTransport.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &roundTripper{in: in, inner: inner}
}

type roundTripper struct {
	in    *Injector
	inner http.RoundTripper
}

// RoundTrip implements http.RoundTripper: it may refuse to deliver the
// request, deliver it twice, or deliver it and lose the response.
func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body so the request can be replayed for duplicate
	// delivery; per contract the original body is always closed.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	class := ClassOf(req.URL.Path)
	rt.in.mu.Lock()
	cc := rt.in.classLocked(class)
	rt.in.counters.Requests++
	cc.Requests++
	if rt.in.reqVec != nil {
		rt.in.reqVec.With(class).Inc()
	}
	drop := rt.in.roll(rt.in.faults.Drop)
	if drop {
		rt.in.fault("drop", class, &rt.in.counters.Dropped, &cc.Dropped)
	}
	var dup, lose bool
	if !drop {
		if dup = rt.in.roll(rt.in.faults.Duplicate); dup {
			rt.in.fault("duplicate", class, &rt.in.counters.Duplicated, &cc.Duplicated)
		}
		if lose = rt.in.roll(rt.in.faults.LoseAck); lose {
			rt.in.fault("lose_ack", class, &rt.in.counters.AcksLost, &cc.AcksLost)
		}
	}
	rt.in.mu.Unlock()
	if drop {
		rt.in.notify("drop", class, req.URL.Path)
		return nil, fmt.Errorf("chaos: connection refused: %s %s", req.Method, req.URL.Path)
	}
	if dup {
		rt.in.notify("duplicate", class, req.URL.Path)
	}
	if lose {
		rt.in.notify("lose_ack", class, req.URL.Path)
	}
	if dup {
		// First delivery: the server handles it, the network eats the
		// response.
		resp, err := rt.inner.RoundTrip(cloneRequest(req, body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := rt.inner.RoundTrip(cloneRequest(req, body))
	if err != nil {
		return nil, err
	}
	if lose {
		// Delivered and processed, but the client never hears back.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: connection reset by peer: %s %s", req.Method, req.URL.Path)
	}
	return resp, nil
}

// cloneRequest rebuilds the request with a fresh body reader.
func cloneRequest(req *http.Request, body []byte) *http.Request {
	clone := req.Clone(req.Context())
	if body != nil {
		clone.Body = io.NopCloser(bytes.NewReader(body))
		clone.ContentLength = int64(len(body))
	} else {
		clone.Body = http.NoBody
	}
	return clone
}

// Middleware wraps next with server-side fault injection: injected 503s
// (before the handler runs, so no state is committed) and delays.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class := ClassOf(r.URL.Path)
		in.mu.Lock()
		cc := in.classLocked(class)
		in.counters.Delivered++
		cc.Delivered++
		if in.delivVec != nil {
			in.delivVec.With(class).Inc()
		}
		fail := in.roll(in.faults.ServerErr)
		if fail {
			in.fault("server_err", class, &in.counters.ServerErrs, &cc.ServerErrs)
		}
		stall := !fail && in.roll(in.faults.Stall)
		if stall {
			in.fault("stall", class, &in.counters.Stalled, &cc.Stalled)
		}
		delay := !fail && !stall && in.roll(in.faults.Delay)
		if delay {
			in.fault("delay", class, &in.counters.Delayed, &cc.Delayed)
		}
		in.mu.Unlock()
		switch {
		case fail:
			in.notify("server_err", class, r.URL.Path)
		case stall:
			in.notify("stall", class, r.URL.Path)
		case delay:
			in.notify("delay", class, r.URL.Path)
		}
		if fail {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"chaos: injected unavailability","code":"unavailable"}`)
			return
		}
		if stall {
			// A stall models a held *response*: the request is fully
			// received now (body buffered, so the late handler cannot hit
			// a read error from a hung-up client), then processing is
			// held for the full StallFor even if the client gives up —
			// the handler still runs afterwards, so a stalled request the
			// client timed out on is processed exactly like a lost ack.
			if r.Body != nil {
				body, err := io.ReadAll(r.Body)
				r.Body.Close()
				if err != nil {
					body = nil
				}
				r.Body = io.NopCloser(bytes.NewReader(body))
			}
			t := time.NewTimer(in.faults.StallFor)
			<-t.C
		}
		if delay {
			// Sleep unconditionally rather than racing the client's
			// disconnect: a delayed delivery always reaches the handler,
			// so (deliveries - injected 503s) counts handler invocations
			// exactly. Delays are bounded by MaxDelay, so a dead client
			// pins the goroutine only briefly.
			t := time.NewTimer(in.delayFor())
			<-t.C
		}
		next.ServeHTTP(w, r)
	})
}
