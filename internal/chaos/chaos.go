// Package chaos injects seeded, deterministic faults into the HTTP paths
// of the aggregation protocol, simulating the flaky fleets the paper's
// production stack runs on (§4.3): dropped connections, lost acks,
// network-level retransmission (duplicate delivery), transient server
// errors and response delays. It provides both a client-side
// http.RoundTripper wrapper and server-side middleware, driven by one
// Injector so a test controls the whole fault mix from a single seed.
//
// The injector never touches payloads — it only drops, delays, duplicates
// or fails whole exchanges — so any state the server reaches is one a real
// lossy network could have produced.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/frand"
)

// Faults is the injection mix. All probabilities are independent per
// request and in [0,1]; zero values inject nothing.
type Faults struct {
	// Seed drives the fault stream; the same seed over the same request
	// sequence reproduces the same faults.
	Seed uint64
	// Drop is the probability a client request never reaches the server
	// (connection refused): the client sees a transport error, the server
	// sees nothing.
	Drop float64
	// LoseAck is the probability the server processes the request but the
	// response is lost (connection reset after delivery): the client sees
	// a transport error, the server has committed the effect. This is the
	// case that forces honest idempotency.
	LoseAck float64
	// Duplicate is the probability a request is delivered twice (network
	// retransmission): the server handles both copies, the client sees
	// the second response.
	Duplicate float64
	// ServerErr is the probability the server middleware answers 503
	// without invoking the handler.
	ServerErr float64
	// Delay is the probability the server middleware stalls a request by
	// a uniform duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected delays; ignored when Delay is zero.
	MaxDelay time.Duration
}

// Counters tallies injected faults, for asserting a soak actually
// exercised each failure mode.
type Counters struct {
	Requests   int // client-side requests seen by the RoundTripper
	Dropped    int
	AcksLost   int
	Duplicated int
	ServerErrs int
	Delayed    int
}

// Injector applies a Faults mix. It is safe for concurrent use; one
// Injector can back any number of clients and one server.
type Injector struct {
	faults Faults

	mu       sync.Mutex
	rng      *frand.RNG
	counters Counters
}

// NewInjector validates the mix and returns an injector.
func NewInjector(f Faults) (*Injector, error) {
	for _, p := range []float64{f.Drop, f.LoseAck, f.Duplicate, f.ServerErr, f.Delay} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("chaos: probability %v out of [0,1]", p)
		}
	}
	if f.Delay > 0 && f.MaxDelay <= 0 {
		return nil, fmt.Errorf("chaos: Delay=%v needs a positive MaxDelay", f.Delay)
	}
	return &Injector{faults: f, rng: frand.New(f.Seed)}, nil
}

// Counters returns a snapshot of the fault tallies.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// roll draws one Bernoulli and bumps the counter on success.
func (in *Injector) roll(p float64, counter *int) bool {
	if p <= 0 {
		return false
	}
	hit := in.rng.Bernoulli(p)
	if hit {
		*counter++
	}
	return hit
}

// delayFor draws a uniform delay in (0, MaxDelay].
func (in *Injector) delayFor() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rng.Float64() * float64(in.faults.MaxDelay))
}

// Transport wraps inner with client-side fault injection. A nil inner uses
// http.DefaultTransport.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &roundTripper{in: in, inner: inner}
}

type roundTripper struct {
	in    *Injector
	inner http.RoundTripper
}

// RoundTrip implements http.RoundTripper: it may refuse to deliver the
// request, deliver it twice, or deliver it and lose the response.
func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body so the request can be replayed for duplicate
	// delivery; per contract the original body is always closed.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	rt.in.mu.Lock()
	rt.in.counters.Requests++
	drop := rt.in.roll(rt.in.faults.Drop, &rt.in.counters.Dropped)
	var dup, lose bool
	if !drop {
		dup = rt.in.roll(rt.in.faults.Duplicate, &rt.in.counters.Duplicated)
		lose = rt.in.roll(rt.in.faults.LoseAck, &rt.in.counters.AcksLost)
	}
	rt.in.mu.Unlock()
	if drop {
		return nil, fmt.Errorf("chaos: connection refused: %s %s", req.Method, req.URL.Path)
	}
	if dup {
		// First delivery: the server handles it, the network eats the
		// response.
		resp, err := rt.inner.RoundTrip(cloneRequest(req, body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := rt.inner.RoundTrip(cloneRequest(req, body))
	if err != nil {
		return nil, err
	}
	if lose {
		// Delivered and processed, but the client never hears back.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: connection reset by peer: %s %s", req.Method, req.URL.Path)
	}
	return resp, nil
}

// cloneRequest rebuilds the request with a fresh body reader.
func cloneRequest(req *http.Request, body []byte) *http.Request {
	clone := req.Clone(req.Context())
	if body != nil {
		clone.Body = io.NopCloser(bytes.NewReader(body))
		clone.ContentLength = int64(len(body))
	} else {
		clone.Body = http.NoBody
	}
	return clone
}

// Middleware wraps next with server-side fault injection: injected 503s
// (before the handler runs, so no state is committed) and delays.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in.mu.Lock()
		fail := in.roll(in.faults.ServerErr, &in.counters.ServerErrs)
		delay := !fail && in.roll(in.faults.Delay, &in.counters.Delayed)
		in.mu.Unlock()
		if fail {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"chaos: injected unavailability","code":"unavailable"}`)
			return
		}
		if delay {
			d := in.delayFor()
			select {
			case <-r.Context().Done():
				return
			case <-time.After(d):
			}
		}
		next.ServeHTTP(w, r)
	})
}
