package chaos_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

// TestTraceCompletenessUnderChaos asserts the tracing contract survives
// fault injection: every report delivery that reaches the handler yields
// exactly one server request span, every server span's remote parent is a
// client attempt span (duplicated deliveries share one parent — the
// retransmission happened below the client's tracing), and every accepted
// report resolves to exactly one accepted submit span whose chain walks
// back to the client that sent it.
func TestTraceCompletenessUnderChaos(t *testing.T) {
	const n = 60
	in, err := chaos.NewInjector(chaos.Faults{
		Seed:      99,
		Drop:      0.10,
		LoseAck:   0.06,
		Duplicate: 0.08,
		ServerErr: 0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := transport.NewServer(1)
	srec := trace.NewRecorder(1 << 16)
	agg.SetTracer(srec)
	// Stamp injected faults into the round timelines, so a traced round's
	// story includes the faults it survived.
	in.OnFault(func(kind, class, path string) {
		if id := transport.SessionFromPath(path); id != "" {
			agg.RecordRoundEvent(id, transport.RoundChaosFault, "", kind, 0)
		}
	})
	srv := httptest.NewServer(in.Middleware(agg))
	defer srv.Close()

	crec := trace.NewRecorder(1 << 16)
	retry := func(seed uint64) *transport.RetryPolicy {
		return &transport.RetryPolicy{MaxAttempts: 12, Jitter: 0.5, Seed: seed}
	}
	ctx := context.Background()
	admin := &transport.Admin{BaseURL: srv.URL, Retry: retry(1), Tracer: crec}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "trace-soak", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}

	root := frand.New(5)
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(
		workload.Normal{Mu: 120, Sigma: 30}.Sample(root, n))
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := map[string]bool{}
	for i, v := range values {
		wg.Add(1)
		go func(i int, v uint64, rng *frand.RNG) {
			defer wg.Done()
			p := &transport.Participant{
				BaseURL:    srv.URL,
				ClientID:   clientID(i),
				RNG:        rng,
				Retry:      retry(uint64(i) + 500),
				Tracer:     crec,
				HTTPClient: &http.Client{Transport: in.Transport(nil)},
			}
			if err := p.Participate(ctx, session, v); err == nil {
				mu.Lock()
				succeeded[p.ClientID] = true
				mu.Unlock()
			}
		}(i, v, root.Split())
	}
	wg.Wait()
	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Counters()
	if c.Dropped == 0 || c.Duplicated == 0 || c.AcksLost == 0 || c.ServerErrs == 0 {
		t.Fatalf("fault injector barely fired: %+v", c)
	}
	if srec.Dropped() != 0 || crec.Dropped() != 0 {
		t.Fatalf("recorder overflowed (server dropped %d, client %d); completeness unprovable",
			srec.Dropped(), crec.Dropped())
	}

	// Index the client side: every network attempt span by id.
	attempts := map[string]trace.SpanData{}
	for _, d := range crec.Spans() {
		if d.Name == "client.attempt" {
			attempts[d.SpanID] = d
		}
	}

	// Completeness: one server request span per handler-reaching report
	// delivery. Injected 503s answer before the mux, so they produce no
	// span — everything else must.
	cr := in.ClassCounters(chaos.ClassReport)
	serverReq := map[string]trace.SpanData{}
	reportSpans := 0
	for _, d := range srec.Spans() {
		if !strings.HasPrefix(d.Name, "server ") {
			continue
		}
		serverReq[d.SpanID] = d
		if !d.Remote {
			t.Fatalf("server span %s (trace %s) has no remote parent", d.Name, d.TraceID)
		}
		parent, ok := attempts[d.Parent]
		if !ok {
			t.Fatalf("server span %s parent %q is not a recorded client attempt", d.Name, d.Parent)
		}
		if parent.TraceID != d.TraceID {
			t.Fatalf("server span trace %s != parent attempt trace %s", d.TraceID, parent.TraceID)
		}
		if d.Name == "server /v1/sessions/{id}/reports" {
			reportSpans++
		}
	}
	if want := cr.Delivered - cr.ServerErrs; reportSpans != want {
		t.Fatalf("server report spans = %d, want %d (= %d deliveries - %d injected 503s)",
			reportSpans, want, cr.Delivered, cr.ServerErrs)
	}

	// Exactly-once at the span level: accepted submit spans == finalized
	// cohort, one per distinct succeeded client, each chained to a live
	// client attempt. Duplicate deliveries surface as duplicate-result
	// spans sharing the accepted span's parent attempt, never as a second
	// accepted span.
	acceptedBy := map[string]int{}
	for _, d := range srec.Filter(trace.Filter{Name: "server.submit_report"}) {
		if d.Attr("result") != transport.ReportAccepted {
			continue
		}
		req, ok := serverReq[d.Parent]
		if !ok {
			t.Fatalf("accepted submit span parent %q is not a server request span", d.Parent)
		}
		if _, ok := attempts[req.Parent]; !ok {
			t.Fatalf("accepted submit span does not chain back to a client attempt")
		}
		acceptedBy[d.Attr("client")]++
	}
	if len(acceptedBy) != res.Reports {
		t.Fatalf("accepted submit spans cover %d clients, finalized cohort = %d", len(acceptedBy), res.Reports)
	}
	for client, spans := range acceptedBy {
		if spans != 1 {
			t.Fatalf("client %s has %d accepted submit spans, want exactly 1", client, spans)
		}
	}
	for client := range succeeded {
		if acceptedBy[client] == 0 {
			t.Fatalf("client %s got an accepted ack but no accepted submit span", client)
		}
	}

	// The round timeline saw the faults the injector stamped and tells a
	// complete story: creation, accepts matching the cohort, finalize.
	// 60 clients keep the whole story inside one ring (cap 256); a
	// truncated window would undercount accepts below.
	events := agg.RoundEvents(session)
	if len(events) >= 256 {
		t.Fatalf("timeline ring overflowed (%d events); shrink the soak", len(events))
	}
	kinds := map[transport.RoundKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[transport.RoundChaosFault] == 0 {
		t.Fatal("round timeline recorded no chaos faults")
	}
	if kinds[transport.RoundReportAccept] != res.Reports {
		t.Fatalf("timeline has %d accept events, cohort = %d", kinds[transport.RoundReportAccept], res.Reports)
	}
	if kinds[transport.RoundFinalize] == 0 || kinds[transport.RoundSessionCreate] == 0 {
		t.Fatalf("timeline missing lifecycle events: %v", kinds)
	}

	t.Logf("faults %+v; %d server spans, %d report spans, %d accepted, timeline %v",
		c, len(serverReq), reportSpans, len(acceptedBy), kinds)

	// CI uploads a trace sample as an artifact: set TRACE_SAMPLE_OUT to
	// dump the server recorder's view of one accepted report's trace plus
	// the session timeline as JSON.
	if out := os.Getenv("TRACE_SAMPLE_OUT"); out != "" {
		var sampleTrace string
		for _, d := range srec.Filter(trace.Filter{Name: "server.submit_report"}) {
			if d.Attr("result") == transport.ReportAccepted {
				sampleTrace = d.TraceID
				break
			}
		}
		sample := struct {
			Trace    []trace.SpanData       `json:"trace"`
			Timeline []transport.RoundEvent `json:"timeline"`
		}{
			Trace:    srec.Filter(trace.Filter{TraceID: sampleTrace}),
			Timeline: agg.RoundEvents(session),
		}
		data, err := json.MarshalIndent(sample, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatalf("write trace sample %s: %v", out, err)
		}
		t.Logf("trace sample written to %s (%d bytes)", out, len(data))
	}
}
