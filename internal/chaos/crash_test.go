package chaos_test

import (
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/frand"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

var crashListenRe = regexp.MustCompile(`listening on (http://[\d.]+:\d+)`)

// crashRig drives a real fednumd binary through SIGKILL-and-recover
// cycles against one long-lived session.
type crashRig struct {
	t    *testing.T
	bin  string
	args []string // everything but -addr
	proc *chaos.Proc
	base string // current http base URL
}

func (r *crashRig) start(addr string) {
	r.t.Helper()
	p, err := chaos.StartProc(chaos.ProcSpec{
		Bin:     r.bin,
		Args:    append([]string{"-addr", addr}, r.args...),
		WaitFor: map[string]*regexp.Regexp{"listen": crashListenRe},
	})
	if err != nil {
		r.t.Fatal(err)
	}
	base, err := p.Expect("listen", 10*time.Second)
	if err != nil {
		r.t.Fatalf("fednumd not ready: %v", err)
	}
	r.proc, r.base = p, base
}

func (r *crashRig) participant(id int) *transport.Participant {
	return &transport.Participant{
		BaseURL:  r.base,
		ClientID: fmt.Sprintf("dev-%d", id),
		RNG:      frand.New(uint64(id + 1)),
		Retry: &transport.RetryPolicy{
			MaxAttempts: 80, BaseDelay: 25 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
			Jitter: 0.5, PerTryTimeout: 2 * time.Second, Seed: uint64(id + 1),
		},
	}
}

// value is client id's private input — deterministic, so the bit a
// recovered server must re-ack as a duplicate is computable.
func crashValue(id int) uint64 { return uint64(id*37) % 256 }

// TestCrashRecoveryNoAckedReportLost is the kill-9 acceptance test for
// the WAL path: run the real daemon WAL-enabled with a fast background
// compactor, SIGKILL it at a random point mid-ingest every cycle
// (sometimes mid-compaction), restart it on the same address, and hold
// two invariants at every recovery:
//
//   - zero acked-then-lost: every client whose report was acked before
//     the kill is still known to the recovered server — re-submitting
//     the identical report yields Accepted+Duplicate, never a fresh
//     accept (which would mean the report vanished) and never a
//     conflict (which would mean the assignment vanished);
//   - zero phantoms: the recovered report count exactly equals the
//     number of distinct clients that ever got an ack.
//
// The session uses epsilon=0, so every client's report bit is a pure
// function of its id and the durability probe needs no RNG replay.
func TestCrashRecoveryNoAckedReportLost(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fednumd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/fednumd").CombinedOutput(); err != nil {
		t.Fatalf("building fednumd: %v\n%s", err, out)
	}

	const (
		cycles       = 22 // ISSUE asks for 20+ consecutive kill-and-recover cycles
		perCycle     = 8  // clients ingesting while each kill lands
		snapInterval = 45 * time.Millisecond
	)
	rig := &crashRig{
		t:   t,
		bin: bin,
		args: []string{
			"-seed", "1",
			"-snapshot", filepath.Join(dir, "snap.json"),
			"-wal-dir", filepath.Join(dir, "wal"),
			"-wal-fsync", "grouped",
			"-wal-flush-interval", "1ms",
			"-snapshot-interval", snapInterval.String(),
			"-gc-interval", "100ms",
			"-shutdown-grace", "5s",
		},
	}
	rig.start("127.0.0.1:0")
	// Later restarts rebind this exact address so clients retrying
	// through an outage converge on the reborn server.
	addr := rig.base[len("http://"):]

	ctx := context.Background()
	admin := &transport.Admin{BaseURL: rig.base, Retry: &transport.RetryPolicy{
		MaxAttempts: 80, BaseDelay: 25 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
		Jitter: 0.5, PerTryTimeout: 2 * time.Second, Seed: 99,
	}}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "kill9", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	// probe asserts client id's acked report survived recovery.
	probe := func(id int) {
		t.Helper()
		p := rig.participant(id)
		task, err := p.FetchTask(ctx, session)
		if err != nil {
			t.Fatalf("probe client %d: fetch task: %v", id, err)
		}
		bit := (crashValue(id) >> uint(task.Bit)) & 1
		ack, err := p.SubmitReport(ctx, session, wire.Report{
			ClientID: p.ClientID, Bit: task.Bit, Value: bit,
		})
		if err != nil {
			t.Fatalf("probe client %d: resubmit: %v", id, err)
		}
		if !ack.Accepted || !ack.Duplicate {
			t.Fatalf("acked report of client %d lost across SIGKILL: resubmission ack=%+v (want accepted duplicate)", id, ack)
		}
	}

	rng := frand.New(7)
	acked := 0
	for cycle := 0; cycle < cycles; cycle++ {
		// Ingest: perCycle fresh clients report while the axe hangs.
		// Their retry budgets carry them through the kill and restart.
		var wg sync.WaitGroup
		errs := make([]error, perCycle)
		for i := 0; i < perCycle; i++ {
			id := cycle*perCycle + i
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				errs[slot] = rig.participant(id).Participate(ctx, session, crashValue(id))
			}(i)
		}

		// SIGKILL at a random point mid-ingest. The offsets straddle the
		// 45ms compaction tick, so kills land before, during and after
		// snapshot cuts and segment truncations.
		time.Sleep(time.Duration(20+rng.Intn(160)) * time.Millisecond)
		rig.proc.Kill()
		rig.start(addr)

		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("cycle %d client %d failed to land its report through the crash: %v",
					cycle, cycle*perCycle+i, err)
			}
		}
		acked += perCycle

		// Invariant 1: this cycle's acks (plus an older spot-check)
		// survived the kill.
		for i := 0; i < perCycle; i++ {
			probe(cycle*perCycle + i)
		}
		if cycle > 0 {
			probe(rng.Intn(cycle * perCycle))
		}

		// Invariant 2: no phantoms — the recovered server holds exactly
		// one report per acked client, nothing it never acked.
		res, err := admin.Result(ctx, session)
		if err != nil {
			t.Fatalf("cycle %d: result: %v", cycle, err)
		}
		if res.Reports != acked {
			t.Fatalf("cycle %d: recovered server holds %d reports, want exactly %d acked",
				cycle, res.Reports, acked)
		}
	}

	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatalf("finalize after %d crashes: %v", cycles, err)
	}
	if !res.Done || res.Reports != cycles*perCycle {
		t.Fatalf("final result %+v, want done with exactly %d reports", res, cycles*perCycle)
	}
	if err := rig.proc.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("final graceful shutdown: %v", err)
	}

	// One last boot must replay cleanly and still see the finalized
	// session with the full cohort.
	rig.start(addr)
	defer rig.proc.Kill()
	admin.BaseURL = rig.base
	res, err = admin.Result(ctx, session)
	if err != nil {
		t.Fatalf("result after clean restart: %v", err)
	}
	if !res.Done || res.Reports != cycles*perCycle {
		t.Fatalf("state after clean restart %+v, want done with %d reports", res, cycles*perCycle)
	}
}
