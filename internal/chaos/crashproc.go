package chaos

import (
	"bufio"
	"fmt"
	"os/exec"
	"regexp"
	"sync"
	"syscall"
	"time"
)

// Proc is a real child process under crash test — the process-level
// counterpart of the in-process Injector. Where the Injector perturbs
// individual HTTP exchanges, Proc kills the whole server at arbitrary
// points (SIGKILL — no handlers run, no buffers flush) so a harness can
// check that everything the process ever acked is still there when it
// comes back. Start it with StartProc, tear it down with Kill or
// Shutdown.
type Proc struct {
	cmd  *exec.Cmd
	done chan error

	mu      sync.Mutex
	matches map[string]chan string
	exited  bool
	exitErr error
}

// ProcSpec describes the process to launch and the stderr lines that
// signal it is ready. Each WaitFor pattern must have one capture group;
// the first stderr line matching it resolves Expect(name) with the
// captured text (typically a listen address).
type ProcSpec struct {
	// Bin is the executable path; Args its arguments (no argv[0]).
	Bin  string
	Args []string
	// WaitFor maps a readiness name to the stderr pattern announcing it.
	WaitFor map[string]*regexp.Regexp
}

// StartProc launches the process and begins scanning its stderr for the
// spec's readiness patterns. The process is NOT waited for readiness
// here — call Expect for each pattern you need.
func StartProc(spec ProcSpec) (*Proc, error) {
	cmd := exec.Command(spec.Bin, spec.Args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	p := &Proc{
		cmd:     cmd,
		done:    make(chan error, 1),
		matches: make(map[string]chan string, len(spec.WaitFor)),
	}
	for name := range spec.WaitFor {
		p.matches[name] = make(chan string, 1)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: starting %s: %w", spec.Bin, err)
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			for name, re := range spec.WaitFor {
				if m := re.FindStringSubmatch(line); m != nil && len(m) > 1 {
					select {
					case p.matches[name] <- m[1]:
					default:
					}
				}
			}
		}
	}()
	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.exited, p.exitErr = true, err
		p.mu.Unlock()
		p.done <- err
	}()
	return p, nil
}

// Expect blocks until the named readiness pattern matched a stderr line
// (returning its capture), the process exited, or the timeout passed.
func (p *Proc) Expect(name string, timeout time.Duration) (string, error) {
	ch, ok := p.matches[name]
	if !ok {
		return "", fmt.Errorf("chaos: no WaitFor pattern named %q", name)
	}
	select {
	case s := <-ch:
		return s, nil
	case err := <-p.done:
		p.done <- err // re-arm for Kill/Shutdown
		return "", fmt.Errorf("chaos: process exited before %q matched: %v", name, err)
	case <-time.After(timeout):
		return "", fmt.Errorf("chaos: %q did not match within %v", name, timeout)
	}
}

// Kill SIGKILLs the process and waits for the kernel to reap it. The
// process gets no chance to flush, snapshot or shut down — this is the
// crash being tested. Killing an already-exited process is a no-op.
func (p *Proc) Kill() {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if !exited {
		p.cmd.Process.Kill()
	}
	err := <-p.done
	p.done <- err
}

// Shutdown sends SIGTERM (the graceful path) and waits up to timeout
// for a clean exit.
func (p *Proc) Shutdown(timeout time.Duration) error {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if !exited {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
	}
	select {
	case err := <-p.done:
		p.done <- err
		return err
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		return fmt.Errorf("chaos: process ignored SIGTERM for %v", timeout)
	}
}
