package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newBackend returns a server counting the requests that actually reach
// the handler, optionally wrapped in injector middleware.
func newBackend(t *testing.T, in *Injector) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	var h http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"ok":true}`))
	})
	if in != nil {
		h = in.Middleware(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, &hits
}

func get(t *testing.T, srv *httptest.Server, rt http.RoundTripper) (*http.Response, error) {
	t.Helper()
	c := &http.Client{Transport: rt}
	return c.Get(srv.URL + "/x")
}

func TestDropNeverReachesServer(t *testing.T) {
	in, err := NewInjector(Faults{Seed: 1, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, hits := newBackend(t, nil)
	if _, err := get(t, srv, in.Transport(nil)); err == nil {
		t.Fatal("dropped request returned a response")
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests, want 0", hits.Load())
	}
	if c := in.Counters(); c.Dropped != 1 || c.Requests != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	in, err := NewInjector(Faults{Seed: 1, Duplicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, hits := newBackend(t, nil)
	resp, err := get(t, srv, in.Transport(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

func TestLoseAckDeliversButErrors(t *testing.T) {
	in, err := NewInjector(Faults{Seed: 1, LoseAck: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, hits := newBackend(t, nil)
	if _, err := get(t, srv, in.Transport(nil)); err == nil {
		t.Fatal("lost-ack request returned a response")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (processed, ack lost)", hits.Load())
	}
}

func TestMiddlewareInjects503(t *testing.T) {
	in, err := NewInjector(Faults{Seed: 1, ServerErr: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, hits := newBackend(t, in)
	resp, err := get(t, srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatalf("handler ran %d times behind an injected 503", hits.Load())
	}
}

func TestMiddlewareDelays(t *testing.T) {
	in, err := NewInjector(Faults{Seed: 7, Delay: 1, MaxDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newBackend(t, in)
	resp, err := get(t, srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c := in.Counters(); c.Delayed != 1 {
		t.Fatalf("counters = %+v, want 1 delayed", c)
	}
}

func TestDeterministicFaultStream(t *testing.T) {
	run := func() Counters {
		in, err := NewInjector(Faults{Seed: 99, Drop: 0.3, Duplicate: 0.3, LoseAck: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		srv, _ := newBackend(t, nil)
		rt := in.Transport(nil)
		for i := 0; i < 50; i++ {
			if resp, err := get(t, srv, rt); err == nil {
				resp.Body.Close()
			}
		}
		return in.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault streams: %+v vs %+v", a, b)
	}
}

func TestInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Faults{Drop: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewInjector(Faults{Delay: 0.5}); err == nil {
		t.Error("Delay without MaxDelay accepted")
	}
}
