package chaos

import (
	"context"
	"io"
	"sync"
	"time"
)

// Overload generators: synthetic misbehaviour aimed at a server's
// admission-control layer rather than its correctness. Where the Injector
// perturbs individual exchanges, these drive the aggregate shapes an
// overloaded deployment actually sees — burst swarms arriving in the same
// instant, and slow-loris request bodies that trickle bytes to pin a
// handler for as long as the server lets them.

// Swarm fires n calls of fn as one synchronized burst: every goroutine is
// spawned and parked at a start barrier, then all released at once, so
// the target sees the full offered load in a single instant instead of a
// ramp. It returns once every call finished, with the per-call errors in
// order (nil for successes).
func Swarm(ctx context.Context, n int, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = fn(ctx, i)
		}(i)
	}
	close(start)
	wg.Wait()
	return errs
}

// SlowBody returns an io.Reader that plays payload back chunk bytes at a
// time, pausing every between chunks — a slow-loris request body. A
// server without per-request read deadlines keeps a handler (and its
// in-flight slot) pinned for len(payload)/chunk pauses; one with
// deadlines cuts the request off early.
func SlowBody(payload []byte, chunk int, every time.Duration) io.Reader {
	if chunk < 1 {
		chunk = 1
	}
	return &slowBody{payload: payload, chunk: chunk, every: every}
}

type slowBody struct {
	payload []byte
	chunk   int
	every   time.Duration
	started bool
}

// Read trickles the next chunk after the configured pause. The first
// chunk is sent immediately so the request headers and body head arrive
// together, which is what keeps real slow-loris connections alive.
func (b *slowBody) Read(p []byte) (int, error) {
	if len(b.payload) == 0 {
		return 0, io.EOF
	}
	if b.started {
		t := time.NewTimer(b.every)
		<-t.C
	}
	b.started = true
	n := b.chunk
	if n > len(b.payload) {
		n = len(b.payload)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, b.payload[:n])
	b.payload = b.payload[n:]
	return n, nil
}
