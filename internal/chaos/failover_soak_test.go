package chaos_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/frand"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

var debugListenRe = regexp.MustCompile(`debug endpoint on (http://[\d.]+:\d+)`)

// fnode is one fednumd slot in the failover pair: a fixed client address,
// a fixed debug address, its own WAL directory, and whatever process
// currently occupies the slot.
type fnode struct {
	t         *testing.T
	bin       string
	walDir    string
	addr      string // "" until the first start picks a port
	debugAddr string
	proc      *chaos.Proc
	base      string
	debugBase string
}

// start launches the slot's binary with the given role flags appended to
// the slot's fixed identity flags, and waits for both listeners.
func (n *fnode) start(roleArgs ...string) {
	n.t.Helper()
	addr, debugAddr := n.addr, n.debugAddr
	if addr == "" {
		addr, debugAddr = "127.0.0.1:0", "127.0.0.1:0"
	}
	args := append([]string{
		"-addr", addr,
		"-debug-addr", debugAddr,
		"-wal-dir", n.walDir,
		"-wal-fsync", "grouped",
		"-wal-flush-interval", "1ms",
		"-gc-interval", "100ms",
		"-trace-buf", "2048",
		"-shutdown-grace", "5s",
	}, roleArgs...)
	p, err := chaos.StartProc(chaos.ProcSpec{
		Bin:  n.bin,
		Args: args,
		WaitFor: map[string]*regexp.Regexp{
			"listen": crashListenRe,
			"debug":  debugListenRe,
		},
	})
	if err != nil {
		n.t.Fatal(err)
	}
	base, err := p.Expect("listen", 10*time.Second)
	if err != nil {
		n.t.Fatalf("fednumd not ready: %v", err)
	}
	debugBase, err := p.Expect("debug", 10*time.Second)
	if err != nil {
		n.t.Fatalf("fednumd debug listener not ready: %v", err)
	}
	n.proc, n.base, n.debugBase = p, base, debugBase
	// Later restarts rebind the same ports so endpoint lists stay valid
	// across kills.
	n.addr, n.debugAddr = base[len("http://"):], debugBase[len("http://"):]
}

// replStatus asks a node who it thinks it is. The endpoint answers on
// every role, so this works on primaries, standbys and fenced zombies.
func (n *fnode) replStatus() (wire.ReplStatus, error) {
	var st wire.ReplStatus
	resp, err := http.Get(n.base + "/v1/replication/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("replication status: http %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func soakRetry(seed uint64) *transport.RetryPolicy {
	return &transport.RetryPolicy{
		MaxAttempts: 80, BaseDelay: 25 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
		Jitter: 0.5, PerTryTimeout: 2 * time.Second, Seed: seed,
	}
}

func soakValue(id int) uint64 { return uint64(id*53) % 256 }

// TestFailoverSoakNoAckedReportLost is the replication acceptance soak:
// a primary/standby pair under live ingest, with the primary SIGKILLed
// mid-round every cycle. The standby auto-promotes (salvaging the dead
// primary's unshipped WAL tail), the fleet fails over through the shared
// endpoint list, and the dead node is rebooted as the new standby — so
// the roles ping-pong for ≥10 kill cycles against one long-lived session.
//
// Invariants held every cycle, against client-side ground truth:
//
//   - zero acked-then-lost: every report acked by any primary that ever
//     lived re-acks as Accepted+Duplicate on the current primary;
//   - zero double-acks: the primary's report count exactly equals the
//     number of distinct clients that ever got an ack — a deposed
//     primary double-accepting the same report would overshoot it;
//   - fencing: a rebooted ex-primary answers client traffic with a typed
//     not_primary rejection pointing at the real leader, and the fencing
//     epoch observed on the winner strictly increases across promotions.
func TestFailoverSoakNoAckedReportLost(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fednumd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/fednumd").CombinedOutput(); err != nil {
		t.Fatalf("building fednumd: %v\n%s", err, out)
	}

	const (
		cycles   = 11 // ISSUE asks for ≥10 kill -9 primary cycles
		perCycle = 6  // clients ingesting while each kill lands
	)
	a := &fnode{t: t, bin: bin, walDir: filepath.Join(dir, "wal-a")}
	b := &fnode{t: t, bin: bin, walDir: filepath.Join(dir, "wal-b")}

	// A boots as the seed primary; B replicates from it. Neither node
	// snapshots: compaction never outruns salvage, so promotion can always
	// drain the dead primary's full tail.
	a.start("-seed", "1")
	// The advertise URL (the leader hint a promoted standby hands out)
	// defaults to the node's own listen address, which is exactly right
	// here — no flag needed.
	b.start("-seed", "2",
		"-replica-of", a.base,
		"-salvage-dir", a.walDir,
		"-failover-after", "3",
		"-probe-interval", "50ms")
	defer func() {
		a.proc.Kill()
		b.proc.Kill()
	}()

	ctx := context.Background()
	// One endpoint list shared by the admin and every device: the first
	// client to be redirected repoints the whole fleet at the new primary.
	eps := transport.NewEndpointList(a.base + "," + b.base)
	admin := &transport.Admin{Endpoints: eps, Retry: soakRetry(99)}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "failover", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	participant := func(id int) *transport.Participant {
		return &transport.Participant{
			Endpoints: eps,
			ClientID:  fmt.Sprintf("dev-%d", id),
			RNG:       frand.New(uint64(id + 1)),
			Retry:     soakRetry(uint64(id + 1)),
		}
	}
	// probe asserts client id's acked report survived the failover: the
	// current primary must re-ack it as a duplicate — a fresh accept means
	// the report was lost, a conflict means the assignment was.
	probe := func(id int) {
		t.Helper()
		p := participant(id)
		task, err := p.FetchTask(ctx, session)
		if err != nil {
			t.Fatalf("probe client %d: fetch task: %v", id, err)
		}
		bit := (soakValue(id) >> uint(task.Bit)) & 1
		ack, err := p.SubmitReport(ctx, session, wire.Report{ClientID: p.ClientID, Bit: task.Bit, Value: bit})
		if err != nil {
			t.Fatalf("probe client %d: resubmit: %v", id, err)
		}
		if !ack.Accepted || !ack.Duplicate {
			t.Fatalf("acked report of client %d lost across failover: resubmission ack=%+v (want accepted duplicate)", id, ack)
		}
	}
	waitStatus := func(n *fnode, what string, cond func(wire.ReplStatus) bool) wire.ReplStatus {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		var last wire.ReplStatus
		for time.Now().Before(deadline) {
			st, err := n.replStatus()
			if err == nil {
				last = st
				if cond(st) {
					return st
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s (last status %+v)", what, last)
		return last
	}

	rng := frand.New(11)
	primary, standby := a, b
	acked := 0
	lastEpoch := uint64(0)
	for cycle := 0; cycle < cycles; cycle++ {
		// Ingest: perCycle fresh devices report while the axe hangs over
		// the primary. Their retry budgets span the promotion window.
		var wg sync.WaitGroup
		errs := make([]error, perCycle)
		for i := 0; i < perCycle; i++ {
			id := cycle*perCycle + i
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				errs[slot] = participant(id).Participate(ctx, session, soakValue(id))
			}(i)
		}

		// SIGKILL the primary at a random point mid-ingest. No flush, no
		// drain: anything acked must already be durable and shipped — or
		// salvageable from the corpse's log.
		time.Sleep(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		primary.proc.Kill()

		// The standby's prober notices (3 failures × 50ms) and promotes,
		// salvaging the dead primary's unshipped tail first.
		st := waitStatus(standby, "automatic promotion", func(st wire.ReplStatus) bool {
			return st.Role == "primary"
		})
		if st.Epoch <= lastEpoch {
			t.Fatalf("cycle %d: fencing epoch did not advance: %d after %d", cycle, st.Epoch, lastEpoch)
		}
		lastEpoch = st.Epoch

		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("cycle %d client %d failed to land its report through the failover: %v",
					cycle, cycle*perCycle+i, err)
			}
		}
		acked += perCycle

		// Invariant 1: everything acked — by the corpse or the winner —
		// survived. Probe this cycle's cohort plus an older spot-check.
		for i := 0; i < perCycle; i++ {
			probe(cycle*perCycle + i)
		}
		if cycle > 0 {
			probe(rng.Intn(cycle * perCycle))
		}

		// Invariant 2: zero double-acks — the winner holds exactly one
		// report per acked client, never an extra from a deposed primary.
		res, err := admin.Result(ctx, session)
		if err != nil {
			t.Fatalf("cycle %d: result: %v", cycle, err)
		}
		if res.Reports != acked {
			t.Fatalf("cycle %d: primary holds %d reports, want exactly %d acked (double-ack or loss)",
				cycle, res.Reports, acked)
		}

		// Reboot the corpse as the new standby. It replays its own WAL (a
		// strict prefix of the shared sequence space), then resumes pulling
		// from the new primary and adopts the higher fencing epoch.
		dead := primary
		dead.start("-seed", "1",
			"-replica-of", standby.base,
			"-salvage-dir", standby.walDir,
			"-failover-after", "3",
			"-probe-interval", "50ms")

		// Invariant 3: the rebooted ex-primary is fenced out of the client
		// path — a late ack attempt gets a typed not_primary rejection with
		// a leader hint, never a second accept.
		direct := &transport.Participant{
			BaseURL:  dead.base,
			ClientID: "late-acker",
			RNG:      frand.New(7),
			Retry:    &transport.RetryPolicy{MaxAttempts: 1, Seed: 7},
		}
		var se *transport.StatusError
		if _, err := direct.FetchTask(ctx, session); !errors.As(err, &se) || se.Code != wire.CodeNotPrimary {
			t.Fatalf("cycle %d: rebooted ex-primary answered client traffic with %v, want %s",
				cycle, err, wire.CodeNotPrimary)
		}

		// Wait for the new standby to catch up (and adopt the epoch) so the
		// next cycle's kill has a warm node to fail over to.
		head := waitStatus(standby, "primary status", func(wire.ReplStatus) bool { return true })
		waitStatus(dead, "standby catch-up", func(st wire.ReplStatus) bool {
			return st.Role == "standby" && st.Epoch == head.Epoch && st.AppliedSeq >= head.HeadSeq
		})
		primary, standby = standby, dead
	}

	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatalf("finalize after %d failovers: %v", cycles, err)
	}
	if !res.Done || res.Reports != cycles*perCycle {
		t.Fatalf("final result %+v, want done with exactly %d reports", res, cycles*perCycle)
	}

	// CI artifact: the surviving primary's per-round timeline — every
	// ingest burst, promotion stamp and finalize across the whole soak.
	if out := os.Getenv("FAILOVER_ROUNDS_OUT"); out != "" {
		resp, err := http.Get(primary.debugBase + "/debug/rounds")
		if err != nil {
			t.Fatalf("fetching rounds timeline: %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading rounds timeline: %v", err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatalf("writing rounds artifact %s: %v", out, err)
		}
		t.Logf("wrote rounds timeline (%d bytes) to %s", len(data), out)
	}
}
