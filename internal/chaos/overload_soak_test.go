package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/frand"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// checkedTransport wraps a RoundTripper and audits every rejection the
// server sends back: a 503 or 429 must carry the typed unavailable code
// and Retry-After advice in both header and envelope, and no error
// response may be untyped. Violations are collected, not fatal, so the
// soak reports them all at once.
type checkedTransport struct {
	inner http.RoundTripper

	mu         sync.Mutex
	rejects    int
	violations []string
}

func (c *checkedTransport) violation(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) < 20 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func (c *checkedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.inner.RoundTrip(req)
	if err != nil || resp.StatusCode < 400 {
		return resp, err
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(data))
	if rerr != nil {
		return resp, nil
	}
	var e wire.Error
	if json.Unmarshal(data, &e) != nil || e.Code == "" {
		c.violation("%s %s: status %d with no typed error code: %.100s",
			req.Method, req.URL.Path, resp.StatusCode, data)
		return resp, nil
	}
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
		c.mu.Lock()
		c.rejects++
		c.mu.Unlock()
		if e.Code != wire.CodeUnavailable {
			c.violation("%s: status %d carries code %q, want unavailable", req.URL.Path, resp.StatusCode, e.Code)
		}
		if resp.Header.Get("Retry-After") == "" {
			c.violation("%s: status %d without a Retry-After header", req.URL.Path, resp.StatusCode)
		}
		if !(e.RetryAfter > 0) {
			c.violation("%s: status %d without envelope retry_after_seconds", req.URL.Path, resp.StatusCode)
		}
	}
	return resp, nil
}

// TestOverloadSoak throws a synchronized burst of ~10× the server's
// admission capacity at a tightly capped daemon and asserts graceful
// degradation: every rejection is a typed, retryable 503/429 with
// Retry-After advice, the server actually sheds (this is an overload, not
// a sizing exercise), no acked report is ever lost, most of the fleet
// pushes through on retries, and the shared circuit breaker ends closed.
func TestOverloadSoak(t *testing.T) {
	const (
		n    = 120
		bits = 6
	)
	s := transport.NewServer(1)
	s.SetOverload(transport.OverloadPolicy{
		ReportInFlight: 4,
		TaskInFlight:   4,
		AdminInFlight:  2,
		QueryInFlight:  2,
		QueueDepth:     8,
		QueueWait:      20 * time.Millisecond,
		RetryAfterBase: 20 * time.Millisecond,
		RetryAfterMax:  200 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	checker := &checkedTransport{inner: http.DefaultTransport}
	hc := &http.Client{Transport: checker}
	// One breaker for the whole fleet: under a sustained shed storm it
	// opens and meters recovery through half-open probes instead of a
	// thundering herd.
	breaker := &transport.CircuitBreaker{
		Window:           time.Second,
		FailureThreshold: 100,
		Cooldown:         50 * time.Millisecond,
	}
	retry := func(seed uint64) *transport.RetryPolicy {
		return &transport.RetryPolicy{
			MaxAttempts:   25,
			BaseDelay:     2 * time.Millisecond,
			MaxDelay:      100 * time.Millisecond,
			Jitter:        0.5,
			PerTryTimeout: 5 * time.Second,
			Seed:          seed,
			Breaker:       breaker,
		}
	}
	ctx := context.Background()
	admin := &transport.Admin{BaseURL: srv.URL, HTTPClient: hc, Retry: retry(1)}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "overload", Bits: bits, Gamma: 1, MinCohort: n / 4,
	})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	// Pin every report slot with a slow-loris body for the opening of the
	// burst: the in-memory handlers are otherwise fast enough to drain 10×
	// load without ever filling a queue. Each pinner trickles a valid
	// report over ~700ms — well inside the 5s request deadline — holding
	// its admission slot the whole time, exactly what a fleet of clients
	// on congested uplinks does to a real deployment.
	var pinners sync.WaitGroup
	for i := 0; i < 4; i++ {
		pinners.Add(1)
		go func(i int) {
			defer pinners.Done()
			payload := []byte(fmt.Sprintf(`{"client_id":"loris-%d","bit":0,"value":1}`, i))
			req, err := http.NewRequest(http.MethodPost,
				fmt.Sprintf("%s/v1/sessions/%s/reports", srv.URL, session),
				chaos.SlowBody(payload, 4, 60*time.Millisecond))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	// Give the pinners a beat to claim their slots before the burst.
	time.Sleep(100 * time.Millisecond)

	// The burst: every client fires in the same instant. Report+task
	// in-flight capacity is 8 with 16 queue seats, so 120 synchronized
	// clients offer ~10× what admission control will hold.
	root := frand.New(3)
	rngs := make([]*frand.RNG, n)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	var succeeded atomic.Int64
	chaos.Swarm(ctx, n, func(ctx context.Context, i int) error {
		p := &transport.Participant{
			BaseURL:    srv.URL,
			ClientID:   clientID(i),
			RNG:        rngs[i],
			Retry:      retry(uint64(i) + 100),
			HTTPClient: hc,
		}
		err := p.Participate(ctx, session, uint64(i)%(1<<bits))
		if err == nil {
			succeeded.Add(1)
		}
		return err
	})

	pinners.Wait()
	res, err := admin.Finalize(ctx, session)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	ok := int(succeeded.Load())
	reg := s.Registry()
	shed := reg.CounterVec(transport.MetricOverloadShed, "", "class", "reason")
	var shedTotal uint64
	for _, class := range []string{"report", "task", "admin", "query"} {
		for _, reason := range []transport.ShedReason{transport.ShedQueueFull, transport.ShedQueueTimeout, transport.ShedAbandoned} {
			shedTotal += shed.With(class, string(reason)).Value()
		}
	}
	t.Logf("overload soak: %d/%d clients through, cohort %d, %d sheds, %d typed rejects seen",
		ok, n, res.Reports, shedTotal, checker.rejects)

	// The server must actually have shed under 10× load, and every shed
	// the fleet saw must have been typed and advisory.
	if shedTotal == 0 {
		t.Fatal("10x burst produced zero sheds: the overload path never engaged")
	}
	checker.mu.Lock()
	violations := checker.violations
	rejects := checker.rejects
	checker.mu.Unlock()
	if rejects == 0 {
		t.Fatal("clients never saw a 503/429 despite server-side sheds")
	}
	for _, v := range violations {
		t.Error(v)
	}

	// Zero acked-then-lost: every client whose Participate was acked is in
	// the finalized cohort, and nobody is double-counted.
	if res.Reports < ok {
		t.Fatalf("cohort %d < %d acked participations: an acked report was lost", res.Reports, ok)
	}
	if res.Reports > n {
		t.Fatalf("cohort %d from %d clients: double counting", res.Reports, n)
	}
	if accepted := reg.CounterVec(transport.MetricReports, "", "result").
		With(transport.ReportAccepted).Value(); accepted != uint64(res.Reports) {
		t.Fatalf("accepted counter %d != finalized cohort %d", accepted, res.Reports)
	}
	// Retries plus server backoff advice must carry most of the fleet
	// through; a hard floor of half guards against pathological shedding.
	if ok < n/2 {
		t.Fatalf("only %d/%d clients pushed through the overload", ok, n)
	}
	// With the traffic gone the breaker must settle closed: one quiet
	// request rides the half-open probe if the storm left it open.
	if _, err := admin.Result(ctx, session); err != nil {
		t.Fatalf("post-storm result fetch: %v", err)
	}
	if got := breaker.State(); got != transport.BreakerClosed {
		t.Fatalf("breaker state %q after the storm drained, want closed", got)
	}

	// CI uploads the end-of-run registry as an artifact: set
	// OVERLOAD_METRICS_OUT to dump the shed/queue/report counters in
	// Prometheus text format.
	if out := os.Getenv("OVERLOAD_METRICS_OUT"); out != "" {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("render metrics summary: %v", err)
		}
		if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write metrics summary %s: %v", out, err)
		}
		t.Logf("metrics summary written to %s (%d bytes)", out, buf.Len())
	}
}

// TestBreakerReclosesAfterOutage drives the client circuit breaker through
// a full outage over real HTTP: a server answering nothing but typed 503s
// trips it, attempts then fail fast without touching the network, and once
// the server recovers the half-open probe closes it again.
func TestBreakerReclosesAfterOutage(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if healthy.Load() {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"session_id":"s1","done":false}`)
			return
		}
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.Error{
			Error: "down", Code: wire.CodeUnavailable, RetryAfter: 0.01,
		})
	}))
	defer srv.Close()

	// The cooldown leaves generous headroom over the retry pauses (≤5ms
	// each) so the open-state assertions below cannot race a half-open
	// transition even under -race scheduling.
	breaker := &transport.CircuitBreaker{
		Window:           10 * time.Second,
		FailureThreshold: 3,
		Cooldown:         300 * time.Millisecond,
	}
	admin := &transport.Admin{BaseURL: srv.URL, Retry: &transport.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        7,
		Breaker:     breaker,
	}}
	ctx := context.Background()
	// The outage: enough failed attempts to trip the breaker.
	if _, err := admin.Result(ctx, "s1"); err == nil {
		t.Fatal("outage request succeeded against a 503-only server")
	}
	if got := breaker.State(); got != transport.BreakerOpen {
		t.Fatalf("breaker state %q after outage, want open", got)
	}
	// While open, attempts fail fast locally: the server sees nothing.
	before := hits.Load()
	if _, err := admin.Result(ctx, "s1"); err == nil {
		t.Fatal("open-breaker request unexpectedly succeeded")
	}
	if after := hits.Load(); after != before {
		t.Fatalf("open breaker let %d requests reach the server", after-before)
	}
	// Recovery: past the cooldown the next attempt rides the half-open
	// probe, succeeds, and the breaker closes.
	healthy.Store(true)
	time.Sleep(breaker.Cooldown + 10*time.Millisecond)
	if _, err := admin.Result(ctx, "s1"); err != nil {
		t.Fatalf("post-recovery request failed: %v", err)
	}
	if got := breaker.State(); got != transport.BreakerClosed {
		t.Fatalf("breaker state %q after recovery, want closed", got)
	}
}

// TestSlowLorisCutOff trickles a request body slower than the server's
// per-request read deadline and asserts the server cuts the connection off
// early instead of letting the handler (and its admission slot) hang for
// the body's full transfer time.
func TestSlowLorisCutOff(t *testing.T) {
	s := transport.NewServer(1)
	s.SetOverload(transport.OverloadPolicy{
		ReportInFlight: 1,
		RequestTimeout: 150 * time.Millisecond,
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// ~300 bytes at 10 bytes per 100ms ≈ 3s of trickle against a 150ms
	// read deadline.
	payload := []byte(fmt.Sprintf(`{"client_id":%q,"bit":0,"value":1}`,
		"loris-"+string(bytes.Repeat([]byte("x"), 256))))
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/sessions/s1/reports",
		chaos.SlowBody(payload, 10, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	elapsed := time.Since(start)
	// The deadline must have cut the request far short of the full
	// trickle; the exact failure surface (connection reset vs an error
	// status) depends on where the read died.
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("slow-loris request held the server for %v, want a cut near the 150ms deadline", elapsed)
	}
	// The admission slot is free again: with only one report slot and no
	// queue, a pinned handler would shed the next report 503 — a prompt
	// non-503 answer (404 here, the session never existed) proves the cut
	// request released its slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/v1/sessions/s1/reports", "application/json",
			bytes.NewReader([]byte(`{"client_id":"c1","bit":0,"value":1}`)))
		if err != nil {
			t.Fatalf("request after slow-loris cut: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusServiceUnavailable {
			if code != http.StatusNotFound {
				t.Fatalf("post-loris report = %d, want 404", code)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("report slot still pinned after the slow-loris request was cut")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
