package transport

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrBreakerOpen is returned (possibly wrapped) when a request is refused
// locally because the circuit breaker is open: the server has failed
// enough recent attempts that hammering it further would only deepen the
// overload. The failure is transient by construction — the breaker
// half-opens after its cooldown — so Retryable reports it as such.
var ErrBreakerOpen = errors.New("transport: circuit breaker open")

// Breaker states, exposed through CircuitBreaker.State and the
// MetricClientBreakerState gauge (closed=0, half-open=1, open=2).
const (
	BreakerClosed   = "closed"
	BreakerHalfOpen = "half_open"
	BreakerOpen     = "open"
)

// CircuitBreaker is a client-side circuit breaker, layered under
// RetryPolicy (set RetryPolicy.Breaker): when the rolling failure window
// fills, the breaker opens and attempts fail fast locally instead of
// piling onto a struggling server. After Cooldown it half-opens and lets
// exactly one probe request through; a successful probe closes the
// breaker, a failed one re-opens it for another cooldown.
//
// One breaker guards one server, so a fleet of Participants talking to
// the same daemon should share a single CircuitBreaker (it is safe for
// concurrent use): the fleet then recovers as a trickle of probes rather
// than a thundering herd.
type CircuitBreaker struct {
	// Window is the rolling interval over which failures are counted.
	Window time.Duration
	// FailureThreshold opens the breaker when this many failures land
	// within Window; values < 1 behave as 1.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	Cooldown time.Duration
	// Now is the clock, injectable for tests; nil means time.Now.
	Now func() time.Time
	// Metrics, when non-nil, publishes the breaker state gauge and
	// transition counters (MetricClientBreaker*). Set before first use.
	Metrics *obs.Registry

	mu sync.Mutex
	// failures holds the timestamps of the most recent failures, at most
	// FailureThreshold of them (older ones can never matter).
	failures []time.Time
	state    string
	openedAt time.Time
	// probing marks the single in-flight half-open probe.
	probing bool
	bm      *breakerMetrics
}

// DefaultCircuitBreaker returns edge-device defaults: open after 5
// failures inside 10 seconds, probe again after 2 seconds.
func DefaultCircuitBreaker() *CircuitBreaker {
	return &CircuitBreaker{Window: 10 * time.Second, FailureThreshold: 5, Cooldown: 2 * time.Second}
}

func (cb *CircuitBreaker) now() time.Time {
	if cb.Now != nil {
		return cb.Now()
	}
	return time.Now()
}

func (cb *CircuitBreaker) threshold() int {
	if cb.FailureThreshold < 1 {
		return 1
	}
	return cb.FailureThreshold
}

// metricsLocked resolves the instrument set; the caller holds cb.mu.
func (cb *CircuitBreaker) metricsLocked() *breakerMetrics {
	if cb.Metrics == nil {
		return nil
	}
	if cb.bm == nil {
		cb.bm = newBreakerMetrics(cb.Metrics)
	}
	return cb.bm
}

// setStateLocked transitions the breaker and mirrors the change into the
// metrics registry; the caller holds cb.mu.
func (cb *CircuitBreaker) setStateLocked(state string) {
	if cb.state == "" {
		cb.state = BreakerClosed
	}
	if state == cb.state {
		return
	}
	cb.state = state
	if bm := cb.metricsLocked(); bm != nil {
		bm.state.Set(stateValue(state))
		bm.transitions.With(state).Inc()
	}
}

func stateValue(state string) float64 {
	switch state {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// State reports the breaker's current state, advancing open → half-open
// when the cooldown has elapsed.
func (cb *CircuitBreaker) State() string {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	cb.advanceLocked(cb.now())
	if cb.state == "" {
		return BreakerClosed
	}
	return cb.state
}

// advanceLocked applies the time-driven transition (open → half-open
// after Cooldown); the caller holds cb.mu.
func (cb *CircuitBreaker) advanceLocked(now time.Time) {
	if cb.state == BreakerOpen && now.Sub(cb.openedAt) >= cb.Cooldown {
		cb.setStateLocked(BreakerHalfOpen)
		cb.probing = false
	}
}

// Allow reports whether an attempt may be issued now. Closed allows
// everything; open allows nothing; half-open allows exactly one probe at
// a time — the caller must follow every allowed attempt with Record so
// the probe slot is released.
func (cb *CircuitBreaker) Allow() bool {
	if cb == nil {
		return true
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	cb.advanceLocked(cb.now())
	switch cb.state {
	case BreakerOpen:
		if bm := cb.metricsLocked(); bm != nil {
			bm.fastFails.Inc()
		}
		return false
	case BreakerHalfOpen:
		if cb.probing {
			if bm := cb.metricsLocked(); bm != nil {
				bm.fastFails.Inc()
			}
			return false
		}
		cb.probing = true
		if bm := cb.metricsLocked(); bm != nil {
			bm.probes.Inc()
		}
		return true
	default:
		return true
	}
}

// Record feeds the outcome of an allowed attempt back into the breaker.
// Only failures that say something about server health should be recorded
// as such: RecordResult maps an error through the Retryable classifier.
func (cb *CircuitBreaker) Record(failure bool) {
	if cb == nil {
		return
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	now := cb.now()
	cb.advanceLocked(now)
	if cb.state == BreakerHalfOpen {
		cb.probing = false
		if failure {
			cb.openLocked(now)
		} else {
			cb.failures = cb.failures[:0]
			cb.setStateLocked(BreakerClosed)
		}
		return
	}
	if !failure {
		return
	}
	cb.failures = append(cb.failures, now)
	if n := len(cb.failures); n > cb.threshold() {
		cb.failures = cb.failures[n-cb.threshold():]
	}
	if len(cb.failures) >= cb.threshold() &&
		(cb.Window <= 0 || now.Sub(cb.failures[0]) <= cb.Window) {
		cb.openLocked(now)
	}
}

// openLocked trips the breaker; the caller holds cb.mu.
func (cb *CircuitBreaker) openLocked(now time.Time) {
	cb.openedAt = now
	cb.failures = cb.failures[:0]
	cb.setStateLocked(BreakerOpen)
}

// RecordResult classifies err the way the retry loop does — transient
// (transport-level or retryable server status) failures count against the
// breaker, success and protocol rejections (which prove the server is
// answering) count as health — and feeds the verdict to Record. Context
// cancellation is the caller's doing and records nothing.
func (cb *CircuitBreaker) RecordResult(err error) {
	if cb == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		// The caller gave up; that says nothing about the server, but the
		// probe slot must still be released in half-open.
		cb.mu.Lock()
		cb.probing = false
		cb.mu.Unlock()
		return
	}
	cb.Record(err != nil && Retryable(err))
}

// breakerMetrics bundles the breaker's instruments.
type breakerMetrics struct {
	state       *obs.Gauge
	transitions *obs.CounterVec
	fastFails   *obs.Counter
	probes      *obs.Counter
}

func newBreakerMetrics(reg *obs.Registry) *breakerMetrics {
	return &breakerMetrics{
		state: reg.Gauge(MetricClientBreakerState,
			"Circuit breaker state: 0 closed, 1 half-open, 2 open."),
		transitions: reg.CounterVec(MetricClientBreakerTransitions,
			"Circuit breaker state transitions, by new state.", "state"),
		fastFails: reg.Counter(MetricClientBreakerFastFails,
			"Attempts refused locally because the breaker was open."),
		probes: reg.Counter(MetricClientBreakerProbes,
			"Half-open probe attempts let through the breaker."),
	}
}
