package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport/wire"
)

// Participant plays the client side of the protocol over HTTP. The ε-LDP
// randomized-response transform runs here, on the client, before the bit
// leaves the "device" — the trust boundary of local differential privacy.
//
// Edge devices are flaky by assumption (§4.3): set Retry to survive
// connection resets, lost acks and transient 5xx answers. Retransmitted
// reports are safe — the server acks an exact duplicate instead of
// rejecting it.
type Participant struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Endpoints, when non-nil, overrides BaseURL with a failover list of
	// server roots: requests go to the list's current endpoint, dead
	// nodes are skipped, and a standby's not_primary answer redirects to
	// the leader it names. Share one list across the fleet's clients so
	// the first redirect teaches everyone.
	Endpoints *EndpointList
	// ClientID identifies this device to the server.
	ClientID string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// RNG drives the local randomizer; required.
	RNG *frand.RNG
	// Retry, when non-nil, retries transient failures with backoff; nil
	// makes a single attempt per request.
	Retry *RetryPolicy
	// Metrics, when non-nil, counts protocol-level client outcomes:
	// duplicate re-acks after a lost ack (MetricClientDuplicateAcks) and
	// rejected reports (MetricClientRejections). Attempt/retry counters
	// ride on Retry.Metrics.
	Metrics *obs.Registry
	// Tracer, when non-nil, records client-side spans (participate,
	// fetch_task, submit_report, per-attempt) and propagates the trace to
	// the server via the traceparent header, so server spans parent to
	// the attempt that caused them. Nil costs nothing.
	Tracer *trace.Recorder
}

func (p *Participant) client() *http.Client {
	if p.HTTPClient != nil {
		return p.HTTPClient
	}
	return http.DefaultClient
}

func (p *Participant) endpoints() *EndpointList {
	if p.Endpoints != nil {
		return p.Endpoints
	}
	return NewEndpointList(p.BaseURL)
}

// FetchTask polls the server for this client's bit assignment. Re-polling
// is idempotent: the server replays the original assignment.
func (p *Participant) FetchTask(ctx context.Context, sessionID string) (wire.Task, error) {
	ctx, sp := trace.Start(trace.WithRecorder(ctx, p.Tracer), "client.fetch_task")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.Attr("client", p.ClientID)
	path := fmt.Sprintf("/v1/sessions/%s/task?client=%s",
		url.PathEscape(sessionID), url.QueryEscape(p.ClientID))
	var task wire.Task
	if err := doJSON(ctx, p.client(), p.Retry, p.endpoints(), http.MethodGet, path, nil, http.StatusOK, &task); err != nil {
		return wire.Task{}, err
	}
	return task, nil
}

// Participate runs the client's whole protocol for one session: fetch the
// task, extract the assigned bit of the private value, apply randomized
// response locally when the session demands it, and submit the single-bit
// report. Only that one perturbed bit is ever serialized. The randomized
// bit is drawn once, so retransmissions carry the identical report and
// cannot be double-counted or averaged against the privacy noise.
func (p *Participant) Participate(ctx context.Context, sessionID string, value uint64) error {
	if p.RNG == nil {
		return fmt.Errorf("transport: participant %q has no RNG", p.ClientID)
	}
	// One trace spans the whole protocol run: fetch_task and
	// submit_report (and their per-attempt children) parent here. The
	// private value is deliberately never a span attribute.
	ctx, sp := trace.Start(trace.WithRecorder(ctx, p.Tracer), "client.participate")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.Attr("client", p.ClientID)
	task, err := p.FetchTask(ctx, sessionID)
	if err != nil {
		return err
	}
	var bit uint64
	if task.Kind == wire.TaskKindThreshold {
		if value >= task.Threshold {
			bit = 1
		}
	} else {
		bit = (value >> uint(task.Bit)) & 1
	}
	if task.Epsilon > 0 {
		rr, err := ldp.NewRandomizedResponse(task.Epsilon)
		if err != nil {
			return err
		}
		bit = rr.Apply(bit, p.RNG)
	}
	ack, err := p.SubmitReport(ctx, sessionID, wire.Report{
		ClientID: p.ClientID, Bit: task.Bit, Value: bit,
	})
	if err != nil {
		return err
	}
	if p.Metrics != nil && ack.Duplicate {
		p.Metrics.Counter(MetricClientDuplicateAcks,
			"Reports re-acked as duplicates (retransmission after a lost ack).").Inc()
	}
	if !ack.Accepted {
		if p.Metrics != nil {
			p.Metrics.Counter(MetricClientRejections,
				"Reports the server refused to accept.").Inc()
		}
		return fmt.Errorf("transport: report rejected: %s", ack.Reason)
	}
	return nil
}

// SubmitReport posts a report to the server.
func (p *Participant) SubmitReport(ctx context.Context, sessionID string, rep wire.Report) (wire.ReportAck, error) {
	ctx, sp := trace.Start(trace.WithRecorder(ctx, p.Tracer), "client.submit_report")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.Attr("client", p.ClientID)
	sp.AttrInt("bit", int64(rep.Bit))
	body, err := json.Marshal(rep)
	if err != nil {
		return wire.ReportAck{}, err
	}
	path := fmt.Sprintf("/v1/sessions/%s/reports", url.PathEscape(sessionID))
	var ack wire.ReportAck
	if err := doJSON(ctx, p.client(), p.Retry, p.endpoints(), http.MethodPost, path, body, http.StatusOK, &ack); err != nil {
		return wire.ReportAck{}, err
	}
	return ack, nil
}

// doJSON executes one JSON exchange under the retry policy against the
// endpoint list. Each attempt builds a fresh request (bodies cannot be
// replayed) against the list's current endpoint and decodes either the
// expected payload or the server's error envelope into a *StatusError
// carrying the machine-readable code.
//
// Failover lives here: a transport-level failure (dial refused, reset)
// advances the list past the dead node before the error is returned,
// and a not_primary answer repoints the list — at the leader the
// replica named when it knew one, at the next endpoint otherwise — and
// marks the error retryable (Failover) when the retry will actually
// reach somewhere new. The retry loop above needs no endpoint
// awareness; it just tries again and lands on the repointed target.
func doJSON(ctx context.Context, hc *http.Client, rp *RetryPolicy, eps *EndpointList, method, path string, body []byte, wantStatus int, out any) error {
	// Validate the request shape once; per-attempt rebuilds cannot fail
	// differently with identical inputs.
	if _, err := http.NewRequest(method, eps.Current()+path, nil); err != nil {
		return err
	}
	return rp.Do(ctx, func(ctx context.Context) error {
		base := eps.Current()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		// Propagate the active span (the per-attempt span RetryPolicy.Do
		// opens) so the server's span parents to exactly this attempt —
		// duplicates and retries each carry their own parent.
		trace.Inject(ctx, req.Header)
		resp, err := hc.Do(req)
		if err != nil {
			// The node may be gone entirely; let the next attempt try
			// elsewhere.
			eps.Advance(base)
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			se := &StatusError{Status: resp.StatusCode}
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			var e wire.Error
			if json.Unmarshal(data, &e) == nil {
				se.Code, se.Msg, se.Leader = e.Code, e.Error, e.Leader
				if e.RetryAfter > 0 {
					// The envelope's float seconds beat the header's
					// whole-second granularity when both are present.
					se.RetryAfter = time.Duration(e.RetryAfter * float64(time.Second))
				}
			}
			if se.RetryAfter == 0 {
				se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			}
			if se.Code == wire.CodeNotPrimary {
				if se.Leader != "" {
					eps.SetLeader(se.Leader)
				} else {
					eps.Advance(base)
				}
				se.Failover = eps.Current() != base
			}
			return se
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// BinaryReporter submits batches of reports over the compact binary
// codec — the client side of the Content-Type-negotiated batch leg of
// the report route. It accumulates records with Add and ships them with
// Flush; the frame and ack buffers are reused across flushes, so a
// steady-state load generator encodes and decodes without per-batch
// allocations. One BinaryReporter is not safe for concurrent use; give
// each submitting goroutine its own.
//
// Retrying a flush after a lost ack is safe end to end: accepted
// records re-ack as duplicates, and per-record statuses come back in
// submission order either way.
type BinaryReporter struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Endpoints, when non-nil, overrides BaseURL with a failover list;
	// see Participant.Endpoints.
	Endpoints *EndpointList
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when non-nil, retries transient failures with backoff.
	Retry *RetryPolicy
	// Tracer, when non-nil, records client-side spans and propagates the
	// trace to the server.
	Tracer *trace.Recorder

	w    wire.BatchWriter
	acks []wire.AckStatus
	resp []byte
}

func (b *BinaryReporter) client() *http.Client {
	if b.HTTPClient != nil {
		return b.HTTPClient
	}
	return http.DefaultClient
}

func (b *BinaryReporter) endpoints() *EndpointList {
	if b.Endpoints != nil {
		return b.Endpoints
	}
	return NewEndpointList(b.BaseURL)
}

// Add buffers one report for the next Flush. It fails when the record
// does not fit the frame fields or the batch is at the frame cap
// (wire.MaxBatchReports) — flush and re-add in that case.
func (b *BinaryReporter) Add(clientID string, bit int, value uint64) error {
	return b.w.Add(clientID, bit, value)
}

// Pending returns how many reports are buffered for the next Flush.
func (b *BinaryReporter) Pending() int { return b.w.Count() }

// Flush posts the buffered batch and returns one ack status per report
// in submission order; the returned slice is valid until the next
// Flush. An empty buffer flushes to an empty ack list without touching
// the network. On success the buffer resets for the next batch; on
// error it is preserved so a retrying caller can Flush again.
func (b *BinaryReporter) Flush(ctx context.Context, sessionID string) ([]wire.AckStatus, error) {
	if b.w.Count() == 0 {
		return b.acks[:0], nil
	}
	ctx, sp := trace.Start(trace.WithRecorder(ctx, b.Tracer), "client.submit_batch")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.AttrInt("count", int64(b.w.Count()))
	frame := b.w.Bytes()
	path := fmt.Sprintf("/v1/sessions/%s/reports", url.PathEscape(sessionID))
	eps := b.endpoints()
	hc := b.client()
	var acks []wire.AckStatus
	err := b.Retry.Do(ctx, func(ctx context.Context) error {
		base := eps.Current()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(frame))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", wire.ReportBatchContentType)
		trace.Inject(ctx, req.Header)
		resp, err := hc.Do(req)
		if err != nil {
			eps.Advance(base)
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			se := &StatusError{Status: resp.StatusCode}
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			var e wire.Error
			if json.Unmarshal(data, &e) == nil {
				se.Code, se.Msg, se.Leader = e.Code, e.Error, e.Leader
				if e.RetryAfter > 0 {
					se.RetryAfter = time.Duration(e.RetryAfter * float64(time.Second))
				}
			}
			if se.RetryAfter == 0 {
				se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			}
			if se.Code == wire.CodeNotPrimary {
				if se.Leader != "" {
					eps.SetLeader(se.Leader)
				} else {
					eps.Advance(base)
				}
				se.Failover = eps.Current() != base
			}
			return se
		}
		body, err := readAllInto(b.resp[:0], resp.Body)
		b.resp = body
		if err != nil {
			return err
		}
		acks, err = wire.DecodeAckFrame(body, b.acks[:0])
		b.acks = acks
		return err
	})
	if err != nil {
		return nil, err
	}
	if len(acks) != b.w.Count() {
		return nil, fmt.Errorf("transport: batch of %d reports acked %d statuses", b.w.Count(), len(acks))
	}
	b.w.Reset()
	return acks, nil
}

// TailQuantile reads the q-quantile off a finalized threshold session's
// result: the smallest threshold whose tail probability drops to 1-q or
// below.
func TailQuantile(res *wire.Result, q float64) (uint64, error) {
	if len(res.Thresholds) == 0 || len(res.TailProbs) != len(res.Thresholds) {
		return 0, fmt.Errorf("transport: result has no threshold data")
	}
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("transport: quantile %v out of (0,1)", q)
	}
	for i, tail := range res.TailProbs {
		if tail <= 1-q {
			return res.Thresholds[i], nil
		}
	}
	return res.Thresholds[len(res.Thresholds)-1], nil
}

// Admin drives the server's control-plane endpoints (session creation and
// finalization), as used by cmd/fednumd clients and tests. It shares the
// Participant retry semantics via the same RetryPolicy type.
type Admin struct {
	BaseURL string
	// Endpoints, when non-nil, overrides BaseURL with a failover list;
	// see Participant.Endpoints.
	Endpoints  *EndpointList
	HTTPClient *http.Client
	// Retry, when non-nil, retries transient failures with backoff.
	Retry *RetryPolicy
	// Tracer, when non-nil, records control-plane spans and propagates
	// the trace to the server.
	Tracer *trace.Recorder
}

func (a *Admin) client() *http.Client {
	if a.HTTPClient != nil {
		return a.HTTPClient
	}
	return http.DefaultClient
}

func (a *Admin) endpoints() *EndpointList {
	if a.Endpoints != nil {
		return a.Endpoints
	}
	return NewEndpointList(a.BaseURL)
}

// CreateSession creates an aggregation session and returns its id.
// Creation is not idempotent on the server: retrying a lost-ack create may
// leave an orphan session behind, which the TTL garbage collector reaps.
func (a *Admin) CreateSession(ctx context.Context, cfg wire.SessionConfig) (string, error) {
	ctx, sp := trace.Start(trace.WithRecorder(ctx, a.Tracer), "client.create_session")
	defer sp.End()
	sp.Attr("feature", cfg.Feature)
	body, err := json.Marshal(cfg)
	if err != nil {
		return "", err
	}
	var out wire.CreateSessionResponse
	if err := doJSON(ctx, a.client(), a.Retry, a.endpoints(), http.MethodPost, "/v1/sessions", body, http.StatusCreated, &out); err != nil {
		return "", err
	}
	return out.SessionID, nil
}

// Finalize closes the session and returns the aggregate. Finalize is
// idempotent on the server, so retrying through a lost ack is safe.
func (a *Admin) Finalize(ctx context.Context, sessionID string) (*wire.Result, error) {
	ctx, sp := trace.Start(trace.WithRecorder(ctx, a.Tracer), "client.finalize")
	defer sp.End()
	sp.Attr("session", sessionID)
	path := fmt.Sprintf("/v1/sessions/%s/finalize", url.PathEscape(sessionID))
	var out wire.Result
	if err := doJSON(ctx, a.client(), a.Retry, a.endpoints(), http.MethodPost, path, nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Result fetches the session's current aggregate view.
func (a *Admin) Result(ctx context.Context, sessionID string) (*wire.Result, error) {
	path := fmt.Sprintf("/v1/sessions/%s/result", url.PathEscape(sessionID))
	var out wire.Result
	if err := doJSON(ctx, a.client(), a.Retry, a.endpoints(), http.MethodGet, path, nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
