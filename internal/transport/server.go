// Package transport exposes the aggregation protocol over HTTP/JSON: a
// Server that creates sessions, hands out single-bit tasks, ingests
// reports and serves aggregates, and a Participant that plays the client
// side, applying the ε-LDP transform locally before anything leaves the
// "device". It is the deployable face of the library, standing in for the
// paper's production FA stack (§4.3); cmd/fednumd and cmd/fednum-client
// wrap it as binaries.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/quantile"
	"repro/internal/transport/wire"
)

// Errors surfaced via HTTP status codes.
var (
	errNotFound = errors.New("transport: session not found")
	errFinal    = errors.New("transport: session already finalized")
)

// Server is the aggregation server. Create one with NewServer and mount it
// as an http.Handler.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
	rng      *frand.RNG
	nextID   int
	mux      *http.ServeMux
}

// session is one aggregation in progress. For bit sessions the assignment
// index is a bit position; for threshold sessions it indexes
// cfg.Thresholds. Either way a client's report carries the index it was
// assigned plus one bit of information.
type session struct {
	id         string
	cfg        wire.SessionConfig
	probs      []float64
	rr         *ldp.RandomizedResponse
	thresholds []uint64 // nil for bit sessions
	issued     []int    // tasks handed out per index, for low-discrepancy assignment
	// assigned remembers each client's task so off-assignment reports are
	// rejected (central randomness, the §5 poisoning defence).
	assigned map[string]int
	reported map[string]bool
	reports  []core.Report
	done     bool
	result   *core.Result // bit sessions
	tail     []float64    // threshold sessions: monotonized tail probs
}

// isThreshold reports the session kind.
func (sess *session) isThreshold() bool { return len(sess.thresholds) > 0 }

// NewServer returns a server whose task assignment is seeded for
// reproducibility (the seed does not protect any secret).
func NewServer(seed uint64) *Server {
	s := &Server{
		sessions: make(map[string]*session),
		rng:      frand.New(seed),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}/task", s.handleTask)
	mux.HandleFunc("POST /v1/sessions/{id}/reports", s.handleReport)
	mux.HandleFunc("POST /v1/sessions/{id}/finalize", s.handleFinalize)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, wire.Error{Error: err.Error()})
}

// CreateSession registers a new aggregation session programmatically
// (the HTTP handler wraps this).
func (s *Server) CreateSession(cfg wire.SessionConfig) (string, error) {
	var probs []float64
	var err error
	switch {
	case len(cfg.Thresholds) > 0:
		// Threshold-query session: clients spread uniformly across the
		// threshold grid.
		if cfg.Bits < 1 || cfg.Bits > 52 {
			return "", fmt.Errorf("transport: bits=%d out of range", cfg.Bits)
		}
		max := uint64(1) << uint(cfg.Bits)
		for i, t := range cfg.Thresholds {
			if t >= max {
				return "", fmt.Errorf("transport: threshold %d outside [0, 2^%d)", t, cfg.Bits)
			}
			if i > 0 && t <= cfg.Thresholds[i-1] {
				return "", fmt.Errorf("transport: thresholds must be strictly ascending")
			}
		}
		probs = make([]float64, len(cfg.Thresholds))
		for i := range probs {
			probs[i] = 1 / float64(len(probs))
		}
	case len(cfg.Probs) > 0:
		probs, err = core.Normalize(cfg.Probs)
		if err == nil && len(probs) != cfg.Bits {
			err = fmt.Errorf("transport: %d probs for %d bits", len(probs), cfg.Bits)
		}
	default:
		probs, err = core.GeometricProbs(cfg.Bits, cfg.Gamma)
	}
	if err != nil {
		return "", err
	}
	if cfg.Epsilon < 0 {
		return "", fmt.Errorf("transport: negative epsilon %v", cfg.Epsilon)
	}
	var rr *ldp.RandomizedResponse
	if cfg.Epsilon > 0 {
		rr, err = ldp.NewRandomizedResponse(cfg.Epsilon)
		if err != nil {
			return "", err
		}
	}
	if cfg.SquashThreshold < 0 || cfg.MinCohort < 0 {
		return "", fmt.Errorf("transport: negative squash threshold or cohort")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("s%08x", s.rng.Uint64n(1<<32)^uint64(s.nextID))
	s.sessions[id] = &session{
		id:         id,
		cfg:        cfg,
		probs:      probs,
		rr:         rr,
		thresholds: append([]uint64(nil), cfg.Thresholds...),
		issued:     make([]int, len(probs)),
		assigned:   make(map[string]int),
		reported:   make(map[string]bool),
	}
	return id, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg wire.SessionConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.CreateSession(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, wire.CreateSessionResponse{SessionID: id})
}

// AssignTask picks the bit a client must report: the bit whose issued
// count is furthest below its target share — a deterministic
// low-discrepancy stream that keeps every prefix of assignments within one
// task of the exact n·p_j proportions (the QMC property of §3.1 for an
// open-ended client stream). Re-polling clients get their original task.
func (s *Server) AssignTask(sessionID, clientID string) (wire.Task, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sessionID]
	if !ok {
		return wire.Task{}, errNotFound
	}
	if sess.done {
		return wire.Task{}, errFinal
	}
	idx, ok := sess.assigned[clientID]
	if !ok {
		idx = sess.nextBit()
		sess.assigned[clientID] = idx
		sess.issued[idx]++
	}
	task := wire.Task{
		SessionID: sessionID,
		Feature:   sess.cfg.Feature,
		Bits:      sess.cfg.Bits,
		Bit:       idx,
	}
	if sess.isThreshold() {
		task.Kind = wire.TaskKindThreshold
		task.Threshold = sess.thresholds[idx]
	}
	if sess.rr != nil {
		task.Epsilon = sess.rr.Eps
	}
	return task, nil
}

// nextBit returns the bit index with the largest deficit relative to its
// target share after the tasks issued so far.
func (sess *session) nextBit() int {
	total := 0
	for _, c := range sess.issued {
		total += c
	}
	best, bestDeficit := 0, float64(-1)
	for j, p := range sess.probs {
		deficit := p*float64(total+1) - float64(sess.issued[j])
		if deficit > bestDeficit {
			best, bestDeficit = j, deficit
		}
	}
	return best
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	clientID := r.URL.Query().Get("client")
	if clientID == "" {
		writeError(w, http.StatusBadRequest, errors.New("transport: missing client parameter"))
		return
	}
	task, err := s.AssignTask(r.PathValue("id"), clientID)
	switch {
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, task)
	}
}

// SubmitReport ingests one client report, enforcing one report per client
// and rejecting reports for bits the server did not assign.
func (s *Server) SubmitReport(sessionID string, rep wire.Report) (wire.ReportAck, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sessionID]
	if !ok {
		return wire.ReportAck{}, errNotFound
	}
	if sess.done {
		return wire.ReportAck{}, errFinal
	}
	if rep.Value > 1 {
		return wire.ReportAck{Accepted: false, Reason: "value is not a bit"}, nil
	}
	assigned, ok := sess.assigned[rep.ClientID]
	if !ok {
		return wire.ReportAck{Accepted: false, Reason: "no task assigned"}, nil
	}
	if rep.Bit != assigned {
		return wire.ReportAck{Accepted: false, Reason: "report for unassigned bit"}, nil
	}
	if sess.reported[rep.ClientID] {
		return wire.ReportAck{Accepted: false, Reason: "duplicate report"}, nil
	}
	sess.reported[rep.ClientID] = true
	sess.reports = append(sess.reports, core.Report{Bit: rep.Bit, Value: rep.Value})
	return wire.ReportAck{Accepted: true}, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep wire.Report
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ack, err := s.SubmitReport(r.PathValue("id"), rep)
	switch {
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, ack)
	}
}

// Finalize closes the session and computes the aggregate. It fails if the
// accepted cohort is below the configured minimum.
func (s *Server) Finalize(sessionID string) (*wire.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sessionID]
	if !ok {
		return nil, errNotFound
	}
	if !sess.done {
		if len(sess.reports) < sess.cfg.MinCohort {
			return nil, fmt.Errorf("transport: cohort %d below minimum %d", len(sess.reports), sess.cfg.MinCohort)
		}
		if sess.isThreshold() {
			sess.tail = sess.tailProbs()
		} else {
			res, err := core.Aggregate(core.Config{
				Bits:            sess.cfg.Bits,
				Probs:           sess.probs,
				RR:              sess.rr,
				SquashThreshold: sess.cfg.SquashThreshold,
			}, sess.reports)
			if err != nil {
				return nil, err
			}
			sess.result = res
		}
		sess.done = true
	}
	return sess.wireResult(), nil
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	res, err := s.Finalize(r.PathValue("id"))
	switch {
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// Result returns the session's current aggregate view; before Finalize it
// reports Done=false with the running report count.
func (s *Server) Result(sessionID string) (*wire.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sessionID]
	if !ok {
		return nil, errNotFound
	}
	return sess.wireResult(), nil
}

// tailProbs aggregates a threshold session: per-threshold report means,
// unbiased under randomized response and projected onto a monotone tail.
// A threshold that received no reports is treated as uninformative (0.5)
// and resolved by the monotone projection against its neighbours.
func (sess *session) tailProbs() []float64 {
	raw := make([]float64, len(sess.thresholds))
	counts := make([]int, len(sess.thresholds))
	for _, rep := range sess.reports {
		counts[rep.Bit]++
		raw[rep.Bit] += float64(rep.Value)
	}
	for i := range raw {
		if counts[i] == 0 {
			raw[i] = 0.5
			continue
		}
		m := raw[i] / float64(counts[i])
		if sess.rr != nil {
			m = sess.rr.UnbiasMean(m)
		}
		raw[i] = m
	}
	return quantile.MonotonizeTail(raw)
}

// wireResult snapshots the session; the caller holds the lock.
func (sess *session) wireResult() *wire.Result {
	out := &wire.Result{
		SessionID: sess.id,
		Feature:   sess.cfg.Feature,
		Done:      sess.done,
		Reports:   len(sess.reports),
	}
	if sess.result != nil {
		out.Estimate = sess.result.Estimate
		out.BitMeans = append([]float64(nil), sess.result.BitMeans...)
		out.Counts = append([]int(nil), sess.result.Counts...)
		out.Sums = append([]float64(nil), sess.result.Sums...)
		out.Squashed = append([]bool(nil), sess.result.Squashed...)
	}
	if sess.tail != nil {
		out.Thresholds = append([]uint64(nil), sess.thresholds...)
		out.TailProbs = append([]float64(nil), sess.tail...)
	}
	return out
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": n})
}

// SessionSummary is one row of the session listing.
type SessionSummary struct {
	SessionID string `json:"session_id"`
	Feature   string `json:"feature"`
	Kind      string `json:"kind"`
	Bits      int    `json:"bits"`
	Reports   int    `json:"reports"`
	Done      bool   `json:"done"`
}

// Sessions lists every session's summary, sorted by id.
func (s *Server) Sessions() []SessionSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionSummary, 0, len(s.sessions))
	for _, sess := range s.sessions {
		kind := wire.TaskKindBit
		if sess.isThreshold() {
			kind = wire.TaskKindThreshold
		}
		out = append(out, SessionSummary{
			SessionID: sess.id,
			Feature:   sess.cfg.Feature,
			Kind:      kind,
			Bits:      sess.cfg.Bits,
			Reports:   len(sess.reports),
			Done:      sess.done,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SessionID < out[j].SessionID })
	return out
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Sessions())
}
