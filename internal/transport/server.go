// Package transport exposes the aggregation protocol over HTTP: a
// Server that creates sessions, hands out single-bit tasks, ingests
// reports and serves aggregates, and a Participant that plays the client
// side, applying the ε-LDP transform locally before anything leaves the
// "device". It is the deployable face of the library, standing in for the
// paper's production FA stack (§4.3); cmd/fednumd and cmd/fednum-client
// wrap it as binaries.
//
// Reports travel in either of two codecs on the same /v1 route: the
// original JSON envelope, and a compact CRC32C-framed binary batch
// (internal/transport/wire, Content-Type negotiated) that carries
// hundreds of client reports per request for swarm-scale ingestion.
// Both codecs land in the same acceptance machine, so idempotency and
// duplicate semantics are identical whichever a client speaks.
//
// The layer is built for flaky fleets: clients retry with backoff
// (RetryPolicy), the server acks retransmitted reports instead of
// rejecting them, sessions carry TTL deadlines that auto-finalize or
// expire them, and the whole session table snapshots to JSON so a daemon
// restart does not lose an in-flight aggregation.
//
// Durability: with a write-ahead log attached (AttachWAL), every acked
// state transition — session create, task assignment, accepted report,
// finalize, expire, retention delete — is appended and committed to the
// log before the reply leaves the server, so even a SIGKILL or power
// loss cannot take back an ack. Boot restores the latest snapshot and
// replays the WAL tail (ReplayWAL); CompactWAL cuts a fresh snapshot
// and reclaims covered segments.
//
// Concurrency: the session table is striped across power-of-two lock
// shards (table.go), each session guards its own bookkeeping with an
// RWMutex, and the per-bit sum/count accumulators are atomics — so
// concurrent reports against one hot session share a read lock on the
// duplicate path and serialize only for the short exclusive window of a
// fresh accept. The lock order is Server.mu → tableStripe.mu →
// session.mu → WAL.mu, with session.rateMu and the round table as
// leaves; fedlint's lockorder/lockheld analyzers hold the code to it.
//
// Logging is structured (Server.Logger, a *slog.Logger). The printf-
// shaped Logf shim that once adapted unmigrated embedders is gone;
// fedlint/noprintflog keeps it from coming back.
package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/obs"
	"repro/internal/quantile"
	"repro/internal/trace"
	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// Errors surfaced via HTTP status codes.
var (
	errNotFound = errors.New("transport: session not found")
	errFinal    = errors.New("transport: session already finalized")
	errExpired  = errors.New("transport: session expired")
	errCohort   = errors.New("transport: cohort below minimum")

	errSessionStripesLive = errors.New("transport: SetSessionStripes on a non-empty session table")
)

// sweepEvery throttles the lazy deadline sweep that piggybacks on request
// handling; Sweep and the GC loop bypass it.
const sweepEvery = 100 * time.Millisecond

// Server is the aggregation server. Create one with NewServer and mount it
// as an http.Handler. The exported knobs (Now, Logger, Retention) must be
// set before the server starts handling traffic.
//
// Every server carries its own obs.Registry (see Registry): request
// counts, latencies and session lifecycle metrics are recorded
// automatically and served in Prometheus text format at GET /metrics.
type Server struct {
	// Now is the clock, injectable for deadline tests; nil means time.Now.
	Now func() time.Time
	// Logger receives structured operational logs (request traces at
	// debug, GC activity, encode failures); nil falls back to
	// slog.Default().
	Logger *slog.Logger
	// Retention, when positive, garbage-collects finalized and expired
	// sessions that many ticks after they ended, bounding memory on a
	// long-lived daemon. Zero keeps them forever.
	Retention time.Duration

	metrics *serverMetrics
	reqSeq  atomic.Uint64

	// tracer and rounds are the tracing plane (SetTracer): the span
	// recorder armed on every request context, and the per-session round
	// timeline store. Both nil (the default) means tracing is off and the
	// instrumented paths cost nothing.
	tracer atomic.Pointer[trace.Recorder]
	rounds atomic.Pointer[roundTable]

	// ovl holds the installed admission-control plane (SetOverload);
	// nil gates nothing. draining is the readiness drain flag
	// (SetDraining), shed the adaptive Retry-After advisor.
	ovl      atomic.Pointer[overloadState]
	draining atomic.Bool
	shed     *shedState
	shedOnce sync.Once

	// role/epoch/leader are the replication state machine (replication.go):
	// the role gates every client-facing route with one atomic load, the
	// fencing epoch makes promotions unambiguous, and the leader hint
	// rides in CodeNotPrimary envelopes. onPromote is the standby's
	// promotion hook (SetOnPromote).
	role      atomic.Int32
	epoch     atomic.Uint64
	leader    atomic.Pointer[string]
	onPromote atomic.Pointer[func(context.Context) error]

	// table is the striped session map (table.go). The pointer itself is
	// written only at construction and by SetSessionStripes (boot-time,
	// empty-table only); all concurrent access goes through the stripes'
	// own locks.
	table *sessionTable

	// mu guards the id-minting state only: the rng stream and nextID.
	// Everything per-session moved behind the table stripes and the
	// sessions' own locks, so the report hot path never touches it.
	mu     sync.Mutex
	rng    *frand.RNG
	nextID int

	// lastSweep (unix nanos) throttles the lazy deadline sweep; claimed
	// by compare-and-swap so at most one request pays for a sweep per
	// sweepEvery window.
	lastSweep atomic.Int64

	mux *http.ServeMux

	// wal, when attached (AttachWAL, before traffic), receives a record
	// for every acked state transition before the reply; walSeq is the
	// high-water sequence appended or applied (advanced with a CAS-max,
	// since appends under different stripe/session locks may race to
	// record their sequences).
	wal    atomic.Pointer[wal.WAL]
	walSeq atomic.Uint64
}

// session is one aggregation in progress. For bit sessions the assignment
// index is a bit position; for threshold sessions it indexes
// cfg.Thresholds. Either way a client's report carries the index it was
// assigned plus one bit of information.
//
// Locking: id, cfg, probs, rr, thresholds and deadline are immutable
// after the session is published into the table. The bookkeeping maps
// and lifecycle flags sit behind mu — an RWMutex so the retransmission
// storm case (duplicate reports against a hot session) shares a read
// lock. The per-bit accumulators are atomics written only while mu is
// held exclusively: lock-free readers (progress views, estimates in
// flight) see a race-free running count, while finalize — which also
// holds mu exclusively — always sees a frozen total. rateMu is a leaf
// guarding only the token bucket, so rate accounting never serializes
// against the acceptance machine.
type session struct {
	id         string
	cfg        wire.SessionConfig
	probs      []float64
	rr         *ldp.RandomizedResponse
	thresholds []uint64 // nil for bit sessions
	// deadline, when non-zero, is the TTL garbage-collection point: the
	// session auto-finalizes (cfg.AutoFinalize, cohort permitting) or
	// expires when the clock passes it. Set before publication, then
	// read-only.
	deadline time.Time

	// nReports/bitCount/bitSum replace the old per-report slice: counts
	// and sums per assignment index, exactly the inputs core.Pool needs.
	// Sums of 0/1-valued reports are integer-exact, so the aggregate is
	// bit-identical to folding the report list.
	nReports atomic.Int64
	bitCount []atomic.Int64
	bitSum   []atomic.Int64

	mu     sync.RWMutex
	issued []int // tasks handed out per index, for low-discrepancy assignment
	// assigned remembers each client's task so off-assignment reports are
	// rejected (central randomness, the §5 poisoning defence).
	assigned map[string]int
	// reported remembers the exact value each client's accepted report
	// carried, so a retransmission after a lost ack is re-acked as a
	// duplicate while a conflicting value is rejected.
	reported map[string]uint64
	done     bool
	expired  bool
	endedAt  time.Time    // when done or expired flipped, for Retention GC
	result   *core.Result // bit sessions
	tail     []float64    // threshold sessions: monotonized tail probs

	// rateMu guards the per-session report-rate token bucket
	// (OverloadPolicy.ReportRate). Ephemeral by design: the bucket is
	// not snapshotted or WAL-logged, so a restarted server starts the
	// session with a full bucket.
	rateMu       sync.Mutex
	bucketTokens float64
	bucketLast   time.Time
}

// isThreshold reports the session kind.
func (sess *session) isThreshold() bool { return len(sess.thresholds) > 0 }

// reportCount returns the accepted-report total. Lock-free and always
// consistent to read; exact whenever sess.mu is held (the accumulators
// only move under the exclusive lock).
func (sess *session) reportCount() int { return int(sess.nReports.Load()) }

// foldReport folds one accepted report into the per-bit accumulators.
// Callers either hold sess.mu exclusively (live ingest, WAL replay) or
// own the session before publication (snapshot restore), which is what
// keeps finalize's view frozen.
func (sess *session) foldReport(bit int, value uint64) {
	sess.nReports.Add(1)
	sess.bitCount[bit].Add(1)
	sess.bitSum[bit].Add(int64(value))
}

// NewServer returns a server whose task assignment is seeded for
// reproducibility (the seed does not protect any secret).
func NewServer(seed uint64) *Server {
	s := &Server{
		table:   newSessionTable(DefaultSessionStripes),
		rng:     frand.New(seed),
		metrics: newServerMetrics(obs.NewRegistry()),
	}
	// Epoch 1, role primary: a server that never hears about replication
	// behaves exactly as before.
	s.epoch.Store(1)
	s.metrics.replEpoch.Set(1)
	mux := http.NewServeMux()
	// Liveness and readiness stay ungated: an overloaded daemon must
	// still answer its probes, or the router drains a server that is
	// merely busy as if it were dead.
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReady))
	mux.HandleFunc("GET /v1/sessions", s.instrument("/v1/sessions", s.gated(gateQuery, s.handleList)))
	mux.HandleFunc("POST /v1/sessions", s.instrument("/v1/sessions", s.gated(gateAdmin, s.handleCreate)))
	mux.HandleFunc("GET /v1/sessions/{id}/task", s.instrument("/v1/sessions/{id}/task", s.gated(gateTask, s.handleTask)))
	mux.HandleFunc("POST /v1/sessions/{id}/reports", s.instrument("/v1/sessions/{id}/reports", s.gated(gateReport, s.handleReport)))
	mux.HandleFunc("POST /v1/sessions/{id}/finalize", s.instrument("/v1/sessions/{id}/finalize", s.gated(gateAdmin, s.handleFinalize)))
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.instrument("/v1/sessions/{id}/result", s.gated(gateQuery, s.handleResult)))
	// The replication plane is instrumented but not gated: role handling
	// happens inside each handler (status answers on every role, wal and
	// snapshot only on a primary), and a standby must keep serving these
	// even while shedding everything else.
	mux.HandleFunc("GET /v1/replication/wal", s.instrument("/v1/replication/wal", s.handleReplWAL))
	mux.HandleFunc("GET /v1/replication/snapshot", s.instrument("/v1/replication/snapshot", s.handleReplSnapshot))
	mux.HandleFunc("GET /v1/replication/status", s.instrument("/v1/replication/status", s.handleReplStatus))
	mux.HandleFunc("POST /v1/replication/promote", s.instrument("/v1/replication/promote", s.handleReplPromote))
	mux.HandleFunc("POST /v1/replication/demote", s.instrument("/v1/replication/demote", s.handleReplDemote))
	// The scrape endpoint itself stays uninstrumented so scrapes do not
	// perturb the request counters they read.
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetTracer arms end-to-end tracing: rec is attached to every request
// context (so instrumented paths record spans into it) and a round
// timeline store starts collecting per-session lifecycle events. Passing
// nil disarms both. Safe to call at any time; fednumd wires it to
// -trace-buf before traffic.
func (s *Server) SetTracer(rec *trace.Recorder) {
	if rec == nil {
		s.tracer.Store(nil)
		s.rounds.Store(nil)
		return
	}
	s.tracer.Store(rec)
	s.rounds.Store(newRoundTable())
}

// Tracer returns the armed span recorder, nil when tracing is off — for
// mounting its Handler on an admin listener as /debug/trace.
func (s *Server) Tracer() *trace.Recorder { return s.tracer.Load() }

// tracing reports whether SetTracer armed a recorder; instrumented paths
// use it to gate work (clock reads, detail formatting) that only matters
// when spans are being collected.
func (s *Server) tracing() bool { return s.tracer.Load() != nil }

func (s *Server) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// logger resolves the operational logger: Logger, or slog.Default().
// All call sites speak slog attrs; the old printf-shaped Logf shim was
// deleted once every embedder migrated (fedlint/noprintflog enforces
// that it stays gone).
func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// jsonBufPool recycles response-encoding buffers across replies, pre-
// sized for a typical envelope, so the JSON path stops allocating a
// fresh encoder buffer per response.
var jsonBufPool = sync.Pool{
	New: func() any {
		b := new(bytes.Buffer)
		b.Grow(512)
		return b
	},
}

// jsonBufPoolMaxCap bounds what goes back in the pool: an occasional
// huge body (a session-table snapshot can run to megabytes) must not
// pin its buffer in the pool forever.
const jsonBufPoolMaxCap = 64 << 10

// writeJSON encodes v through a pooled buffer, so encoding failures are
// caught before the header is written (and answered as a 500 instead of
// a torn body) and the reply goes out with an exact Content-Length.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		s.logger().Warn("transport: encoding response failed",
			"type", fmt.Sprintf("%T", v), "error", err)
		http.Error(w, `{"error":"response encoding failed","code":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The client hung up; nothing to answer.
		s.logger().Debug("transport: writing response failed", "error", err)
	}
	if buf.Cap() <= jsonBufPoolMaxCap {
		jsonBufPool.Put(buf)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code wire.Code, err error) {
	s.writeJSON(w, status, wire.Error{Error: err.Error(), Code: code})
}

// errorStatus maps a protocol error to its HTTP status and wire code.
func errorStatus(err error) (int, wire.Code) {
	var rl *rateLimitedError
	var shed *errShed
	switch {
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, wire.CodeNotFound
	case errors.Is(err, errFinal):
		return http.StatusConflict, wire.CodeFinalized
	case errors.Is(err, errExpired):
		return http.StatusGone, wire.CodeExpired
	case errors.Is(err, errCohort):
		return http.StatusConflict, wire.CodeCohortTooSmall
	case errors.Is(err, errDurability):
		return http.StatusServiceUnavailable, wire.CodeUnavailable
	case errors.As(err, &rl):
		return http.StatusTooManyRequests, wire.CodeUnavailable
	case errors.As(err, &shed):
		return http.StatusServiceUnavailable, wire.CodeUnavailable
	default:
		return http.StatusBadRequest, wire.CodeBadRequest
	}
}

// buildSession validates cfg and constructs a session with its derived
// state (probabilities, randomized-response parameters). The id and
// deadline are left for the caller: CreateSession mints a fresh id and
// anchors the TTL at the clock; WAL replay reuses the logged values.
// Keeping the whole derivation here guarantees live creation and replay
// cannot diverge.
func buildSession(cfg wire.SessionConfig) (*session, error) {
	var probs []float64
	var err error
	switch {
	case len(cfg.Thresholds) > 0:
		// Threshold-query session: clients spread uniformly across the
		// threshold grid.
		if cfg.Bits < 1 || cfg.Bits > 52 {
			return nil, fmt.Errorf("transport: bits=%d out of range", cfg.Bits)
		}
		max := uint64(1) << uint(cfg.Bits)
		for i, t := range cfg.Thresholds {
			if t >= max {
				return nil, fmt.Errorf("transport: threshold %d outside [0, 2^%d)", t, cfg.Bits)
			}
			if i > 0 && t <= cfg.Thresholds[i-1] {
				return nil, fmt.Errorf("transport: thresholds must be strictly ascending")
			}
		}
		probs = make([]float64, len(cfg.Thresholds))
		for i := range probs {
			probs[i] = 1 / float64(len(probs))
		}
	case len(cfg.Probs) > 0:
		probs, err = core.Normalize(cfg.Probs)
		if err == nil && len(probs) != cfg.Bits {
			err = fmt.Errorf("transport: %d probs for %d bits", len(probs), cfg.Bits)
		}
	default:
		probs, err = core.GeometricProbs(cfg.Bits, cfg.Gamma)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("transport: negative epsilon %v", cfg.Epsilon)
	}
	var rr *ldp.RandomizedResponse
	if cfg.Epsilon > 0 {
		rr, err = ldp.NewRandomizedResponse(cfg.Epsilon)
		if err != nil {
			return nil, err
		}
	}
	if cfg.SquashThreshold < 0 || cfg.MinCohort < 0 {
		return nil, fmt.Errorf("transport: negative squash threshold or cohort")
	}
	if cfg.TTLSeconds < 0 {
		return nil, fmt.Errorf("transport: negative ttl %v", cfg.TTLSeconds)
	}
	return &session{
		cfg:        cfg,
		probs:      probs,
		rr:         rr,
		thresholds: append([]uint64(nil), cfg.Thresholds...),
		issued:     make([]int, len(probs)),
		assigned:   make(map[string]int),
		reported:   make(map[string]uint64),
		bitCount:   make([]atomic.Int64, len(probs)),
		bitSum:     make([]atomic.Int64, len(probs)),
	}, nil
}

// CreateSession registers a new aggregation session programmatically
// (the HTTP handler wraps this). With a WAL attached the creation is
// durable before the id is returned.
func (s *Server) CreateSession(ctx context.Context, cfg wire.SessionConfig) (string, error) {
	_, sp := trace.Start(ctx, "server.create_session")
	defer sp.End()
	sess, err := buildSession(cfg)
	if err != nil {
		return "", err
	}
	s.maybeSweep()
	now := s.now()
	s.mu.Lock()
	s.nextID++
	nextID := s.nextID
	id := fmt.Sprintf("s%08x", s.rng.Uint64n(1<<32)^uint64(nextID))
	s.mu.Unlock()
	sess.id = id
	if cfg.TTLSeconds > 0 {
		sess.deadline = now.Add(time.Duration(cfg.TTLSeconds * float64(time.Second)))
	}
	// The create record and the map insert share the stripe's critical
	// section, so the WAL order and the table-visible order agree (the
	// invariant Snapshot's frontier-first capture relies on). A failed
	// append just abandons the minted id — sequence gaps are harmless,
	// replay takes the max.
	st := s.table.stripe(id)
	st.mu.Lock()
	seq, err := s.walAppendLocked(walRecord{
		Op: walOpCreate, Session: id, NextID: nextID, Config: &cfg, At: now,
	})
	if err != nil {
		st.mu.Unlock()
		return "", err
	}
	st.sessions[id] = sess
	st.mu.Unlock()
	s.metrics.created.Inc()
	s.metrics.active.Add(1)
	sp.Attr("session", id)
	if err := s.walCommitTraced(sp, id, "", seq); err != nil {
		return "", err
	}
	s.roundEvent(id, RoundSessionCreate, "", "", 0, cfg.Feature)
	s.logger().DebugContext(ctx, "transport: session created",
		"session", id, "feature", cfg.Feature, "bits", cfg.Bits,
		"thresholds", len(cfg.Thresholds), "ttl_seconds", cfg.TTLSeconds)
	return id, nil
}

// walCommitTraced commits seq, and — when tracing is armed and something
// was actually appended — stamps the commit (fsync) latency onto the span
// and the session's round timeline.
func (s *Server) walCommitTraced(sp *trace.Span, session, client string, seq uint64) error {
	if !s.tracing() || seq == 0 {
		return s.walCommit(seq)
	}
	start := time.Now()
	err := s.walCommit(seq)
	d := time.Since(start)
	sp.AttrDuration("wal_commit", d)
	s.roundEvent(session, RoundWALCommit, client, "", d, "")
	return err
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg wire.SessionConfig
	if err := s.decodeBody(w, r, &cfg); err != nil {
		return
	}
	id, err := s.CreateSession(r.Context(), cfg)
	if err != nil {
		// Validation failures are 400s; a durability failure surfaces as
		// a retryable 503 with backoff advice.
		s.writeProtoError(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, wire.CreateSessionResponse{SessionID: id})
}

// Sweep applies TTL garbage collection immediately: sessions past their
// deadline auto-finalize or expire, and ended sessions past Retention are
// dropped. Request handling runs the same sweep lazily; call this from a
// ticker (see StartGC) to bound staleness on an idle server.
func (s *Server) Sweep() {
	now := s.now()
	s.lastSweep.Store(now.UnixNano())
	s.sweep(now, true)
	// Sweep transitions are not acked to any client, but pushing them to
	// stable storage promptly keeps the recovery tail short; a commit
	// failure here only defers durability to the next commit.
	if err := s.walCommit(s.walSeq.Load()); err != nil {
		s.logger().Warn("transport: committing sweep transitions failed", "error", err)
	}
}

// StartGC runs Sweep every interval until the returned stop function is
// called.
func (s *Server) StartGC(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// maybeSweep runs the lazy deadline sweep that piggybacks on request
// handling, throttled to sweepEvery. The throttle window is claimed
// with a compare-and-swap, so under concurrent load exactly one request
// pays for the sweep and everyone else proceeds straight to its own
// work.
func (s *Server) maybeSweep() {
	if s.roleValue() != RolePrimary {
		return
	}
	now := s.now()
	last := s.lastSweep.Load()
	if now.UnixNano()-last < int64(sweepEvery) {
		return
	}
	if !s.lastSweep.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	s.sweep(now, false)
}

// sweep enforces session deadlines and retention across every stripe.
// Every sweep is counted in the registry; forced sweeps (the GC loop
// and manual Sweep calls) additionally log their outcome at debug
// level.
func (s *Server) sweep(now time.Time, force bool) {
	// Deadline and retention transitions are the primary's to decide and
	// log; a standby applies them from the replication stream. A sweep
	// here would append locally generated records into the mirrored
	// sequence space and diverge from the primary's history.
	if s.roleValue() != RolePrimary {
		return
	}
	expired, finalized, deleted := 0, 0, 0
	for _, sess := range s.table.all() {
		e, f := s.sweepDeadline(sess, now)
		expired += e
		finalized += f
		if s.retireExpiredSession(sess, now) {
			deleted++
		}
	}
	s.metrics.sweeps.With(strconv.FormatBool(force)).Inc()
	if force {
		s.logger().Debug("transport: gc sweep",
			"expired", expired, "auto_finalized", finalized, "deleted", deleted,
			"retained", s.table.size())
	}
}

// sweepDeadline applies the TTL transition to one session, returning
// how many sessions it expired and finalized (0 or 1 each).
func (s *Server) sweepDeadline(sess *session, now time.Time) (expired, finalized int) {
	if sess.deadline.IsZero() || now.Before(sess.deadline) {
		return 0, 0
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.done || sess.expired {
		return 0, 0
	}
	s.roundEvent(sess.id, RoundDeadline, "", "", 0, "")
	if sess.cfg.AutoFinalize && sess.reportCount() >= sess.cfg.MinCohort {
		if _, err := s.finalizeLocked(sess, now); err != nil {
			s.logger().Warn("transport: deadline auto-finalize failed, expiring",
				"session", sess.id, "error", err)
			if s.expireLocked(sess, now) {
				return 1, 0
			}
			return 0, 0
		}
		s.metrics.finalized.With("deadline").Inc()
		s.roundEvent(sess.id, RoundFinalize, "", "deadline", 0, "")
		s.emitEstimateLocked(sess)
		s.logger().Info("transport: session auto-finalized at deadline",
			"session", sess.id, "reports", sess.reportCount())
		return 0, 1
	}
	s.logger().Info("transport: session expired at deadline",
		"session", sess.id, "reports", sess.reportCount())
	if s.expireLocked(sess, now) {
		return 1, 0
	}
	return 0, 0
}

// retireExpiredSession drops an ended session once it ages past
// Retention, logging the delete record inside the stripe's critical
// section so WAL order and table order agree. The ended/endedAt checks
// need no re-verification under the stripe lock: both are sticky (a
// session never un-ends), so the decision cannot be invalidated between
// the locks.
func (s *Server) retireExpiredSession(sess *session, now time.Time) bool {
	if s.Retention <= 0 {
		return false
	}
	sess.mu.RLock()
	due := (sess.done || sess.expired) && !sess.endedAt.IsZero() &&
		now.Sub(sess.endedAt) >= s.Retention
	sess.mu.RUnlock()
	if !due {
		return false
	}
	st := s.table.stripe(sess.id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, live := st.sessions[sess.id]; !live {
		return false // a concurrent sweep already retired it
	}
	if _, err := s.walAppendLocked(walRecord{Op: walOpDelete, Session: sess.id, At: now}); err != nil {
		// Not logged ⇒ not applied; the next sweep retries.
		s.logger().Warn("transport: logging retention delete failed, deferring",
			"session", sess.id, "error", err)
		return false
	}
	delete(st.sessions, sess.id)
	// The round timeline follows its session out of memory.
	s.rounds.Load().delete(sess.id)
	s.metrics.deleted.Inc()
	return true
}

// expireLocked logs and applies the expiry of a live session; the caller
// holds sess.mu exclusively. A WAL append failure defers the transition
// to the next sweep (not logged ⇒ not applied) and reports false.
func (s *Server) expireLocked(sess *session, at time.Time) bool {
	if _, err := s.walAppendLocked(walRecord{Op: walOpExpire, Session: sess.id, At: at}); err != nil {
		s.logger().Warn("transport: logging session expiry failed, deferring",
			"session", sess.id, "error", err)
		return false
	}
	sess.expired = true
	sess.endedAt = at
	s.metrics.expired.Inc()
	s.metrics.active.Add(-1)
	s.roundEvent(sess.id, RoundExpire, "", "deadline", 0, "")
	return true
}

// emitEstimateLocked stamps the emitted aggregate onto the session's
// round timeline; the caller holds sess.mu and has finalized the
// session. Disabled tracing makes this a single branch.
func (s *Server) emitEstimateLocked(sess *session) {
	if !s.tracing() {
		return
	}
	detail := ""
	switch {
	case sess.result != nil:
		detail = "estimate=" + strconv.FormatFloat(sess.result.Estimate, 'g', -1, 64) +
			" reports=" + strconv.Itoa(sess.reportCount())
	case sess.tail != nil:
		detail = "thresholds=" + strconv.Itoa(len(sess.tail)) +
			" reports=" + strconv.Itoa(sess.reportCount())
	}
	s.roundEvent(sess.id, RoundEstimate, "", "", 0, detail)
}

// AssignTask picks the bit a client must report: the bit whose issued
// count is furthest below its target share — a deterministic
// low-discrepancy stream that keeps every prefix of assignments within one
// task of the exact n·p_j proportions (the QMC property of §3.1 for an
// open-ended client stream). Re-polling clients get their original task
// off the read lock, with no WAL traffic.
func (s *Server) AssignTask(ctx context.Context, sessionID, clientID string) (wire.Task, error) {
	_, sp := trace.Start(ctx, "server.assign_task")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.Attr("client", clientID)
	s.maybeSweep()
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	sess := s.table.get(sessionID)
	if sess == nil {
		return wire.Task{}, errNotFound
	}
	var tLock time.Time
	if sp != nil {
		tLock = time.Now()
		sp.AttrDuration("lock_wait", tLock.Sub(t0))
	}
	sess.mu.RLock()
	if sess.expired {
		sess.mu.RUnlock()
		return wire.Task{}, errExpired
	}
	if sess.done {
		sess.mu.RUnlock()
		return wire.Task{}, errFinal
	}
	idx, known := sess.assigned[clientID]
	sess.mu.RUnlock()
	var seq uint64
	fresh := false
	if !known {
		// First sighting of this client: take the write lock and re-run
		// the checks — another poller for the same client (or a deadline
		// transition) may have won the race between the locks. A fresh
		// assignment is acked state: the report-acceptance check
		// (rep.Bit == assigned) depends on it, so it must survive a
		// crash between this reply and the client's report.
		sess.mu.Lock()
		if sess.expired {
			sess.mu.Unlock()
			return wire.Task{}, errExpired
		}
		if sess.done {
			sess.mu.Unlock()
			return wire.Task{}, errFinal
		}
		idx, known = sess.assigned[clientID]
		if !known {
			idx = sess.nextBitLocked()
			var err error
			seq, err = s.walAppendLocked(walRecord{
				Op: walOpAssign, Session: sessionID, Client: clientID, Bit: idx,
			})
			if err != nil {
				sess.mu.Unlock()
				return wire.Task{}, err
			}
			sess.assigned[clientID] = idx
			sess.issued[idx]++
			fresh = true
		}
		sess.mu.Unlock()
		if fresh {
			s.metrics.tasks.Inc()
		}
	}
	// The task body derives from immutable session state plus idx, so it
	// assembles outside any lock.
	task := wire.Task{
		SessionID: sessionID,
		Feature:   sess.cfg.Feature,
		Bits:      sess.cfg.Bits,
		Bit:       idx,
	}
	if sess.isThreshold() {
		task.Kind = wire.TaskKindThreshold
		task.Threshold = sess.thresholds[idx]
	}
	if sess.rr != nil {
		task.Epsilon = sess.rr.Eps
	}
	if sp != nil {
		sp.AttrDuration("table_hold", time.Since(tLock))
		sp.AttrInt("bit", int64(idx))
		sp.AttrBool("fresh", fresh)
	}
	if err := s.walCommitTraced(sp, sessionID, clientID, seq); err != nil {
		return wire.Task{}, err
	}
	if fresh {
		s.roundEvent(sessionID, RoundTaskAssign, clientID, "", 0, "")
	}
	return task, nil
}

// nextBitLocked returns the bit index with the largest deficit relative
// to its target share after the tasks issued so far; the caller holds
// sess.mu exclusively.
func (sess *session) nextBitLocked() int {
	total := 0
	for _, c := range sess.issued {
		total += c
	}
	best, bestDeficit := 0, float64(-1)
	for j, p := range sess.probs {
		deficit := p*float64(total+1) - float64(sess.issued[j])
		if deficit > bestDeficit {
			best, bestDeficit = j, deficit
		}
	}
	return best
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	clientID := r.URL.Query().Get("client")
	if clientID == "" {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, errors.New("transport: missing client parameter"))
		return
	}
	task, err := s.AssignTask(r.Context(), r.PathValue("id"), clientID)
	if err != nil {
		s.writeProtoError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, task)
}

// clientKey abstracts the two spellings a client id arrives in — string
// on the JSON path, a borrowed []byte view of the frame on the binary
// path — so both codecs run the identical acceptance machine. Map
// lookups through string(key) compile to the allocation-free form for
// both instantiations; only the accept path materializes a string.
type clientKey interface{ ~string | ~[]byte }

// checkOpen reports whether the session still accepts reports.
func (sess *session) checkOpen() error {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	if sess.expired {
		return errExpired
	}
	if sess.done {
		return errFinal
	}
	return nil
}

// ingestReport runs the per-report acceptance machine for one (client,
// bit, value) submission against sess — the single code path behind
// both the JSON and binary codecs, which is what makes their
// idempotency semantics identical by construction.
//
// The retransmission cases (duplicate, conflict, every rejection)
// resolve under the read lock, so a storm of re-submissions against a
// hot session proceeds concurrently; only a first-sighting accept
// upgrades to the write lock, re-checks, logs the WAL record inside the
// exclusive section and folds the accumulators. The returned sequence
// is non-zero only for an accepted report; the caller must commit it
// before acking. err is non-nil only for terminal submission failures
// (session closed, durability).
func ingestReport[K clientKey](s *Server, sess *session, client K, bit int, value uint64) (wire.AckStatus, uint64, error) {
	sess.mu.RLock()
	if sess.expired {
		sess.mu.RUnlock()
		return 0, 0, errExpired
	}
	if sess.done {
		sess.mu.RUnlock()
		return 0, 0, errFinal
	}
	if value > 1 {
		sess.mu.RUnlock()
		return wire.AckInvalidValue, 0, nil
	}
	assigned, ok := sess.assigned[string(client)]
	if !ok {
		sess.mu.RUnlock()
		return wire.AckNoTask, 0, nil
	}
	if bit != assigned {
		sess.mu.RUnlock()
		return wire.AckWrongBit, 0, nil
	}
	if prev, seen := sess.reported[string(client)]; seen {
		sess.mu.RUnlock()
		if prev == value {
			// Already accepted — and already durable, since the original
			// accept ack waited on the WAL commit.
			return wire.AckDuplicate, 0, nil
		}
		return wire.AckConflict, 0, nil
	}
	sess.mu.RUnlock()
	// First sighting: upgrade to the write lock and re-run the racy
	// checks (a concurrent submitter or a deadline transition may have
	// won the window between the locks; assignments are permanent, so
	// the wrong-bit check needs no re-run).
	sess.mu.Lock()
	if sess.expired {
		sess.mu.Unlock()
		return 0, 0, errExpired
	}
	if sess.done {
		sess.mu.Unlock()
		return 0, 0, errFinal
	}
	cs := string(client)
	if prev, seen := sess.reported[cs]; seen {
		sess.mu.Unlock()
		if prev == value {
			return wire.AckDuplicate, 0, nil
		}
		return wire.AckConflict, 0, nil
	}
	// Log before mutating, ack only after the caller commits: an
	// accepted report the client heard about must never be lost to a
	// crash.
	seq, err := s.walAppendLocked(walRecord{
		Op: walOpReport, Session: sess.id, Client: cs, Bit: bit, Value: value,
	})
	if err != nil {
		sess.mu.Unlock()
		return 0, 0, err
	}
	sess.reported[cs] = value
	sess.foldReport(bit, value)
	sess.mu.Unlock()
	return wire.AckAccepted, seq, nil
}

// reportOutcome maps an ingest outcome onto its metric label and round
// timeline event kind. Rejections reuse the label as the timeline
// reason.
func reportOutcome(st wire.AckStatus) (label string, kind RoundKind) {
	switch st {
	case wire.AckAccepted:
		return ReportAccepted, RoundReportAccept
	case wire.AckDuplicate:
		return ReportDuplicate, RoundReportDuplicate
	case wire.AckInvalidValue:
		return ReportInvalid, RoundReportReject
	case wire.AckNoTask:
		return ReportNoTask, RoundReportReject
	case wire.AckWrongBit:
		return ReportWrongBit, RoundReportReject
	case wire.AckConflict:
		return ReportConflict, RoundReportReject
	}
	return ReportInvalid, RoundReportReject
}

// ackReason spells the human-readable rejection reason of the JSON ack
// envelope; empty for the success outcomes.
func ackReason(st wire.AckStatus) string {
	switch st {
	case wire.AckAccepted, wire.AckDuplicate:
		return ""
	case wire.AckInvalidValue:
		return "value is not a bit"
	case wire.AckNoTask:
		return "no task assigned"
	case wire.AckWrongBit:
		return "report for unassigned bit"
	case wire.AckConflict:
		return "conflicting report"
	}
	return "report rejected"
}

// SubmitReport ingests one client report, enforcing one report per client
// and rejecting reports for bits the server did not assign. Ingestion is
// idempotent: a retransmission of the exact accepted report (same client,
// bit and value — the lost-ack case) is re-acked as a duplicate; only a
// conflicting retransmission is rejected.
func (s *Server) SubmitReport(ctx context.Context, sessionID string, rep wire.Report) (wire.ReportAck, error) {
	_, sp := trace.Start(ctx, "server.submit_report")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.Attr("client", rep.ClientID)
	s.maybeSweep()
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	sess := s.table.get(sessionID)
	if sess == nil {
		return wire.ReportAck{}, errNotFound
	}
	var tLock time.Time
	if sp != nil {
		tLock = time.Now()
		sp.AttrDuration("lock_wait", tLock.Sub(t0))
	}
	if err := sess.checkOpen(); err != nil {
		return wire.ReportAck{}, err
	}
	// The per-session token bucket runs before any per-client state is
	// touched: a rate-limited submission commits nothing and is answered
	// with a retryable 429 plus precise Retry-After advice.
	if err := s.reportRate(sess, s.now(), 1); err != nil {
		sp.Attr("result", "ratelimited")
		var rl *rateLimitedError
		if errors.As(err, &rl) {
			s.roundEvent(sessionID, RoundReportRatelimit, rep.ClientID, "", rl.wait, "")
		}
		return wire.ReportAck{}, err
	}
	st, seq, err := ingestReport(s, sess, rep.ClientID, rep.Bit, rep.Value)
	if err != nil {
		return wire.ReportAck{}, err
	}
	label, kind := reportOutcome(st)
	s.metrics.reports.With(label).Inc()
	if st == wire.AckAccepted {
		if sp != nil {
			sp.AttrDuration("table_hold", time.Since(tLock))
		}
		if err := s.walCommitTraced(sp, sessionID, rep.ClientID, seq); err != nil {
			return wire.ReportAck{}, err
		}
		sp.Attr("result", label)
		s.roundEvent(sessionID, kind, rep.ClientID, "", 0, "")
		return wire.ReportAck{Accepted: true}, nil
	}
	sp.Attr("result", label)
	reason := ""
	if kind == RoundReportReject {
		reason = label
	}
	s.roundEvent(sessionID, kind, rep.ClientID, reason, 0, "")
	if st == wire.AckDuplicate {
		return wire.ReportAck{Accepted: true, Duplicate: true}, nil
	}
	return wire.ReportAck{Accepted: false, Reason: ackReason(st)}, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	// Content-Type negotiation: the binary batch codec peels off here;
	// everything else is the original JSON single-report envelope, so
	// existing clients keep working unchanged.
	if r.Header.Get("Content-Type") == wire.ReportBatchContentType {
		s.handleReportBatch(w, r)
		return
	}
	var rep wire.Report
	if err := s.decodeBody(w, r, &rep); err != nil {
		return
	}
	ack, err := s.SubmitReport(r.Context(), r.PathValue("id"), rep)
	if err != nil {
		s.writeProtoError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ack)
}

// Finalize closes the session and computes the aggregate. It fails if the
// accepted cohort is below the configured minimum. Finalizing an already
// finalized session returns the same result (idempotent).
func (s *Server) Finalize(ctx context.Context, sessionID string) (*wire.Result, error) {
	_, sp := trace.Start(ctx, "server.finalize")
	defer sp.End()
	sp.Attr("session", sessionID)
	s.maybeSweep()
	sess := s.table.get(sessionID)
	if sess == nil {
		return nil, errNotFound
	}
	sess.mu.Lock()
	if sess.expired {
		sess.mu.Unlock()
		return nil, errExpired
	}
	var seq uint64
	first := !sess.done
	if !sess.done {
		var err error
		if seq, err = s.finalizeLocked(sess, s.now()); err != nil {
			sess.mu.Unlock()
			return nil, err
		}
		s.metrics.finalized.With("api").Inc()
		s.roundEvent(sessionID, RoundFinalize, "", "api", 0, "")
		s.emitEstimateLocked(sess)
		s.logger().DebugContext(ctx, "transport: session finalized",
			"session", sessionID, "reports", sess.reportCount())
	}
	res := sess.wireResultLocked()
	sess.mu.Unlock()
	if sp != nil {
		sp.AttrInt("reports", int64(res.Reports))
		sp.AttrBool("first", first)
		if len(res.Thresholds) == 0 {
			sp.AttrFloat("estimate", res.Estimate)
		}
	}
	if err := s.walCommitTraced(sp, sessionID, "", seq); err != nil {
		return nil, err
	}
	return res, nil
}

// computeLocked derives the session's aggregate (bit estimate or
// threshold tail) from the accumulated counts; the caller holds sess.mu
// exclusively, freezing the accumulators. It is deterministic in the
// session state, so WAL replay reproduces the exact result the live
// server acked: pooling the per-bit sums/counts through core.Pool is
// arithmetically identical to aggregating the old report list, because
// sums of 0/1 bits are integer-exact in float64.
func (sess *session) computeLocked() error {
	if sess.isThreshold() {
		sess.tail = sess.tailProbsLocked()
		return nil
	}
	part := &core.Result{
		Sums:    make([]float64, len(sess.probs)),
		Counts:  make([]int, len(sess.probs)),
		Reports: sess.reportCount(),
	}
	for j := range sess.probs {
		part.Counts[j] = int(sess.bitCount[j].Load())
		part.Sums[j] = float64(sess.bitSum[j].Load())
	}
	res, err := core.Pool(core.Config{
		Bits:            sess.cfg.Bits,
		Probs:           sess.probs,
		RR:              sess.rr,
		SquashThreshold: sess.cfg.SquashThreshold,
	}, part)
	if err != nil {
		return err
	}
	sess.result = res
	return nil
}

// finalizeLocked checks the cohort, computes the aggregate, logs the
// transition and marks the session done; the caller holds sess.mu
// exclusively, has checked done/expired, and commits the returned WAL
// sequence before acking.
func (s *Server) finalizeLocked(sess *session, at time.Time) (uint64, error) {
	n := sess.reportCount()
	if n < sess.cfg.MinCohort {
		return 0, fmt.Errorf("%w: cohort %d below minimum %d", errCohort, n, sess.cfg.MinCohort)
	}
	if err := sess.computeLocked(); err != nil {
		return 0, err
	}
	seq, err := s.walAppendLocked(walRecord{Op: walOpFinalize, Session: sess.id, At: at})
	if err != nil {
		// Computed but not logged: scrap the derived state so the
		// session reads as still-open and a retry recomputes it.
		sess.result, sess.tail = nil, nil
		return 0, err
	}
	sess.done = true
	sess.endedAt = at
	s.metrics.cohort.Observe(float64(n))
	s.metrics.active.Add(-1)
	return seq, nil
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	res, err := s.Finalize(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeProtoError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// Result returns the session's current aggregate view; before Finalize it
// reports Done=false with the running report count.
func (s *Server) Result(sessionID string) (*wire.Result, error) {
	s.maybeSweep()
	sess := s.table.get(sessionID)
	if sess == nil {
		return nil, errNotFound
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.wireResultLocked(), nil
}

// tailProbsLocked aggregates a threshold session: per-threshold report
// means, unbiased under randomized response and projected onto a
// monotone tail. A threshold that received no reports is treated as
// uninformative (0.5) and resolved by the monotone projection against
// its neighbours. The caller holds sess.mu exclusively.
func (sess *session) tailProbsLocked() []float64 {
	raw := make([]float64, len(sess.thresholds))
	for i := range raw {
		c := sess.bitCount[i].Load()
		if c == 0 {
			raw[i] = 0.5
			continue
		}
		m := float64(sess.bitSum[i].Load()) / float64(c)
		if sess.rr != nil {
			m = sess.rr.UnbiasMean(m)
		}
		raw[i] = m
	}
	return quantile.MonotonizeTail(raw)
}

// wireResultLocked snapshots the session; the caller holds sess.mu (read
// or write).
func (sess *session) wireResultLocked() *wire.Result {
	out := &wire.Result{
		SessionID: sess.id,
		Feature:   sess.cfg.Feature,
		Done:      sess.done,
		Reports:   sess.reportCount(),
	}
	if sess.result != nil {
		out.Estimate = sess.result.Estimate
		out.BitMeans = append([]float64(nil), sess.result.BitMeans...)
		out.Counts = append([]int(nil), sess.result.Counts...)
		out.Sums = append([]float64(nil), sess.result.Sums...)
		out.Squashed = append([]bool(nil), sess.result.Squashed...)
	}
	if sess.tail != nil {
		out.Thresholds = append([]uint64(nil), sess.thresholds...)
		out.TailProbs = append([]float64(nil), sess.tail...)
	}
	return out
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		s.writeProtoError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleHealth reports liveness plus the session table split by state, so
// an operator (or orchestrator probe) can see at a glance whether the
// daemon is draining, idle, or carrying live aggregations.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.maybeSweep()
	active, done, expired := 0, 0, 0
	for _, sess := range s.table.all() {
		sess.mu.RLock()
		switch {
		case sess.done:
			done++
		case sess.expired:
			expired++
		default:
			active++
		}
		sess.mu.RUnlock()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": active + done + expired,
		"active":   active,
		"done":     done,
		"expired":  expired,
	})
}

// SessionSummary is one row of the session listing.
type SessionSummary struct {
	SessionID string `json:"session_id"`
	Feature   string `json:"feature"`
	Kind      string `json:"kind"`
	Bits      int    `json:"bits"`
	Reports   int    `json:"reports"`
	Done      bool   `json:"done"`
	Expired   bool   `json:"expired,omitempty"`
	// Deadline is the RFC3339 TTL deadline, empty for immortal sessions.
	Deadline string `json:"deadline,omitempty"`
}

// Sessions lists every session's summary, sorted by id.
func (s *Server) Sessions() []SessionSummary {
	s.maybeSweep()
	all := s.table.all()
	out := make([]SessionSummary, 0, len(all))
	for _, sess := range all {
		kind := wire.TaskKindBit
		if sess.isThreshold() {
			kind = wire.TaskKindThreshold
		}
		sess.mu.RLock()
		row := SessionSummary{
			SessionID: sess.id,
			Feature:   sess.cfg.Feature,
			Kind:      kind,
			Bits:      sess.cfg.Bits,
			Reports:   sess.reportCount(),
			Done:      sess.done,
			Expired:   sess.expired,
		}
		sess.mu.RUnlock()
		if !sess.deadline.IsZero() {
			row.Deadline = sess.deadline.Format(time.RFC3339)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SessionID < out[j].SessionID })
	return out
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Sessions())
}
