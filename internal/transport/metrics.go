package transport

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Server-side metric names, as scraped from /metrics. Exported as
// constants so tests and dashboards reference one spelling.
const (
	MetricHTTPRequests      = "fednum_http_requests_total"
	MetricHTTPLatency       = "fednum_http_request_seconds"
	MetricHTTPInFlight      = "fednum_http_in_flight"
	MetricSessionsCreated   = "fednum_sessions_created_total"
	MetricSessionsFinalized = "fednum_sessions_finalized_total"
	MetricSessionsExpired   = "fednum_sessions_expired_total"
	MetricSessionsDeleted   = "fednum_sessions_deleted_total"
	MetricSessionsActive    = "fednum_sessions_active"
	MetricCohortSize        = "fednum_cohort_size"
	MetricReports           = "fednum_reports_total"
	MetricTasksAssigned     = "fednum_tasks_assigned_total"
	MetricGCSweeps          = "fednum_gc_sweeps_total"
	MetricSnapshots         = "fednum_snapshots_total"
	// Overload-control instruments: queue depth and sheds are labelled by
	// endpoint class (report, task, admin, query); sheds additionally by
	// reason (queue_full, queue_timeout, abandoned).
	MetricOverloadQueueDepth = "fednum_overload_queue_depth"
	MetricOverloadShed       = "fednum_overload_shed_total"
	MetricReportRateLimited  = "fednum_report_ratelimited_total"
	MetricBodyTooLarge       = "fednum_body_too_large_total"
	// Replication instruments (server side; follower-side lag gauges live
	// in internal/replica). Role is 0=primary, 1=standby, 2=fenced.
	MetricReplRole           = "fednum_repl_role"
	MetricReplEpoch          = "fednum_repl_epoch"
	MetricReplShippedRecords = "fednum_repl_shipped_records_total"
	MetricReplShippedBytes   = "fednum_repl_shipped_bytes_total"
	MetricReplNotPrimary     = "fednum_repl_not_primary_total"
	MetricReplPromotions     = "fednum_repl_promotions_total"
	MetricReplFenced         = "fednum_repl_fenced_total"
	MetricReplApplied        = "fednum_repl_applied_records_total"
)

// Client-side metric names, recorded by RetryPolicy and Participant into
// whatever registry the caller wires in.
const (
	MetricClientAttempts      = "fednum_client_attempts_total"
	MetricClientRetries       = "fednum_client_retries_total"
	MetricClientFailures      = "fednum_client_failures_total"
	MetricClientAttemptTime   = "fednum_client_attempt_seconds"
	MetricClientDuplicateAcks = "fednum_client_duplicate_acks_total"
	MetricClientRejections    = "fednum_client_rejected_reports_total"
	// Server-driven backoff and circuit-breaker instruments.
	MetricClientRetryAfterWaits    = "fednum_client_retry_after_waits_total"
	MetricClientBreakerState       = "fednum_client_breaker_state"
	MetricClientBreakerTransitions = "fednum_client_breaker_transitions_total"
	MetricClientBreakerFastFails   = "fednum_client_breaker_fast_fails_total"
	MetricClientBreakerProbes      = "fednum_client_breaker_probes_total"
)

// Report ingestion outcomes, the values of MetricReports' result label.
const (
	ReportAccepted  = "accepted"
	ReportDuplicate = "duplicate"
	ReportConflict  = "conflict"
	ReportWrongBit  = "wrong_bit"
	ReportNoTask    = "no_task"
	ReportInvalid   = "invalid"
)

// serverMetrics bundles the server's registered instruments.
type serverMetrics struct {
	reg *obs.Registry

	requests *obs.CounterVec   // route, method, code
	latency  *obs.HistogramVec // route
	inFlight *obs.Gauge

	created   *obs.Counter
	finalized *obs.CounterVec // trigger: api | deadline
	expired   *obs.Counter
	deleted   *obs.Counter
	active    *obs.Gauge
	cohort    *obs.Histogram
	reports   *obs.CounterVec // result
	tasks     *obs.Counter
	sweeps    *obs.CounterVec // forced: true | false
	snapshots *obs.Counter

	queueDepth   *obs.GaugeVec   // class
	shed         *obs.CounterVec // class, reason
	rateLimited  *obs.Counter
	bodyRejected *obs.CounterVec // route

	replRole           *obs.Gauge
	replEpoch          *obs.Gauge
	replShippedRecords *obs.Counter
	replShippedBytes   *obs.Counter
	replNotPrimary     *obs.Counter
	replPromotions     *obs.Counter
	replFenced         *obs.Counter
	replApplied        *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		requests: reg.CounterVec(MetricHTTPRequests,
			"HTTP requests handled, by route pattern, method and status code.",
			"route", "method", "code"),
		latency: reg.HistogramVec(MetricHTTPLatency,
			"HTTP request handling latency in seconds, by route pattern.",
			obs.LatencyBuckets, "route"),
		inFlight: reg.Gauge(MetricHTTPInFlight,
			"HTTP requests currently being handled."),
		created: reg.Counter(MetricSessionsCreated,
			"Aggregation sessions created."),
		finalized: reg.CounterVec(MetricSessionsFinalized,
			"Sessions finalized, by trigger (api or deadline).", "trigger"),
		expired: reg.Counter(MetricSessionsExpired,
			"Sessions expired at their TTL deadline without finalizing."),
		deleted: reg.Counter(MetricSessionsDeleted,
			"Ended sessions dropped by retention garbage collection."),
		active: reg.Gauge(MetricSessionsActive,
			"Sessions currently accepting tasks and reports."),
		cohort: reg.Histogram(MetricCohortSize,
			"Accepted reports per finalized session.", obs.CohortBuckets),
		reports: reg.CounterVec(MetricReports,
			"Report submissions, by ingestion result.", "result"),
		tasks: reg.Counter(MetricTasksAssigned,
			"Fresh task assignments handed to clients."),
		sweeps: reg.CounterVec(MetricGCSweeps,
			"TTL garbage-collection sweeps, by whether the sweep was forced (GC loop) or piggybacked on a request.",
			"forced"),
		snapshots: reg.Counter(MetricSnapshots,
			"Session-table snapshots durably written to disk."),
		queueDepth: reg.GaugeVec(MetricOverloadQueueDepth,
			"Requests currently queued for an in-flight slot, by endpoint class.",
			"class"),
		shed: reg.CounterVec(MetricOverloadShed,
			"Requests shed by admission control, by endpoint class and reason.",
			"class", "reason"),
		rateLimited: reg.Counter(MetricReportRateLimited,
			"Report submissions rejected by the per-session rate bucket."),
		bodyRejected: reg.CounterVec(MetricBodyTooLarge,
			"Requests rejected for an oversized body, by path.", "route"),
		replRole: reg.Gauge(MetricReplRole,
			"Replication role: 0 primary, 1 standby, 2 fenced."),
		replEpoch: reg.Gauge(MetricReplEpoch,
			"Fencing epoch; promotions raise it."),
		replShippedRecords: reg.Counter(MetricReplShippedRecords,
			"WAL records shipped to followers."),
		replShippedBytes: reg.Counter(MetricReplShippedBytes,
			"WAL frame bytes shipped to followers."),
		replNotPrimary: reg.Counter(MetricReplNotPrimary,
			"Requests refused with not_primary because this node is a standby or fenced."),
		replPromotions: reg.Counter(MetricReplPromotions,
			"Times this node promoted itself to primary."),
		replFenced: reg.Counter(MetricReplFenced,
			"Times this node was fenced by a higher epoch."),
		replApplied: reg.Counter(MetricReplApplied,
			"Replicated WAL records applied to the standby session table."),
	}
}

// Registry returns the server's metrics registry, for mounting on an
// admin endpoint or for sharing with co-located components (chaos
// injectors, retry policies, privacy meters) so one scrape shows the
// whole deployment.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.NewResponseController can
// reach the connection through this wrapper — without it the overload
// middleware's per-request read/write deadlines silently never arm.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the HTTP middleware: request counts by
// route/method/status, a latency histogram per route, the in-flight gauge,
// a per-request id stamped into the context for log correlation, and —
// when SetTracer armed a recorder — a server span per request. The span
// continues the client's trace when the request carries a W3C traceparent
// header, so one trace id follows a report from the client's submit
// through every retry into this handler.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.metrics.latency.With(route)
	spanName := "server " + route
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		reqID := strconv.FormatUint(s.reqSeq.Add(1), 10)
		ctx := obs.WithRequestID(r.Context(), reqID)
		var sp *trace.Span
		if rec := s.tracer.Load(); rec != nil {
			ctx = trace.WithRecorder(ctx, rec)
			if rsc, ok := trace.Extract(r.Header); ok {
				ctx = trace.WithRemote(ctx, rsc)
			}
			ctx, sp = trace.Start(ctx, spanName)
			sp.Attr("method", r.Method)
			sp.Attr("request_id", reqID)
			if id := r.PathValue("id"); id != "" {
				sp.Attr("session", id)
			}
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		sp.AttrInt("status", int64(sw.code))
		sp.End()
		s.metrics.requests.With(route, r.Method, strconv.Itoa(sw.code)).Inc()
		lat.Observe(elapsed.Seconds())
		s.logger().DebugContext(ctx, "transport: request",
			"request_id", reqID, "route", route, "method", r.Method,
			"code", sw.code, "duration_ms", float64(elapsed.Microseconds())/1000)
	}
}

// clientMetrics bundles the client-side resilience instruments a
// RetryPolicy records into.
type clientMetrics struct {
	attempts        *obs.Counter
	retries         *obs.Counter
	failures        *obs.Counter
	seconds         *obs.Histogram
	retryAfterWaits *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	return &clientMetrics{
		attempts: reg.Counter(MetricClientAttempts,
			"Request attempts issued by clients (retries included)."),
		retries: reg.Counter(MetricClientRetries,
			"Retry attempts after a transient failure."),
		failures: reg.Counter(MetricClientFailures,
			"Requests that failed after exhausting their attempt budget (or fatally)."),
		seconds: reg.Histogram(MetricClientAttemptTime,
			"Per-attempt request latency in seconds.", obs.LatencyBuckets),
		retryAfterWaits: reg.Counter(MetricClientRetryAfterWaits,
			"Retry pauses stretched to honor a server Retry-After hint."),
	}
}
