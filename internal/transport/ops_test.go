package transport

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/transport/wire"
)

func TestHealthEndpoint(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Sessions != 1 {
		t.Fatalf("health = %+v", body)
	}
}

func TestSessionListing(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	idBit, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "lat", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	idThr, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "cdf", Bits: 8, Thresholds: []uint64{64, 128, 192},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []SessionSummary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listing has %d sessions", len(list))
	}
	byID := map[string]SessionSummary{}
	for _, s := range list {
		byID[s.SessionID] = s
	}
	if got := byID[idBit]; got.Kind != wire.TaskKindBit || got.Feature != "lat" || got.Done {
		t.Errorf("bit session summary %+v", got)
	}
	if got := byID[idThr]; got.Kind != wire.TaskKindThreshold || got.Feature != "cdf" {
		t.Errorf("threshold session summary %+v", got)
	}
}
