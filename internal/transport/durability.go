package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// errDurability marks an ack path that could not make its state
// transition durable; surfaced as 503/unavailable so clients retry.
var errDurability = errors.New("transport: write-ahead log unavailable")

// WAL record operations. One record is appended — and committed to
// stable storage — before the server acks the corresponding state
// transition, so a recovered server is always a superset of what any
// client was told.
const (
	walOpCreate   = "create"
	walOpAssign   = "assign"
	walOpReport   = "report"
	walOpFinalize = "finalize"
	walOpExpire   = "expire"
	walOpDelete   = "delete"
)

// walRecord is the JSON payload of one WAL entry. Only the fields the
// operation needs are set; everything derivable (probabilities,
// randomized-response parameters, aggregates) is recomputed on replay
// from the same deterministic code paths that produced it live.
type walRecord struct {
	Op      string `json:"op"`
	Session string `json:"session"`
	// Create fields.
	NextID int                 `json:"next_id,omitempty"`
	Config *wire.SessionConfig `json:"config,omitempty"`
	// Assign and report fields.
	Client string `json:"client,omitempty"`
	Bit    int    `json:"bit,omitempty"`
	Value  uint64 `json:"value,omitempty"`
	// At anchors time-derived state: the create time (TTL deadlines are
	// At+TTL) and the finalize/expire transition time (retention GC).
	At time.Time `json:"at,omitempty"`
}

// AttachWAL makes every acked state transition durable through w: the
// server appends a record before replying and blocks the ack on the
// WAL's commit (fsync) policy. Attach before the server handles traffic
// and before LoadSnapshot, so Restore can cross-check the snapshot
// against the WAL head.
func (s *Server) AttachWAL(w *wal.WAL) {
	s.wal.Store(w)
}

// walRef returns the attached WAL, nil when running without one.
func (s *Server) walRef() *wal.WAL { return s.wal.Load() }

// noteWALSeq advances the applied high-water sequence to seq with a
// CAS-max loop: appends run under different stripe and session locks,
// so two appenders can race to record their sequences and the larger
// one must win regardless of arrival order.
func (s *Server) noteWALSeq(seq uint64) {
	for {
		cur := s.walSeq.Load()
		if seq <= cur || s.walSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// walAppendLocked appends one record, advancing the applied sequence.
// The caller holds the lock that orders the record against the state it
// describes — the owning stripe's mutex for create/delete (so WAL order
// and table-visible order agree), the session's exclusive mutex for
// everything else. With no WAL attached it is a no-op returning
// sequence 0. The record is not yet durable — the caller must
// walCommit the sequence (outside its locks) before acking. Holding a
// lock across Append is deliberate and cheap: Append only buffers; the
// fsync happens in walCommit after the lock is released.
func (s *Server) walAppendLocked(rec walRecord) (uint64, error) {
	w := s.walRef()
	if w == nil {
		return 0, nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("%w: encoding %s record: %v", errDurability, rec.Op, err)
	}
	seq, err := w.Append(payload)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errDurability, err)
	}
	s.noteWALSeq(seq)
	return seq, nil
}

// walCommit blocks until seq is durable under the WAL's fsync policy;
// called outside the stripe and session locks so fsync latency never
// serializes the session table. A failed commit means the ack must not
// be sent.
func (s *Server) walCommit(seq uint64) error {
	w := s.walRef()
	if w == nil || seq == 0 {
		return nil
	}
	if err := w.Commit(seq); err != nil {
		return fmt.Errorf("%w: %v", errDurability, err)
	}
	return nil
}

// WALSeq returns the sequence of the last WAL record appended or
// applied — the point a snapshot cut now would cover.
func (s *Server) WALSeq() uint64 {
	return s.walSeq.Load()
}

// ReplayWAL replays the attached WAL's tail over the restored state:
// records at or below the snapshot's coverage (Snapshot.WALSeq) are
// skipped, everything after is re-applied in order. Application is
// idempotent — replaying the same log twice yields identical state — so
// a crash during recovery itself is harmless. Returns how many records
// were applied.
//
// It fails loudly when the log and snapshot cannot reconcile: a WAL
// whose oldest record is beyond the snapshot's coverage has lost
// history, and a corrupt interior record aborts recovery rather than
// silently dropping accepted reports.
//
// Replay holds s.mu for its whole run — recovery happens before the
// server takes traffic, and the big lock keeps the nextID bookkeeping
// and gauge recompute simple. applyWAL takes the stripe and session
// locks itself.
func (s *Server) ReplayWAL() (int, error) {
	w := s.walRef()
	if w == nil {
		return 0, errors.New("transport: ReplayWAL without an attached WAL")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.walSeq.Load()
	first, head := w.FirstSeq(), w.LastSeq()
	if first != 0 && first > base+1 {
		return 0, fmt.Errorf("transport: wal starts at seq %d but the snapshot covers only through %d: %d records missing",
			first, base, first-base-1)
	}
	if first == 0 && head > base {
		// The log is empty but its sequence space extends past the
		// snapshot: records 1..head were compacted away against a
		// snapshot this boot does not have.
		return 0, fmt.Errorf("transport: wal records through seq %d were compacted away but the snapshot covers only through %d: %d records missing",
			head, base, head-base)
	}
	if head < base {
		return 0, fmt.Errorf("transport: snapshot covers through wal seq %d but the wal head is %d: log truncated beyond the snapshot",
			base, head)
	}
	applied := 0
	err := w.Replay(func(seq uint64, payload []byte) error {
		if seq <= base {
			return nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("transport: decoding wal record %d: %w", seq, err)
		}
		if err := s.applyWALLocked(rec); err != nil {
			return fmt.Errorf("transport: applying wal record %d (%s %s): %w", seq, rec.Op, rec.Session, err)
		}
		s.noteWALSeq(seq)
		applied++
		return nil
	})
	if err != nil {
		return applied, err
	}
	s.recomputeActiveLocked()
	return applied, nil
}

// applyWALLocked re-applies one logged transition; the caller holds
// s.mu (replay and the replication apply path both run under it) and
// this function takes the stripe and session locks it needs. Every case
// tolerates re-application (idempotence) but treats a reference to
// state that should exist and does not as a hard error — that is
// corruption, not something to skip.
func (s *Server) applyWALLocked(rec walRecord) error {
	if rec.Op == walOpCreate {
		if rec.Config == nil {
			return errors.New("create record without a config")
		}
		sess, err := buildSession(*rec.Config)
		if err != nil {
			return err
		}
		sess.id = rec.Session
		if rec.Config.TTLSeconds > 0 {
			sess.deadline = rec.At.Add(time.Duration(rec.Config.TTLSeconds * float64(time.Second)))
		}
		st := s.table.stripe(rec.Session)
		st.mu.Lock()
		st.sessions[rec.Session] = sess
		st.mu.Unlock()
		if rec.NextID > s.nextID {
			s.nextID = rec.NextID
		}
		return nil
	}
	if rec.Op == walOpDelete {
		st := s.table.stripe(rec.Session)
		st.mu.Lock()
		delete(st.sessions, rec.Session)
		st.mu.Unlock()
		return nil
	}
	sess := s.table.get(rec.Session)
	if sess == nil {
		return errors.New("session not in replayed state")
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch rec.Op {
	case walOpAssign:
		if _, ok := sess.assigned[rec.Client]; ok {
			return nil
		}
		if rec.Bit < 0 || rec.Bit >= len(sess.issued) {
			return fmt.Errorf("assigned bit %d out of range", rec.Bit)
		}
		sess.assigned[rec.Client] = rec.Bit
		sess.issued[rec.Bit]++
	case walOpReport:
		if _, ok := sess.reported[rec.Client]; ok {
			return nil
		}
		if rec.Bit < 0 || rec.Bit >= len(sess.bitCount) {
			return fmt.Errorf("reported bit %d out of range", rec.Bit)
		}
		sess.reported[rec.Client] = rec.Value
		sess.foldReport(rec.Bit, rec.Value)
	case walOpFinalize:
		if sess.done {
			return nil
		}
		if err := sess.computeLocked(); err != nil {
			return err
		}
		sess.done = true
		sess.endedAt = rec.At
	case walOpExpire:
		if sess.expired {
			return nil
		}
		sess.expired = true
		sess.endedAt = rec.At
	default:
		return fmt.Errorf("unknown wal op %q", rec.Op)
	}
	return nil
}

// recomputeActiveLocked resets the active-sessions gauge from the table;
// the caller holds s.mu. Used after wholesale state changes (restore,
// replay) instead of tracking per-transition deltas.
func (s *Server) recomputeActiveLocked() {
	active := 0
	for _, sess := range s.table.all() {
		sess.mu.RLock()
		if !sess.done && !sess.expired {
			active++
		}
		sess.mu.RUnlock()
	}
	s.metrics.active.Set(float64(active))
}

// CompactWAL cuts a durable snapshot to path and reclaims every sealed
// WAL segment the snapshot covers. The order makes a crash at any point
// safe: the snapshot is fsynced into place before any segment is
// removed, and replay skips records the snapshot already covers, so the
// worst outcome of a mid-compaction crash is re-replaying (idempotent)
// or re-deleting already-covered segments on the next boot's compaction.
func (s *Server) CompactWAL(path string) (removed int, err error) {
	w := s.walRef()
	if w == nil {
		return 0, errors.New("transport: CompactWAL without an attached WAL")
	}
	snap := s.Snapshot()
	if err := snap.WriteFile(path); err != nil {
		return 0, err
	}
	s.metrics.snapshots.Inc()
	if err := w.Rotate(); err != nil {
		return 0, err
	}
	return w.TruncateThrough(snap.WALSeq)
}
