package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport/wire"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 2, 3, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"garbage", 0},
		{"3.5", 0}, // delay-seconds is an integer per RFC 9110
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // past date
		{"Wed, 32 Feb 2026 99:00:00 GMT", 0},               // unparseable date
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRetryDoHonorsRetryAfter checks the retry loop stretches its pause to
// the server's advice, capped by MaxDelay so a confused server cannot park
// a client forever.
func TestRetryDoHonorsRetryAfter(t *testing.T) {
	cases := []struct {
		name      string
		hint      time.Duration
		wantPause time.Duration
	}{
		{"no hint uses local backoff", 0, 10 * time.Millisecond},
		{"hint beats shorter backoff", 500 * time.Millisecond, 500 * time.Millisecond},
		{"hint capped by MaxDelay", time.Hour, 2 * time.Second},
		{"hint below backoff ignored", time.Millisecond, 10 * time.Millisecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			rp := &RetryPolicy{
				MaxAttempts: 2, BaseDelay: 10 * time.Millisecond,
				MaxDelay: 2 * time.Second, Seed: 1, Metrics: reg,
			}
			var pauses []time.Duration
			rp.sleep = func(ctx context.Context, d time.Duration) error {
				pauses = append(pauses, d)
				return nil
			}
			rp.Do(context.Background(), func(ctx context.Context) error {
				return &StatusError{
					Status: http.StatusServiceUnavailable,
					Code:   wire.CodeUnavailable, RetryAfter: c.hint,
				}
			})
			if len(pauses) != 1 || pauses[0] != c.wantPause {
				t.Fatalf("pauses = %v, want [%v]", pauses, c.wantPause)
			}
			wantWaits := uint64(0)
			if c.hint > 10*time.Millisecond {
				wantWaits = 1
			}
			if got := reg.Counter(MetricClientRetryAfterWaits, "").Value(); got != wantWaits {
				t.Fatalf("retry_after_waits = %d, want %d", got, wantWaits)
			}
		})
	}
}

// TestClientParsesRetryAfter checks doJSON surfaces the server's advice on
// a StatusError, preferring the envelope's precise seconds over the
// whole-second header.
func TestClientParsesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.Error{
			Error: "busy", Code: wire.CodeUnavailable, RetryAfter: 0.25,
		})
	}))
	defer srv.Close()
	admin := &Admin{BaseURL: srv.URL}
	_, err := admin.Result(context.Background(), "s1")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 250ms (envelope beats header)", se.RetryAfter)
	}
	if !se.Retryable() {
		t.Fatal("unavailable must be retryable")
	}
}

func testDepthGauge() *obs.Gauge {
	return obs.NewRegistry().GaugeVec("test_depth", "", "class").With("x")
}

func TestGateQueueFullAndTimeout(t *testing.T) {
	depth := testDepthGauge()
	g := newGate("report", 1, 1, 40*time.Millisecond, depth)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second acquire takes the single queue ticket and waits.
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(context.Background()) }()
	waitFor(t, func() bool { return int(depth.Value()) == 1 })
	// Third arrival finds the queue full and sheds outright.
	err := g.acquire(context.Background())
	var shed *errShed
	if !errors.As(err, &shed) || shed.reason != ShedQueueFull {
		t.Fatalf("third acquire = %v, want queue_full shed", err)
	}
	// The queued waiter times out when no slot frees.
	if err := <-queued; !errors.As(err, &shed) || shed.reason != ShedQueueTimeout {
		t.Fatalf("queued acquire = %v, want queue_timeout shed", err)
	}
	if int(depth.Value()) != 0 {
		t.Fatalf("queue depth = %v after timeout, want 0", depth.Value())
	}
	// A freed slot admits the next acquire immediately.
	g.release()
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	g.release()
}

func TestGateQueuedWaiterGetsFreedSlot(t *testing.T) {
	g := newGate("report", 1, 4, time.Second, testDepthGauge())
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- g.acquire(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	g.release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	g.release()
}

func TestGateAbandonedOnDisconnect(t *testing.T) {
	depth := testDepthGauge()
	g := newGate("report", 1, 4, time.Minute, depth)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	waitFor(t, func() bool { return int(depth.Value()) == 1 })
	cancel()
	err := <-queued
	var shed *errShed
	if !errors.As(err, &shed) || shed.reason != ShedAbandoned {
		t.Fatalf("canceled acquire = %v, want abandoned shed", err)
	}
	if int(depth.Value()) != 0 {
		t.Fatalf("queue depth = %v after abandon, want 0", depth.Value())
	}
	g.release()
}

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *gate
	for i := 0; i < 100; i++ {
		if err := g.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		g.release()
	}
}

func TestShedStateAdaptiveAdvice(t *testing.T) {
	st := newShedState(time.Second, 8*time.Second)
	t0 := time.Unix(1_700_000_000, 0)
	if got := st.advise(t0); got != time.Second {
		t.Fatalf("first advice = %v, want 1s", got)
	}
	// Sheds landing inside the advised window double the advice.
	if got := st.advise(t0.Add(500 * time.Millisecond)); got != 2*time.Second {
		t.Fatalf("advice under pressure = %v, want 2s", got)
	}
	if got := st.advise(t0.Add(2 * time.Second)); got != 4*time.Second {
		t.Fatalf("sustained pressure advice = %v, want 4s", got)
	}
	// The doubling caps at max.
	now := t0.Add(3 * time.Second)
	for i := 0; i < 10; i++ {
		if got := st.advise(now); got > 8*time.Second {
			t.Fatalf("advice %v exceeds max 8s", got)
		}
		now = now.Add(time.Millisecond)
	}
	if !st.shedding(now) {
		t.Fatal("just shed, shedding() must report true")
	}
	// A quiet spell of twice the advice resets to base.
	quiet := now.Add(17 * time.Second)
	if st.shedding(quiet) {
		t.Fatal("window elapsed, shedding() must report false")
	}
	if got := st.advise(quiet); got != time.Second {
		t.Fatalf("advice after quiet spell = %v, want base 1s", got)
	}
}

// TestServerShedsTyped503 saturates the report gate and checks a shed
// request is answered 503 with wire.CodeUnavailable, Retry-After advice in
// both header and envelope, a shed metric — and that the ungated probe
// endpoints keep answering throughout.
func TestServerShedsTyped503(t *testing.T) {
	s := NewServer(1)
	s.SetOverload(OverloadPolicy{ReportInFlight: 1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	// Saturate the class from the inside: no queue, so the next arrival
	// sheds immediately.
	g := s.overload().gates[gateReport]
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.release()

	resp, err := http.Post(srv.URL+"/v1/sessions/s1/reports", "application/json",
		strings.NewReader(`{"client_id":"c1","bit":0,"value":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || parseRetryAfter(ra, time.Now()) < time.Second {
		t.Fatalf("Retry-After header = %q, want ≥ 1s", ra)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeUnavailable {
		t.Fatalf("code = %q, want unavailable", e.Code)
	}
	if !(e.RetryAfter > 0) {
		t.Fatalf("retry_after_seconds = %v, want > 0", e.RetryAfter)
	}
	shed := s.Registry().CounterVec(MetricOverloadShed, "", "class", "reason")
	if got := shed.With(gateReport, string(ShedQueueFull)).Value(); got != 1 {
		t.Fatalf("shed{report,queue_full} = %d, want 1", got)
	}
	// Liveness and readiness are never gated: both answer while the
	// report class is saturated (readiness says 503-not-ready because the
	// server just shed, but it answers).
	for _, probe := range []string{"/healthz", "/readyz"} {
		pr, err := http.Get(srv.URL + probe)
		if err != nil {
			t.Fatalf("GET %s while saturated: %v", probe, err)
		}
		pr.Body.Close()
	}
}

// TestOversizedBodyRejected is the request-size satellite: an oversized
// report draws 413 with the typed, non-retryable CodeTooLarge and leaves
// zero partial session state behind.
func TestOversizedBodyRejected(t *testing.T) {
	s := NewServer(1)
	s.SetOverload(OverloadPolicy{MaxBodyBytes: 256})
	srv := httptest.NewServer(s)
	defer srv.Close()
	id, err := s.CreateSession(context.Background(), wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	task, err := s.AssignTask(context.Background(), id, "c1")
	if err != nil {
		t.Fatal(err)
	}

	big := fmt.Sprintf(`{"client_id":"c1","bit":%d,"value":1,"pad":%q}`,
		task.Bit, strings.Repeat("x", 4096))
	resp, err := http.Post(srv.URL+"/v1/sessions/"+id+"/reports", "application/json",
		strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeTooLarge {
		t.Fatalf("code = %q, want payload_too_large", e.Code)
	}
	se := &StatusError{Status: resp.StatusCode, Code: e.Code}
	if se.Retryable() {
		t.Fatal("payload_too_large must not be retryable: the same body would just bounce again")
	}
	// No partial state: the session took nothing from the oversized
	// request, and a well-formed retry from the same client still lands.
	if res, err := s.Result(id); err != nil || res.Reports != 0 {
		t.Fatalf("session has %d reports after a 413, want 0 (err %v)", res.Reports, err)
	}
	if got := s.Registry().CounterVec(MetricBodyTooLarge, "", "route").
		With("/v1/sessions/" + id + "/reports").Value(); got != 1 {
		t.Fatalf("body_too_large = %d, want 1", got)
	}
	ack, err := s.SubmitReport(context.Background(), id, wire.Report{ClientID: "c1", Bit: task.Bit, Value: 1})
	if err != nil || !ack.Accepted {
		t.Fatalf("well-formed retry after 413: ack=%+v err=%v", ack, err)
	}
}

// TestReportRateLimit checks the per-session token bucket: excess
// submissions draw a retryable 429 with precise Retry-After advice,
// commit no state, and succeed after the bucket refills.
func TestReportRateLimit(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(1)
	s.Now = clk.Now
	s.SetOverload(OverloadPolicy{ReportRate: 1, ReportBurst: 1})
	srv := httptest.NewServer(s)
	defer srv.Close()
	id, err := s.CreateSession(context.Background(), wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	bits := make(map[string]int)
	for _, c := range []string{"c1", "c2"} {
		task, err := s.AssignTask(context.Background(), id, c)
		if err != nil {
			t.Fatal(err)
		}
		bits[c] = task.Bit
	}
	if ack, err := s.SubmitReport(context.Background(), id, wire.Report{ClientID: "c1", Bit: bits["c1"], Value: 1}); err != nil || !ack.Accepted {
		t.Fatalf("first report: ack=%+v err=%v", ack, err)
	}
	// The bucket is empty; the next submission bounces over HTTP with the
	// full typed treatment.
	body, _ := json.Marshal(wire.Report{ClientID: "c2", Bit: bits["c2"], Value: 1})
	resp, err := http.Post(srv.URL+"/v1/sessions/"+id+"/reports", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeUnavailable {
		t.Fatalf("code = %q, want unavailable", e.Code)
	}
	if math.Abs(e.RetryAfter-1) > 0.01 {
		t.Fatalf("retry_after_seconds = %v, want ≈1 (one token at 1/s)", e.RetryAfter)
	}
	se := &StatusError{Status: resp.StatusCode, Code: e.Code}
	if !se.Retryable() {
		t.Fatal("rate-limited submissions must be retryable")
	}
	if got := s.Registry().Counter(MetricReportRateLimited, "").Value(); got != 1 {
		t.Fatalf("ratelimited = %d, want 1", got)
	}
	// Nothing committed: after the bucket refills the same client's
	// report is accepted fresh, not as a duplicate or conflict.
	clk.Advance(2 * time.Second)
	ack, err := s.SubmitReport(context.Background(), id, wire.Report{ClientID: "c2", Bit: bits["c2"], Value: 1})
	if err != nil || !ack.Accepted || ack.Duplicate {
		t.Fatalf("post-refill report: ack=%+v err=%v", ack, err)
	}
	if res, err := s.Result(id); err != nil || res.Reports != 2 {
		t.Fatalf("cohort = %d, want 2 (err %v)", res.Reports, err)
	}
}

// TestReadyzSplitsFromHealthz checks readiness flips with draining and
// shedding while liveness stays green.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	clk := newFakeClock()
	s := NewServer(1)
	s.Now = clk.Now
	s.SetOverload(OverloadPolicy{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	readyz := func() (int, map[string]any) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	if code, body := readyz(); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh server readyz = %d %v, want 200 ready", code, body)
	}
	// Shedding flips readiness until the advised window passes.
	s.shedder().advise(clk.Now())
	if code, body := readyz(); code != http.StatusServiceUnavailable || body["shedding"] != true {
		t.Fatalf("shedding readyz = %d %v, want 503 shedding", code, body)
	}
	clk.Advance(10 * time.Second)
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("readyz = %d after quiet spell, want 200", code)
	}
	// Draining flips readiness for good, but liveness stays green: the
	// daemon is healthy, it just should not receive new work.
	s.SetDraining(true)
	if code, body := readyz(); code != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("draining readyz = %d %v, want 503 draining", code, body)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while draining, want 200", resp.StatusCode)
	}
	s.SetDraining(false)
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("readyz = %d after drain lifted, want 200", code)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
