package transport

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/frand"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport/wire"
)

// entropySeed draws an unseeded-policy jitter seed from crypto/rand.
// Deliberately not the wall clock: fedlint/randsource forbids time-derived
// seeds so that nondeterminism is always an explicit choice, and clock
// seeds are guessable besides. Falls back to a fixed odd constant if the
// system entropy source is unreadable — jitter quality degrades but
// backoff behaviour stays well defined.
func entropySeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// StatusError is a non-2xx answer from the aggregation server, carrying the
// HTTP status and the machine-readable wire code so callers can branch on
// failure class instead of string-matching messages.
type StatusError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the wire.Code* constant the server set ("" when the server
	// sent no envelope, e.g. a proxy-generated 5xx).
	Code wire.Code
	// Msg is the human-readable server message.
	Msg string
	// RetryAfter is the server's backoff advice, parsed from the
	// Retry-After header (delay-seconds or HTTP-date form) or the error
	// envelope's retry_after_seconds field; zero when the server sent
	// none. RetryPolicy.Do honors it, capped by MaxDelay.
	RetryAfter time.Duration
	// Leader is the primary's base URL a not_primary answer pointed at,
	// "" when the replica did not know its leader.
	Leader string
	// Failover reports that retrying will reach a different endpoint: a
	// not_primary rejection is final against the node that sent it but
	// worth retrying when the endpoint list has somewhere else to go.
	// doJSON sets it after repointing the list.
	Failover bool
}

// Error implements error.
func (e *StatusError) Error() string {
	switch {
	case e.Code != "" && e.Msg != "":
		return fmt.Sprintf("transport: server status %d (%s): %s", e.Status, e.Code, e.Msg)
	case e.Msg != "":
		return fmt.Sprintf("transport: server status %d: %s", e.Status, e.Msg)
	default:
		return fmt.Sprintf("transport: server status %d", e.Status)
	}
}

// Retryable reports whether the failure is transient: any 5xx, request
// timeout or throttling answer, or an envelope explicitly coded
// unavailable/internal. Protocol rejections (not_found, finalized, expired,
// bad_request) are final.
func (e *StatusError) Retryable() bool {
	switch e.Code {
	case wire.CodeUnavailable, wire.CodeInternal:
		return true
	case wire.CodeNotPrimary:
		// The same node will keep refusing until promoted; retry only
		// when the next attempt can reach a different endpoint.
		return e.Failover
	case wire.CodeBadRequest, wire.CodeNotFound, wire.CodeFinalized, wire.CodeExpired,
		wire.CodeCohortTooSmall, wire.CodeTooLarge:
		return false
	}
	return e.Status >= 500 || e.Status == http.StatusRequestTimeout || e.Status == http.StatusTooManyRequests
}

// parseRetryAfter interprets a Retry-After header value relative to now:
// the delay-seconds form ("3") or the HTTP-date form ("Mon, 02 Jan 2006
// 15:04:05 GMT"). Garbage, negative delays and past dates report zero —
// backoff advice degrades to the client's own schedule, never to an
// error.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// Retryable classifies an error from a Participant or Admin call: true for
// transport-level failures (connection refused/reset, timeouts, truncated
// bodies) and retryable server statuses, false for protocol rejections and
// context cancellation.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	// Anything else a request can fail with at this layer is a transport
	// error: dial/reset/EOF from the HTTP client or a truncated JSON body.
	return true
}

// RetryPolicy is the shared client-side resilience policy: capped
// exponential backoff with jitter between attempts and an optional
// per-attempt timeout. It retries only failures Retryable reports as
// transient and respects context cancellation at every step. The zero
// value is not useful; call DefaultRetryPolicy or fill the fields.
// A nil *RetryPolicy means a single attempt with no per-try timeout.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included); values < 1
	// behave as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// retry up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = no cap).
	MaxDelay time.Duration
	// Jitter in [0,1] scales each backoff by a uniform factor in
	// [1-Jitter, 1], decorrelating synchronized client fleets.
	Jitter float64
	// PerTryTimeout bounds each individual attempt (0 = none); the
	// caller's context still bounds the whole operation.
	PerTryTimeout time.Duration
	// Seed makes the jitter sequence deterministic for tests; 0 draws a
	// fresh seed from crypto/rand at first use (never from the clock, so
	// an explicit Seed is the only path to a reproducible run).
	Seed uint64
	// Metrics, when non-nil, records client-side resilience metrics into
	// the registry: attempt and retry counters, exhausted-budget failures,
	// and a per-attempt latency histogram (see the MetricClient*
	// constants). Set before first use; policies shared across a fleet
	// aggregate naturally.
	Metrics *obs.Registry
	// Breaker, when non-nil, is consulted before every attempt and fed
	// every outcome: while it is open, attempts fail fast locally with
	// ErrBreakerOpen instead of reaching the network, and the backoff
	// schedule keeps running so a later try can ride the half-open probe.
	// Share one breaker per target server across the fleet.
	Breaker *CircuitBreaker

	mu  sync.Mutex
	rng *frand.RNG
	cm  *clientMetrics
	// sleep is stubbed in tests; nil means real time.
	sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy is a sensible edge-device policy: 5 attempts, 50ms
// base backoff doubling to a 2s cap, half-range jitter, 10s per attempt.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts:   5,
		BaseDelay:     50 * time.Millisecond,
		MaxDelay:      2 * time.Second,
		Jitter:        0.5,
		PerTryTimeout: 10 * time.Second,
	}
}

// attempts returns the effective attempt budget.
func (rp *RetryPolicy) attempts() int {
	if rp == nil || rp.MaxAttempts < 1 {
		return 1
	}
	return rp.MaxAttempts
}

// Backoff returns the pause before retry number `retry` (1-based), with
// jitter applied. Exported for tests and for callers composing their own
// loops.
func (rp *RetryPolicy) Backoff(retry int) time.Duration {
	if rp == nil || rp.BaseDelay <= 0 || retry < 1 {
		return 0
	}
	d := rp.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if rp.MaxDelay > 0 && d >= rp.MaxDelay {
			d = rp.MaxDelay
			break
		}
	}
	if rp.MaxDelay > 0 && d > rp.MaxDelay {
		d = rp.MaxDelay
	}
	if rp.Jitter > 0 {
		rp.mu.Lock()
		if rp.rng == nil {
			seed := rp.Seed
			if seed == 0 {
				seed = entropySeed()
			}
			rp.rng = frand.New(seed)
		}
		f := 1 - rp.Jitter*rp.rng.Float64()
		rp.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// metrics returns the policy's cached instrument set, or nil when no
// registry is wired in.
func (rp *RetryPolicy) metrics() *clientMetrics {
	if rp == nil || rp.Metrics == nil {
		return nil
	}
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.cm == nil {
		rp.cm = newClientMetrics(rp.Metrics)
	}
	return rp.cm
}

// Do runs attempt under the policy: each try gets PerTryTimeout, transient
// failures back off and retry, fatal failures and context cancellation
// return immediately. The last error is returned when the budget runs out.
//
// Server-driven backoff: when a failed attempt carries a Retry-After
// hint (StatusError.RetryAfter), the next pause is the larger of the
// local backoff and the hint, with the hint capped by MaxDelay so a
// confused server cannot park a client forever. With a Breaker attached,
// open-circuit tries fail fast locally (no network traffic) but still
// consume backoff pauses, so the loop naturally waits out the cooldown
// and rides the half-open probe.
func (rp *RetryPolicy) Do(ctx context.Context, attempt func(ctx context.Context) error) error {
	cm := rp.metrics()
	var err error
	for try := 0; try < rp.attempts(); try++ {
		if try > 0 {
			if cm != nil {
				cm.retries.Inc()
			}
			pause := rp.Backoff(try)
			hinted := false
			if hint := retryAfterHint(err); hint > 0 {
				if rp != nil && rp.MaxDelay > 0 && hint > rp.MaxDelay {
					hint = rp.MaxDelay
				}
				if hint > pause {
					pause = hint
					hinted = true
					if cm != nil {
						cm.retryAfterWaits.Inc()
					}
				}
			}
			// The backoff span makes retry waits visible in a trace:
			// where a slow report actually spent its time is usually
			// here, not on the wire.
			_, bsp := trace.Start(ctx, "client.backoff")
			bsp.AttrDuration("pause", pause)
			bsp.AttrBool("retry_after", hinted)
			serr := rp.sleepFor(ctx, pause)
			bsp.End()
			if serr != nil {
				return serr
			}
		}
		var breaker *CircuitBreaker
		if rp != nil {
			breaker = rp.Breaker
		}
		if !breaker.Allow() {
			_, fsp := trace.Start(ctx, "client.breaker_open")
			fsp.AttrInt("try", int64(try+1))
			fsp.End()
			err = ErrBreakerOpen
			continue
		}
		tryCtx, cancel := ctx, context.CancelFunc(func() {})
		if rp != nil && rp.PerTryTimeout > 0 {
			tryCtx, cancel = context.WithTimeout(ctx, rp.PerTryTimeout)
		}
		// Each network attempt gets its own span; doJSON injects its id
		// into the traceparent header, so the server span it produces
		// points back at exactly this attempt.
		spanCtx, asp := trace.Start(tryCtx, "client.attempt")
		asp.AttrInt("try", int64(try+1))
		if asp != nil && breaker != nil {
			asp.Attr("breaker", breaker.State())
		}
		if cm != nil {
			cm.attempts.Inc()
			start := time.Now()
			err = attempt(spanCtx)
			cm.seconds.Observe(time.Since(start).Seconds())
		} else {
			err = attempt(spanCtx)
		}
		asp.AttrBool("failed", err != nil)
		asp.End()
		// A per-try deadline firing while the parent is still live is a
		// transport timeout, not a caller cancellation: retryable, and a
		// genuine server-health signal for the breaker.
		timedOut := err != nil && tryCtx.Err() != nil && ctx.Err() == nil
		cancel()
		if err == nil {
			breaker.Record(false)
			return nil
		}
		if ctx.Err() != nil {
			// Caller cancellation: release any probe slot without a verdict.
			breaker.RecordResult(context.Canceled)
			break
		}
		transient := timedOut || Retryable(err)
		breaker.Record(transient)
		if !transient {
			break
		}
	}
	if cm != nil && err != nil {
		cm.failures.Inc()
	}
	return err
}

// retryAfterHint extracts the server's backoff advice from the previous
// attempt's error, when it carried any.
func retryAfterHint(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// sleepFor pauses for d or until the context is done.
func (rp *RetryPolicy) sleepFor(ctx context.Context, d time.Duration) error {
	if rp != nil && rp.sleep != nil {
		return rp.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
