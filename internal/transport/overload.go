package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport/wire"
)

// Endpoint classes, the values of the overload metrics' class label. Each
// class gets its own in-flight cap and wait queue so a report storm
// cannot starve task polls or the control plane (and vice versa); the
// operator endpoints (/healthz, /readyz, /metrics) are never gated.
const (
	gateReport = "report" // POST /v1/sessions/{id}/reports
	gateTask   = "task"   // GET  /v1/sessions/{id}/task
	gateAdmin  = "admin"  // POST /v1/sessions, POST .../finalize
	gateQuery  = "query"  // GET  /v1/sessions, GET .../result
)

// ShedReason classifies why admission control refused a request. It is
// a distinct type so switches over it are exhaustiveness-checked
// (fedlint exhaustenum): a dashboard or renderer that forgets a newly
// added reason fails the lint instead of silently dropping the label.
type ShedReason string

// Overload-shedding reasons, the values of the shed metric's reason label.
const (
	// ShedQueueFull marks a request refused because the class's wait
	// queue was already at capacity.
	ShedQueueFull ShedReason = "queue_full"
	// ShedQueueTimeout marks a waiter that timed out before a slot freed.
	ShedQueueTimeout ShedReason = "queue_timeout"
	// ShedAbandoned marks a waiter whose client disconnected while
	// queued.
	ShedAbandoned ShedReason = "abandoned"
)

// DefaultMaxBodyBytes caps POST bodies when OverloadPolicy.MaxBodyBytes
// is zero. A report is a few dozen bytes and a session config under a
// kilobyte, so a megabyte leaves three orders of magnitude of headroom
// while still bounding what a hostile client can make the decoder chew.
const DefaultMaxBodyBytes = 1 << 20

// OverloadPolicy configures the server's admission control. The zero
// value gates nothing (beyond the default body cap); fednumd wires the
// knobs to flags. Install with SetOverload before the server handles
// traffic.
type OverloadPolicy struct {
	// MaxBodyBytes caps every POST body; oversized requests get 413 with
	// wire.CodeTooLarge (not retryable). 0 means DefaultMaxBodyBytes;
	// negative disables the cap.
	MaxBodyBytes int64
	// ReportInFlight, TaskInFlight, AdminInFlight and QueryInFlight cap
	// concurrently handled requests per endpoint class; 0 leaves the
	// class ungated.
	ReportInFlight int
	TaskInFlight   int
	AdminInFlight  int
	QueryInFlight  int
	// QueueDepth is how many requests may wait for a slot per gated
	// class before new arrivals are shed outright; 0 sheds immediately
	// at the cap.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed; 0 means DefaultQueueWait. Waiters also give up when
	// the client disconnects, so the queue drains instead of piling up.
	QueueWait time.Duration
	// ReportRate, when positive, token-buckets report submissions per
	// session at this sustained rate (reports/second); excess gets 429
	// with wire.CodeUnavailable and precise Retry-After advice.
	ReportRate float64
	// ReportBurst is the bucket capacity; 0 means ReportRate.
	ReportBurst float64
	// RetryAfterBase and RetryAfterMax bound the adaptive Retry-After
	// advice on shed responses: the hint starts at base and doubles
	// while sheds keep arriving inside the advised window, so a
	// sustained overload pushes the fleet further away instead of
	// re-absorbing it every second. 0 means 1s / 30s.
	RetryAfterBase time.Duration
	RetryAfterMax  time.Duration
	// RequestTimeout, when positive, arms per-request read and write
	// deadlines on the connection, cutting off slow-loris request bodies
	// and stalled response readers that the listener-wide timeouts would
	// let linger.
	RequestTimeout time.Duration
}

// DefaultQueueWait bounds queued waiters when QueueWait is zero.
const DefaultQueueWait = 250 * time.Millisecond

// maxBody resolves the effective body cap; <0 disables.
func (p OverloadPolicy) maxBody() int64 {
	if p.MaxBodyBytes == 0 {
		return DefaultMaxBodyBytes
	}
	return p.MaxBodyBytes
}

// errShed is the typed admission-control failure; reason is one of the
// Shed* constants.
type errShed struct {
	class  string
	reason ShedReason
}

func (e *errShed) Error() string {
	return fmt.Sprintf("transport: %s overloaded (%s), retry later", e.class, e.reason)
}

// rateLimitedError reports a per-session report-rate rejection, carrying
// the exact wait until the bucket refills one token.
type rateLimitedError struct {
	wait time.Duration
}

func (e *rateLimitedError) Error() string {
	return fmt.Sprintf("transport: session report rate exceeded, retry in %v", e.wait)
}

// gate is one endpoint class's concurrency limiter: a slot semaphore plus
// a bounded ticket queue for waiters. Acquisition is deadline-aware —
// waiters hold a queue ticket and give up on timeout or client
// disconnect, so the queue cannot grow without bound or outlive its
// callers.
type gate struct {
	class string
	slots chan struct{}
	queue chan struct{}
	wait  time.Duration
	depth *obs.Gauge
}

func newGate(class string, inFlight, queueDepth int, wait time.Duration, depth *obs.Gauge) *gate {
	if inFlight <= 0 {
		return nil
	}
	if wait <= 0 {
		wait = DefaultQueueWait
	}
	g := &gate{
		class: class,
		slots: make(chan struct{}, inFlight),
		wait:  wait,
		depth: depth,
	}
	if queueDepth > 0 {
		g.queue = make(chan struct{}, queueDepth)
	}
	return g
}

// acquire claims a handling slot, queueing within the gate's bounds. A
// nil gate admits everything. The caller must release() after the handler
// returns when acquire reports nil.
func (g *gate) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queue == nil {
		return &errShed{class: g.class, reason: ShedQueueFull}
	}
	select {
	case g.queue <- struct{}{}:
	default:
		return &errShed{class: g.class, reason: ShedQueueFull}
	}
	g.depth.Add(1)
	defer func() {
		<-g.queue
		g.depth.Add(-1)
	}()
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-t.C:
		return &errShed{class: g.class, reason: ShedQueueTimeout}
	case <-ctx.Done():
		return &errShed{class: g.class, reason: ShedAbandoned}
	}
}

// release frees the slot claimed by a successful acquire.
func (g *gate) release() {
	if g != nil {
		<-g.slots
	}
}

// shedState computes the adaptive Retry-After advice. Sheds landing
// inside the currently advised window double the advice (the fleet is
// not backing off enough); a quiet spell of twice the advice resets it.
type shedState struct {
	base, max time.Duration

	mu       sync.Mutex
	hint     time.Duration
	lastShed time.Time
}

func newShedState(base, max time.Duration) *shedState {
	if base <= 0 {
		base = time.Second
	}
	if max < base {
		max = 30 * time.Second
		if max < base {
			max = base
		}
	}
	return &shedState{base: base, max: max}
}

// advise records one shed at now and returns the backoff the client
// should be told.
func (st *shedState) advise(now time.Time) time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case st.hint == 0 || now.Sub(st.lastShed) > 2*st.hint:
		st.hint = st.base
	case now.Sub(st.lastShed) <= st.hint:
		st.hint *= 2
		if st.hint > st.max {
			st.hint = st.max
		}
	}
	st.lastShed = now
	return st.hint
}

// shedding reports whether the server shed recently enough that a
// fronting router should drain traffic away (the advised window has not
// yet elapsed since the last shed).
func (st *shedState) shedding(now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.lastShed.IsZero() && now.Sub(st.lastShed) <= st.hint
}

// overloadState is the installed admission-control plane: the policy and
// its per-class gates.
type overloadState struct {
	policy OverloadPolicy
	gates  map[string]*gate
}

// SetOverload installs the admission-control policy: per-class in-flight
// gates, body caps, per-session report-rate buckets, Retry-After bounds
// and per-request deadlines. Call before the server handles traffic;
// installing a zero policy removes all gating but keeps the default body
// cap.
func (s *Server) SetOverload(p OverloadPolicy) {
	ov := &overloadState{policy: p, gates: make(map[string]*gate)}
	for _, c := range []struct {
		class string
		cap   int
	}{
		{gateReport, p.ReportInFlight},
		{gateTask, p.TaskInFlight},
		{gateAdmin, p.AdminInFlight},
		{gateQuery, p.QueryInFlight},
	} {
		if g := newGate(c.class, c.cap, p.QueueDepth, p.QueueWait, s.metrics.queueDepth.With(c.class)); g != nil {
			ov.gates[c.class] = g
		}
	}
	s.shed = newShedState(p.RetryAfterBase, p.RetryAfterMax)
	s.ovl.Store(ov)
}

// overload returns the installed state, nil when SetOverload was never
// called.
func (s *Server) overload() *overloadState {
	return s.ovl.Load()
}

// SetDraining flips the readiness drain flag: while true, GET /readyz
// answers 503 so a fronting router stops routing new work here, without
// affecting in-flight traffic or liveness. fednumd sets it at the start
// of graceful shutdown.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
}

// gated wraps a protocol handler with the admission-control middleware:
// per-request connection deadlines, then the class gate. Shed requests
// are answered 503 + CodeUnavailable with adaptive Retry-After advice
// and never reach the handler.
func (s *Server) gated(class string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Role first, before any gate or queue: a standby or fenced node
		// refuses client traffic outright (one atomic load on the hot
		// path), pointing the caller at the leader. This is the fencing
		// teeth — a deposed primary cannot ack a late report.
		if s.roleValue() != RolePrimary {
			s.writeNotPrimary(w)
			return
		}
		ov := s.overload()
		if ov == nil {
			h(w, r)
			return
		}
		if d := ov.policy.RequestTimeout; d > 0 {
			// Connection deadlines take wall-clock time; errors are
			// ignored because some ResponseWriters (test recorders,
			// HTTP/2 under some configs) do not support them, and the
			// listener-wide timeouts still apply there.
			rc := http.NewResponseController(w)
			deadline := time.Now().Add(d)
			_ = rc.SetReadDeadline(deadline)
			_ = rc.SetWriteDeadline(deadline)
		}
		g := ov.gates[class]
		// The admission span measures only the gate wait (plus shed
		// outcome); it ends before the handler runs so handler-side spans
		// stay children of the request span, not of the wait.
		_, sp := trace.Start(r.Context(), "server.admit")
		sp.Attr("class", class)
		err := g.acquire(r.Context())
		reason := ShedReason("")
		if err != nil {
			var shed *errShed
			reason = ShedQueueFull
			if errors.As(err, &shed) {
				reason = shed.reason
			}
			sp.Attr("shed", string(reason))
		}
		sp.End()
		if err != nil {
			s.metrics.shed.With(class, string(reason)).Inc()
			s.roundEvent(r.PathValue("id"), RoundShed, "", string(reason), 0, class)
			s.writeUnavailable(w, http.StatusServiceUnavailable, wire.CodeUnavailable,
				err, s.shedder().advise(s.now()))
			return
		}
		defer g.release()
		h(w, r)
	}
}

// shedder returns the Retry-After advisor, defaulting bounds when no
// policy was installed (durability 503s advise too).
func (s *Server) shedder() *shedState {
	s.shedOnce.Do(func() {
		if s.shed == nil {
			s.shed = newShedState(0, 0)
		}
	})
	return s.shed
}

// writeUnavailable answers a retryable rejection: Retry-After advice goes
// out both as the HTTP header (whole seconds, rounded up, minimum 1) and
// as the envelope's precise retry_after_seconds field.
func (s *Server) writeUnavailable(w http.ResponseWriter, status int, code wire.Code, err error, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, status, wire.Error{
		Error: err.Error(), Code: code, RetryAfter: retryAfter.Seconds(),
	})
}

// writeProtoError maps a protocol error onto the wire: retryable
// unavailable/rate-limit answers carry Retry-After advice, everything
// else is a plain typed envelope.
func (s *Server) writeProtoError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	var rl *rateLimitedError
	switch {
	case errors.As(err, &rl):
		s.metrics.rateLimited.Inc()
		s.writeUnavailable(w, status, code, err, rl.wait)
	case code == wire.CodeUnavailable:
		s.writeUnavailable(w, status, code, err, s.shedder().advise(s.now()))
	default:
		s.writeError(w, status, code, err)
	}
}

// decodeBody decodes a capped JSON request body into v. An oversized body
// is a typed, non-retryable protocol error (413, CodeTooLarge); malformed
// JSON is a plain bad request. The cap applies before any session state
// is touched, so an oversized request leaves nothing behind.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	limit := int64(DefaultMaxBodyBytes)
	if ov := s.overload(); ov != nil {
		limit = ov.policy.maxBody()
	}
	if limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.bodyRejected.With(r.URL.Path).Inc()
			s.writeError(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				fmt.Errorf("transport: request body over %d bytes", mbe.Limit))
			return err
		}
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return err
	}
	return nil
}

// reportRate enforces the per-session report token bucket for a
// submission carrying n reports, under the session's leaf rateMu (never
// the table or session locks, so rate accounting cannot serialize the
// acceptance machine). It returns nil when the submission may proceed
// (n tokens consumed) and a *rateLimitedError carrying the exact refill
// wait otherwise. With no policy or a zero rate it admits everything.
//
// Batch semantics: a batch is admitted when the bucket holds
// min(n, burst) tokens — requiring the full n would permanently starve
// batches larger than the burst — and then charged the full n, driving
// the bucket into bounded debt so the sustained rate still converges to
// ReportRate. With n=1 this is exactly the old single-report bucket.
func (s *Server) reportRate(sess *session, now time.Time, n float64) error {
	ov := s.overload()
	if ov == nil || ov.policy.ReportRate <= 0 {
		return nil
	}
	rate, burst := ov.policy.ReportRate, ov.policy.ReportBurst
	if burst <= 0 {
		burst = rate
	}
	need := n
	if need > burst {
		need = burst
	}
	if need < 1 {
		need = 1
	}
	sess.rateMu.Lock()
	defer sess.rateMu.Unlock()
	if sess.bucketLast.IsZero() {
		sess.bucketTokens = burst
	} else if dt := now.Sub(sess.bucketLast).Seconds(); dt > 0 {
		sess.bucketTokens += dt * rate
		if sess.bucketTokens > burst {
			sess.bucketTokens = burst
		}
	}
	sess.bucketLast = now
	if sess.bucketTokens >= need {
		sess.bucketTokens -= n
		return nil
	}
	wait := time.Duration((need - sess.bucketTokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return &rateLimitedError{wait: wait}
}

// handleReady is the readiness probe: 200 while the daemon should keep
// receiving traffic, 503 while it is draining (SetDraining) or actively
// shedding load, with the state spelled out so a fronting router can
// tell "back off" from "dead". Liveness stays on /healthz.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	now := s.now()
	draining := s.draining.Load()
	shedding := s.shedder().shedding(now)
	queued := 0
	if ov := s.overload(); ov != nil {
		for _, g := range ov.gates {
			if g != nil && g.queue != nil {
				queued += len(g.queue)
			}
		}
	}
	// A standby is healthy but not ready: load balancers must not route
	// client traffic to a node that will 421 every request.
	role := s.roleValue()
	body := map[string]any{
		"ready":    !draining && !shedding && role == RolePrimary,
		"draining": draining,
		"shedding": shedding,
		"queued":   queued,
		"role":     role.String(),
	}
	status := http.StatusOK
	if draining || shedding || role != RolePrimary {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, body)
}
