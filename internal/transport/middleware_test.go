package transport

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Every ResponseWriter wrapper in this package must expose Unwrap, or
// http.ResponseController calls made deeper in the middleware chain
// silently stop reaching the connection. Compile-time check for the one
// wrapper we have today; TestResponseWriterWrappersUnwrap audits the
// source for any future ones.
var _ interface{ Unwrap() http.ResponseWriter } = (*statusWriter)(nil)

// TestResponseWriterWrappersUnwrap parses the package source and fails if
// any struct embedding http.ResponseWriter lacks an Unwrap method — the
// regression that would disarm the overload middleware's per-request
// deadlines for every wrapper added above it in the chain.
func TestResponseWriterWrappersUnwrap(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wrappers := map[string]bool{} // type name -> has Unwrap
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if len(field.Names) != 0 {
							continue // named field, not an embedding
						}
						if sel, ok := field.Type.(*ast.SelectorExpr); ok {
							if x, ok := sel.X.(*ast.Ident); ok && x.Name == "http" && sel.Sel.Name == "ResponseWriter" {
								if _, seen := wrappers[ts.Name.Name]; !seen {
									wrappers[ts.Name.Name] = false
								}
							}
						}
					}
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Name.Name != "Unwrap" {
					continue
				}
				recv := fd.Recv.List[0].Type
				if star, ok := recv.(*ast.StarExpr); ok {
					recv = star.X
				}
				if id, ok := recv.(*ast.Ident); ok {
					if _, isWrapper := wrappers[id.Name]; isWrapper {
						wrappers[id.Name] = true
					}
				}
			}
		}
	}
	if len(wrappers) == 0 {
		t.Fatal("found no ResponseWriter wrappers; audit is miswired")
	}
	for name, hasUnwrap := range wrappers {
		if !hasUnwrap {
			t.Errorf("%s embeds http.ResponseWriter but has no Unwrap method; http.NewResponseController cannot compose through it", name)
		}
	}
}

// deadlineWriter records whether ResponseController deadline calls reached
// it through the middleware chain's wrappers.
type deadlineWriter struct {
	http.ResponseWriter
	readSet, writeSet bool
}

func (w *deadlineWriter) SetReadDeadline(time.Time) error  { w.readSet = true; return nil }
func (w *deadlineWriter) SetWriteDeadline(time.Time) error { w.writeSet = true; return nil }

// TestDeadlinesReachConnectionThroughWrappers sends a request through the
// full middleware chain (instrument -> gated -> handler) and checks the
// overload policy's per-request deadlines arrive at the underlying
// connection — i.e. statusWriter's Unwrap actually composes.
func TestDeadlinesReachConnectionThroughWrappers(t *testing.T) {
	s := NewServer(1)
	s.SetOverload(OverloadPolicy{RequestTimeout: time.Second, QueryInFlight: 4})
	dw := &deadlineWriter{ResponseWriter: httptest.NewRecorder()}
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions", nil)
	s.ServeHTTP(dw, req)
	if !dw.readSet || !dw.writeSet {
		t.Errorf("deadlines did not reach the connection through the wrapper chain: read=%v write=%v",
			dw.readSet, dw.writeSet)
	}
}
