package transport

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/trace"
	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// Role is a server's position in a replicated pair: exactly one primary
// accepts client traffic and appends to its WAL; standbys mirror that
// log into a warm session table; a fenced node is a deposed primary
// that must refuse everything until an operator re-seats it. The zero
// value is RolePrimary, so unreplicated deployments behave exactly as
// before.
type Role int32

const (
	// RolePrimary serves all client and admin traffic and ships its WAL.
	RolePrimary Role = iota
	// RoleStandby applies the primary's WAL and rejects client traffic
	// with CodeNotPrimary plus a leader hint.
	RoleStandby
	// RoleFenced is a deposed primary: a node that saw a higher fencing
	// epoch. It rejects everything a standby rejects — in particular the
	// late acks a split-brain double-count would need.
	RoleFenced
)

// String returns the wire spelling served in status bodies and headers.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	case RoleFenced:
		return "fenced"
	}
	return fmt.Sprintf("Role(%d)", int32(r))
}

// Replication wire headers: every /v1/replication answer carries the
// node's fencing epoch and role so a follower can detect a deposed or
// stale primary before applying a single frame, plus the log bounds
// that drive the lag metrics.
const (
	ReplHeaderEpoch    = "X-Fednum-Epoch"
	ReplHeaderRole     = "X-Fednum-Role"
	ReplHeaderHeadSeq  = "X-Fednum-Head-Seq"
	ReplHeaderFirstSeq = "X-Fednum-First-Seq"
	ReplHeaderWALBytes = "X-Fednum-Wal-Bytes"
)

// ReplContentType marks a binary WAL frame stream.
const ReplContentType = "application/x-fednum-wal"

// replFrameHeader is the per-record wire framing:
// [seq uint64le][length uint32le][crc32c(payload) uint32le][payload].
const replFrameHeader = 16

// replCRCTable is Castagnoli, matching the WAL's on-disk framing so the
// checksum shipped over the wire is the same one verified on disk.
var replCRCTable = crc32.MakeTable(crc32.Castagnoli)

// appendReplFrame appends one framed record to dst.
func appendReplFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [replFrameHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, replCRCTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeReplFrames streams the framed records of a replication response
// body to fn, verifying each record's length and checksum. A truncated
// or corrupt stream is an error — the follower drops the batch and
// re-pulls rather than applying bytes it cannot vouch for.
func DecodeReplFrames(r io.Reader, fn func(seq uint64, payload []byte) error) error {
	br := r
	var hdr [replFrameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("transport: truncated replication frame header: %w", err)
		}
		seq := binary.LittleEndian.Uint64(hdr[0:])
		n := binary.LittleEndian.Uint32(hdr[8:])
		crc := binary.LittleEndian.Uint32(hdr[12:])
		if n == 0 || n > wal.MaxRecordBytes {
			return fmt.Errorf("transport: replication frame %d has unframeable length %d", seq, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("transport: truncated replication frame %d: %w", seq, err)
		}
		if crc32.Checksum(payload, replCRCTable) != crc {
			return fmt.Errorf("transport: replication frame %d failed its checksum", seq)
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// roleValue loads the role with a single atomic read — cheap enough for
// every request path.
func (s *Server) roleValue() Role { return Role(s.role.Load()) }

// Role returns the server's current replication role.
func (s *Server) Role() Role { return s.roleValue() }

// SetRole sets the replication role directly — boot-time wiring for a
// daemon started with -replica-of. Runtime transitions should go
// through Promote and Demote, which also manage the fencing epoch.
func (s *Server) SetRole(r Role) {
	s.role.Store(int32(r))
	s.metrics.replRole.Set(float64(r))
}

// Epoch returns the node's fencing epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// SetEpoch raises the node's fencing epoch to e; a lower value is
// ignored (epochs only move forward, that is the whole point).
func (s *Server) SetEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			s.metrics.replEpoch.Set(float64(e))
			return
		}
	}
}

// LeaderHint returns the base URL of the node this replica believes is
// primary, "" when unknown. Served in CodeNotPrimary envelopes so a
// redirected client knows where to go next.
func (s *Server) LeaderHint() string {
	if p := s.leader.Load(); p != nil {
		return *p
	}
	return ""
}

// SetLeaderHint records where the primary lives.
func (s *Server) SetLeaderHint(u string) {
	if u == "" {
		s.leader.Store(nil)
		return
	}
	s.leader.Store(&u)
}

// SetOnPromote installs the promotion hook the HTTP promote handler
// invokes on a standby: the replica follower wires its Promote here so
// an admin-triggered promotion runs the same salvage-then-flip sequence
// as an automatic one. Without a hook the handler flips the role
// directly (epoch+1) with no salvage.
func (s *Server) SetOnPromote(fn func(context.Context) error) {
	if fn == nil {
		s.onPromote.Store(nil)
		return
	}
	s.onPromote.Store(&fn)
}

// Promote flips this node to primary under fencing epoch epoch, which
// must exceed the current one. From this instant the node accepts
// client traffic, logs its own WAL records, and serves replication to
// followers presenting the new epoch.
func (s *Server) Promote(epoch uint64) error {
	cur := s.epoch.Load()
	if epoch <= cur {
		return fmt.Errorf("transport: promote epoch %d must exceed current epoch %d", epoch, cur)
	}
	s.epoch.Store(epoch)
	s.role.Store(int32(RolePrimary))
	s.leader.Store(nil)
	s.metrics.replEpoch.Set(float64(epoch))
	s.metrics.replRole.Set(float64(RolePrimary))
	s.metrics.replPromotions.Inc()
	// Stamp the takeover into every live session's round timeline: a
	// soak reading /debug/rounds sees exactly where the failover landed
	// inside each round.
	var live []string
	for _, sess := range s.table.all() {
		sess.mu.RLock()
		if !sess.done && !sess.expired {
			live = append(live, sess.id)
		}
		sess.mu.RUnlock()
	}
	for _, id := range live {
		s.roundEvent(id, RoundPromote, "", "", 0, "epoch="+strconv.FormatUint(epoch, 10))
	}
	s.logger().Info("transport: promoted to primary", "epoch", epoch)
	return nil
}

// Demote fences this node under epoch (>= current): a primary becomes
// fenced and refuses all client traffic — the deposed-primary half of
// the split-brain guarantee — while a standby just adopts the new epoch
// and leader hint. Called by the freshly promoted primary (best effort)
// and by the wal handler when a follower presents a higher epoch.
func (s *Server) Demote(epoch uint64, leader string) error {
	for {
		cur := s.epoch.Load()
		if epoch < cur {
			return fmt.Errorf("transport: demote epoch %d is stale (current %d)", epoch, cur)
		}
		if epoch == cur || s.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	s.metrics.replEpoch.Set(float64(s.epoch.Load()))
	if leader != "" {
		s.SetLeaderHint(leader)
	}
	if s.roleValue() == RolePrimary {
		s.role.Store(int32(RoleFenced))
		s.metrics.replRole.Set(float64(RoleFenced))
		s.metrics.replFenced.Inc()
		s.logger().Warn("transport: fenced — a higher epoch exists", "epoch", epoch, "leader", leader)
	}
	return nil
}

// writeNotPrimary answers a request this node's role forbids: 421 with
// the typed CodeNotPrimary envelope and the leader hint when known, so
// a multi-endpoint client fails over in one round trip.
func (s *Server) writeNotPrimary(w http.ResponseWriter) {
	s.metrics.replNotPrimary.Inc()
	role := s.roleValue()
	s.writeJSON(w, http.StatusMisdirectedRequest, wire.Error{
		Error:  "transport: this node is not the primary (role " + role.String() + ")",
		Code:   wire.CodeNotPrimary,
		Leader: s.LeaderHint(),
	})
}

// ReplicationStatus assembles the node's replication view: role, epoch,
// applied sequence and local log bounds.
func (s *Server) ReplicationStatus() wire.ReplStatus {
	st := wire.ReplStatus{
		Role:       s.roleValue().String(),
		Epoch:      s.epoch.Load(),
		AppliedSeq: s.WALSeq(),
		Leader:     s.LeaderHint(),
	}
	if w := s.walRef(); w != nil {
		st.HeadSeq = w.LastSeq()
		st.FirstSeq = w.FirstSeq()
		st.WALBytes = w.SizeBytes()
	}
	return st
}

// replHeaders stamps the epoch/role/log-bounds headers every
// replication answer carries.
func (s *Server) replHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set(ReplHeaderEpoch, strconv.FormatUint(s.epoch.Load(), 10))
	h.Set(ReplHeaderRole, s.roleValue().String())
	if lw := s.walRef(); lw != nil {
		h.Set(ReplHeaderHeadSeq, strconv.FormatUint(lw.LastSeq(), 10))
		h.Set(ReplHeaderFirstSeq, strconv.FormatUint(lw.FirstSeq(), 10))
		h.Set(ReplHeaderWALBytes, strconv.FormatInt(lw.SizeBytes(), 10))
	}
}

// handleReplWAL ships log records: GET /v1/replication/wal?from=SEQ
// [&max=N][&max_bytes=B][&wait_ms=MS][&epoch=E]. The answer is a binary
// frame stream (see DecodeReplFrames) resumable from any sequence; a
// compacted-away from gets 410 so the follower re-bootstraps from a
// snapshot. Long-polling via wait_ms parks on the WAL tail, so a quiet
// primary costs the follower one idle request per wait window instead
// of a busy loop. Shipping reads the log outside the session lock and
// off the ack path entirely — a slow follower cannot slow an ack.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if s.roleValue() != RolePrimary {
		s.writeNotPrimary(w)
		return
	}
	lw := s.walRef()
	if lw == nil {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeUnavailable,
			errors.New("transport: replication requires an attached WAL"))
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			errors.New("transport: replication pull requires from >= 1"))
		return
	}
	// A follower presenting a higher epoch has seen a promotion this
	// node missed: this node is deposed and must fence itself before it
	// acks anything else.
	if e, err := strconv.ParseUint(q.Get("epoch"), 10, 64); err == nil && e > s.epoch.Load() {
		_ = s.Demote(e, "")
		s.writeNotPrimary(w)
		return
	}
	maxRecords := intParam(q.Get("max"), 1024, 1, 8192)
	maxBytes := int64(intParam(q.Get("max_bytes"), 4<<20, 1<<10, 64<<20))
	waitMS := intParam(q.Get("wait_ms"), 0, 0, 30_000)
	if waitMS > 0 {
		lw.WaitFor(from, time.Duration(waitMS)*time.Millisecond)
	}
	_, sp := trace.Start(r.Context(), "server.repl_ship")
	defer sp.End()
	sp.AttrInt("from", int64(from))
	recs, err := lw.ReadFrom(from, maxRecords, maxBytes)
	if err != nil {
		if errors.Is(err, wal.ErrCompacted) {
			s.replHeaders(w)
			s.writeError(w, http.StatusGone, wire.CodeNotFound,
				fmt.Errorf("transport: replication resume point compacted away: %v — re-bootstrap from the snapshot endpoint", err))
			return
		}
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err)
		return
	}
	s.replHeaders(w)
	w.Header().Set("Content-Type", ReplContentType)
	var buf []byte
	for _, rec := range recs {
		buf = appendReplFrame(buf[:0], rec.Seq, rec.Payload)
		if _, err := w.Write(buf); err != nil {
			// The follower hung up mid-stream; it will resume from its
			// applied sequence on the next pull.
			sp.Attr("result", "follower_gone")
			return
		}
		s.metrics.replShippedRecords.Inc()
		s.metrics.replShippedBytes.Add(uint64(len(buf)))
	}
	sp.AttrInt("records", int64(len(recs)))
}

// intParam parses a bounded integer query parameter, falling back to
// def when absent or malformed.
func intParam(v string, def, min, max int) int {
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	if n < min {
		return min
	}
	if n > max {
		return max
	}
	return n
}

// handleReplSnapshot serves a consistent snapshot of the whole session
// table for follower bootstrap: a standby whose resume point was
// compacted away (or that is brand new) restores this, aligns its WAL
// at the snapshot's coverage, and tails the log from there.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.roleValue() != RolePrimary {
		s.writeNotPrimary(w)
		return
	}
	snap := s.Snapshot()
	s.replHeaders(w)
	s.writeJSON(w, http.StatusOK, snap)
}

// handleReplStatus reports role/epoch/log position; served by every
// role — it is how operators read lag and how a standby's prober
// watches its primary.
func (s *Server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	s.replHeaders(w)
	s.writeJSON(w, http.StatusOK, s.ReplicationStatus())
}

// handleReplPromote is the manual promotion verb. On a standby it runs
// the installed promotion hook (salvage + role flip, see SetOnPromote)
// or, bare, bumps the epoch and flips the role. A primary answers
// idempotently; a fenced node refuses — it was deposed for a reason,
// and re-seating it requires an operator who knows the history is
// intact.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	switch s.roleValue() {
	case RolePrimary:
		s.writeJSON(w, http.StatusOK, wire.PromoteResponse{Role: RolePrimary.String(), Epoch: s.epoch.Load()})
	case RoleFenced:
		s.writeError(w, http.StatusConflict, wire.CodeBadRequest,
			errors.New("transport: a fenced node cannot be promoted"))
	default:
		_, sp := trace.Start(r.Context(), "server.promote")
		var err error
		if hook := s.onPromote.Load(); hook != nil {
			err = (*hook)(r.Context())
		} else {
			err = s.Promote(s.epoch.Load() + 1)
		}
		sp.AttrBool("failed", err != nil)
		sp.End()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err)
			return
		}
		s.writeJSON(w, http.StatusOK, wire.PromoteResponse{Role: s.roleValue().String(), Epoch: s.epoch.Load()})
	}
}

// handleReplDemote is the fencing verb: POST /v1/replication/demote
// ?epoch=E[&leader=URL]. A freshly promoted primary calls it (best
// effort) on the node it deposed so a surviving-but-partitioned old
// primary stops acking immediately instead of at its next pull.
func (s *Server) handleReplDemote(w http.ResponseWriter, r *http.Request) {
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil || epoch == 0 {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			errors.New("transport: demote requires epoch >= 1"))
		return
	}
	if err := s.Demote(epoch, r.URL.Query().Get("leader")); err != nil {
		s.writeError(w, http.StatusConflict, wire.CodeBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, wire.PromoteResponse{Role: s.roleValue().String(), Epoch: s.epoch.Load()})
}

// ApplyReplicated applies one shipped WAL record to a standby: the
// payload is appended to the local log under the primary's exact
// sequence (mirrored seq space), then applied to the session table.
// Reapplication of an already-applied sequence is a no-op and a gap is
// a hard error — the follower must resume from its applied sequence,
// never skip. Durability batches: call CommitReplicated after a batch
// rather than per record.
func (s *Server) ApplyReplicated(seq uint64, payload []byte) error {
	// The big lock serializes the whole apply stream: gap detection,
	// mirrored append and table application must observe one consistent
	// applied sequence. Apply runs on a standby, off any client ack path,
	// so the serialization costs nothing that matters.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roleValue() == RolePrimary {
		return errors.New("transport: a primary does not apply replicated records")
	}
	applied := s.walSeq.Load()
	if seq <= applied {
		return nil
	}
	if seq != applied+1 {
		return fmt.Errorf("transport: replication gap: applied through seq %d, got %d", applied, seq)
	}
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("transport: decoding replicated record %d: %w", seq, err)
	}
	if w := s.walRef(); w != nil {
		if _, err := w.AppendAt(seq, payload); err != nil {
			return fmt.Errorf("%w: %v", errDurability, err)
		}
	}
	if err := s.applyWALLocked(rec); err != nil {
		return fmt.Errorf("transport: applying replicated record %d (%s %s): %w", seq, rec.Op, rec.Session, err)
	}
	s.noteWALSeq(seq)
	s.metrics.replApplied.Inc()
	return nil
}

// CommitReplicated makes everything applied so far durable in the
// standby's own log and refreshes the active-sessions gauge — the
// once-per-batch closing bracket of a pull-and-apply cycle.
func (s *Server) CommitReplicated() error {
	s.mu.Lock()
	seq := s.walSeq.Load()
	s.recomputeActiveLocked()
	s.mu.Unlock()
	return s.walCommit(seq)
}

// BootstrapReplica initializes an empty standby from a primary
// snapshot: the local WAL is aligned so mirrored appends continue at
// exactly snap.WALSeq+1, then the session table is restored. It refuses
// to run over existing sessions or log records — re-seeding live state
// is how divergent histories are born; wipe the data dir and start
// over instead.
func (s *Server) BootstrapReplica(snap *Snapshot) error {
	s.mu.Lock()
	if n := s.table.size(); n > 0 || s.walSeq.Load() != 0 {
		applied := s.walSeq.Load()
		s.mu.Unlock()
		return fmt.Errorf("transport: BootstrapReplica over existing state (%d sessions, applied seq %d)",
			n, applied)
	}
	s.mu.Unlock()
	lw := s.walRef()
	if lw != nil && snap.WALSeq > 0 {
		if err := lw.AlignTo(snap.WALSeq); err != nil {
			return fmt.Errorf("transport: aligning standby wal at snapshot seq %d: %w", snap.WALSeq, err)
		}
	}
	return s.Restore(snap)
}
