package transport

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/transport/wire"
)

// Batched report ingestion: the binary codec's server side. A batch
// frame carries up to wire.MaxBatchReports one-bit reports for one
// session in a single POST body; every record runs the same acceptance
// machine as a JSON report (ingestReport), the whole batch is charged
// to the session's rate bucket once, and a single WAL commit covers
// every accepted record before any ack leaves the server — hundreds of
// fsync-bound round trips collapse into one.
//
// Failure semantics: per-record outcomes (duplicate, conflict, no
// task, wrong bit, bad value) are ack statuses, not errors. A failure
// of the whole request — unknown session, expired, finalized, rate
// limit, durability — is the ordinary JSON error envelope; records
// appended to the WAL before such a failure were never acked, and a
// client retry re-acks them as duplicates, so retrying the whole batch
// is always safe.

// batchBuffers is the per-request scratch of the binary path — body,
// ack statuses, response frame — pooled so a warm server ingests
// batches without per-request allocations.
type batchBuffers struct {
	body  []byte
	acks  []wire.AckStatus
	frame []byte
}

var batchBufPool = sync.Pool{
	New: func() any { return new(batchBuffers) },
}

// readAllInto reads r to EOF appending onto dst, reusing dst's capacity
// (io.ReadAll always allocates a fresh buffer; this one amortizes to
// zero through the pool).
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// batchSession runs the batch-level admission checks shared by both
// batch entry points: resolve the session, verify it is open, and
// charge the whole batch to the rate bucket in one transaction.
func (s *Server) batchSession(sessionID string, n int) (*session, error) {
	s.maybeSweep()
	sess := s.table.get(sessionID)
	if sess == nil {
		return nil, errNotFound
	}
	if err := sess.checkOpen(); err != nil {
		return nil, err
	}
	if err := s.reportRate(sess, s.now(), float64(n)); err != nil {
		return nil, err
	}
	return sess, nil
}

// batchRecord ingests one record of a batch, folding its outcome into
// the metrics and the running max sequence. Generic over the client-id
// spelling so the binary path feeds frame-borrowed []byte without
// materializing strings for the non-accept outcomes.
func batchRecord[K clientKey](s *Server, sess *session, client K, bit int, value uint64, maxSeq *uint64) (wire.AckStatus, error) {
	st, seq, err := ingestReport(s, sess, client, bit, value)
	if err != nil {
		return 0, err
	}
	if seq > *maxSeq {
		*maxSeq = seq
	}
	label, _ := reportOutcome(st)
	s.metrics.reports.With(label).Inc()
	return st, nil
}

// batchCounts tallies a batch's outcomes for the round timeline and
// trace attrs.
type batchCounts struct {
	accepted, duplicate, rejected int
}

func (c *batchCounts) add(st wire.AckStatus) {
	switch st {
	case wire.AckAccepted:
		c.accepted++
	case wire.AckDuplicate:
		c.duplicate++
	case wire.AckInvalidValue, wire.AckNoTask, wire.AckWrongBit, wire.AckConflict:
		c.rejected++
	}
}

// finishBatch commits the batch's WAL high-water mark — the one fsync
// covering every accepted record — and stamps the aggregate outcome
// onto the span and round timeline. Must run before any ack is written.
func (s *Server) finishBatch(sp *trace.Span, sessionID string, maxSeq uint64, c batchCounts) error {
	if err := s.walCommitTraced(sp, sessionID, "", maxSeq); err != nil {
		return err
	}
	if sp != nil {
		sp.AttrInt("accepted", int64(c.accepted))
		sp.AttrInt("duplicate", int64(c.duplicate))
		sp.AttrInt("rejected", int64(c.rejected))
	}
	if s.tracing() && c.accepted+c.duplicate+c.rejected > 0 {
		// One timeline event summarizes the batch; per-record events at
		// batch scale would flood the round ring buffer.
		detail := "accepted=" + strconv.Itoa(c.accepted) +
			" duplicate=" + strconv.Itoa(c.duplicate) +
			" rejected=" + strconv.Itoa(c.rejected)
		kind := RoundReportAccept
		if c.accepted == 0 && c.rejected > 0 {
			kind = RoundReportReject
		}
		s.roundEvent(sessionID, kind, "", "", 0, detail)
	}
	return nil
}

// SubmitReportBatch ingests a batch of reports in one transaction: one
// rate-bucket charge, one WAL commit, one ack status per report in
// order. It is the programmatic face of the binary batch route and runs
// the identical per-record acceptance machine as SubmitReport, so a
// session may freely interleave JSON and batched submissions.
func (s *Server) SubmitReportBatch(ctx context.Context, sessionID string, reports []wire.Report) ([]wire.AckStatus, error) {
	_, sp := trace.Start(ctx, "server.submit_batch")
	defer sp.End()
	sp.Attr("session", sessionID)
	sp.AttrInt("count", int64(len(reports)))
	if len(reports) > wire.MaxBatchReports {
		return nil, errBatchTooLarge
	}
	sess, err := s.batchSession(sessionID, len(reports))
	if err != nil {
		return nil, s.noteBatchRejected(sp, sessionID, err)
	}
	acks := make([]wire.AckStatus, 0, len(reports))
	var maxSeq uint64
	var counts batchCounts
	for _, rep := range reports {
		st, err := batchRecord(s, sess, rep.ClientID, rep.Bit, rep.Value, &maxSeq)
		if err != nil {
			return nil, err
		}
		counts.add(st)
		acks = append(acks, st)
	}
	if err := s.finishBatch(sp, sessionID, maxSeq, counts); err != nil {
		return nil, err
	}
	return acks, nil
}

// errBatchTooLarge rejects a programmatic batch over the frame cap; the
// HTTP path never sees it (the decoder enforces the cap first).
var errBatchTooLarge = errors.New("transport: batch exceeds the report cap")

// noteBatchRejected stamps a batch-level rejection onto the span and,
// for rate limits, the round timeline — mirroring the JSON path.
func (s *Server) noteBatchRejected(sp *trace.Span, sessionID string, err error) error {
	var rl *rateLimitedError
	if errors.As(err, &rl) {
		sp.Attr("result", "ratelimited")
		s.roundEvent(sessionID, RoundReportRatelimit, "", "", rl.wait, "")
	}
	return err
}

// ingestBatchFrame decodes and ingests one binary batch frame,
// appending ack statuses onto acks. Split from the HTTP handler so the
// alloc guard can drive the full server-side frame path without a
// network stack in the way.
func (s *Server) ingestBatchFrame(ctx context.Context, sessionID string, frame []byte, acks []wire.AckStatus) ([]wire.AckStatus, error) {
	_, sp := trace.Start(ctx, "server.submit_batch")
	defer sp.End()
	sp.Attr("session", sessionID)
	var br wire.BatchReader
	if err := br.Reset(frame); err != nil {
		return acks, err
	}
	sp.AttrInt("count", int64(br.Count()))
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	sess, err := s.batchSession(sessionID, br.Count())
	if err != nil {
		return acks, s.noteBatchRejected(sp, sessionID, err)
	}
	if sp != nil {
		sp.AttrDuration("lock_wait", time.Since(t0))
	}
	var tIngest time.Time
	if sp != nil {
		tIngest = time.Now()
	}
	var maxSeq uint64
	var counts batchCounts
	var v wire.ReportView
	for {
		ok, err := br.Next(&v)
		if err != nil {
			return acks, err
		}
		if !ok {
			break
		}
		st, err := batchRecord(s, sess, v.Client, v.Bit, v.Value, &maxSeq)
		if err != nil {
			return acks, err
		}
		counts.add(st)
		acks = append(acks, st)
	}
	if sp != nil {
		sp.AttrDuration("table_hold", time.Since(tIngest))
	}
	if err := s.finishBatch(sp, sessionID, maxSeq, counts); err != nil {
		return acks, err
	}
	return acks, nil
}

// handleReportBatch is the Content-Type-negotiated binary leg of
// POST /v1/sessions/{id}/reports. The body is capped at the frame
// format's own maximum — independent of the JSON body cap, which is
// sized for single-report envelopes. Framing violations are 400s with
// the typed decoder detail; batch-level protocol failures reuse the
// JSON error envelope (status codes are the contract, whatever the
// request codec); per-record outcomes come back as a binary ack frame.
func (s *Server) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	bb := batchBufPool.Get().(*batchBuffers)
	defer batchBufPool.Put(bb)
	r.Body = http.MaxBytesReader(w, r.Body, wire.MaxBatchFrameBytes)
	body, err := readAllInto(bb.body[:0], r.Body)
	bb.body = body
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.bodyRejected.With(r.URL.Path).Inc()
			s.writeError(w, http.StatusRequestEntityTooLarge, wire.CodeTooLarge,
				errors.New("transport: batch frame over the size cap"))
			return
		}
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
		return
	}
	acks, err := s.ingestBatchFrame(r.Context(), r.PathValue("id"), body, bb.acks[:0])
	bb.acks = acks
	if err != nil {
		if isFrameError(err) {
			s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err)
			return
		}
		s.writeProtoError(w, err)
		return
	}
	frame := wire.AppendAckFrame(bb.frame[:0], acks)
	bb.frame = frame
	w.Header().Set("Content-Type", wire.ReportAckContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	if _, err := w.Write(frame); err != nil {
		s.logger().Debug("transport: writing ack frame failed", "error", err)
	}
}

// isFrameError reports whether err is one of the binary codec's typed
// framing failures (a malformed request, not a protocol state error).
func isFrameError(err error) bool {
	return errors.Is(err, wire.ErrFrameMagic) ||
		errors.Is(err, wire.ErrFrameTruncated) ||
		errors.Is(err, wire.ErrFrameChecksum) ||
		errors.Is(err, wire.ErrFrameOversize) ||
		errors.Is(err, wire.ErrFrameTrailing)
}
