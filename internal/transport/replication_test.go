package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// replServer builds a server with a WAL attached in dir.
func replServer(t *testing.T, dir string, seed uint64) (*Server, *wal.WAL) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	s := NewServer(seed)
	s.AttachWAL(w)
	return s, w
}

// seedSession creates a session on s and pushes n accepted reports.
func seedSession(t *testing.T, s *Server, n int) string {
	t.Helper()
	ctx := context.Background()
	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		client := "c" + strconv.Itoa(i)
		task, err := s.AssignTask(ctx, id, client)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := s.SubmitReport(ctx, id, wire.Report{ClientID: client, Bit: task.Bit, Value: uint64(i % 2)})
		if err != nil || !ack.Accepted {
			t.Fatalf("report %d: ack=%+v err=%v", i, ack, err)
		}
	}
	return id
}

func TestRoleGatingRejectsNonPrimary(t *testing.T) {
	s := NewServer(1)
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.SetRole(RoleStandby)
	s.SetLeaderHint("http://primary.example:8080")

	body := bytes.NewBufferString(`{"feature":"f","bits":4,"gamma":1}`)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("standby create status = %d, want 421", resp.StatusCode)
	}
	var env wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Code != wire.CodeNotPrimary {
		t.Errorf("code = %q, want %q", env.Code, wire.CodeNotPrimary)
	}
	if env.Leader != "http://primary.example:8080" {
		t.Errorf("leader hint = %q, want the primary URL", env.Leader)
	}

	// readyz must go not-ready so routers stop sending traffic here.
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("standby readyz = %d, want 503", resp2.StatusCode)
	}
	var ready map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready["role"] != "standby" || ready["ready"] != false {
		t.Errorf("readyz body = %v, want role=standby ready=false", ready)
	}

	// A fenced node refuses identically.
	s.SetRole(RoleFenced)
	resp3, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMisdirectedRequest {
		t.Errorf("fenced list status = %d, want 421", resp3.StatusCode)
	}
}

func TestReplStatusAndShipEndpoints(t *testing.T) {
	s, w := replServer(t, t.TempDir(), 1)
	seedSession(t, s, 3)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Status: primary, epoch 1, head equals the WAL head.
	resp, err := http.Get(ts.URL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	var st wire.ReplStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Role != "primary" || st.Epoch != 1 {
		t.Fatalf("status = %+v, want primary epoch 1", st)
	}
	if st.HeadSeq != w.LastSeq() || st.AppliedSeq != st.HeadSeq {
		t.Fatalf("status seqs = %+v, wal head %d", st, w.LastSeq())
	}

	// Ship the whole log and decode the frame stream.
	resp, err = http.Get(ts.URL + "/v1/replication/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal pull status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ReplHeaderEpoch); got != "1" {
		t.Errorf("epoch header = %q, want 1", got)
	}
	if got := resp.Header.Get(ReplHeaderRole); got != "primary" {
		t.Errorf("role header = %q", got)
	}
	var seqs []uint64
	err = DecodeReplFrames(resp.Body, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		var rec walRecord
		return json.Unmarshal(payload, &rec)
	})
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(seqs)) != w.LastSeq() {
		t.Fatalf("shipped %d records, wal head %d", len(seqs), w.LastSeq())
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seqs not dense from 1: %v", seqs)
		}
	}

	// Past the head: 200 with an empty stream.
	resp, err = http.Get(ts.URL + "/v1/replication/wal?from=" + strconv.FormatUint(w.LastSeq()+1, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(b) != 0 {
		t.Fatalf("past-head pull = %d with %d bytes, want empty 200", resp.StatusCode, len(b))
	}

	// Compact, then ask for a pre-compaction sequence: 410 tells the
	// follower to re-bootstrap.
	if _, err := s.CompactWAL(filepath.Join(t.TempDir(), "snap.json")); err != nil {
		t.Fatal(err)
	}
	seedSession(t, s, 1) // move the head past the compaction point
	resp, err = http.Get(ts.URL + "/v1/replication/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("compacted pull status = %d, want 410", resp.StatusCode)
	}
}

func TestReplWALFencesOnHigherRequestEpoch(t *testing.T) {
	s, _ := replServer(t, t.TempDir(), 1)
	seedSession(t, s, 1)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/replication/wal?from=1&epoch=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("pull with higher epoch = %d, want 421", resp.StatusCode)
	}
	if s.Role() != RoleFenced {
		t.Errorf("role after higher-epoch pull = %v, want fenced", s.Role())
	}
	if s.Epoch() != 5 {
		t.Errorf("epoch = %d, want adopted 5", s.Epoch())
	}
	// Fenced: the promote verb refuses.
	resp, err = http.Post(ts.URL+"/v1/replication/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("promote on fenced node = %d, want 409", resp.StatusCode)
	}
}

// TestApplyReplicatedMirrorsPrimary drives the full follower apply path
// in-process: ship A's log into B, verify B mirrors state and sequence
// space, survives re-application, and rejects gaps.
func TestApplyReplicatedMirrorsPrimary(t *testing.T) {
	a, aw := replServer(t, t.TempDir(), 1)
	id := seedSession(t, a, 4)

	b, bw := replServer(t, t.TempDir(), 2)
	b.SetRole(RoleStandby)

	recs, err := aw.ReadFrom(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := b.ApplyReplicated(rec.Seq, rec.Payload); err != nil {
			t.Fatalf("apply %d: %v", rec.Seq, err)
		}
	}
	if err := b.CommitReplicated(); err != nil {
		t.Fatal(err)
	}
	if b.WALSeq() != a.WALSeq() {
		t.Fatalf("standby applied seq %d, primary %d", b.WALSeq(), a.WALSeq())
	}
	if bw.LastSeq() != aw.LastSeq() {
		t.Fatalf("standby wal head %d, primary %d — mirrored seq space broken", bw.LastSeq(), aw.LastSeq())
	}

	// Re-applying an old record is a no-op; skipping ahead is a hard error.
	if err := b.ApplyReplicated(recs[0].Seq, recs[0].Payload); err != nil {
		t.Errorf("idempotent re-apply errored: %v", err)
	}
	last := recs[len(recs)-1]
	if err := b.ApplyReplicated(last.Seq+2, last.Payload); err == nil {
		t.Error("gap apply succeeded, want error")
	}

	// Promote the standby and finalize the session it inherited: the
	// result must match what the primary would have computed.
	if err := b.Promote(2); err != nil {
		t.Fatal(err)
	}
	resB, err := b.Finalize(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Finalize(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Reports != resA.Reports || resB.Estimate != resA.Estimate {
		t.Errorf("promoted standby result %+v, primary %+v", resB, resA)
	}
}

func TestBootstrapReplicaAlignsAndResumes(t *testing.T) {
	a, aw := replServer(t, t.TempDir(), 1)
	seedSession(t, a, 2)
	snap := a.Snapshot()

	b, bw := replServer(t, t.TempDir(), 2)
	b.SetRole(RoleStandby)
	if err := b.BootstrapReplica(snap); err != nil {
		t.Fatal(err)
	}
	if b.WALSeq() != snap.WALSeq {
		t.Fatalf("bootstrapped applied seq %d, snapshot covers %d", b.WALSeq(), snap.WALSeq)
	}

	// New primary traffic after the snapshot ships incrementally.
	seedSession(t, a, 1)
	recs, err := aw.ReadFrom(snap.WALSeq+1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records after snapshot point")
	}
	for _, rec := range recs {
		if err := b.ApplyReplicated(rec.Seq, rec.Payload); err != nil {
			t.Fatalf("apply %d: %v", rec.Seq, err)
		}
	}
	if err := b.CommitReplicated(); err != nil {
		t.Fatal(err)
	}
	if bw.LastSeq() != aw.LastSeq() {
		t.Fatalf("standby head %d, primary head %d", bw.LastSeq(), aw.LastSeq())
	}

	// Bootstrap refuses to run twice — re-seeding live state is divergence.
	if err := b.BootstrapReplica(snap); err == nil {
		t.Error("second bootstrap succeeded, want refusal")
	}
}

func TestPromoteDemoteEpochRules(t *testing.T) {
	s := NewServer(1)
	s.SetRole(RoleStandby)
	if err := s.Promote(1); err == nil {
		t.Error("promote with non-advancing epoch succeeded")
	}
	if err := s.Promote(2); err != nil {
		t.Fatal(err)
	}
	if s.Role() != RolePrimary || s.Epoch() != 2 {
		t.Fatalf("after promote: role %v epoch %d", s.Role(), s.Epoch())
	}
	// A stale demote bounces; a current-or-higher one fences.
	if err := s.Demote(1, ""); err == nil {
		t.Error("stale demote succeeded")
	}
	if err := s.Demote(3, "http://new-primary:1"); err != nil {
		t.Fatal(err)
	}
	if s.Role() != RoleFenced || s.Epoch() != 3 {
		t.Fatalf("after demote: role %v epoch %d", s.Role(), s.Epoch())
	}
	if s.LeaderHint() != "http://new-primary:1" {
		t.Errorf("leader hint = %q", s.LeaderHint())
	}
	// Demote is idempotent at the same epoch.
	if err := s.Demote(3, ""); err != nil {
		t.Errorf("same-epoch demote re-delivery errored: %v", err)
	}
}

// TestStandbyDoesNotSweep pins the mirrored-sequence-space invariant: a
// standby past a session's TTL deadline must not log its own expire
// record — that transition arrives from the primary's stream.
func TestStandbyDoesNotSweep(t *testing.T) {
	a, aw := replServer(t, t.TempDir(), 1)
	ctx := context.Background()
	now := time.Unix(1000, 0)
	a.Now = func() time.Time { return now }
	if _, err := a.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1, TTLSeconds: 1}); err != nil {
		t.Fatal(err)
	}

	b, bw := replServer(t, t.TempDir(), 2)
	b.SetRole(RoleStandby)
	b.Now = a.Now
	recs, err := aw.ReadFrom(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := b.ApplyReplicated(rec.Seq, rec.Payload); err != nil {
			t.Fatal(err)
		}
	}

	// Push the shared clock past the deadline and poke the standby's
	// sweep path via a query; its WAL head must not move.
	now = now.Add(time.Hour)
	before := bw.LastSeq()
	b.Sessions()
	b.sweep(now, true)
	if bw.LastSeq() != before {
		t.Fatalf("standby sweep appended records (head %d -> %d)", before, bw.LastSeq())
	}

	// The primary does expire it, and the standby learns by replication.
	a.sweep(now, true)
	tail, err := aw.ReadFrom(before+1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) == 0 {
		t.Fatal("primary sweep logged nothing past the deadline")
	}
	for _, rec := range tail {
		if err := b.ApplyReplicated(rec.Seq, rec.Payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplicationReportAllocs extends the 0-alloc fast-path guarantee to
// a replicated deployment: with a WAL attached, the role machine active
// and replication routes mounted, the duplicate-submit path still
// allocates nothing.
func TestReplicationReportAllocs(t *testing.T) {
	s, _ := replServer(t, t.TempDir(), 1)
	ctx := context.Background()
	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	task, err := s.AssignTask(ctx, id, "c1")
	if err != nil {
		t.Fatal(err)
	}
	rep := wire.Report{ClientID: "c1", Bit: task.Bit, Value: 1}
	if _, err := s.SubmitReport(ctx, id, rep); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.SubmitReport(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("duplicate submit on a replicated server allocates %.1f/op, want 0", allocs)
	}
}
