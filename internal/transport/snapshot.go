package transport

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ldp"
	"repro/internal/transport/wire"
)

// Snapshot is a serializable image of the server's whole session table,
// written by a draining daemon and restored on the next boot so in-flight
// aggregations survive a restart. The RNG stream is not captured: task
// assignment is deficit-driven off the restored issued counts, so the
// low-discrepancy property holds across the restart; only the (secret-free)
// session-id stream reseeds.
type Snapshot struct {
	// SavedAt records when the snapshot was cut.
	SavedAt time.Time `json:"saved_at"`
	// NextID continues the session-id sequence.
	NextID int `json:"next_id"`
	// WALSeq is the write-ahead-log sequence this snapshot covers:
	// recovery replays only records after it, and compaction reclaims
	// segments at or below it. Zero on servers running without a WAL.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Sessions holds every session's full state.
	Sessions []SessionState `json:"sessions"`
}

// SessionState is one session's serializable state. Report data is
// carried as per-bit accumulators (counts and sums), mirroring the
// in-memory representation; the legacy per-report list is still
// accepted on restore for snapshots written by older builds.
type SessionState struct {
	ID       string             `json:"id"`
	Config   wire.SessionConfig `json:"config"`
	Probs    []float64          `json:"probs"`
	Issued   []int              `json:"issued"`
	Assigned map[string]int     `json:"assigned"`
	Reported map[string]uint64  `json:"reported"`
	// BitCounts/BitSums are the per-index accumulators: reports received
	// and their value sum, per bit (or per threshold).
	BitCounts []int64 `json:"bit_counts"`
	BitSums   []int64 `json:"bit_sums"`
	// Reports is the legacy per-report list; read when BitCounts is
	// absent, never written by current servers.
	Reports  []core.Report `json:"reports,omitempty"`
	Deadline time.Time     `json:"deadline"`
	Done     bool          `json:"done,omitempty"`
	Expired  bool          `json:"expired,omitempty"`
	EndedAt  time.Time     `json:"ended_at"`
	Result   *core.Result  `json:"result,omitempty"`
	Tail     []float64     `json:"tail,omitempty"`
}

// loadCounters copies a slice of atomic counters into plain ints.
func loadCounters(a []atomic.Int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i].Load()
	}
	return out
}

// Snapshot captures the current session table.
//
// Consistency under the striped locks: the WAL frontier W0 is read
// FIRST, before any session is copied. Every record with seq ≤ W0
// finished its Append inside a stripe- or session-level critical
// section that strictly precedes the copy's acquisition of that same
// lock, so its effects are in the copy; records appended after (seq >
// W0, or concurrent with the stripe walk) may or may not be captured,
// and replay re-applies them idempotently. The copy is therefore not a
// point-in-time cut of the whole table, but it is always a legal
// recovery base for WALSeq = W0 — which is all restore needs.
func (s *Server) Snapshot() *Snapshot {
	w0 := s.walSeq.Load()
	s.mu.Lock()
	nextID := s.nextID
	s.mu.Unlock()
	snap := &Snapshot{SavedAt: s.now(), NextID: nextID, WALSeq: w0}
	for _, sess := range s.table.all() {
		sess.mu.RLock()
		snap.Sessions = append(snap.Sessions, SessionState{
			ID:        sess.id,
			Config:    sess.cfg,
			Probs:     append([]float64(nil), sess.probs...),
			Issued:    append([]int(nil), sess.issued...),
			Assigned:  copyMap(sess.assigned),
			Reported:  copyMap(sess.reported),
			BitCounts: loadCounters(sess.bitCount),
			BitSums:   loadCounters(sess.bitSum),
			Deadline:  sess.deadline,
			Done:      sess.done,
			Expired:   sess.expired,
			EndedAt:   sess.endedAt,
			Result:    sess.result,
			Tail:      append([]float64(nil), sess.tail...),
		})
		sess.mu.RUnlock()
	}
	return snap
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Restore replaces the server's session table with the snapshot's,
// rebuilding the derived state (randomized-response parameters) from each
// session's config. Sessions already known to the server under the same id
// are overwritten.
//
// With a WAL attached (AttachWAL before Restore), a snapshot claiming to
// cover sequences past the WAL head is rejected: it was cut against a
// log that no longer exists, and replaying the present log under it
// would silently diverge.
func (s *Server) Restore(snap *Snapshot) error {
	restored := make(map[string]*session, len(snap.Sessions))
	for _, st := range snap.Sessions {
		if st.ID == "" {
			return fmt.Errorf("transport: snapshot session with empty id")
		}
		if len(st.Probs) == 0 || len(st.Issued) != len(st.Probs) {
			return fmt.Errorf("transport: snapshot session %s: %d issued counts for %d probs",
				st.ID, len(st.Issued), len(st.Probs))
		}
		var rr *ldp.RandomizedResponse
		if st.Config.Epsilon > 0 {
			var err error
			if rr, err = ldp.NewRandomizedResponse(st.Config.Epsilon); err != nil {
				return fmt.Errorf("transport: snapshot session %s: %w", st.ID, err)
			}
		}
		sess := &session{
			id:         st.ID,
			cfg:        st.Config,
			probs:      append([]float64(nil), st.Probs...),
			rr:         rr,
			thresholds: append([]uint64(nil), st.Config.Thresholds...),
			issued:     append([]int(nil), st.Issued...),
			assigned:   copyMap(st.Assigned),
			reported:   copyMap(st.Reported),
			bitCount:   make([]atomic.Int64, len(st.Probs)),
			bitSum:     make([]atomic.Int64, len(st.Probs)),
			deadline:   st.Deadline,
			done:       st.Done,
			expired:    st.Expired,
			endedAt:    st.EndedAt,
			result:     st.Result,
		}
		switch {
		case len(st.BitCounts) > 0:
			if len(st.BitCounts) != len(st.Probs) || len(st.BitSums) != len(st.Probs) {
				return fmt.Errorf("transport: snapshot session %s: %d counts / %d sums for %d probs",
					st.ID, len(st.BitCounts), len(st.BitSums), len(st.Probs))
			}
			var n int64
			for i := range st.BitCounts {
				sess.bitCount[i].Store(st.BitCounts[i])
				sess.bitSum[i].Store(st.BitSums[i])
				n += st.BitCounts[i]
			}
			sess.nReports.Store(n)
		case len(st.Reports) > 0:
			// Legacy snapshot: fold the per-report list into the
			// accumulators (pre-publication, so plain folding is safe).
			for _, r := range st.Reports {
				if r.Bit < 0 || r.Bit >= len(st.Probs) {
					return fmt.Errorf("transport: snapshot session %s: report bit %d out of range", st.ID, r.Bit)
				}
				sess.foldReport(r.Bit, r.Value)
			}
		}
		if sess.assigned == nil {
			sess.assigned = make(map[string]int)
		}
		if sess.reported == nil {
			sess.reported = make(map[string]uint64)
		}
		if len(st.Tail) > 0 {
			sess.tail = append([]float64(nil), st.Tail...)
		}
		restored[st.ID] = sess
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.walRef(); w != nil {
		if head := w.LastSeq(); snap.WALSeq > head {
			return fmt.Errorf("transport: snapshot covers through wal seq %d but the wal head is %d: snapshot is newer than the log",
				snap.WALSeq, head)
		}
	}
	for id, sess := range restored {
		st := s.table.stripe(id)
		st.mu.Lock()
		st.sessions[id] = sess
		st.mu.Unlock()
	}
	if snap.NextID > s.nextID {
		s.nextID = snap.NextID
	}
	s.noteWALSeq(snap.WALSeq)
	// Restored sessions changed the table wholesale; recompute the active
	// gauge exactly rather than tracking per-overwrite deltas.
	s.recomputeActiveLocked()
	return nil
}

// WriteFile writes the snapshot to path atomically AND durably: the
// temp file is fsynced before the rename and the parent directory after
// it. Rename alone orders nothing on power loss — without the first
// fsync the renamed file can surface empty, and without the second the
// rename itself can vanish.
func (snap *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("transport: encoding snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fednum-snapshot-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveSnapshot cuts a snapshot of the session table and writes it
// durably to path (see Snapshot.WriteFile).
func (s *Server) SaveSnapshot(path string) error {
	if err := s.Snapshot().WriteFile(path); err != nil {
		return err
	}
	s.metrics.snapshots.Inc()
	return nil
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot and restores
// it into the server. A missing file is not an error (first boot).
func (s *Server) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("transport: decoding snapshot %s: %w", path, err)
	}
	return s.Restore(&snap)
}
