package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Binary report framing. JSON is the protocol's lingua franca, but a
// simulated swarm submitting hundreds of one-bit reports per request
// drowns in encoder allocations and per-report HTTP round trips long
// before the bit arithmetic matters. The binary codec carries a whole
// batch of reports for one session in a single POST body:
//
//	batch  := "FNR1" | count uint32le | record*
//	record := length uint32le | crc32c(payload) uint32le | payload
//	payload:= bit uint16le | value uint8 | clientID bytes
//
// Records are length-prefixed and CRC32C (Castagnoli) framed exactly like
// the WAL's on-disk records and the replication stream, so one checksum
// discipline covers every place a report travels. The ack frame mirrors
// the batch: one status byte per submitted report, in order:
//
//	acks := "FNA1" | count uint32le | crc32c(statuses) uint32le | status*
//
// Whole-batch failures (unknown session, expired, rate-limited,
// durability) use the ordinary JSON Error envelope and HTTP status
// instead — they apply to the request, not to any single report.
//
// Decoding is defensive: a truncated frame, a corrupt checksum, an
// oversize length prefix or a count that disagrees with the content all
// fail with a typed error and never panic or read past the buffer.

// ReportBatchContentType negotiates the binary batch codec on the
// existing report route; JSON clients that never send it are unaffected.
const ReportBatchContentType = "application/x-fednum-reports"

// ReportAckContentType marks a binary ack frame response.
const ReportAckContentType = "application/x-fednum-acks"

// Framing limits. A record is a one-bit report plus a client id, so the
// caps bound what a hostile length prefix can make the decoder allocate
// or skip; the batch cap keeps one request's critical section bounded.
const (
	// MaxClientIDBytes caps the client id carried in one binary record.
	MaxClientIDBytes = 256
	// MaxReportRecordBytes is the largest legal record payload: bit (2) +
	// value (1) + client id.
	MaxReportRecordBytes = reportPayloadFixed + MaxClientIDBytes
	// MaxBatchReports caps the records in one batch frame.
	MaxBatchReports = 4096
	// MaxBatchFrameBytes is the largest legal batch frame: the header
	// plus a full batch of maximum-size records. Servers cap the request
	// body here, so the JSON body limit (sized for single reports) never
	// rejects a legal batch.
	MaxBatchFrameBytes = batchHeaderLen + MaxBatchReports*(recordHeaderLen+MaxReportRecordBytes)
)

const (
	batchHeaderLen     = 8 // magic + count
	recordHeaderLen    = 8 // length + crc
	reportPayloadFixed = 3 // bit uint16le + value uint8
	ackHeaderLen       = 12
)

// Typed framing failures; decoders wrap them with positional detail, so
// match with errors.Is.
var (
	// ErrFrameMagic marks a body that does not start with the expected
	// frame magic.
	ErrFrameMagic = errors.New("wire: bad frame magic")
	// ErrFrameTruncated marks a buffer that ends before the header, a
	// record, or the declared record count is complete.
	ErrFrameTruncated = errors.New("wire: truncated frame")
	// ErrFrameChecksum marks a record whose payload fails its CRC32C.
	ErrFrameChecksum = errors.New("wire: frame checksum mismatch")
	// ErrFrameOversize marks a length prefix or count over the framing
	// limits.
	ErrFrameOversize = errors.New("wire: frame over size limits")
	// ErrFrameTrailing marks bytes left over after the declared records.
	ErrFrameTrailing = errors.New("wire: trailing bytes after frame")
)

var (
	reportMagic = [4]byte{'F', 'N', 'R', '1'}
	ackMagic    = [4]byte{'F', 'N', 'A', '1'}
)

// crcTable is Castagnoli, matching the WAL and replication framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AckStatus is the per-report outcome byte of a binary ack frame. The
// values are wire format: renumbering breaks rolling upgrades.
type AckStatus uint8

const (
	// AckAccepted: the report was accepted and is durable.
	AckAccepted AckStatus = 0
	// AckDuplicate: retransmission of an already-accepted identical
	// report; still counts as success.
	AckDuplicate AckStatus = 1
	// AckInvalidValue: the reported value is not a bit.
	AckInvalidValue AckStatus = 2
	// AckNoTask: the client has no assignment in this session.
	AckNoTask AckStatus = 3
	// AckWrongBit: the report is for a bit the server did not assign.
	AckWrongBit AckStatus = 4
	// AckConflict: the client already reported a different value.
	AckConflict AckStatus = 5
)

// String returns the metrics/log spelling of the status.
func (a AckStatus) String() string {
	switch a {
	case AckAccepted:
		return "accepted"
	case AckDuplicate:
		return "duplicate"
	case AckInvalidValue:
		return "invalid_value"
	case AckNoTask:
		return "no_task"
	case AckWrongBit:
		return "wrong_bit"
	case AckConflict:
		return "conflict"
	}
	return fmt.Sprintf("AckStatus(%d)", uint8(a))
}

// OK reports whether the status is a success (accepted or duplicate),
// mirroring ReportAck.Accepted on the JSON path.
func (a AckStatus) OK() bool { return a == AckAccepted || a == AckDuplicate }

// ReportView is one decoded record of a batch frame. Client aliases the
// frame buffer — copy it before the buffer is reused.
type ReportView struct {
	Client []byte
	Bit    int
	Value  uint64
}

// BatchWriter builds a batch frame incrementally, reusing its buffer
// across Reset calls so a steady-state submitter allocates nothing.
type BatchWriter struct {
	buf   []byte
	count uint32
}

// Reset drops any buffered records and starts a new frame.
func (w *BatchWriter) Reset() {
	if cap(w.buf) < batchHeaderLen {
		w.buf = make([]byte, batchHeaderLen, 512)
	}
	w.buf = w.buf[:batchHeaderLen]
	copy(w.buf, reportMagic[:])
	w.count = 0
}

// Count returns the records added since Reset.
func (w *BatchWriter) Count() int { return int(w.count) }

// Add appends one report record. The value byte carries the report
// verbatim (semantic validation — value must be a bit — stays with the
// server, exactly as on the JSON path).
func (w *BatchWriter) Add(clientID string, bit int, value uint64) error {
	if len(w.buf) < batchHeaderLen {
		w.Reset()
	}
	if len(clientID) > MaxClientIDBytes {
		return fmt.Errorf("%w: client id is %d bytes (max %d)", ErrFrameOversize, len(clientID), MaxClientIDBytes)
	}
	if bit < 0 || bit > 0xffff {
		return fmt.Errorf("%w: bit %d does not fit the uint16 record field", ErrFrameOversize, bit)
	}
	if value > 0xff {
		return fmt.Errorf("%w: value %d does not fit the uint8 record field", ErrFrameOversize, value)
	}
	if w.count >= MaxBatchReports {
		return fmt.Errorf("%w: batch already holds %d records (max %d)", ErrFrameOversize, w.count, MaxBatchReports)
	}
	n := reportPayloadFixed + len(clientID)
	var hdr [recordHeaderLen + reportPayloadFixed]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	binary.LittleEndian.PutUint16(hdr[8:], uint16(bit))
	hdr[10] = byte(value)
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, clientID...)
	// CRC covers the payload (fixed fields plus client id), checksummed in
	// place so encoding a string id never copies it.
	payload := w.buf[len(w.buf)-n:]
	binary.LittleEndian.PutUint32(w.buf[len(w.buf)-n-4:], crc32.Checksum(payload, crcTable))
	w.count++
	return nil
}

// Bytes returns the finished frame; valid until the next Reset or Add.
func (w *BatchWriter) Bytes() []byte {
	if len(w.buf) < batchHeaderLen {
		w.Reset()
	}
	binary.LittleEndian.PutUint32(w.buf[4:], w.count)
	return w.buf
}

// AppendReportBatch encodes reports as one batch frame appended to dst.
func AppendReportBatch(dst []byte, reports []Report) ([]byte, error) {
	var w BatchWriter
	w.Reset()
	for _, rep := range reports {
		if err := w.Add(rep.ClientID, rep.Bit, rep.Value); err != nil {
			return dst, err
		}
	}
	return append(dst, w.Bytes()...), nil
}

// BatchReader decodes a batch frame in place with no allocation: Reset
// validates the header, Next yields records until the declared count is
// consumed. Every read is bounds-checked against the buffer, so a lying
// length prefix fails typed instead of over-reading.
type BatchReader struct {
	buf   []byte
	count int
	read  int
	off   int
}

// Reset points the reader at a frame buffer and validates its header.
func (r *BatchReader) Reset(buf []byte) error {
	r.buf, r.count, r.read, r.off = nil, 0, 0, 0
	if len(buf) < batchHeaderLen {
		return fmt.Errorf("%w: %d bytes is shorter than the batch header", ErrFrameTruncated, len(buf))
	}
	if [4]byte(buf[:4]) != reportMagic {
		return fmt.Errorf("%w: got %q, want %q", ErrFrameMagic, buf[:4], reportMagic[:])
	}
	count := binary.LittleEndian.Uint32(buf[4:])
	if count > MaxBatchReports {
		return fmt.Errorf("%w: %d records declared (max %d)", ErrFrameOversize, count, MaxBatchReports)
	}
	if int(count)*recordHeaderLen > len(buf)-batchHeaderLen {
		return fmt.Errorf("%w: %d records declared but only %d bytes follow the header",
			ErrFrameTruncated, count, len(buf)-batchHeaderLen)
	}
	r.buf = buf
	r.count = int(count)
	r.off = batchHeaderLen
	return nil
}

// Count returns the record count the frame header declares.
func (r *BatchReader) Count() int { return r.count }

// Next decodes the next record into v. It returns (false, nil) at a clean
// end of frame; any framing violation returns a typed error and poisons
// the reader until the next Reset.
func (r *BatchReader) Next(v *ReportView) (bool, error) {
	if r.read >= r.count {
		if r.off != len(r.buf) {
			return false, fmt.Errorf("%w: %d bytes after the %d declared records",
				ErrFrameTrailing, len(r.buf)-r.off, r.count)
		}
		return false, nil
	}
	if len(r.buf)-r.off < recordHeaderLen {
		return false, fmt.Errorf("%w: record %d header needs %d bytes, %d remain",
			ErrFrameTruncated, r.read, recordHeaderLen, len(r.buf)-r.off)
	}
	n := binary.LittleEndian.Uint32(r.buf[r.off:])
	crc := binary.LittleEndian.Uint32(r.buf[r.off+4:])
	if n < reportPayloadFixed || n > MaxReportRecordBytes {
		return false, fmt.Errorf("%w: record %d declares %d payload bytes (want %d..%d)",
			ErrFrameOversize, r.read, n, reportPayloadFixed, MaxReportRecordBytes)
	}
	if uint32(len(r.buf)-r.off-recordHeaderLen) < n {
		return false, fmt.Errorf("%w: record %d declares %d payload bytes, %d remain",
			ErrFrameTruncated, r.read, n, len(r.buf)-r.off-recordHeaderLen)
	}
	payload := r.buf[r.off+recordHeaderLen : r.off+recordHeaderLen+int(n)]
	if crc32.Checksum(payload, crcTable) != crc {
		return false, fmt.Errorf("%w: record %d", ErrFrameChecksum, r.read)
	}
	v.Bit = int(binary.LittleEndian.Uint16(payload))
	v.Value = uint64(payload[2])
	v.Client = payload[reportPayloadFixed:]
	r.off += recordHeaderLen + int(n)
	r.read++
	return true, nil
}

// AppendAckFrame encodes one status byte per report onto dst.
func AppendAckFrame(dst []byte, statuses []AckStatus) []byte {
	var hdr [ackHeaderLen]byte
	copy(hdr[:], ackMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(statuses)))
	dst = append(dst, hdr[:]...)
	base := len(dst) - ackHeaderLen
	for _, st := range statuses {
		dst = append(dst, byte(st))
	}
	binary.LittleEndian.PutUint32(dst[base+8:], crc32.Checksum(dst[base+ackHeaderLen:], crcTable))
	return dst
}

// DecodeAckFrame parses an ack frame, appending the statuses to dst
// (pass a reused slice to avoid allocation).
func DecodeAckFrame(buf []byte, dst []AckStatus) ([]AckStatus, error) {
	if len(buf) < ackHeaderLen {
		return dst, fmt.Errorf("%w: %d bytes is shorter than the ack header", ErrFrameTruncated, len(buf))
	}
	if [4]byte(buf[:4]) != ackMagic {
		return dst, fmt.Errorf("%w: got %q, want %q", ErrFrameMagic, buf[:4], ackMagic[:])
	}
	count := binary.LittleEndian.Uint32(buf[4:])
	crc := binary.LittleEndian.Uint32(buf[8:])
	if count > MaxBatchReports {
		return dst, fmt.Errorf("%w: %d acks declared (max %d)", ErrFrameOversize, count, MaxBatchReports)
	}
	body := buf[ackHeaderLen:]
	if uint32(len(body)) < count {
		return dst, fmt.Errorf("%w: %d acks declared, %d bytes remain", ErrFrameTruncated, count, len(body))
	}
	if uint32(len(body)) > count {
		return dst, fmt.Errorf("%w: %d bytes after the %d declared acks", ErrFrameTrailing, uint32(len(body))-count, count)
	}
	if crc32.Checksum(body, crcTable) != crc {
		return dst, fmt.Errorf("%w: ack statuses", ErrFrameChecksum)
	}
	for _, b := range body {
		dst = append(dst, AckStatus(b))
	}
	return dst, nil
}
