package wire

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func mustBatch(t *testing.T, reports []Report) []byte {
	t.Helper()
	buf, err := AppendReportBatch(nil, reports)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func decodeAll(buf []byte) ([]Report, error) {
	var r BatchReader
	if err := r.Reset(buf); err != nil {
		return nil, err
	}
	var out []Report
	var v ReportView
	for {
		ok, err := r.Next(&v)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, Report{ClientID: string(v.Client), Bit: v.Bit, Value: v.Value})
	}
}

func TestBatchRoundTrip(t *testing.T) {
	reports := []Report{
		{ClientID: "c1", Bit: 0, Value: 1},
		{ClientID: "a-much-longer-client-identifier-0123456789", Bit: 65535, Value: 0},
		{ClientID: "", Bit: 7, Value: 1}, // empty id is legal framing; the server rejects it semantically
		{ClientID: "c2", Bit: 3, Value: 200},
	}
	buf := mustBatch(t, reports)
	got, err := decodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reports) {
		t.Fatalf("decoded %d records, want %d", len(got), len(reports))
	}
	for i := range reports {
		if got[i] != reports[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], reports[i])
		}
	}
}

func TestBatchWriterReuse(t *testing.T) {
	var w BatchWriter
	for round := 0; round < 3; round++ {
		w.Reset()
		if err := w.Add("client", round, 1); err != nil {
			t.Fatal(err)
		}
		got, err := decodeAll(w.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Bit != round {
			t.Fatalf("round %d decoded %+v", round, got)
		}
	}
}

func TestBatchEmptyFrame(t *testing.T) {
	got, err := decodeAll(mustBatch(t, nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch = %v records, err %v", len(got), err)
	}
}

func TestBatchWriterLimits(t *testing.T) {
	var w BatchWriter
	w.Reset()
	if err := w.Add(strings.Repeat("x", MaxClientIDBytes+1), 0, 1); !errors.Is(err, ErrFrameOversize) {
		t.Errorf("oversize client id error = %v, want ErrFrameOversize", err)
	}
	if err := w.Add("c", -1, 1); !errors.Is(err, ErrFrameOversize) {
		t.Errorf("negative bit error = %v, want ErrFrameOversize", err)
	}
	if err := w.Add("c", 1<<16, 1); !errors.Is(err, ErrFrameOversize) {
		t.Errorf("wide bit error = %v, want ErrFrameOversize", err)
	}
	if err := w.Add("c", 0, 256); !errors.Is(err, ErrFrameOversize) {
		t.Errorf("wide value error = %v, want ErrFrameOversize", err)
	}
	w.Reset()
	for i := 0; i < MaxBatchReports; i++ {
		if err := w.Add("c", 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Add("c", 0, 1); !errors.Is(err, ErrFrameOversize) {
		t.Errorf("over-count error = %v, want ErrFrameOversize", err)
	}
}

// TestBatchDecodeFailures drives every typed decode failure: wrong magic,
// truncations at each boundary, corrupt checksum, lying length prefixes,
// inflated counts and trailing garbage.
func TestBatchDecodeFailures(t *testing.T) {
	valid := mustBatch(t, []Report{{ClientID: "c1", Bit: 3, Value: 1}, {ClientID: "c2", Bit: 1, Value: 0}})
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrFrameTruncated},
		{"short header", func(b []byte) []byte { return b[:4] }, ErrFrameTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrFrameMagic},
		{"count over cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], MaxBatchReports+1)
			return b
		}, ErrFrameOversize},
		{"count past buffer", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 1000)
			return b
		}, ErrFrameTruncated},
		{"truncated record header", func(b []byte) []byte { return b[:len(b)-len(b)+8+4] }, ErrFrameTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrFrameTruncated},
		{"oversize length prefix", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], MaxReportRecordBytes+1)
			return b
		}, ErrFrameOversize},
		{"undersize length prefix", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 1)
			return b
		}, ErrFrameOversize},
		{"length past buffer", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], MaxReportRecordBytes)
			return b
		}, ErrFrameTruncated},
		{"corrupt payload", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, ErrFrameChecksum},
		{"corrupt crc", func(b []byte) []byte { b[12] ^= 0xff; return b }, ErrFrameChecksum},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xaa) }, ErrFrameTrailing},
	}
	for _, c := range cases {
		buf := c.mut(append([]byte(nil), valid...))
		if _, err := decodeAll(buf); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestBatchReaderAllocs(t *testing.T) {
	buf := mustBatch(t, []Report{
		{ClientID: "c1", Bit: 3, Value: 1},
		{ClientID: "c2", Bit: 1, Value: 0},
		{ClientID: "c3", Bit: 0, Value: 1},
	})
	var r BatchReader
	var v ReportView
	allocs := testing.AllocsPerRun(200, func() {
		if err := r.Reset(buf); err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := r.Next(&v)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Errorf("decoding a warm batch allocates %.1f/op, want 0", allocs)
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	statuses := []AckStatus{AckAccepted, AckDuplicate, AckConflict, AckNoTask, AckWrongBit, AckInvalidValue}
	frame := AppendAckFrame(nil, statuses)
	got, err := DecodeAckFrame(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(statuses) {
		t.Fatalf("decoded %d acks, want %d", len(got), len(statuses))
	}
	for i := range statuses {
		if got[i] != statuses[i] {
			t.Errorf("ack %d = %v, want %v", i, got[i], statuses[i])
		}
	}
	// Success classification matches the JSON ReportAck convention.
	for st, ok := range map[AckStatus]bool{
		AckAccepted: true, AckDuplicate: true,
		AckInvalidValue: false, AckNoTask: false, AckWrongBit: false, AckConflict: false,
	} {
		if st.OK() != ok {
			t.Errorf("%v.OK() = %v, want %v", st, st.OK(), ok)
		}
	}
}

func TestAckFrameFailures(t *testing.T) {
	frame := AppendAckFrame(nil, []AckStatus{AckAccepted, AckDuplicate})
	if _, err := DecodeAckFrame(frame[:8], nil); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("short header err = %v", err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := DecodeAckFrame(bad, nil); !errors.Is(err, ErrFrameMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, err := DecodeAckFrame(bad, nil); !errors.Is(err, ErrFrameChecksum) {
		t.Errorf("corrupt status err = %v", err)
	}
	if _, err := DecodeAckFrame(append(frame, 0), nil); !errors.Is(err, ErrFrameTrailing) {
		t.Errorf("trailing err = %v", err)
	}
	if _, err := DecodeAckFrame(frame[:len(frame)-1], nil); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("missing status err = %v", err)
	}
}

// FuzzBatchReader holds the decoder to its contract on arbitrary bytes:
// it never panics, never reads past the buffer (the runtime would panic
// if it did), terminates, and fails only with the typed framing errors.
// Frames the fuzzer mutates into validity must round-trip consistently.
func FuzzBatchReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("FNR1"))
	seed, _ := AppendReportBatch(nil, []Report{
		{ClientID: "c1", Bit: 3, Value: 1},
		{ClientID: "another-client", Bit: 65535, Value: 0},
	})
	f.Add(seed)
	empty, _ := AppendReportBatch(nil, nil)
	f.Add(empty)
	truncated := append([]byte(nil), seed...)
	f.Add(truncated[:len(truncated)-3])
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)-1] ^= 0x55
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		var r BatchReader
		var v ReportView
		if err := r.Reset(data); err != nil {
			requireTyped(t, err)
			return
		}
		decoded := 0
		for {
			ok, err := r.Next(&v)
			if err != nil {
				requireTyped(t, err)
				return
			}
			if !ok {
				break
			}
			if v.Bit < 0 || v.Bit > 0xffff || v.Value > 0xff || len(v.Client) > MaxClientIDBytes {
				t.Fatalf("decoded record outside field ranges: %+v", v)
			}
			decoded++
			if decoded > MaxBatchReports {
				t.Fatal("decoded more records than the batch cap allows")
			}
		}
		if decoded != r.Count() {
			t.Fatalf("clean decode yielded %d records, header declared %d", decoded, r.Count())
		}
	})
}

func requireTyped(t *testing.T, err error) {
	t.Helper()
	for _, want := range []error{ErrFrameMagic, ErrFrameTruncated, ErrFrameChecksum, ErrFrameOversize, ErrFrameTrailing} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Fatalf("decode failed with untyped error: %v", err)
}
