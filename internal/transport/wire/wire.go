// Package wire defines the JSON message types exchanged between the
// aggregation server (internal/transport.Server) and clients. The private
// payload of any exchange is a single bit: the task tells the client which
// bit index to disclose, and the report carries that one (randomized-
// response protected) binary digit — nothing else about the value leaves
// the device.
package wire

// SessionConfig is the request body for creating an aggregation session.
type SessionConfig struct {
	// Feature names the metric being aggregated.
	Feature string `json:"feature"`
	// Bits is the protocol bit depth.
	Bits int `json:"bits"`
	// Gamma shapes the geometric bit-sampling allocation p_j ∝ 2^{γj};
	// ignored when Probs is set.
	Gamma float64 `json:"gamma,omitempty"`
	// Probs is an explicit allocation (length Bits); overrides Gamma.
	// Adaptive round-2 sessions are created with learned Probs.
	Probs []float64 `json:"probs,omitempty"`
	// Epsilon, when positive, instructs clients to apply ε-LDP randomized
	// response before reporting; the server unbiases accordingly.
	Epsilon float64 `json:"epsilon,omitempty"`
	// SquashThreshold zeroes small-magnitude bit means at aggregation.
	SquashThreshold float64 `json:"squash_threshold,omitempty"`
	// MinCohort refuses to finalize with fewer accepted reports.
	MinCohort int `json:"min_cohort,omitempty"`
	// Thresholds, when non-empty, makes this a threshold-query session:
	// instead of a bit index, each client is assigned one threshold t and
	// reports 1{x >= t}. The finalized result carries tail probabilities
	// per threshold instead of a mean estimate. Thresholds must be
	// strictly ascending and within [0, 2^Bits).
	Thresholds []uint64 `json:"thresholds,omitempty"`
	// TTLSeconds, when positive, gives the session a deadline that many
	// seconds after creation. At the deadline the server garbage-collects
	// the session: with AutoFinalize set (and the cohort at or above
	// MinCohort) it finalizes and keeps the result; otherwise it expires,
	// and further traffic is refused with CodeExpired.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// AutoFinalize finalizes rather than expires the session when its TTL
	// deadline passes, provided enough reports were accepted.
	AutoFinalize bool `json:"auto_finalize,omitempty"`
}

// Task kinds.
const (
	// TaskKindBit asks for one binary digit of the value (bit-pushing).
	TaskKindBit = "bit"
	// TaskKindThreshold asks for the one-bit comparison 1{x >= threshold}.
	TaskKindThreshold = "threshold"
)

// CreateSessionResponse returns the new session's identifier.
type CreateSessionResponse struct {
	SessionID string `json:"session_id"`
}

// Task is the server's answer to a client's task poll: which single bit
// of information about the feature to disclose, and under what privacy
// parameters. Kind selects between a binary digit (Bit) and a threshold
// comparison (Threshold); either way the client's response is one bit.
type Task struct {
	SessionID string  `json:"session_id"`
	Feature   string  `json:"feature"`
	Bits      int     `json:"bits"`
	Kind      string  `json:"kind,omitempty"` // TaskKindBit when empty
	Bit       int     `json:"bit"`
	Threshold uint64  `json:"threshold,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
}

// Report is a client's single-bit submission.
type Report struct {
	ClientID string `json:"client_id"`
	Bit      int    `json:"bit"`
	Value    uint64 `json:"value"`
}

// ReportAck acknowledges a report. A retransmission of an already-accepted
// report (same client, bit and value — e.g. the first ack was lost) is
// re-acknowledged as accepted with Duplicate set, so retrying clients
// converge instead of erroring.
type ReportAck struct {
	Accepted  bool   `json:"accepted"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// Result is the server's aggregate view of a session.
type Result struct {
	SessionID string    `json:"session_id"`
	Feature   string    `json:"feature"`
	Done      bool      `json:"done"`
	Reports   int       `json:"reports"`
	Estimate  float64   `json:"estimate"`
	BitMeans  []float64 `json:"bit_means"`
	Counts    []int     `json:"counts"`
	Sums      []float64 `json:"sums"`
	Squashed  []bool    `json:"squashed"`
	// Threshold-session fields: per-threshold monotonized tail
	// probabilities P(X >= t).
	Thresholds []uint64  `json:"thresholds,omitempty"`
	TailProbs  []float64 `json:"tail_probs,omitempty"`
}

// Code is a machine-readable error code carried in Error.Code. The
// vocabulary below is closed: clients decide whether to retry from the
// code, never from the message text, so every code a server can emit must
// be a named constant here. fedlint/errcode flags string literals standing
// in for codes outside this package; the zero value "" means "the server
// sent no envelope" (e.g. a proxy-generated 5xx).
type Code string

// The closed code vocabulary.
const (
	// CodeBadRequest marks a malformed or invalid request; not retryable.
	CodeBadRequest Code = "bad_request"
	// CodeNotFound marks an unknown session id; not retryable.
	CodeNotFound Code = "not_found"
	// CodeFinalized marks traffic to an already-finalized session; not
	// retryable (the result endpoint still answers).
	CodeFinalized Code = "finalized"
	// CodeExpired marks traffic to a session whose TTL deadline passed
	// without finalizing; not retryable.
	CodeExpired Code = "expired"
	// CodeCohortTooSmall marks a finalize attempt below MinCohort;
	// retryable in the sense that more reports may still arrive.
	CodeCohortTooSmall Code = "cohort_too_small"
	// CodeUnavailable marks a transient server condition (overload,
	// shutdown in progress); retryable. Unavailable envelopes carry a
	// RetryAfter hint telling the client how long to stay away.
	CodeUnavailable Code = "unavailable"
	// CodeInternal marks an unexpected server-side failure; retryable.
	CodeInternal Code = "internal"
	// CodeTooLarge marks a request body over the server's size cap; not
	// retryable (the same payload will always be too large).
	CodeTooLarge Code = "payload_too_large"
	// CodeNotPrimary marks a mutating (or state-reading) request sent to
	// a standby or fenced replica. Not retryable against the same
	// endpoint — this node will keep refusing until it is promoted — but
	// retryable against the next endpoint of a multi-endpoint list; the
	// envelope's Leader field, when set, says where to go.
	CodeNotPrimary Code = "not_primary"
)

// Error is the JSON error envelope. Code is machine-readable (one of the
// Code* constants); Error is the human-readable message.
type Error struct {
	Error string `json:"error"`
	Code  Code   `json:"code,omitempty"`
	// RetryAfter, when positive, is the server's backoff advice in
	// seconds — the machine-readable twin of the Retry-After header,
	// set on shedding (unavailable) and rate-limit answers so JSON
	// clients need not parse HTTP headers.
	RetryAfter float64 `json:"retry_after_seconds,omitempty"`
	// Leader, set on CodeNotPrimary answers when the replica knows its
	// primary, is the base URL clients should redirect to.
	Leader string `json:"leader,omitempty"`
}

// ReplStatus is the JSON body of GET /v1/replication/status: the node's
// role, fencing epoch and log position, served by primaries and
// replicas alike so operators (and the standby's health prober) can see
// replication lag and who believes they lead.
type ReplStatus struct {
	// Role is "primary", "standby" or "fenced".
	Role string `json:"role"`
	// Epoch is the node's fencing epoch. Promotions bump it; replication
	// frames from a lower epoch are rejected.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the last WAL sequence applied to the session table
	// (on a primary, the last appended).
	AppliedSeq uint64 `json:"applied_seq"`
	// HeadSeq and FirstSeq delimit the node's local log.
	HeadSeq  uint64 `json:"head_seq"`
	FirstSeq uint64 `json:"first_seq"`
	// WALBytes is the node's cumulative appended log bytes, the base of
	// the lag-in-bytes metric.
	WALBytes int64 `json:"wal_bytes"`
	// Leader, when known on a non-primary, is the primary's base URL.
	Leader string `json:"leader,omitempty"`
}

// PromoteResponse answers POST /v1/replication/promote.
type PromoteResponse struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
}
