package transport

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport/wire"
)

// testBreaker builds a breaker on the shared fakeClock from
// resilience_test.go.
func testBreaker(clk *fakeClock) *CircuitBreaker {
	return &CircuitBreaker{
		Window:           10 * time.Second,
		FailureThreshold: 3,
		Cooldown:         2 * time.Second,
		Now:              clk.Now,
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	for i := 0; i < 2; i++ {
		if !cb.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		cb.Record(true)
	}
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("below threshold, state = %s, want closed", got)
	}
	cb.Record(true) // third failure within the window trips it
	if got := cb.State(); got != BreakerOpen {
		t.Fatalf("at threshold, state = %s, want open", got)
	}
	if cb.Allow() {
		t.Fatal("open breaker allowed an attempt")
	}
}

func TestBreakerWindowForgetsOldFailures(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	// Two failures, then a gap wider than the window before the third:
	// the first failure has aged out, so the breaker must stay closed.
	cb.Record(true)
	cb.Record(true)
	clk.Advance(11 * time.Second)
	cb.Record(true)
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("stale failures tripped the breaker: state = %s", got)
	}
}

func TestBreakerSuccessDoesNotResetWindow(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	cb.Record(true)
	cb.Record(false) // success between failures
	cb.Record(true)
	cb.Record(true)
	if got := cb.State(); got != BreakerOpen {
		t.Fatalf("three failures inside the window, state = %s, want open", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	for i := 0; i < 3; i++ {
		cb.Record(true)
	}
	if cb.Allow() {
		t.Fatal("open breaker allowed an attempt")
	}
	clk.Advance(cb.Cooldown)
	if got := cb.State(); got != BreakerHalfOpen {
		t.Fatalf("after cooldown, state = %s, want half_open", got)
	}
	if !cb.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if cb.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	cb.Record(false) // probe succeeded
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("after successful probe, state = %s, want closed", got)
	}
	if !cb.Allow() {
		t.Fatal("re-closed breaker refused an attempt")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	for i := 0; i < 3; i++ {
		cb.Record(true)
	}
	clk.Advance(cb.Cooldown)
	if !cb.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	cb.Record(true) // probe failed
	if got := cb.State(); got != BreakerOpen {
		t.Fatalf("after failed probe, state = %s, want open", got)
	}
	// A fresh cooldown applies before the next probe.
	clk.Advance(cb.Cooldown / 2)
	if cb.Allow() {
		t.Fatal("re-opened breaker allowed an attempt before the new cooldown")
	}
	clk.Advance(cb.Cooldown)
	if !cb.Allow() {
		t.Fatal("breaker refused the probe after the second cooldown")
	}
}

func TestBreakerRecordResultClassification(t *testing.T) {
	clk := newFakeClock()
	// Protocol rejections prove the server is answering: they must not
	// count as failures, however many arrive.
	cb := testBreaker(clk)
	rejected := &StatusError{Status: http.StatusConflict, Code: wire.CodeFinalized}
	for i := 0; i < 10; i++ {
		cb.RecordResult(rejected)
	}
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("protocol rejections tripped the breaker: state = %s", got)
	}
	// Retryable failures do count.
	unavailable := &StatusError{Status: http.StatusServiceUnavailable, Code: wire.CodeUnavailable}
	for i := 0; i < 3; i++ {
		cb.RecordResult(unavailable)
	}
	if got := cb.State(); got != BreakerOpen {
		t.Fatalf("retryable failures did not trip the breaker: state = %s", got)
	}
}

func TestBreakerCancellationReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	for i := 0; i < 3; i++ {
		cb.Record(true)
	}
	clk.Advance(cb.Cooldown)
	if !cb.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// The probe's caller gave up: no verdict, but the slot frees so the
	// next attempt can probe instead of deadlocking the half-open state.
	cb.RecordResult(context.Canceled)
	if got := cb.State(); got != BreakerHalfOpen {
		t.Fatalf("cancellation changed state to %s", got)
	}
	if !cb.Allow() {
		t.Fatal("probe slot not released after caller cancellation")
	}
}

func TestBreakerNilIsNoop(t *testing.T) {
	var cb *CircuitBreaker
	if !cb.Allow() {
		t.Fatal("nil breaker refused an attempt")
	}
	cb.Record(true)
	cb.RecordResult(errors.New("x"))
}

func TestBreakerMetrics(t *testing.T) {
	clk := newFakeClock()
	cb := testBreaker(clk)
	reg := obs.NewRegistry()
	cb.Metrics = reg
	for i := 0; i < 3; i++ {
		cb.Record(true)
	}
	cb.Allow() // fast fail while open
	clk.Advance(cb.Cooldown)
	cb.Allow() // probe
	cb.Record(false)
	if got := reg.Gauge(MetricClientBreakerState, "").Value(); got != 0 {
		t.Fatalf("breaker state gauge = %v, want 0 (closed)", got)
	}
	trans := reg.CounterVec(MetricClientBreakerTransitions, "", "state")
	for state, want := range map[string]uint64{BreakerOpen: 1, BreakerHalfOpen: 1, BreakerClosed: 1} {
		if got := trans.With(state).Value(); got != want {
			t.Fatalf("transitions{%s} = %d, want %d", state, got, want)
		}
	}
	if got := reg.Counter(MetricClientBreakerFastFails, "").Value(); got != 1 {
		t.Fatalf("fast fails = %d, want 1", got)
	}
	if got := reg.Counter(MetricClientBreakerProbes, "").Value(); got != 1 {
		t.Fatalf("probes = %d, want 1", got)
	}
}

// TestRetryDoFailsFastWhileOpen wires a breaker under a RetryPolicy and
// checks open-circuit tries never reach the network but keep consuming
// the backoff schedule, so the loop rides the half-open probe after the
// cooldown.
func TestRetryDoFailsFastWhileOpen(t *testing.T) {
	clk := newFakeClock()
	cb := &CircuitBreaker{
		Window:           10 * time.Second,
		FailureThreshold: 2,
		Cooldown:         50 * time.Millisecond,
		Now:              clk.Now,
	}
	rp := &RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, Seed: 1, Breaker: cb}
	rp.sleep = func(ctx context.Context, d time.Duration) error {
		clk.Advance(20 * time.Millisecond)
		return nil
	}
	calls := 0
	err := rp.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return &StatusError{Status: http.StatusServiceUnavailable, Code: wire.CodeUnavailable}
	})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen after the breaker tripped", err)
	}
	// Two real attempts trip the breaker; the sleeps advance 20ms per
	// retry, so attempts 3 and 4 fail fast and attempt 5 (≥50ms after the
	// trip) rides the half-open probe, which fails and re-opens.
	if calls != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 to trip + 1 half-open probe)", calls)
	}
	// A healthy server closes the breaker through the next probe.
	clk.Advance(time.Second)
	err = rp.Do(context.Background(), func(ctx context.Context) error { return nil })
	if err != nil {
		t.Fatalf("recovery attempt failed: %v", err)
	}
	if got := cb.State(); got != BreakerClosed {
		t.Fatalf("after successful probe, state = %s, want closed", got)
	}
}
