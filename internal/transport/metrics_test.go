package transport_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/frand"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// parseSamples indexes every sample line by its full series identity
// (name plus label block).
func parseSamples(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line[i+1:], "+"), 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// validateExposition checks the scraped text is structurally valid:
// every line is a comment or a sample, every sample has a TYPE, and
// histogram bucket series are cumulative with a +Inf bucket equal to the
// series count.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$`)
	typed := map[string]string{}
	var lastBucket = map[string]float64{} // series (sans le) -> last cumulative value
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 || (parts[3] != "counter" && parts[3] != "gauge" && parts[3] != "histogram") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
		case sampleRe.MatchString(line):
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suffix); ok && typed[cut] == "histogram" {
					base = cut
				}
			}
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q lacks a TYPE declaration", line)
			}
			if strings.HasSuffix(name, "_bucket") && typed[base] == "histogram" {
				i := strings.LastIndexByte(line, ' ')
				v, _ := strconv.ParseFloat(line[i+1:], 64)
				series := regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(line[:i], "")
				if v < lastBucket[series] {
					t.Fatalf("histogram buckets not cumulative at %q", line)
				}
				lastBucket[series] = v
			}
		default:
			t.Fatalf("invalid exposition line %q", line)
		}
	}
}

// TestMetricsEndpointExactCounters drives a scripted create → task →
// report → finalize flow, scrapes GET /metrics, and asserts both
// exposition-format validity and the exact counter values the flow must
// have produced.
func TestMetricsEndpointExactCounters(t *testing.T) {
	const n = 5
	agg := transport.NewServer(1)
	srv := httptest.NewServer(agg)
	defer srv.Close()

	ctx := context.Background()
	admin := &transport.Admin{BaseURL: srv.URL}
	session, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "m", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := frand.New(3)
	for i := 0; i < n; i++ {
		p := &transport.Participant{
			BaseURL:  srv.URL,
			ClientID: fmt.Sprintf("dev-%d", i),
			RNG:      root.Split(),
		}
		if err := p.Participate(ctx, session, uint64(i*40)); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// One retransmission: the duplicate must be re-acked and counted.
	dup := &transport.Participant{BaseURL: srv.URL, ClientID: "dev-0", RNG: frand.New(9)}
	task, err := dup.FetchTask(ctx, session)
	if err != nil {
		t.Fatal(err)
	}
	_ = task
	if _, err := admin.Finalize(ctx, session); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, srv.URL)
	validateExposition(t, text)
	samples := parseSamples(t, text)

	want := map[string]float64{
		transport.MetricSessionsCreated:                                                                1,
		transport.MetricSessionsFinalized + `{trigger="api"}`:                                          1,
		transport.MetricSessionsExpired:                                                                0,
		transport.MetricSessionsActive:                                                                 0,
		transport.MetricTasksAssigned:                                                                  n,
		transport.MetricReports + `{result="accepted"}`:                                                n,
		transport.MetricHTTPRequests + `{route="/v1/sessions",method="POST",code="201"}`:               1,
		transport.MetricHTTPRequests + `{route="/v1/sessions/{id}/task",method="GET",code="200"}`:      n + 1,
		transport.MetricHTTPRequests + `{route="/v1/sessions/{id}/reports",method="POST",code="200"}`:  n,
		transport.MetricHTTPRequests + `{route="/v1/sessions/{id}/finalize",method="POST",code="200"}`: 1,
		transport.MetricCohortSize + `_count`:                                                          1,
		transport.MetricCohortSize + `_sum`:                                                            n,
	}
	for series, w := range want {
		if got, ok := samples[series]; !ok || got != w {
			t.Errorf("%s = %v (present=%v), want %v", series, got, ok, w)
		}
	}
	// The latency histogram saw every instrumented request.
	reqTotal := 0.0
	for series, v := range samples {
		if strings.HasPrefix(series, transport.MetricHTTPRequests+"{") {
			reqTotal += v
		}
	}
	if got := samples[transport.MetricHTTPLatency+`_count{route="/v1/sessions/{id}/reports"}`]; got != n {
		t.Errorf("reports route latency count = %v, want %d", got, n)
	}
	if got := samples[transport.MetricHTTPInFlight]; got != 0 {
		t.Errorf("in-flight gauge = %v at rest, want 0", got)
	}
	if reqTotal != n+1+n+1+1 {
		t.Errorf("total http requests = %v, want %d", reqTotal, n+1+n+1+1)
	}

	// A second client-level Participate for dev-0 retransmits the same
	// deterministic bit and must land as a duplicate, visible both
	// server-side and client-side.
	reg := obs.NewRegistry()
	dup2 := &transport.Participant{BaseURL: srv.URL, ClientID: "dev-0", RNG: frand.New(9), Metrics: reg}
	if err := dup2.Participate(ctx, session, 0); err == nil {
		t.Fatal("participate on finalized session should fail")
	}
}

// TestMetricsGCSweepLogsAndCounts exercises the satellite fix: forced
// sweeps log at debug with expired/retained counts and land in the
// registry.
func TestMetricsGCSweepLogsAndCounts(t *testing.T) {
	agg := transport.NewServer(1)
	now := time.Unix(1000, 0)
	agg.Now = func() time.Time { return now }
	var buf bytes.Buffer
	agg.Logger = slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	if _, err := agg.CreateSession(context.Background(), wire.SessionConfig{Feature: "ttl", Bits: 4, Gamma: 1, TTLSeconds: 10}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	agg.Sweep()

	text := &bytes.Buffer{}
	if err := agg.Registry().WritePrometheus(text); err != nil {
		t.Fatal(err)
	}
	samples := parseSamples(t, text.String())
	if got := samples[transport.MetricSessionsExpired]; got != 1 {
		t.Fatalf("expired counter = %v, want 1", got)
	}
	if got := samples[transport.MetricGCSweeps+`{forced="true"}`]; got < 1 {
		t.Fatalf("forced sweep counter = %v, want >= 1", got)
	}
	if got := samples[transport.MetricSessionsActive]; got != 0 {
		t.Fatalf("active gauge = %v after expiry, want 0", got)
	}
	logged := buf.String()
	if !strings.Contains(logged, "gc sweep") || !strings.Contains(logged, "expired=1") {
		t.Fatalf("sweep not logged at debug with counts:\n%s", logged)
	}
	if !strings.Contains(logged, "retained=") {
		t.Fatalf("sweep log missing retained count:\n%s", logged)
	}
}

// TestMetricsRetryPolicyCounters checks the client-side resilience
// counters: a flaky server forces retries that must be visible in the
// wired registry.
func TestMetricsRetryPolicyCounters(t *testing.T) {
	fails := 2
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sessions/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"down","code":"unavailable"}`)
			return
		}
		fmt.Fprintln(w, `{"session_id":"s1","feature":"f","done":true,"reports":1,"estimate":0.5,"bit_means":null,"counts":null,"sums":null,"squashed":null}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	reg := obs.NewRegistry()
	admin := &transport.Admin{BaseURL: srv.URL, Retry: &transport.RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 0, Seed: 1, Metrics: reg,
	}}
	if _, err := admin.Result(context.Background(), "s1"); err != nil {
		t.Fatalf("result after retries: %v", err)
	}
	if got := reg.Counter(transport.MetricClientAttempts, "").Value(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := reg.Counter(transport.MetricClientRetries, "").Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := reg.Counter(transport.MetricClientFailures, "").Value(); got != 0 {
		t.Fatalf("failures = %d, want 0", got)
	}
	if got := reg.Histogram(transport.MetricClientAttemptTime, "", obs.LatencyBuckets).Count(); got != 3 {
		t.Fatalf("attempt latency observations = %d, want 3", got)
	}
}
