package transport

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/transport/wire"
)

// Device pairs a Participant with the single private value it contributes
// to an adaptive campaign.
type Device struct {
	Participant
	Value uint64
}

// AdaptiveSpec configures a two-round adaptive aggregation (Algorithm 2)
// over a live aggregation server.
type AdaptiveSpec struct {
	Feature string
	Bits    int
	// Gamma, Alpha, Delta are the Algorithm 2 knobs; zero values select
	// the paper defaults (0.5, 0.5, 1/3).
	Gamma, Alpha, Delta float64
	// Epsilon, when positive, has clients apply ε-LDP randomized response
	// in both rounds.
	Epsilon float64
	// SquashThreshold zeroes small-magnitude bit means at aggregation.
	SquashThreshold float64
	// MinCohort applies per round.
	MinCohort int
	// Retry, when non-nil, is installed on every device whose Participant
	// has no policy of its own, so a campaign over a flaky fleet retries
	// transient failures instead of silently shrinking the cohort.
	Retry *RetryPolicy
}

// AdaptiveOutcome is the result of a two-round HTTP campaign.
type AdaptiveOutcome struct {
	// Estimate is the pooled two-round mean estimate in encoded units.
	Estimate float64
	// Round1 and Round2 are the per-round server results.
	Round1, Round2 *wire.Result
	// Probs2 is the learned round-2 allocation.
	Probs2 []float64
	// Participated counts devices that completed their round.
	Participated int
}

// RunAdaptiveCampaign drives Algorithm 2 over HTTP: it creates the round-1
// session (geometric allocation), has a δ fraction of the devices
// participate, finalizes, derives the learned round-2 allocation from the
// round-1 aggregate, runs the remaining devices against a second session,
// and pools both rounds exactly as core.RunAdaptive does in-process.
//
// Devices that fail to participate (network errors, server rejections) are
// skipped — the protocol tolerates dropouts by construction (§4.3). The
// split RNG decides the round assignment.
func RunAdaptiveCampaign(ctx context.Context, admin *Admin, spec AdaptiveSpec, devices []Device, r *frand.RNG) (*AdaptiveOutcome, error) {
	if len(devices) < 2 {
		return nil, fmt.Errorf("transport: adaptive campaign needs at least 2 devices, got %d", len(devices))
	}
	gamma := spec.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	alpha := spec.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	delta := spec.Delta
	if delta == 0 {
		delta = 1.0 / 3.0
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("transport: Delta=%v out of (0,1)", spec.Delta)
	}

	if spec.Retry != nil {
		for i := range devices {
			if devices[i].Retry == nil {
				devices[i].Retry = spec.Retry
			}
		}
	}

	n1 := int(math.Round(delta * float64(len(devices))))
	if n1 < 1 {
		n1 = 1
	}
	if n1 >= len(devices) {
		n1 = len(devices) - 1
	}
	perm := r.Perm(len(devices))

	out := &AdaptiveOutcome{}

	// Round 1: geometric allocation.
	s1, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: spec.Feature, Bits: spec.Bits, Gamma: gamma,
		Epsilon: spec.Epsilon, SquashThreshold: spec.SquashThreshold, MinCohort: spec.MinCohort,
	})
	if err != nil {
		return nil, fmt.Errorf("transport: round-1 session: %w", err)
	}
	for _, idx := range perm[:n1] {
		if err := devices[idx].Participate(ctx, s1, devices[idx].Value); err == nil {
			out.Participated++
		}
	}
	if out.Round1, err = admin.Finalize(ctx, s1); err != nil {
		return nil, fmt.Errorf("transport: round-1 finalize: %w", err)
	}

	// Learn the round-2 allocation from the round-1 aggregate.
	round1 := resultFromWire(out.Round1)
	if spec.Epsilon > 0 {
		out.Probs2, err = core.LearnedProbsDP(round1)
	} else {
		out.Probs2, err = core.LearnedProbs(round1, alpha)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: learning round-2 allocation: %w", err)
	}

	// Round 2: explicit learned allocation.
	s2, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: spec.Feature, Bits: spec.Bits, Probs: out.Probs2,
		Epsilon: spec.Epsilon, SquashThreshold: spec.SquashThreshold, MinCohort: spec.MinCohort,
	})
	if err != nil {
		return nil, fmt.Errorf("transport: round-2 session: %w", err)
	}
	for _, idx := range perm[n1:] {
		if err := devices[idx].Participate(ctx, s2, devices[idx].Value); err == nil {
			out.Participated++
		}
	}
	if out.Round2, err = admin.Finalize(ctx, s2); err != nil {
		return nil, fmt.Errorf("transport: round-2 finalize: %w", err)
	}

	// Pool both rounds with the same semantics as core.RunAdaptive.
	probs1, err := core.GeometricProbs(spec.Bits, gamma)
	if err != nil {
		return nil, err
	}
	var rr *ldp.RandomizedResponse
	if spec.Epsilon > 0 {
		if rr, err = ldp.NewRandomizedResponse(spec.Epsilon); err != nil {
			return nil, err
		}
	}
	pooled, err := core.PoolAdaptive(core.Config{
		Bits: spec.Bits, Probs: probs1, RR: rr, SquashThreshold: spec.SquashThreshold,
	}, out.Probs2, round1, resultFromWire(out.Round2))
	if err != nil {
		return nil, err
	}
	out.Estimate = pooled.Estimate
	return out, nil
}

// resultFromWire reconstructs the core aggregate from the wire snapshot.
func resultFromWire(w *wire.Result) *core.Result {
	return &core.Result{
		Estimate: w.Estimate,
		BitMeans: append([]float64(nil), w.BitMeans...),
		Counts:   append([]int(nil), w.Counts...),
		Sums:     append([]float64(nil), w.Sums...),
		Squashed: append([]bool(nil), w.Squashed...),
		Reports:  w.Reports,
	}
}
