package transport

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/quantile"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

func TestThresholdSessionValidation(t *testing.T) {
	_, admin := newTestStack(t)
	ctx := context.Background()
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 8, Thresholds: []uint64{10, 10},
	}); err == nil {
		t.Error("non-ascending thresholds accepted")
	}
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 8, Thresholds: []uint64{300},
	}); err == nil {
		t.Error("out-of-domain threshold accepted")
	}
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 0, Thresholds: []uint64{1},
	}); err == nil {
		t.Error("bits=0 threshold session accepted")
	}
}

func TestThresholdSessionTasks(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	thresholds := []uint64{32, 96, 160, 224}
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 8, Thresholds: thresholds,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tasks carry the threshold kind and spread uniformly across the grid.
	counts := map[uint64]int{}
	for i := 0; i < 400; i++ {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
		task, err := p.FetchTask(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if task.Kind != wire.TaskKindThreshold {
			t.Fatalf("task kind %q", task.Kind)
		}
		counts[task.Threshold]++
	}
	for _, thr := range thresholds {
		if counts[thr] != 100 {
			t.Errorf("threshold %d issued %d times, want 100", thr, counts[thr])
		}
	}
}

func TestThresholdSessionEndToEnd(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 80}.Sample(frand.New(1), 8000))
	grid, err := quantile.UniformGrid(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "lat", Bits: 10, Thresholds: grid,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("d%d", i), RNG: frand.New(uint64(i) + 5)}
		if err := p.Participate(ctx, id, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || len(res.TailProbs) != 16 {
		t.Fatalf("result %+v", res)
	}
	// Monotone tail, ~1 below the data, ~0 above.
	for i := 1; i < len(res.TailProbs); i++ {
		if res.TailProbs[i] > res.TailProbs[i-1] {
			t.Fatalf("tail not monotone at %d", i)
		}
	}
	if res.TailProbs[0] < 0.95 || res.TailProbs[15] > 0.05 {
		t.Fatalf("tail endpoints %v / %v", res.TailProbs[0], res.TailProbs[15])
	}
	// Median via the helper.
	med, err := TailQuantile(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	exact := sorted[len(sorted)/2]
	if math.Abs(float64(med)-float64(exact)) > 70 {
		t.Fatalf("HTTP median %d vs exact %d (grid step 64)", med, exact)
	}
}

func TestThresholdSessionWithLDP(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(
		workload.Normal{Mu: 120, Sigma: 20}.Sample(frand.New(2), 10000))
	grid, _ := quantile.UniformGrid(8, 8)
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "lat", Bits: 8, Thresholds: grid, Epsilon: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("d%d", i), RNG: frand.New(uint64(i) + 7)}
		if err := p.Participate(ctx, id, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	med, err := TailQuantile(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(med)-120) > 40 {
		t.Fatalf("LDP HTTP median %d, want ~120 (grid step 32)", med)
	}
}

func TestTailQuantileValidation(t *testing.T) {
	if _, err := TailQuantile(&wire.Result{}, 0.5); err == nil {
		t.Error("no threshold data accepted")
	}
	res := &wire.Result{Thresholds: []uint64{1, 2}, TailProbs: []float64{1, 0}}
	if _, err := TailQuantile(res, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if got, err := TailQuantile(res, 0.5); err != nil || got != 2 {
		t.Errorf("TailQuantile = %d, %v", got, err)
	}
}
