package transport

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/transport/wire"
	"repro/internal/workload"
)

func newTestStack(t *testing.T) (*httptest.Server, *Admin) {
	t.Helper()
	srv := httptest.NewServer(NewServer(1))
	t.Cleanup(srv.Close)
	return srv, &Admin{BaseURL: srv.URL}
}

func TestCreateSessionValidation(t *testing.T) {
	_, admin := newTestStack(t)
	ctx := context.Background()
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 0}); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Probs: []float64{1, 1}}); err == nil {
		t.Error("prob-length mismatch accepted")
	}
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, MinCohort: -1}); err == nil {
		t.Error("negative cohort accepted")
	}
}

func TestUnknownSession(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	if _, err := admin.Result(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown session result err = %v", err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "c1", RNG: frand.New(1)}
	if _, err := p.FetchTask(ctx, "nope"); err == nil {
		t.Error("task for unknown session accepted")
	}
}

func TestTaskAssignmentStableAndProportional(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Re-polling the same client returns the same bit.
	p := &Participant{BaseURL: srv.URL, ClientID: "sticky", RNG: frand.New(2)}
	t1, err := p.FetchTask(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.FetchTask(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Bit != t2.Bit {
		t.Fatalf("re-poll changed assignment: %d -> %d", t1.Bit, t2.Bit)
	}
	// Across many clients, bits are issued near p_j ∝ 2^j: of 1500 tasks,
	// bit 3 should get ~800, bit 0 ~100.
	counts := make([]int, 4)
	for i := 0; i < 1500; i++ {
		pi := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
		task, err := pi.FetchTask(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		counts[task.Bit]++
	}
	for j, want := range []float64{100, 200, 400, 800} {
		if math.Abs(float64(counts[j])-want) > 3 {
			t.Errorf("bit %d issued %d times, want ~%.0f", j, counts[j], want)
		}
	}
}

func TestEndToEndAggregation(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 400, Sigma: 60}.Sample(frand.New(3), 4000))
	truth := fixedpoint.Mean(values)

	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "lat", Bits: 10, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("dev-%d", i), RNG: frand.New(uint64(i) + 10)}
		if err := p.Participate(ctx, id, v); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Reports != len(values) {
		t.Fatalf("result %+v", res)
	}
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.05 {
		t.Fatalf("HTTP estimate %v vs truth %v (nrmse %v)", res.Estimate, truth, nrmse)
	}
}

func TestEndToEndWithLDP(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(
		workload.Normal{Mu: 100, Sigma: 20}.Sample(frand.New(4), 8000))
	truth := fixedpoint.Mean(values)
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "lat", Bits: 8, Gamma: 1, Epsilon: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("dev-%d", i), RNG: frand.New(uint64(i) + 99)}
		if err := p.Participate(ctx, id, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if nrmse := math.Abs(res.Estimate-truth) / truth; nrmse > 0.25 {
		t.Fatalf("LDP HTTP estimate %v vs truth %v", res.Estimate, truth)
	}
	// The task must have told clients to randomize.
	p := &Participant{BaseURL: srv.URL, ClientID: "probe", RNG: frand.New(1)}
	task, err := p.FetchTask(ctx, id)
	if err == nil && task.Epsilon != 2 {
		t.Errorf("task epsilon = %v, want 2", task.Epsilon)
	}
}

func TestServerRejectsBadReports(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "dev", RNG: frand.New(5)}
	task, err := p.FetchTask(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	// Report for a different bit than assigned: rejected.
	other := (task.Bit + 1) % 4
	ack, err := p.SubmitReport(ctx, id, wire.Report{ClientID: "dev", Bit: other, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Fatal("off-assignment report accepted")
	}
	// Report without a task: rejected.
	ack, err = p.SubmitReport(ctx, id, wire.Report{ClientID: "ghost", Bit: 0, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Fatal("taskless report accepted")
	}
	// Non-bit value: rejected.
	ack, err = p.SubmitReport(ctx, id, wire.Report{ClientID: "dev", Bit: task.Bit, Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Fatal("non-bit value accepted")
	}
	// Valid report: accepted once. An exact retransmission (the lost-ack
	// case) is re-acked as a duplicate, but a conflicting value is not.
	ack, err = p.SubmitReport(ctx, id, wire.Report{ClientID: "dev", Bit: task.Bit, Value: 1})
	if err != nil || !ack.Accepted {
		t.Fatalf("valid report rejected: %v %+v", err, ack)
	}
	ack, err = p.SubmitReport(ctx, id, wire.Report{ClientID: "dev", Bit: task.Bit, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted || !ack.Duplicate {
		t.Fatalf("retransmitted report not re-acked: %+v", ack)
	}
	ack, err = p.SubmitReport(ctx, id, wire.Report{ClientID: "dev", Bit: task.Bit, Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Fatal("conflicting report accepted")
	}
	// The duplicate must not double-count.
	res, err := admin.Result(ctx, id)
	if err != nil || res.Reports != 1 {
		t.Fatalf("reports = %d after retransmission, want 1 (err %v)", res.Reports, err)
	}
}

func TestMinCohortBlocksFinalize(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1, MinCohort: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "only", RNG: frand.New(6)}
	if err := p.Participate(ctx, id, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Finalize(ctx, id); err == nil {
		t.Fatal("finalize with cohort 1 < 10 succeeded")
	}
	// Result endpoint still answers with Done=false.
	res, err := admin.Result(ctx, id)
	if err != nil || res.Done || res.Reports != 1 {
		t.Fatalf("result = %+v, err %v", res, err)
	}
}

func TestFinalizedSessionRefusesTraffic(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "a", RNG: frand.New(7)}
	if err := p.Participate(ctx, id, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Finalize(ctx, id); err != nil {
		t.Fatal(err)
	}
	// Finalize is idempotent.
	if _, err := admin.Finalize(ctx, id); err != nil {
		t.Fatalf("second finalize: %v", err)
	}
	// New tasks and reports now fail.
	p2 := &Participant{BaseURL: srv.URL, ClientID: "late", RNG: frand.New(8)}
	if _, err := p2.FetchTask(ctx, id); err == nil {
		t.Fatal("task after finalize accepted")
	}
}

func TestConcurrentParticipation(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 8, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
			errs <- p.Participate(ctx, id, uint64(i%256))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != n {
		t.Fatalf("reports = %d, want %d", res.Reports, n)
	}
}

func TestExplicitProbsSession(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	// An adaptive round-2 style session: all mass on bits 0-1.
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 4, Probs: []float64{0.5, 0.5, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
		task, err := p.FetchTask(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if task.Bit > 1 {
			t.Fatalf("zero-probability bit %d assigned", task.Bit)
		}
	}
}

func TestParticipantRequiresRNG(t *testing.T) {
	srv, _ := newTestStack(t)
	p := &Participant{BaseURL: srv.URL, ClientID: "x"}
	if err := p.Participate(context.Background(), "any", 1); err == nil {
		t.Fatal("participation without RNG accepted")
	}
}
