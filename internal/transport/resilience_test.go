package transport

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/frand"
	"repro/internal/transport/wire"
)

// --- RetryPolicy unit tests -------------------------------------------------

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	rp := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
	for i, want := range []time.Duration{100, 200, 400, 500, 500} {
		if got := rp.Backoff(i + 1); got != want*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	var nilPolicy *RetryPolicy
	if got := nilPolicy.Backoff(3); got != 0 {
		t.Errorf("nil policy Backoff = %v", got)
	}
}

func TestRetryBackoffJitterRange(t *testing.T) {
	rp := &RetryPolicy{BaseDelay: time.Second, MaxDelay: time.Second, Jitter: 0.5, Seed: 9}
	for i := 0; i < 100; i++ {
		d := rp.Backoff(1)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jittered backoff %v outside [0.5s, 1s]", d)
		}
	}
}

func TestRetryDoRetriesOnlyTransientFailures(t *testing.T) {
	noSleep := func(context.Context, time.Duration) error { return nil }
	transient := &StatusError{Status: 503, Code: wire.CodeUnavailable, Msg: "chaos"}
	fatal := &StatusError{Status: 404, Code: wire.CodeNotFound, Msg: "gone"}

	rp := &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, sleep: noSleep}
	calls := 0
	err := rp.Do(context.Background(), func(context.Context) error { calls++; return transient })
	if !errors.Is(err, transient) || calls != 4 {
		t.Errorf("transient: %d calls, err %v; want 4 calls", calls, err)
	}

	calls = 0
	err = rp.Do(context.Background(), func(context.Context) error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Errorf("fatal: %d calls, err %v; want 1 call", calls, err)
	}

	calls = 0
	err = rp.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return transient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("recovery: %d calls, err %v; want success on call 3", calls, err)
	}
}

func TestRetryDoHonorsCancellation(t *testing.T) {
	rp := &RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := rp.Do(ctx, func(context.Context) error { calls++; return fmt.Errorf("boom") })
	if err == nil || calls != 1 {
		t.Errorf("cancelled: %d calls, err %v; want 1 call then stop", calls, err)
	}
}

func TestNilRetryPolicySingleAttempt(t *testing.T) {
	var rp *RetryPolicy
	calls := 0
	err := rp.Do(context.Background(), func(context.Context) error { calls++; return fmt.Errorf("x") })
	if err == nil || calls != 1 {
		t.Errorf("nil policy: %d calls, err %v", calls, err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("dial tcp: connection refused"), true},
		{&StatusError{Status: 503}, true},
		{&StatusError{Status: 429}, true},
		{&StatusError{Status: 500, Code: wire.CodeInternal}, true},
		{&StatusError{Status: 404, Code: wire.CodeNotFound}, false},
		{&StatusError{Status: 409, Code: wire.CodeFinalized}, false},
		{&StatusError{Status: 410, Code: wire.CodeExpired}, false},
		{&StatusError{Status: 400, Code: wire.CodeBadRequest}, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestParticipantRetriesThroughFlakyServer fronts the aggregation server
// with a wrapper that 503s the first attempts of every path; only clients
// with a retry policy get through.
func TestParticipantRetriesThroughFlakyServer(t *testing.T) {
	inner := NewServer(1)
	var calls atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%3 != 0 { // two failures, then one success, repeating
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"flaky","code":"unavailable"}`)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	ctx := context.Background()

	rp := &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 3}
	admin := &Admin{BaseURL: srv.URL, Retry: rp}
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatalf("create through flaky server: %v", err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "c", RNG: frand.New(1), Retry: rp}
	if err := p.Participate(ctx, id, 9); err != nil {
		t.Fatalf("participate through flaky server: %v", err)
	}
	// Without a policy, the next 503 is terminal and typed.
	bare := &Participant{BaseURL: srv.URL, ClientID: "bare", RNG: frand.New(2)}
	for {
		_, err := bare.FetchTask(ctx, id)
		if err == nil {
			continue // happened to hit the healthy request in the cycle
		}
		var se *StatusError
		if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable || se.Code != wire.CodeUnavailable {
			t.Fatalf("unretried failure = %v, want typed 503/unavailable", err)
		}
		break
	}
}

// --- machine-readable error codes -------------------------------------------

func TestStatusErrorCodes(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()

	wantCode := func(err error, status int, code wire.Code) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("error %v (%T) is not a *StatusError", err, err)
		}
		if se.Status != status || se.Code != code {
			t.Fatalf("status/code = %d/%q, want %d/%q", se.Status, se.Code, status, code)
		}
	}

	_, err := admin.Result(ctx, "missing")
	wantCode(err, http.StatusNotFound, wire.CodeNotFound)

	_, err = admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 0})
	wantCode(err, http.StatusBadRequest, wire.CodeBadRequest)

	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1, MinCohort: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, err = admin.Finalize(ctx, id)
	wantCode(err, http.StatusConflict, wire.CodeCohortTooSmall)

	id2, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "a", RNG: frand.New(1)}
	if err := p.Participate(ctx, id2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Finalize(ctx, id2); err != nil {
		t.Fatal(err)
	}
	_, err = p.FetchTask(ctx, id2)
	wantCode(err, http.StatusConflict, wire.CodeFinalized)
}

// --- session deadlines and TTL GC -------------------------------------------

// fakeClock is a manually advanced clock safe for concurrent reads.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newClockedStack(t *testing.T) (*Server, *httptest.Server, *Admin, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	s := NewServer(1)
	s.Now = clock.Now
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv, &Admin{BaseURL: srv.URL}, clock
}

func TestSessionExpiresAtDeadline(t *testing.T) {
	s, srv, admin, clock := newClockedStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1, TTLSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "early", RNG: frand.New(1)}
	if err := p.Participate(ctx, id, 5); err != nil {
		t.Fatal(err)
	}
	clock.Advance(61 * time.Second)
	s.Sweep()

	late := &Participant{BaseURL: srv.URL, ClientID: "late", RNG: frand.New(2)}
	_, err = late.FetchTask(ctx, id)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusGone || se.Code != wire.CodeExpired {
		t.Fatalf("task on expired session = %v, want typed 410/expired", err)
	}
	if _, err := admin.Finalize(ctx, id); !errors.As(err, &se) || se.Code != wire.CodeExpired {
		t.Fatalf("finalize on expired session = %v, want expired", err)
	}
	// An expired session is terminal, not retryable.
	if Retryable(err) {
		t.Fatal("expired classified as retryable")
	}
}

func TestSessionAutoFinalizesAtDeadline(t *testing.T) {
	s, srv, admin, clock := newClockedStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 4, Gamma: 1, TTLSeconds: 60, AutoFinalize: true, MinCohort: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
		if err := p.Participate(ctx, id, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(61 * time.Second)
	s.Sweep()

	res, err := admin.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Reports != 5 {
		t.Fatalf("auto-finalized result = %+v, want Done with 5 reports", res)
	}
	// Finalize stays idempotent after the GC finalized it.
	if res, err = admin.Finalize(ctx, id); err != nil || !res.Done {
		t.Fatalf("finalize after auto-finalize: %v %+v", err, res)
	}
}

func TestAutoFinalizeBelowCohortExpires(t *testing.T) {
	s, srv, admin, clock := newClockedStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{
		Feature: "f", Bits: 4, Gamma: 1, TTLSeconds: 60, AutoFinalize: true, MinCohort: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "only", RNG: frand.New(1)}
	if err := p.Participate(ctx, id, 5); err != nil {
		t.Fatal(err)
	}
	clock.Advance(61 * time.Second)
	s.Sweep()
	var se *StatusError
	if _, err := admin.Finalize(ctx, id); !errors.As(err, &se) || se.Code != wire.CodeExpired {
		t.Fatalf("under-cohort auto-finalize should expire, got %v", err)
	}
	_ = srv
}

func TestRetentionDropsEndedSessions(t *testing.T) {
	s, _, admin, clock := newClockedStack(t)
	s.Retention = time.Minute
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1, TTLSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(11 * time.Second)
	s.Sweep() // expires
	clock.Advance(2 * time.Minute)
	s.Sweep() // retention drops it
	var se *StatusError
	if _, err := admin.Result(ctx, id); !errors.As(err, &se) || se.Code != wire.CodeNotFound {
		t.Fatalf("retained session answered %v, want not_found after GC", err)
	}
}

// --- snapshot / restore -----------------------------------------------------

func TestSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	s1 := NewServer(1)
	srv1 := httptest.NewServer(s1)
	admin1 := &Admin{BaseURL: srv1.URL}

	// A live bit session with reports and assignments in flight.
	live, err := admin1.CreateSession(ctx, wire.SessionConfig{Feature: "live", Bits: 6, Gamma: 1, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := &Participant{BaseURL: srv1.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
		if err := p.Participate(ctx, live, uint64(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	// A client with an assignment but no report yet.
	pending := &Participant{BaseURL: srv1.URL, ClientID: "pending", RNG: frand.New(99)}
	pendingTask, err := pending.FetchTask(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	// A finalized threshold session.
	thr, err := admin1.CreateSession(ctx, wire.SessionConfig{
		Feature: "thr", Bits: 6, Thresholds: []uint64{8, 16, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		p := &Participant{BaseURL: srv1.URL, ClientID: fmt.Sprintf("t%d", i), RNG: frand.New(uint64(i))}
		if err := p.Participate(ctx, thr, uint64(i*5)); err != nil {
			t.Fatal(err)
		}
	}
	thrRes, err := admin1.Finalize(ctx, thr)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// Save to disk and restore into a fresh server, as fednumd does.
	path := t.TempDir() + "/snap.json"
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(2)
	if err := s2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	admin2 := &Admin{BaseURL: srv2.URL}

	// The pending client keeps its assignment across the restart.
	pending2 := &Participant{BaseURL: srv2.URL, ClientID: "pending", RNG: frand.New(99)}
	task2, err := pending2.FetchTask(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	if task2.Bit != pendingTask.Bit || task2.Epsilon != pendingTask.Epsilon {
		t.Fatalf("assignment changed across restart: %+v vs %+v", task2, pendingTask)
	}
	if err := pending2.Participate(ctx, live, 40); err != nil {
		t.Fatal(err)
	}
	// A pre-restart reporter retransmitting is still a duplicate.
	dup := &Participant{BaseURL: srv2.URL, ClientID: "c3", RNG: frand.New(3)}
	if err := dup.Participate(ctx, live, 6); err != nil {
		t.Fatalf("pre-restart client retransmitting: %v", err)
	}
	res, err := admin2.Finalize(ctx, live)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != 31 { // 30 before restart + pending, duplicate excluded
		t.Fatalf("reports after restart = %d, want 31", res.Reports)
	}
	// The finalized threshold session restored its result verbatim.
	thrRes2, err := admin2.Result(ctx, thr)
	if err != nil {
		t.Fatal(err)
	}
	if !thrRes2.Done || len(thrRes2.TailProbs) != len(thrRes.TailProbs) {
		t.Fatalf("threshold result lost in restart: %+v", thrRes2)
	}
	for i := range thrRes.TailProbs {
		if thrRes.TailProbs[i] != thrRes2.TailProbs[i] {
			t.Fatalf("tail probs drifted: %v vs %v", thrRes.TailProbs, thrRes2.TailProbs)
		}
	}
}

func TestLoadSnapshotMissingFileIsFirstBoot(t *testing.T) {
	s := NewServer(1)
	if err := s.LoadSnapshot(t.TempDir() + "/nope.json"); err != nil {
		t.Fatalf("missing snapshot file: %v", err)
	}
}

func TestRestoreRejectsCorruptSessions(t *testing.T) {
	s := NewServer(1)
	err := s.Restore(&Snapshot{Sessions: []SessionState{{ID: "x", Probs: []float64{0.5, 0.5}, Issued: []int{1}}}})
	if err == nil {
		t.Fatal("mismatched issued/probs accepted")
	}
}

// --- concurrency: swarm and dropout -----------------------------------------

// TestSwarmConcurrentOps hammers one session with participants, result
// polls, health checks and racing finalizes at once; every accepted report
// must be in the final cohort exactly once and every failure must be a
// typed protocol rejection, not a race artifact. Run under -race in CI.
func TestSwarmConcurrentOps(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "swarm", Bits: 8, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 150
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
			err := p.Participate(ctx, id, uint64(i%256))
			switch {
			case err == nil:
				accepted.Add(1)
			default:
				// Once a racing finalize wins, latecomers get typed
				// finalized errors (directly or via a rejected report).
				var se *StatusError
				if errors.As(err, &se) && se.Code == wire.CodeFinalized {
					return
				}
				t.Errorf("client %d: unexpected failure %v", i, err)
			}
		}(i)
	}
	// Concurrent result polls and health checks.
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := admin.Result(ctx, id); err != nil {
				t.Errorf("result poll: %v", err)
			}
			resp, err := http.Get(srv.URL + "/healthz")
			if err != nil {
				t.Errorf("healthz: %v", err)
				return
			}
			resp.Body.Close()
		}()
	}
	// Racing finalizes, held until part of the cohort has landed so the
	// aggregate is well-defined.
	finalErrs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := admin.Result(ctx, id)
				if err != nil {
					finalErrs <- err
					return
				}
				if res.Done || res.Reports >= clients/4 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			_, err := admin.Finalize(ctx, id)
			finalErrs <- err
		}()
	}
	wg.Wait()
	close(finalErrs)
	for err := range finalErrs {
		if err != nil {
			t.Fatalf("finalize: %v", err)
		}
	}
	res, err := admin.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("session not finalized")
	}
	if int64(res.Reports) != accepted.Load() {
		t.Fatalf("cohort %d != %d accepted participations", res.Reports, accepted.Load())
	}
}

// TestDropoutStillFinalizes assigns tasks to the whole fleet but has a
// fraction never report (§4.3 dropouts); finalize succeeds above MinCohort
// with exactly the reports that arrived.
func TestDropoutStillFinalizes(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	const fleet = 120
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "drop", Bits: 6, Gamma: 1, MinCohort: 70})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reportersDone := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := &Participant{BaseURL: srv.URL, ClientID: fmt.Sprintf("c%d", i), RNG: frand.New(uint64(i))}
			if i%3 == 0 { // a third of the fleet drops out after assignment
				_, err := p.FetchTask(ctx, id)
				reportersDone <- err
				return
			}
			reportersDone <- p.Participate(ctx, id, uint64(i%64))
		}(i)
	}
	wg.Wait()
	close(reportersDone)
	for err := range reportersDone {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatalf("finalize with dropouts: %v", err)
	}
	want := fleet - fleet/3 // ceil division: i%3==0 hits 40 of 120
	if res.Reports != want {
		t.Fatalf("reports = %d, want %d (dropouts excluded)", res.Reports, want)
	}
}
