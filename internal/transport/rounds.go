package transport

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// RoundKind names one lifecycle event kind in a session's round
// timeline. It is a distinct type so switches over it are checked for
// exhaustiveness by fedlint's exhaustenum analyzer: a renderer or
// aggregator that forgets a newly added kind fails the lint, not the
// operator reading an incomplete timeline.
type RoundKind string

// Round lifecycle event kinds, the Kind values of RoundEvent. Together
// they tell one session's story in order: creation, task assignments,
// each report's fate (with shed/ratelimit reasons), WAL commit latency,
// chaos faults seen, the straggler deadline firing, finalize, and the
// estimate emit.
const (
	RoundSessionCreate   RoundKind = "session_create"
	RoundTaskAssign      RoundKind = "task_assign"
	RoundReportAccept    RoundKind = "report_accept"
	RoundReportDuplicate RoundKind = "report_duplicate"
	RoundReportReject    RoundKind = "report_reject"
	RoundReportRatelimit RoundKind = "report_ratelimited"
	RoundShed            RoundKind = "shed"
	RoundWALCommit       RoundKind = "wal_commit"
	RoundChaosFault      RoundKind = "chaos_fault"
	RoundDeadline        RoundKind = "deadline"
	RoundFinalize        RoundKind = "finalize"
	RoundEstimate        RoundKind = "estimate"
	RoundExpire          RoundKind = "expire"
	// RoundPromote marks a failover takeover: the node serving this
	// timeline became primary mid-round (detail carries the new epoch).
	RoundPromote RoundKind = "promote"
)

// RoundEvent is one typed entry in a session's lifecycle timeline.
type RoundEvent struct {
	At     time.Time `json:"at"`
	Kind   RoundKind `json:"kind"`
	Client string    `json:"client,omitempty"`
	// Reason qualifies the kind: the shed/ratelimit/reject reason, the
	// finalize trigger (api or deadline), or the injected fault class.
	Reason string `json:"reason,omitempty"`
	// DurationMS carries the latency some kinds measure (wal_commit, the
	// ratelimit retry wait), in fractional milliseconds.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Detail is free-form extra context, e.g. the emitted estimate.
	Detail string `json:"detail,omitempty"`
}

// Bounds on the round timeline store: events kept per session, and
// sessions tracked at once (least-recently-touched evicted beyond that).
const (
	roundRingCap     = 256
	roundSessionsCap = 512
)

// roundRing is one session's bounded event timeline.
type roundRing struct {
	events  []RoundEvent
	next    int
	full    bool
	dropped uint64
	touched time.Time
}

// roundTable holds the per-session event rings. It has its own mutex and
// never acquires Server.mu, so Server code may record events while
// holding its lock. All methods are nil-safe: a nil table (tracing
// disabled) records nothing and costs nothing.
type roundTable struct {
	mu    sync.Mutex
	rings map[string]*roundRing
}

func newRoundTable() *roundTable {
	return &roundTable{rings: make(map[string]*roundRing)}
}

// event appends one entry to the session's ring, creating (and, beyond
// the table cap, evicting the least-recently-touched) as needed.
func (t *roundTable) event(at time.Time, session string, kind RoundKind, client, reason string, d time.Duration, detail string) {
	if t == nil || session == "" {
		return
	}
	ev := RoundEvent{At: at, Kind: kind, Client: client, Reason: reason, Detail: detail}
	if d > 0 {
		ev.DurationMS = float64(d.Nanoseconds()) / 1e6
	}
	t.mu.Lock()
	ring := t.rings[session]
	if ring == nil {
		if len(t.rings) >= roundSessionsCap {
			t.evictLocked()
		}
		ring = &roundRing{events: make([]RoundEvent, 0, roundRingCap)}
		t.rings[session] = ring
	}
	ring.touched = at
	if len(ring.events) < cap(ring.events) {
		ring.events = append(ring.events, ev)
	} else {
		ring.events[ring.next] = ev
		ring.next = (ring.next + 1) % len(ring.events)
		ring.full = true
		ring.dropped++
	}
	t.mu.Unlock()
}

// evictLocked drops the least-recently-touched session ring; the caller
// holds the lock.
func (t *roundTable) evictLocked() {
	var oldest string
	var oldestAt time.Time
	first := true
	for id, ring := range t.rings {
		if first || ring.touched.Before(oldestAt) {
			oldest, oldestAt, first = id, ring.touched, false
		}
	}
	if oldest != "" {
		delete(t.rings, oldest)
	}
}

// delete drops one session's timeline (retention GC).
func (t *roundTable) delete(session string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.rings, session)
	t.mu.Unlock()
}

// events returns a copy of the session's timeline, oldest first, plus the
// overwrite count.
func (t *roundTable) eventsOf(session string) ([]RoundEvent, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ring := t.rings[session]
	if ring == nil {
		return nil, 0
	}
	out := make([]RoundEvent, 0, len(ring.events))
	if ring.full {
		out = append(out, ring.events[ring.next:]...)
		out = append(out, ring.events[:ring.next]...)
	} else {
		out = append(out, ring.events...)
	}
	return out, ring.dropped
}

// RoundSummary is one row of the /debug/rounds session listing.
type RoundSummary struct {
	SessionID string    `json:"session_id"`
	Events    int       `json:"events"`
	Dropped   uint64    `json:"dropped,omitempty"`
	LastEvent time.Time `json:"last_event"`
}

// summaries lists the tracked sessions, most recently touched first.
func (t *roundTable) summaries() []RoundSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RoundSummary, 0, len(t.rings))
	for id, ring := range t.rings {
		n := len(ring.events)
		out = append(out, RoundSummary{
			SessionID: id, Events: n, Dropped: ring.dropped, LastEvent: ring.touched,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].LastEvent.Equal(out[j].LastEvent) {
			return out[i].LastEvent.After(out[j].LastEvent)
		}
		return out[i].SessionID < out[j].SessionID
	})
	return out
}

// RoundTimeline is the JSON envelope /debug/rounds/{session} serves.
type RoundTimeline struct {
	SessionID string       `json:"session_id"`
	Events    []RoundEvent `json:"events"`
	Dropped   uint64       `json:"dropped,omitempty"`
}

// roundEvent records one timeline entry when the round store is armed
// (SetTracer); disabled it is a nil-check and costs nothing. Safe to call
// with or without s.mu held — the table has its own lock.
func (s *Server) roundEvent(session string, kind RoundKind, client, reason string, d time.Duration, detail string) {
	rt := s.rounds.Load()
	if rt == nil {
		return
	}
	rt.event(s.now(), session, kind, client, reason, d, detail)
}

// RecordRoundEvent appends one externally observed event to a session's
// timeline — the hook chaos glue uses to stamp injected fault classes
// into the round story. A server without SetTracer records nothing.
func (s *Server) RecordRoundEvent(sessionID string, kind RoundKind, client, reason string, d time.Duration) {
	s.roundEvent(sessionID, kind, client, reason, d, "")
}

// RoundEvents returns a copy of one session's recorded timeline, oldest
// first; nil when the round store is disabled or the session unknown.
func (s *Server) RoundEvents(sessionID string) []RoundEvent {
	evs, _ := s.rounds.Load().eventsOf(sessionID)
	return evs
}

// RoundSessions lists the sessions with recorded timelines, most recently
// active first.
func (s *Server) RoundSessions() []RoundSummary {
	return s.rounds.Load().summaries()
}

// RoundsHandler serves the round timelines as JSON: GET /debug/rounds
// lists tracked sessions, GET /debug/rounds/{session} returns one
// session's event timeline. Mount it on the admin listener next to
// /debug/trace.
func (s *Server) RoundsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/rounds", func(w http.ResponseWriter, _ *http.Request) {
		writeDebugJSON(w, s.RoundSessions())
	})
	mux.HandleFunc("GET /debug/rounds/{session}", func(w http.ResponseWriter, r *http.Request) {
		session := r.PathValue("session")
		evs, dropped := s.rounds.Load().eventsOf(session)
		if evs == nil {
			http.Error(w, "transport: no round timeline for session "+session, http.StatusNotFound)
			return
		}
		writeDebugJSON(w, RoundTimeline{SessionID: session, Events: evs, Dropped: dropped})
	})
	return mux
}

// writeDebugJSON writes an indented debug payload; a failure means the
// scraper hung up.
func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// SessionFromPath extracts the session id from a protocol URL path
// (/v1/sessions/{id}/...), or "" — the glue chaos middleware hooks use to
// aim fault events at the right round timeline.
func SessionFromPath(path string) string {
	const prefix = "/v1/sessions/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	rest := path[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
