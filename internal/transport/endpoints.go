package transport

import (
	"strings"
	"sync"
)

// EndpointList is a client's view of a replicated deployment: an ordered
// list of server base URLs of which the first healthy one wins. Requests
// go to Current; a transport failure advances past the dead node, and a
// CodeNotPrimary answer carrying a leader hint jumps straight to the
// node the replica pointed at (SetLeader). Share one list between the
// Admin and the Participants of a run so the whole fleet converges on
// the new primary after a single discovery instead of each client
// re-learning it.
//
// The zero value is unusable; build one with NewEndpointList. All
// methods are safe for concurrent use.
type EndpointList struct {
	mu   sync.Mutex
	urls []string
	cur  int
}

// NewEndpointList parses a comma-separated endpoint list, e.g.
// "http://a:8080,http://b:8080". Whitespace around entries and trailing
// slashes are trimmed; empty entries are dropped.
func NewEndpointList(csv string) *EndpointList {
	e := &EndpointList{}
	for _, u := range strings.Split(csv, ",") {
		if u = normalizeEndpoint(u); u != "" {
			e.urls = append(e.urls, u)
		}
	}
	return e
}

func normalizeEndpoint(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// Current returns the endpoint requests should target now, "" when the
// list is empty.
func (e *EndpointList) Current() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.urls) == 0 {
		return ""
	}
	return e.urls[e.cur]
}

// Advance rotates to the next endpoint, but only if Current still is
// from — the endpoint the caller just watched fail. Concurrent callers
// failing against the same node advance it once, not once each, so a
// burst of failures cannot spin the list past the healthy node.
func (e *EndpointList) Advance(from string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.urls) < 2 {
		return
	}
	if e.urls[e.cur] == from {
		e.cur = (e.cur + 1) % len(e.urls)
	}
}

// SetLeader points Current at u — the leader hint a replica's
// not_primary answer carried. An endpoint the list has never seen is
// appended: the hint is better information than the static config.
func (e *EndpointList) SetLeader(u string) {
	if u = normalizeEndpoint(u); u == "" {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, known := range e.urls {
		if known == u {
			e.cur = i
			return
		}
	}
	e.urls = append(e.urls, u)
	e.cur = len(e.urls) - 1
}

// URLs returns a copy of the endpoint list in configured order.
func (e *EndpointList) URLs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.urls...)
}

// Len returns the number of endpoints.
func (e *EndpointList) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.urls)
}
