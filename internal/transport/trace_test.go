package transport

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/frand"
	"repro/internal/trace"
	"repro/internal/transport/wire"
)

// TestTracePropagationEndToEnd runs one full client protocol pass against a
// traced server and checks the wire contract: the client and server record
// into separate recorders, yet every server span carries the client's trace
// id and parents to exactly the client attempt that produced it.
func TestTracePropagationEndToEnd(t *testing.T) {
	s := NewServer(1)
	srec := trace.NewRecorder(trace.DefaultCapacity)
	s.SetTracer(srec)
	srv := httptest.NewServer(s)
	defer srv.Close()

	crec := trace.NewRecorder(trace.DefaultCapacity)
	admin := &Admin{BaseURL: srv.URL, Tracer: crec}
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &Participant{BaseURL: srv.URL, ClientID: "c1", RNG: frand.New(7), Tracer: crec,
		Retry: &RetryPolicy{MaxAttempts: 3}}
	if err := p.Participate(ctx, id, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Finalize(ctx, id); err != nil {
		t.Fatal(err)
	}

	attempts := map[string]string{} // span id -> trace id
	var participateTrace string
	for _, d := range crec.Spans() {
		switch d.Name {
		case "client.attempt":
			attempts[d.SpanID] = d.TraceID
		case "client.participate":
			participateTrace = d.TraceID
		}
	}
	if len(attempts) == 0 {
		t.Fatal("no client.attempt spans recorded")
	}
	if participateTrace == "" {
		t.Fatal("no client.participate span recorded")
	}

	serverSpans := 0
	for _, d := range srec.Spans() {
		if !strings.HasPrefix(d.Name, "server ") {
			continue
		}
		serverSpans++
		if !d.Remote {
			t.Errorf("server span %s has a local parent; want remote", d.Name)
		}
		wantTrace, ok := attempts[d.Parent]
		if !ok {
			t.Errorf("server span %s parent %q is not a client attempt", d.Name, d.Parent)
			continue
		}
		if d.TraceID != wantTrace {
			t.Errorf("server span %s trace %q != client attempt trace %q", d.Name, d.TraceID, wantTrace)
		}
	}
	// create_session + task + report + finalize at minimum.
	if serverSpans < 4 {
		t.Errorf("server recorded %d request spans, want >= 4", serverSpans)
	}

	// The report path must have seen exactly one trace: the participate
	// span's. FetchTask/SubmitReport nest under it.
	for _, d := range srec.Filter(trace.Filter{Name: "server /v1/sessions/{id}/reports"}) {
		if d.TraceID != participateTrace {
			t.Errorf("report span trace %q != participate trace %q", d.TraceID, participateTrace)
		}
	}
}

// TestRoundTimelineLifecycle drives a session through its whole life and
// checks the typed event story /debug/rounds tells.
func TestRoundTimelineLifecycle(t *testing.T) {
	s := NewServer(1)
	s.SetTracer(trace.NewRecorder(64))
	ctx := context.Background()

	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	task, err := s.AssignTask(ctx, id, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitReport(ctx, id, wire.Report{ClientID: "c1", Bit: task.Bit, Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Duplicate: same report again.
	if ack, err := s.SubmitReport(ctx, id, wire.Report{ClientID: "c1", Bit: task.Bit, Value: 1}); err != nil || !ack.Duplicate {
		t.Fatalf("duplicate submit = %+v, %v", ack, err)
	}
	// Conflict: same client, different value.
	if ack, _ := s.SubmitReport(ctx, id, wire.Report{ClientID: "c1", Bit: task.Bit, Value: 0}); ack.Accepted {
		t.Fatal("conflicting report accepted")
	}
	if _, err := s.Finalize(ctx, id); err != nil {
		t.Fatal(err)
	}

	kinds := map[RoundKind]int{}
	var rejectReason string
	for _, ev := range s.RoundEvents(id) {
		kinds[ev.Kind]++
		if ev.Kind == RoundReportReject {
			rejectReason = ev.Reason
		}
	}
	for _, want := range []RoundKind{RoundSessionCreate, RoundTaskAssign, RoundReportAccept,
		RoundReportDuplicate, RoundReportReject, RoundFinalize, RoundEstimate} {
		if kinds[want] == 0 {
			t.Errorf("timeline missing %s event (got %v)", want, kinds)
		}
	}
	if rejectReason != ReportConflict {
		t.Errorf("reject reason = %q, want %q", rejectReason, ReportConflict)
	}

	// The HTTP views agree with the programmatic ones.
	h := s.RoundsHandler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/rounds", nil))
	var list []RoundSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if len(list) != 1 || list[0].SessionID != id {
		t.Fatalf("session list = %+v, want one entry for %s", list, id)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/rounds/"+id, nil))
	var tl RoundTimeline
	if err := json.Unmarshal(rr.Body.Bytes(), &tl); err != nil {
		t.Fatalf("timeline decode: %v", err)
	}
	if len(tl.Events) != len(s.RoundEvents(id)) {
		t.Errorf("HTTP timeline has %d events, programmatic %d", len(tl.Events), len(s.RoundEvents(id)))
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/rounds/ghost", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", rr.Code)
	}
}

// TestRoundTimelineDisabled: without SetTracer nothing is recorded and the
// accessors stay nil-safe.
func TestRoundTimelineDisabled(t *testing.T) {
	s := NewServer(1)
	ctx := context.Background()
	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if evs := s.RoundEvents(id); evs != nil {
		t.Errorf("disabled timeline recorded %d events", len(evs))
	}
	if ss := s.RoundSessions(); ss != nil {
		t.Errorf("disabled timeline lists %d sessions", len(ss))
	}
	s.RecordRoundEvent(id, RoundChaosFault, "", "delay", 0) // must not panic
}

// TestRoundRingOverwrite fills one session's ring past capacity and checks
// oldest-first ordering plus the drop counter.
func TestRoundRingOverwrite(t *testing.T) {
	rt := newRoundTable()
	base := time.Unix(0, 0)
	total := roundRingCap + 10
	for i := 0; i < total; i++ {
		rt.event(base.Add(time.Duration(i)*time.Millisecond), "s", RoundTaskAssign, "", "", 0, "")
	}
	evs, dropped := rt.eventsOf("s")
	if len(evs) != roundRingCap {
		t.Fatalf("ring holds %d events, want %d", len(evs), roundRingCap)
	}
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("events out of order at %d", i)
		}
	}
	if want := base.Add(10 * time.Millisecond); !evs[0].At.Equal(want) {
		t.Errorf("oldest surviving event at %v, want %v", evs[0].At, want)
	}
}

// TestRoundTableEviction checks the LRU bound on tracked sessions.
func TestRoundTableEviction(t *testing.T) {
	rt := newRoundTable()
	base := time.Unix(0, 0)
	for i := 0; i < roundSessionsCap+1; i++ {
		id := "s" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		rt.event(base.Add(time.Duration(i)*time.Second), id, RoundSessionCreate, "", "", 0, "")
	}
	rt.mu.Lock()
	n := len(rt.rings)
	_, oldestAlive := rt.rings["sA00"]
	rt.mu.Unlock()
	if n != roundSessionsCap {
		t.Errorf("table holds %d sessions, want %d", n, roundSessionsCap)
	}
	if oldestAlive {
		t.Error("least-recently-touched session survived eviction")
	}
}

func TestSessionFromPath(t *testing.T) {
	cases := map[string]string{
		"/v1/sessions/abc/reports": "abc",
		"/v1/sessions/abc":         "abc",
		"/v1/sessions/":            "",
		"/metrics":                 "",
		"/v1/sessions/x/task":      "x",
	}
	for in, want := range cases {
		if got := SessionFromPath(in); got != want {
			t.Errorf("SessionFromPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTracingDisabledReportAllocs is the hot-path guarantee the tracing
// layer ships with: with no recorder attached, the duplicate-submit path —
// the pure in-memory fast path, measured at 0 allocs/op before tracing
// existed — still allocates nothing.
func TestTracingDisabledReportAllocs(t *testing.T) {
	s := NewServer(1)
	ctx := context.Background()
	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	task, err := s.AssignTask(ctx, id, "c1")
	if err != nil {
		t.Fatal(err)
	}
	rep := wire.Report{ClientID: "c1", Bit: task.Bit, Value: 1}
	if _, err := s.SubmitReport(ctx, id, rep); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.SubmitReport(ctx, id, rep); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("duplicate submit with tracing disabled allocates %.1f/op, want 0", allocs)
	}
}

// TestTracingEnabledRecordsSubmitSpan sanity-checks the armed path: the
// same programmatic submit records a span and a timeline event.
func TestTracingEnabledRecordsSubmitSpan(t *testing.T) {
	s := NewServer(1)
	rec := trace.NewRecorder(64)
	s.SetTracer(rec)
	ctx := trace.WithRecorder(context.Background(), rec)
	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	task, err := s.AssignTask(ctx, id, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitReport(ctx, id, wire.Report{ClientID: "c1", Bit: task.Bit, Value: 1}); err != nil {
		t.Fatal(err)
	}
	subs := rec.Filter(trace.Filter{Name: "server.submit_report"})
	if len(subs) != 1 {
		t.Fatalf("submit spans = %d, want 1", len(subs))
	}
	if got := subs[0].Attr("result"); got != ReportAccepted {
		t.Errorf("submit span result = %q, want %q", got, ReportAccepted)
	}
	if got := subs[0].Attr("session"); got != id {
		t.Errorf("submit span session = %q, want %q", got, id)
	}
}
