package transport

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/frand"
	"repro/internal/transport/wire"
)

func TestEndpointListParsingAndRotation(t *testing.T) {
	e := NewEndpointList(" http://a:1/ ,http://b:2,,http://c:3")
	if got := e.URLs(); len(got) != 3 || got[0] != "http://a:1" || got[1] != "http://b:2" || got[2] != "http://c:3" {
		t.Fatalf("parsed %v", got)
	}
	if e.Current() != "http://a:1" {
		t.Fatalf("current = %q", e.Current())
	}
	e.Advance("http://a:1")
	if e.Current() != "http://b:2" {
		t.Fatalf("after advance: %q", e.Current())
	}
	// Advancing from a stale observation is a no-op: the list already
	// moved past that node.
	e.Advance("http://a:1")
	if e.Current() != "http://b:2" {
		t.Fatalf("stale advance moved the list: %q", e.Current())
	}
	// A leader hint for an unknown node appends and selects it.
	e.SetLeader("http://d:4/")
	if e.Current() != "http://d:4" || e.Len() != 4 {
		t.Fatalf("after SetLeader: current %q len %d", e.Current(), e.Len())
	}
	// A hint for a known node just selects it.
	e.SetLeader("http://a:1")
	if e.Current() != "http://a:1" || e.Len() != 4 {
		t.Fatalf("after known SetLeader: current %q len %d", e.Current(), e.Len())
	}
	// A single-endpoint list never rotates.
	one := NewEndpointList("http://only:1")
	one.Advance("http://only:1")
	if one.Current() != "http://only:1" {
		t.Fatal("single-endpoint list rotated")
	}
}

// TestClientFailsOverToPrimary drives the satellite behaviour end to
// end: a client pointed at [standby, primary] lands on the standby, is
// refused with not_primary plus a leader hint, and transparently
// retries against the primary — one extra round trip, no caller-visible
// error.
func TestClientFailsOverToPrimary(t *testing.T) {
	primary := NewServer(1)
	tsPrimary := httptest.NewServer(primary)
	defer tsPrimary.Close()

	standby := NewServer(2)
	standby.SetRole(RoleStandby)
	standby.SetLeaderHint(tsPrimary.URL)
	tsStandby := httptest.NewServer(standby)
	defer tsStandby.Close()

	eps := NewEndpointList(tsStandby.URL + "," + tsPrimary.URL)
	rp := &RetryPolicy{MaxAttempts: 3, Seed: 1}
	admin := &Admin{Endpoints: eps, Retry: rp}
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatalf("create via standby-first list: %v", err)
	}
	if eps.Current() != tsPrimary.URL {
		t.Errorf("list did not converge on the leader: %q", eps.Current())
	}

	// The participant shares the already-converged list: first try hits
	// the primary directly.
	p := &Participant{Endpoints: eps, ClientID: "c1", RNG: frand.New(3), Retry: rp}
	if err := p.Participate(ctx, id, 9); err != nil {
		t.Fatalf("participate: %v", err)
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != 1 {
		t.Errorf("reports = %d, want 1", res.Reports)
	}
}

// TestClientFailsOverPastDeadNode checks the transport-error leg: the
// first endpoint refuses connections entirely and the client advances
// to the live one.
func TestClientFailsOverPastDeadNode(t *testing.T) {
	live := NewServer(1)
	tsLive := httptest.NewServer(live)
	defer tsLive.Close()

	// A listener that is immediately closed: connection refused.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	eps := NewEndpointList(deadURL + "," + tsLive.URL)
	admin := &Admin{Endpoints: eps, Retry: &RetryPolicy{MaxAttempts: 3, Seed: 1}}
	if _, err := admin.CreateSession(context.Background(), wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1}); err != nil {
		t.Fatalf("create past dead node: %v", err)
	}
	if eps.Current() != tsLive.URL {
		t.Errorf("list still points at the dead node: %q", eps.Current())
	}
}

// TestNotPrimaryWithoutAlternativeIsFatal pins the "not retryable
// against the same endpoint" half of the code's contract: with nowhere
// else to go, the client gives up immediately instead of hammering a
// node that told it no.
func TestNotPrimaryWithoutAlternativeIsFatal(t *testing.T) {
	standby := NewServer(1)
	standby.SetRole(RoleStandby)
	ts := httptest.NewServer(standby)
	defer ts.Close()

	attempts := 0
	rp := &RetryPolicy{MaxAttempts: 5, Seed: 1,
		sleep: func(ctx context.Context, d time.Duration) error { attempts++; return nil }}
	admin := &Admin{BaseURL: ts.URL, Retry: rp}
	_, err := admin.CreateSession(context.Background(), wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != wire.CodeNotPrimary {
		t.Fatalf("err = %v, want not_primary StatusError", err)
	}
	if se.Failover {
		t.Error("Failover set with a single-endpoint list")
	}
	if Retryable(err) {
		t.Error("not_primary with no alternative classified retryable")
	}
	if attempts != 0 {
		t.Errorf("client backed off %d times against a node that said not_primary", attempts)
	}
}

// TestEndpointListConcurrentAdvance audits the rotation's
// compare-before-advance under the race detector: a burst of clients
// that all watched the same endpoint fail must advance the list once —
// not once each, which would spin the rotation past the healthy node.
func TestEndpointListConcurrentAdvance(t *testing.T) {
	e := NewEndpointList("http://a:1,http://b:2,http://c:3")
	failed := e.Current()
	var wg sync.WaitGroup
	for range 32 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Advance(failed)
		}()
	}
	wg.Wait()
	if got := e.Current(); got != "http://b:2" {
		t.Fatalf("32 concurrent Advance(%q) calls landed on %q, want one step to http://b:2", failed, got)
	}
}

// TestEndpointListConcurrentChurn storms rotation, leader hints, and
// readers together; the invariant is only that Current always names a
// member of the list (the race detector does the rest).
func TestEndpointListConcurrentChurn(t *testing.T) {
	e := NewEndpointList("http://a:1,http://b:2,http://c:3")
	known := map[string]bool{"http://a:1": true, "http://b:2": true, "http://c:3": true}
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 200 {
				e.Advance(e.Current())
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range 200 {
			if i%2 == 0 {
				e.SetLeader("http://b:2")
			} else {
				e.SetLeader("http://c:3")
			}
		}
	}()
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 200 {
				if cur := e.Current(); !known[cur] {
					t.Errorf("Current returned %q, not a list member", cur)
					return
				}
				if n := e.Len(); n != len(e.URLs()) {
					t.Errorf("Len %d disagrees with URLs", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}
