package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/frand"
	"repro/internal/transport/wire"
)

// postBinary posts body as a binary batch frame and returns the HTTP
// status.
func postBinary(t *testing.T, base, sessionID string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+sessionID+"/reports", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ReportBatchContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestMixedCodecSession interleaves JSON single-report submissions and
// binary batches against one session over the real HTTP stack, checking
// that the two codecs share one acceptance machine: a report accepted
// on either codec re-acks as a duplicate on the other, a conflicting
// value is rejected on both, and the per-record rejections come back as
// the matching ack statuses.
func TestMixedCodecSession(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "mixed", Bits: 2, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	bits := make(map[string]int)
	for i := 0; i < 4; i++ {
		c := fmt.Sprintf("c%d", i)
		p := &Participant{BaseURL: srv.URL, ClientID: c, RNG: frand.New(uint64(i) + 1)}
		task, err := p.FetchTask(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		bits[c] = task.Bit
	}

	// JSON first: c0 reports 1.
	p0 := &Participant{BaseURL: srv.URL, ClientID: "c0", RNG: frand.New(9)}
	ack, err := p0.SubmitReport(ctx, id, wire.Report{ClientID: "c0", Bit: bits["c0"], Value: 1})
	if err != nil || !ack.Accepted || ack.Duplicate {
		t.Fatalf("JSON accept ack %+v, err %v", ack, err)
	}

	// One binary batch exercising every per-record outcome against the
	// same session state the JSON report just created.
	br := &BinaryReporter{BaseURL: srv.URL}
	adds := []struct {
		client string
		bit    int
		value  uint64
		want   wire.AckStatus
	}{
		{"c0", bits["c0"], 1, wire.AckDuplicate},    // JSON-accepted, binary retransmission
		{"c0", bits["c0"], 0, wire.AckConflict},     // JSON-accepted, conflicting value
		{"c1", bits["c1"], 1, wire.AckAccepted},     // fresh accept via binary
		{"ghost", 0, 1, wire.AckNoTask},             // never assigned
		{"c2", bits["c2"] ^ 1, 1, wire.AckWrongBit}, // off-assignment bit
		{"c3", bits["c3"], 7, wire.AckInvalidValue}, // not a bit
	}
	for _, a := range adds {
		if err := br.Add(a.client, a.bit, a.value); err != nil {
			t.Fatal(err)
		}
	}
	acks, err := br.Flush(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != len(adds) {
		t.Fatalf("got %d acks for %d records", len(acks), len(adds))
	}
	for i, a := range adds {
		if acks[i] != a.want {
			t.Errorf("record %d (%s bit=%d value=%d): ack %v, want %v",
				i, a.client, a.bit, a.value, acks[i], a.want)
		}
	}

	// Back to JSON: the binary-accepted report must re-ack as a duplicate
	// and its conflicting retransmission must be rejected — identical
	// idempotency whichever codec accepted it.
	p1 := &Participant{BaseURL: srv.URL, ClientID: "c1", RNG: frand.New(10)}
	ack, err = p1.SubmitReport(ctx, id, wire.Report{ClientID: "c1", Bit: bits["c1"], Value: 1})
	if err != nil || !ack.Accepted || !ack.Duplicate {
		t.Fatalf("cross-codec duplicate ack %+v, err %v", ack, err)
	}
	ack, err = p1.SubmitReport(ctx, id, wire.Report{ClientID: "c1", Bit: bits["c1"], Value: 0})
	if err != nil || ack.Accepted {
		t.Fatalf("cross-codec conflict ack %+v, err %v", ack, err)
	}

	// Finish the stragglers on the binary codec and finalize: exactly the
	// four accepted reports count, whichever codec carried them.
	if err := br.Add("c2", bits["c2"], 0); err != nil {
		t.Fatal(err)
	}
	if err := br.Add("c3", bits["c3"], 1); err != nil {
		t.Fatal(err)
	}
	if acks, err = br.Flush(ctx, id); err != nil {
		t.Fatal(err)
	}
	for i, st := range acks {
		if st != wire.AckAccepted {
			t.Fatalf("straggler %d ack %v", i, st)
		}
	}
	res, err := admin.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Reports != 4 {
		t.Fatalf("finalized result %+v, want 4 reports", res)
	}
}

// TestBatchFramingRejected drives malformed binary bodies through the
// negotiated route: framing violations must come back as plain 400s
// without touching session state.
func TestBatchFramingRejected(t *testing.T) {
	srv, admin := newTestStack(t)
	ctx := context.Background()
	id, err := admin.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 2, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendReportBatch(nil, []wire.Report{{ClientID: "c", Bit: 0, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string][]byte{
		"truncated":   frame[:len(frame)-2],
		"bad magic":   append([]byte("XXXX"), frame[4:]...),
		"corrupt crc": append(append([]byte(nil), frame[:len(frame)-1]...), frame[len(frame)-1]^0xff),
	} {
		resp := postBinary(t, srv.URL, id, body)
		if resp != 400 {
			t.Errorf("%s: status %d, want 400", name, resp)
		}
	}
	res, err := admin.Result(ctx, id)
	if err != nil || res.Reports != 0 {
		t.Fatalf("malformed frames left state behind: %+v, err %v", res, err)
	}
}

// TestBatchUnknownSession checks whole-batch failures use the JSON
// error envelope and its status codes.
func TestBatchUnknownSession(t *testing.T) {
	srv, _ := newTestStack(t)
	frame, err := wire.AppendReportBatch(nil, []wire.Report{{ClientID: "c", Bit: 0, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if status := postBinary(t, srv.URL, "nope", frame); status != 404 {
		t.Fatalf("unknown session batch status %d, want 404", status)
	}
}

// TestBatchConcurrentSwarm hammers a small set of hot sessions from
// many goroutines mixing both codecs — fresh accepts, retransmissions,
// snapshot and listing readers — and then checks no accepted report was
// lost or double-counted. Run under -race this is the striped table's
// interleaving certificate.
func TestBatchConcurrentSwarm(t *testing.T) {
	s := NewServer(11)
	ctx := context.Background()
	const sessions = 3
	const workers = 8
	const perWorker = 40
	ids := make([]string, sessions)
	for i := range ids {
		id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: fmt.Sprintf("f%d", i), Bits: 3, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers*sessions+4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si, id := range ids {
				var reports []wire.Report
				for k := 0; k < perWorker; k++ {
					c := fmt.Sprintf("w%d-s%d-c%d", w, si, k)
					task, err := s.AssignTask(ctx, id, c)
					if err != nil {
						errc <- err
						return
					}
					reports = append(reports, wire.Report{ClientID: c, Bit: task.Bit, Value: uint64(k & 1)})
				}
				if w%2 == 0 {
					// Binary batch, submitted twice: second pass must be
					// all duplicates.
					frame, err := wire.AppendReportBatch(nil, reports)
					if err != nil {
						errc <- err
						return
					}
					for pass := 0; pass < 2; pass++ {
						acks, err := s.ingestBatchFrame(ctx, id, frame, nil)
						if err != nil {
							errc <- err
							return
						}
						for _, st := range acks {
							if !st.OK() {
								errc <- fmt.Errorf("swarm ack %v", st)
								return
							}
						}
					}
				} else {
					// JSON singles, each retransmitted once.
					for _, rep := range reports {
						for pass := 0; pass < 2; pass++ {
							ack, err := s.SubmitReport(ctx, id, rep)
							if err != nil {
								errc <- err
								return
							}
							if !ack.Accepted {
								errc <- fmt.Errorf("swarm rejection %+v", ack)
								return
							}
						}
					}
				}
			}
		}(w)
	}
	// Concurrent readers: listings, progress views and snapshots must
	// never tear or race against the striped writers.
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			s.Sessions()
			_ = s.Snapshot()
			for _, id := range ids {
				if _, err := s.Result(id); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stopRead)
	rg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for _, id := range ids {
		res, err := s.Finalize(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if want := workers * perWorker; res.Reports != want {
			t.Fatalf("session %s finalized with %d reports, want %d", id, res.Reports, want)
		}
	}
}

// TestBatchIngestAllocs pins the warm binary submit path at zero
// allocations per batch with tracing off: a retransmitted frame (every
// record a duplicate) must run the decoder, the acceptance machine and
// the ack assembly without touching the heap.
func TestBatchIngestAllocs(t *testing.T) {
	s := NewServer(5)
	ctx := context.Background()
	id, err := s.CreateSession(ctx, wire.SessionConfig{Feature: "f", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var reports []wire.Report
	for i := 0; i < n; i++ {
		c := fmt.Sprintf("client-%03d", i)
		task, err := s.AssignTask(ctx, id, c)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, wire.Report{ClientID: c, Bit: task.Bit, Value: 1})
	}
	frame, err := wire.AppendReportBatch(nil, reports)
	if err != nil {
		t.Fatal(err)
	}
	acks := make([]wire.AckStatus, 0, n)
	// First pass accepts (and allocates — map inserts, key strings); the
	// guard measures the warm path.
	acks, err = s.ingestBatchFrame(ctx, id, frame, acks[:0])
	if err != nil || len(acks) != n {
		t.Fatalf("warmup: %d acks, err %v", len(acks), err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		acks, err = s.ingestBatchFrame(ctx, id, frame, acks[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range acks {
			if st != wire.AckDuplicate {
				t.Fatalf("warm ack %v", st)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("warm binary batch ingest allocates %.1f/op, want 0", allocs)
	}
}
