package transport

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/workload"
)

func adaptiveDevices(srv string, values []uint64, seed uint64) []Device {
	root := frand.New(seed)
	devices := make([]Device, len(values))
	for i, v := range values {
		devices[i] = Device{
			Participant: Participant{
				BaseURL:  srv,
				ClientID: fmt.Sprintf("adev-%d", i),
				RNG:      root.Split(),
			},
			Value: v,
		}
	}
	return devices
}

func TestAdaptiveCampaign(t *testing.T) {
	srv, admin := newTestStack(t)
	// Values occupy ~10 bits inside a 16-bit budget: the learned round-2
	// allocation must drop the vacuous high bits.
	values := fixedpoint.MustCodec(16, 0, 1).EncodeAll(
		workload.Normal{Mu: 700, Sigma: 90}.Sample(frand.New(1), 3000))
	truth := fixedpoint.Mean(values)
	devices := adaptiveDevices(srv.URL, values, 2)

	out, err := RunAdaptiveCampaign(context.Background(), admin, AdaptiveSpec{
		Feature: "lat", Bits: 16,
	}, devices, frand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Participated != 3000 {
		t.Errorf("participated %d of 3000", out.Participated)
	}
	if nrmse := math.Abs(out.Estimate-truth) / truth; nrmse > 0.05 {
		t.Fatalf("campaign estimate %v vs truth %v", out.Estimate, truth)
	}
	for j := 11; j < 16; j++ {
		if out.Probs2[j] != 0 {
			t.Errorf("vacuous bit %d kept round-2 probability %v", j, out.Probs2[j])
		}
	}
	if !out.Round1.Done || !out.Round2.Done {
		t.Error("rounds not finalized")
	}
	if out.Round1.Reports+out.Round2.Reports != 3000 {
		t.Errorf("round reports %d + %d", out.Round1.Reports, out.Round2.Reports)
	}
}

func TestAdaptiveCampaignWithLDP(t *testing.T) {
	srv, admin := newTestStack(t)
	values := fixedpoint.MustCodec(12, 0, 1).EncodeAll(
		workload.Normal{Mu: 400, Sigma: 60}.Sample(frand.New(4), 6000))
	truth := fixedpoint.Mean(values)
	devices := adaptiveDevices(srv.URL, values, 5)

	out, err := RunAdaptiveCampaign(context.Background(), admin, AdaptiveSpec{
		Feature: "lat", Bits: 12, Epsilon: 2, SquashThreshold: 0.04,
	}, devices, frand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if nrmse := math.Abs(out.Estimate-truth) / truth; nrmse > 0.2 {
		t.Fatalf("LDP campaign estimate %v vs truth %v", out.Estimate, truth)
	}
}

func TestAdaptiveCampaignValidation(t *testing.T) {
	_, admin := newTestStack(t)
	ctx := context.Background()
	if _, err := RunAdaptiveCampaign(ctx, admin, AdaptiveSpec{Feature: "f", Bits: 8},
		[]Device{{}}, frand.New(1)); err == nil {
		t.Error("single device accepted")
	}
	devices := adaptiveDevices("http://unused", []uint64{1, 2, 3}, 7)
	if _, err := RunAdaptiveCampaign(ctx, admin, AdaptiveSpec{Feature: "f", Bits: 8, Delta: 2},
		devices, frand.New(1)); err == nil {
		t.Error("delta=2 accepted")
	}
}

func TestAdaptiveCampaignToleratesFailingDevices(t *testing.T) {
	srv, admin := newTestStack(t)
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 300, Sigma: 40}.Sample(frand.New(8), 2000))
	devices := adaptiveDevices(srv.URL, values, 9)
	// A tenth of the fleet points at a dead server (hard dropout).
	for i := 0; i < 200; i++ {
		devices[i].BaseURL = "http://127.0.0.1:1"
	}
	truth := fixedpoint.Mean(values)
	out, err := RunAdaptiveCampaign(context.Background(), admin, AdaptiveSpec{
		Feature: "lat", Bits: 10,
	}, devices, frand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Participated < 1700 || out.Participated > 1800 {
		t.Errorf("participated = %d, want ~1800", out.Participated)
	}
	if nrmse := math.Abs(out.Estimate-truth) / truth; nrmse > 0.08 {
		t.Fatalf("estimate %v vs truth %v under device failures", out.Estimate, truth)
	}
}
