package transport

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/transport/wire"
	"repro/internal/wal"
)

// newWALServer returns a server logging into a fresh WAL under dir.
func newWALServer(t *testing.T, dir string, seed uint64) (*Server, *wal.WAL) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(seed)
	s.AttachWAL(w)
	return s, w
}

// driveTraffic runs a representative mutation mix: a bit session with
// reports and a finalize, plus a second session left in flight.
func driveTraffic(t *testing.T, s *Server) (doneID, openID string) {
	t.Helper()
	doneID, err := s.CreateSession(context.Background(), wire.SessionConfig{Feature: "walled", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		client := fmt.Sprintf("c-%d", i)
		task, err := s.AssignTask(context.Background(), doneID, client)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := s.SubmitReport(context.Background(), doneID, wire.Report{ClientID: client, Bit: task.Bit, Value: uint64(i % 2)})
		if err != nil || !ack.Accepted {
			t.Fatalf("report %d: ack=%+v err=%v", i, ack, err)
		}
	}
	if _, err := s.Finalize(context.Background(), doneID); err != nil {
		t.Fatal(err)
	}
	openID, err = s.CreateSession(context.Background(), wire.SessionConfig{Feature: "inflight", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		client := fmt.Sprintf("o-%d", i)
		task, err := s.AssignTask(context.Background(), openID, client)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.SubmitReport(context.Background(), openID, wire.Report{ClientID: client, Bit: task.Bit, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return doneID, openID
}

// stateFingerprint reduces a server's externally visible state to a
// comparable form: the session listing plus each session's result view.
func stateFingerprint(t *testing.T, s *Server) string {
	t.Helper()
	var b strings.Builder
	for _, row := range s.Sessions() {
		rowJSON, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Result(row.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		resJSON, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s %s\n", rowJSON, resJSON)
	}
	return b.String()
}

// TestWALReplayRebuildsState is the core recovery property: a cold
// server replaying the WAL alone (no snapshot) reproduces the crashed
// server's state exactly, including finalized results and the adaptive
// assignment bookkeeping that guards report acceptance.
func TestWALReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	s1, w1 := newWALServer(t, dir, 1)
	doneID, openID := driveTraffic(t, s1)
	want := stateFingerprint(t, s1)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := newWALServer(t, dir, 1)
	applied, err := s2.ReplayWAL()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if applied == 0 {
		t.Fatal("replay applied no records")
	}
	if got := stateFingerprint(t, s2); got != want {
		t.Fatalf("replayed state differs:\n got %s\nwant %s", got, want)
	}

	// The recovered server keeps honoring the protocol invariants: a
	// pre-crash client retransmitting its exact report is re-acked as a
	// duplicate, and a conflicting value is rejected.
	task, err := s2.AssignTask(context.Background(), openID, "o-0")
	if err != nil {
		t.Fatal(err)
	}
	ack, err := s2.SubmitReport(context.Background(), openID, wire.Report{ClientID: "o-0", Bit: task.Bit, Value: 1})
	if err != nil || !ack.Accepted || !ack.Duplicate {
		t.Fatalf("retransmission after replay: ack=%+v err=%v, want duplicate re-ack", ack, err)
	}
	if ack, _ := s2.SubmitReport(context.Background(), openID, wire.Report{ClientID: "o-0", Bit: task.Bit, Value: 0}); ack.Accepted {
		t.Fatal("conflicting retransmission accepted after replay")
	}
	if _, err := s2.Finalize(context.Background(), doneID); err != nil {
		t.Fatalf("re-finalizing recovered session: %v", err)
	}
}

// TestWALReplayIsIdempotent replays the same log twice into one server:
// the second pass must change nothing (every apply case tolerates
// already-applied records), so a crash mid-recovery is harmless.
func TestWALReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s1, w1 := newWALServer(t, dir, 1)
	driveTraffic(t, s1)
	want := stateFingerprint(t, s1)
	w1.Close()

	s2, _ := newWALServer(t, dir, 1)
	first, err := s2.ReplayWAL()
	if err != nil {
		t.Fatal(err)
	}
	after1 := stateFingerprint(t, s2)

	// Rewind the applied frontier and replay again over the live state.
	s2.walSeq.Store(0)
	second, err := s2.ReplayWAL()
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if second != first {
		t.Fatalf("second replay applied %d records, first %d", second, first)
	}
	if after2 := stateFingerprint(t, s2); after2 != after1 || after2 != want {
		t.Fatalf("replay not idempotent:\nafter1 %s\nafter2 %s", after1, after2)
	}
}

// TestSnapshotPlusWALTailRecovery exercises the compaction path: cut a
// snapshot mid-stream, keep appending, then recover from snapshot +
// replayed tail and compare against the uninterrupted server.
func TestSnapshotPlusWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.json")
	s1, w1 := newWALServer(t, filepath.Join(dir, "wal"), 1)

	first, err := s1.CreateSession(context.Background(), wire.SessionConfig{Feature: "pre", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		client := fmt.Sprintf("pre-%d", i)
		task, _ := s1.AssignTask(context.Background(), first, client)
		if _, err := s1.SubmitReport(context.Background(), first, wire.Report{ClientID: client, Bit: task.Bit, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s1.CompactWAL(snapPath)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if w1.FirstSeq() != 0 && w1.FirstSeq() <= s1.WALSeq() && removed == 0 {
		t.Fatalf("compaction reclaimed nothing: firstSeq=%d walSeq=%d", w1.FirstSeq(), s1.WALSeq())
	}
	// Post-snapshot tail: more reports and a finalize.
	for i := 6; i < 10; i++ {
		client := fmt.Sprintf("pre-%d", i)
		task, _ := s1.AssignTask(context.Background(), first, client)
		if _, err := s1.SubmitReport(context.Background(), first, wire.Report{ClientID: client, Bit: task.Bit, Value: uint64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.Finalize(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	want := stateFingerprint(t, s1)
	w1.Close()

	s2, _ := newWALServer(t, filepath.Join(dir, "wal"), 1)
	if err := s2.LoadSnapshot(snapPath); err != nil {
		t.Fatalf("restoring snapshot: %v", err)
	}
	applied, err := s2.ReplayWAL()
	if err != nil {
		t.Fatalf("tail replay: %v", err)
	}
	if applied == 0 {
		t.Fatal("tail replay applied nothing")
	}
	if got := stateFingerprint(t, s2); got != want {
		t.Fatalf("snapshot+tail state differs:\n got %s\nwant %s", got, want)
	}
}

// TestRestoreRejectsSnapshotNewerThanWALHead: a snapshot claiming
// coverage past the log head means the WAL was lost or swapped — boot
// must refuse rather than silently diverge.
func TestRestoreRejectsSnapshotNewerThanWALHead(t *testing.T) {
	dir := t.TempDir()
	s, _ := newWALServer(t, dir, 1) // fresh WAL, head = 0
	err := s.Restore(&Snapshot{WALSeq: 7})
	if err == nil || !strings.Contains(err.Error(), "newer than the log") {
		t.Fatalf("Restore with WALSeq beyond head = %v, want newer-than-log rejection", err)
	}
	// Without a WAL attached the same snapshot restores fine (WALSeq is
	// just carried along).
	s2 := NewServer(1)
	if err := s2.Restore(&Snapshot{WALSeq: 7}); err != nil {
		t.Fatalf("Restore without WAL: %v", err)
	}
}

// TestReplayRejectsMissingHistory: if compaction (or an operator) threw
// away segments past the snapshot's coverage, recovery must fail loudly
// instead of resurrecting partial state.
func TestReplayRejectsMissingHistory(t *testing.T) {
	dir := t.TempDir()
	s1, w1 := newWALServer(t, dir, 1)
	driveTraffic(t, s1)
	// Simulate lost history: compact the log away against a throwaway
	// snapshot, so the remaining segments start past seq 1...
	if err := w1.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.TruncateThrough(s1.WALSeq()); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	// ...then boot WITHOUT the snapshot that covered them.
	s2, _ := newWALServer(t, dir, 1)
	if _, err := s2.ReplayWAL(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("replay over truncated history = %v, want missing-records error", err)
	}
}

// TestWALDisabledServerUnchanged pins the no-WAL path: servers without
// AttachWAL behave exactly as before (walAppendLocked no-ops at seq 0).
func TestWALDisabledServerUnchanged(t *testing.T) {
	s := NewServer(1)
	doneID, _ := driveTraffic(t, s)
	res, err := s.Result(doneID)
	if err != nil || !res.Done || res.Reports != 12 {
		t.Fatalf("no-WAL traffic: res=%+v err=%v", res, err)
	}
	if got := s.WALSeq(); got != 0 {
		t.Fatalf("WALSeq without WAL = %d, want 0", got)
	}
}

// TestSnapshotCarriesWALSeq: snapshots cut from a WAL-attached server
// record the covered sequence, and restoring them advances the applied
// frontier so replay skips covered records.
func TestSnapshotCarriesWALSeq(t *testing.T) {
	dir := t.TempDir()
	s, w := newWALServer(t, dir, 1)
	driveTraffic(t, s)
	snap := s.Snapshot()
	if snap.WALSeq == 0 || snap.WALSeq != s.WALSeq() {
		t.Fatalf("snapshot WALSeq = %d, server %d", snap.WALSeq, s.WALSeq())
	}
	w.Close()

	s2, _ := newWALServer(t, dir, 1)
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	applied, err := s2.ReplayWAL()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("replay after full-coverage snapshot applied %d records, want 0", applied)
	}
	if !reflect.DeepEqual(stateFingerprint(t, s2), stateFingerprint(t, s)) {
		t.Fatal("restored state differs from source")
	}
}

// TestExpiryAndDeleteAreLogged: deadline expiry and retention deletion
// go through the WAL too, so a recovered server does not resurrect
// sessions the live one already told clients were gone.
func TestExpiryAndDeleteAreLogged(t *testing.T) {
	dir := t.TempDir()
	s1, w1 := newWALServer(t, dir, 1)
	clock := time.Unix(1700000000, 0)
	s1.Now = func() time.Time { return clock }
	s1.Retention = time.Minute

	expireID, err := s1.CreateSession(context.Background(), wire.SessionConfig{Feature: "ttl", Bits: 4, Gamma: 1, TTLSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	keepID, err := s1.CreateSession(context.Background(), wire.SessionConfig{Feature: "keep", Bits: 4, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Second)
	s1.Sweep() // expires expireID
	clock = clock.Add(2 * time.Minute)
	s1.Sweep() // retention-deletes it
	if rows := s1.Sessions(); len(rows) != 1 || rows[0].SessionID != keepID {
		t.Fatalf("live server kept %+v, want only %s", rows, keepID)
	}
	w1.Close()

	s2, _ := newWALServer(t, dir, 1)
	if _, err := s2.ReplayWAL(); err != nil {
		t.Fatal(err)
	}
	if rows := s2.Sessions(); len(rows) != 1 || rows[0].SessionID != keepID {
		t.Fatalf("recovered server has %+v, want only %s", rows, keepID)
	}
	if _, err := s2.AssignTask(context.Background(), expireID, "late"); err == nil {
		t.Fatal("deleted session resurrected after replay")
	}
}
