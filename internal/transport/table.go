package transport

import "sync"

// DefaultSessionStripes is the default lock-stripe count of the session
// table. 32 stripes keep the table-level critical sections (map lookup,
// insert, delete) effectively contention-free for any realistic session
// count while costing about 2KiB of mutexes; fednumd exposes the knob
// as -session-stripes for machines with very wide report fan-in.
const DefaultSessionStripes = 32

// maxSessionStripes bounds the configurable stripe count; past this the
// stripes cost more cache than they save in contention.
const maxSessionStripes = 1 << 16

// tableStripe is one lock shard of the session table: a mutex plus the
// sessions whose ids hash to it. The stripe lock guards only the map —
// per-session state carries its own locks — so it is held for the few
// instructions of a map operation, never across WAL commits or
// aggregation.
type tableStripe struct {
	mu       sync.Mutex
	sessions map[string]*session
	// _ pads each stripe past a cache line so lock traffic on one
	// stripe does not false-share with its neighbours.
	_ [48]byte
}

// sessionTable is the contention-sharded session map: a power-of-two
// number of stripes indexed by FNV-1a of the session id. Replacing the
// old single Server.mu table, it turns "any two requests serialize"
// into "two requests serialize only when they hash to the same stripe
// AND both need the map" — per-session work contends only on that
// session's own locks.
type sessionTable struct {
	mask    uint32
	stripes []tableStripe
}

// newSessionTable builds a table with n stripes rounded up to a power
// of two; n <= 0 selects DefaultSessionStripes.
func newSessionTable(n int) *sessionTable {
	if n <= 0 {
		n = DefaultSessionStripes
	}
	if n > maxSessionStripes {
		n = maxSessionStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &sessionTable{mask: uint32(size - 1), stripes: make([]tableStripe, size)}
	for i := range t.stripes {
		t.stripes[i].sessions = make(map[string]*session)
	}
	return t
}

// fnv32a hashes a session id with FNV-1a: tiny, inlinable, and plenty
// uniform for ids minted from an rng stream.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// stripe returns the stripe owning id. Callers lock st.mu before
// touching st.sessions.
func (t *sessionTable) stripe(id string) *tableStripe {
	return &t.stripes[fnv32a(id)&t.mask]
}

// get returns the session registered under id, nil when absent. The
// stripe lock is dropped before returning: sessions are never mutated
// through the table, only through their own locks, so holding the
// stripe any longer would buy nothing.
func (t *sessionTable) get(id string) *session {
	st := t.stripe(id)
	st.mu.Lock()
	sess := st.sessions[id]
	st.mu.Unlock()
	return sess
}

// all collects every registered session, one stripe at a time. The
// result is not a consistent cut of the whole table (sessions may be
// added or retired between stripes); callers lock each session before
// reading its state and tolerate both flavours of skew.
func (t *sessionTable) all() []*session {
	var out []*session
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for _, sess := range st.sessions {
			out = append(out, sess)
		}
		st.mu.Unlock()
	}
	return out
}

// size counts registered sessions across all stripes.
func (t *sessionTable) size() int {
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		n += len(st.sessions)
		st.mu.Unlock()
	}
	return n
}

// SetSessionStripes resizes the session table to n lock stripes
// (rounded up to a power of two; n <= 0 restores the default). It must
// run before the server holds any state — resizing would rehash live
// sessions out from under concurrent requests — so a non-empty table
// refuses. fednumd wires this to -session-stripes at boot.
func (s *Server) SetSessionStripes(n int) error {
	if s.table.size() != 0 {
		return errSessionStripesLive
	}
	s.table = newSessionTable(n)
	return nil
}

// SessionStripes reports the configured stripe count.
func (s *Server) SessionStripes() int { return len(s.table.stripes) }
