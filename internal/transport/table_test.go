package transport

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/transport/wire"
)

// TestSessionStripesRounding pins the stripe-count policy: power-of-two
// rounding, the default on n <= 0, and the upper bound.
func TestSessionStripesRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, DefaultSessionStripes},
		{-5, DefaultSessionStripes},
		{1, 1},
		{2, 2},
		{3, 4},
		{33, 64},
		{maxSessionStripes, maxSessionStripes},
		{maxSessionStripes + 1, maxSessionStripes},
	} {
		s := NewServer(1)
		if err := s.SetSessionStripes(tc.n); err != nil {
			t.Fatalf("SetSessionStripes(%d): %v", tc.n, err)
		}
		if got := s.SessionStripes(); got != tc.want {
			t.Errorf("SetSessionStripes(%d) -> %d stripes, want %d", tc.n, got, tc.want)
		}
	}
}

// TestSessionStripesRefusesLiveTable checks resizing is boot-time only:
// once any session exists the table must refuse rather than rehash live
// sessions out from under concurrent requests.
func TestSessionStripesRefusesLiveTable(t *testing.T) {
	s := NewServer(1)
	if _, err := s.CreateSession(context.Background(), wire.SessionConfig{Feature: "f", Bits: 2, Gamma: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSessionStripes(8); err == nil {
		t.Fatal("resizing a live table succeeded, want refusal")
	}
	if got := s.SessionStripes(); got != DefaultSessionStripes {
		t.Fatalf("refused resize still changed stripes: %d", got)
	}
}

// TestSessionTableRouting checks get/all/size agree with each other and
// that ids land on stable stripes across operations.
func TestSessionTableRouting(t *testing.T) {
	tbl := newSessionTable(8)
	const n = 200
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("session-%04d", i)
		st := tbl.stripe(id)
		st.mu.Lock()
		st.sessions[id] = &session{id: id}
		st.mu.Unlock()
	}
	if got := tbl.size(); got != n {
		t.Fatalf("size %d, want %d", got, n)
	}
	if got := len(tbl.all()); got != n {
		t.Fatalf("all() returned %d, want %d", got, n)
	}
	occupied := 0
	for i := range tbl.stripes {
		if len(tbl.stripes[i].sessions) > 0 {
			occupied++
		}
	}
	// FNV-1a over 200 distinct ids must not collapse onto a stripe or
	// two; an even-ish spread is what buys the contention win.
	if occupied < len(tbl.stripes)/2 {
		t.Errorf("only %d of %d stripes occupied by %d ids", occupied, len(tbl.stripes), n)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("session-%04d", i)
		sess := tbl.get(id)
		if sess == nil || sess.id != id {
			t.Fatalf("get(%q) = %v", id, sess)
		}
	}
	if tbl.get("absent") != nil {
		t.Fatal("get of an unregistered id returned a session")
	}
}
