package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/frand"
)

func TestAllocateExactSum(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 9999} {
		p, _ := GeometricProbs(8, 0.5)
		counts, err := Allocate(p, n)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative count %d", c)
			}
			total += c
		}
		if total != n {
			t.Fatalf("n=%d: counts sum to %d", n, total)
		}
	}
}

func TestAllocateWithinOneOfExact(t *testing.T) {
	p, _ := GeometricProbs(10, 1)
	n := 12345
	counts, err := Allocate(p, n)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range counts {
		exact := p[j] * float64(n)
		if math.Abs(float64(c)-exact) >= 1 {
			t.Fatalf("count[%d] = %d, exact %v: off by >= 1", j, c, exact)
		}
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate([]float64{0.5, 0.5}, -1); !errors.Is(err, ErrInput) {
		t.Errorf("negative n err = %v", err)
	}
	if _, err := Allocate([]float64{-1, 2}, 10); !errors.Is(err, ErrProbs) {
		t.Errorf("bad probs err = %v", err)
	}
}

func TestAllocateUnnormalizedInput(t *testing.T) {
	// Allocate normalizes internally: weights {1, 3} over 100 clients.
	counts, err := Allocate([]float64{1, 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 25 || counts[1] != 75 {
		t.Fatalf("counts = %v, want [25 75]", counts)
	}
}

func TestAssignRealizesCounts(t *testing.T) {
	counts := []int{3, 0, 5, 2}
	assignment := Assign(counts, frand.New(1))
	if len(assignment) != 10 {
		t.Fatalf("assignment length %d", len(assignment))
	}
	got := make([]int, 4)
	for _, j := range assignment {
		got[j]++
	}
	for j := range counts {
		if got[j] != counts[j] {
			t.Fatalf("bit %d assigned %d times, want %d", j, got[j], counts[j])
		}
	}
}

func TestAssignShuffles(t *testing.T) {
	counts := []int{500, 500}
	assignment := Assign(counts, frand.New(2))
	// If unshuffled, the first 500 entries would all be bit 0. Count runs.
	runs := 1
	for i := 1; i < len(assignment); i++ {
		if assignment[i] != assignment[i-1] {
			runs++
		}
	}
	if runs < 100 {
		t.Fatalf("assignment barely shuffled: %d runs", runs)
	}
}

func TestAssignDeterministic(t *testing.T) {
	counts := []int{10, 20, 30}
	a := Assign(counts, frand.New(7))
	b := Assign(counts, frand.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Assign not deterministic for a fixed seed")
		}
	}
}

func TestAssignLocalDistribution(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	n := 100000
	assignment := AssignLocal(p, n, frand.New(3))
	counts := make([]int, 4)
	for _, j := range assignment {
		counts[j]++
	}
	for j := range p {
		got := float64(counts[j]) / float64(n)
		if math.Abs(got-p[j]) > 0.01 {
			t.Fatalf("local assignment freq[%d] = %v, want %v", j, got, p[j])
		}
	}
}

func TestAssignLocalHigherCountVarianceThanCentral(t *testing.T) {
	// The QMC motivation: central assignment has (near-)zero variance in
	// per-bit report counts, local assignment has binomial variance.
	p, _ := UniformProbs(4)
	n := 1000
	var centralVar, localVar float64
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		counts, _ := Allocate(p, n)
		central := Assign(counts, frand.New(uint64(rep)))
		local := AssignLocal(p, n, frand.New(uint64(rep)+10000))
		cc := make([]float64, 4)
		lc := make([]float64, 4)
		for _, j := range central {
			cc[j]++
		}
		for _, j := range local {
			lc[j]++
		}
		d := cc[0] - 250
		centralVar += d * d
		d = lc[0] - 250
		localVar += d * d
	}
	if centralVar >= localVar/10 {
		t.Fatalf("central count variance %v not far below local %v", centralVar/reps, localVar/reps)
	}
}

func TestRandomnessModeString(t *testing.T) {
	if CentralRandomness.String() != "central" || LocalRandomness.String() != "local" {
		t.Error("RandomnessMode strings wrong")
	}
	if RandomnessMode(9).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}
