// Package core implements bit-pushing, the paper's primary contribution:
// numerical aggregation protocols in which each client discloses at most
// one bit of each private value. It provides the basic single-round
// estimator (Algorithm 1), weighted and optimal bit-sampling probability
// vectors (§3.1), the two-round adaptive protocol (Algorithm 2) with
// report pooling ("caching", §3.2), randomized-response integration and
// bit squashing for differential privacy (§3.3), variance estimation
// (§3.4), and the upper-bound tracking used to flag heavy-tailed or
// non-stationary metrics (§1.1, §4.3).
package core

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the probability-vector constructors and protocols.
var (
	ErrBits  = errors.New("core: invalid bit depth")
	ErrProbs = errors.New("core: invalid probability vector")
	ErrInput = errors.New("core: invalid input")
)

// maxBits bounds supported bit depths; weights 4^j must stay exactly
// representable in float64.
const maxBits = 52

func checkBits(b int) error {
	if b < 1 || b > maxBits {
		return fmt.Errorf("%w: %d (want 1..%d)", ErrBits, b, maxBits)
	}
	return nil
}

// UniformProbs returns p_j = 1/b for all j: every bit equally likely to be
// sampled. §3.1 shows this choice is suboptimal — variance grows as
// b·4^b/n — but it is the natural strawman.
func UniformProbs(bits int) ([]float64, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	p := make([]float64, bits)
	for j := range p {
		p[j] = 1 / float64(bits)
	}
	return p, nil
}

// GeometricProbs returns p_j ∝ (2^j)^gamma, the weighted allocation of
// §3.1 ("p_j ∝ c^j = 2^{αj}"). gamma = 1 yields the p_j ∝ 2^j allocation
// that is optimal under the pessimistic β_j = 4^j/4 bound; gamma = 0.5 is
// the paper's round-1 default (Algorithm 2 computes p1[j] = (2^j)^γ).
func GeometricProbs(bits int, gamma float64) ([]float64, error) {
	if err := checkBits(bits); err != nil {
		return nil, err
	}
	if math.IsNaN(gamma) || math.IsInf(gamma, 0) {
		return nil, fmt.Errorf("%w: gamma=%v", ErrProbs, gamma)
	}
	p := make([]float64, bits)
	for j := range p {
		p[j] = math.Pow(2, gamma*float64(j))
	}
	return Normalize(p)
}

// OptimalProbs returns the variance-minimizing allocation of Lemma 3.3:
// p_j ∝ √β_j with β_j = 4^j · m_j (1 - m_j) computed from the bit means
// m_j. Bits whose mean is 0 or 1 contribute no variance and receive
// probability 0. If every β_j is zero (constant data) the allocation falls
// back to uniform so the protocol still collects reports.
func OptimalProbs(bitMeans []float64) ([]float64, error) {
	if err := checkBits(len(bitMeans)); err != nil {
		return nil, err
	}
	return WeightedProbs(bitMeans, 0.5)
}

// WeightedProbs generalizes OptimalProbs with the paper's α exponent
// (Algorithm 2 line 6): p_j ∝ (4^j · m_j (1 - m_j))^α. α = 0.5 is the
// analytically optimal √β_j choice; α = 1 weights aggressively toward
// high-variance bits. Means are clamped to [0, 1] first, so noisy
// (post-DP) estimates outside the unit interval behave like saturated bits.
func WeightedProbs(bitMeans []float64, alpha float64) ([]float64, error) {
	if err := checkBits(len(bitMeans)); err != nil {
		return nil, err
	}
	if !(alpha > 0) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("%w: alpha=%v", ErrProbs, alpha)
	}
	p := make([]float64, len(bitMeans))
	var total float64
	for j, m := range bitMeans {
		if math.IsNaN(m) {
			return nil, fmt.Errorf("%w: bit mean %d is NaN", ErrProbs, j)
		}
		m = math.Max(0, math.Min(1, m))
		beta := math.Ldexp(m*(1-m), 2*j) // 4^j m (1-m)
		p[j] = math.Pow(beta, alpha)
		total += p[j]
	}
	if total == 0 {
		// Constant data: every bit mean is 0 or 1. Fall back to uniform.
		return UniformProbs(len(bitMeans))
	}
	for j := range p {
		p[j] /= total
	}
	return p, nil
}

// checkProbs validates that p has no negative, NaN or infinite entries and
// at least one positive entry, returning the L1 total without allocating.
// It is the validation half of Normalize, shared with the scratch-based
// hot paths that divide by the total in place.
func checkProbs(p []float64) (total float64, err error) {
	if len(p) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrProbs)
	}
	for j, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%w: p[%d]=%v", ErrProbs, j, v)
		}
		total += v
	}
	if total <= 0 {
		return 0, fmt.Errorf("%w: all-zero", ErrProbs)
	}
	return total, nil
}

// Normalize validates that p has no negative, NaN or infinite entries and
// at least one positive entry, and returns a fresh L1-normalized copy.
func Normalize(p []float64) ([]float64, error) {
	total, err := checkProbs(p)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(p))
	for j, v := range p {
		out[j] = v / total
	}
	return out, nil
}

// PredictedVariance evaluates the Lemma 3.1 variance formula
// (1/n) Σ_j 4^j m_j (1 - m_j) / p_j for a candidate allocation, used by
// tests and by callers comparing allocations analytically. Bits with
// p_j = 0 contribute +Inf unless their β_j is zero too.
func PredictedVariance(bitMeans, probs []float64, n int) float64 {
	if len(bitMeans) != len(probs) || n <= 0 {
		return math.Inf(1)
	}
	var v float64
	for j := range bitMeans {
		m := math.Max(0, math.Min(1, bitMeans[j]))
		beta := math.Ldexp(m*(1-m), 2*j)
		if beta == 0 {
			continue
		}
		if probs[j] <= 0 {
			return math.Inf(1)
		}
		v += beta / probs[j]
	}
	return v / float64(n)
}
