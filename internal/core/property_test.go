package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frand"
)

// TestPropertyFullCensusExact: when every client reports every bit, the
// reconstruction is exact for any population — the protocol-level form of
// the linear decomposition identity.
func TestPropertyFullCensusExact(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		const bits = 16
		p, err := UniformProbs(bits)
		if err != nil {
			return false
		}
		cfg := Config{Bits: bits, Probs: p}
		var reports []Report
		var exact float64
		for _, v := range raw {
			for j := 0; j < bits; j++ {
				reports = append(reports, Report{Bit: j, Value: uint64(v>>uint(j)) & 1})
			}
			exact += float64(v)
		}
		exact /= float64(len(raw))
		res, err := Aggregate(cfg, reports)
		if err != nil {
			return false
		}
		return math.Abs(res.Estimate-exact) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPoolEquivalentToConcat: pooling per-round aggregates must
// equal aggregating the concatenated report streams.
func TestPropertyPoolEquivalentToConcat(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		const bits, n = 8, 400
		r := frand.New(seed)
		p, err := GeometricProbs(bits, 1)
		if err != nil {
			return false
		}
		cfg := Config{Bits: bits, Probs: p}
		reports := make([]Report, n)
		for i := range reports {
			reports[i] = Report{Bit: r.Intn(bits), Value: r.Uint64n(2)}
		}
		cut := 1 + int(split)%(n-1)
		a, err := Aggregate(cfg, reports[:cut])
		if err != nil {
			return false
		}
		b, err := Aggregate(cfg, reports[cut:])
		if err != nil {
			return false
		}
		pooled, err := Pool(cfg, a, b)
		if err != nil {
			return false
		}
		whole, err := Aggregate(cfg, reports)
		if err != nil {
			return false
		}
		if pooled.Reports != whole.Reports {
			return false
		}
		return math.Abs(pooled.Estimate-whole.Estimate) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAllocateAssignConsistent: for any probability shape and
// population size, Allocate sums to n and Assign realizes it exactly.
func TestPropertyAllocateAssignConsistent(t *testing.T) {
	f := func(seed uint64, rawBits, rawN uint8) bool {
		bits := 1 + int(rawBits)%16
		n := int(rawN)
		r := frand.New(seed)
		weights := make([]float64, bits)
		for j := range weights {
			weights[j] = r.Float64() + 1e-6
		}
		counts, err := Allocate(weights, n)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		if total != n {
			return false
		}
		assignment := Assign(counts, r)
		realized := make([]int, bits)
		for _, j := range assignment {
			realized[j]++
		}
		for j := range counts {
			if realized[j] != counts[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEstimateWithinDomain: any mix of valid reports yields an
// estimate inside [0, 2^bits) scaled by the worst-case unbiasing factor —
// without DP, strictly within the value domain.
func TestPropertyEstimateWithinDomain(t *testing.T) {
	f := func(seed uint64) bool {
		const bits = 10
		r := frand.New(seed)
		p, err := GeometricProbs(bits, 0.5)
		if err != nil {
			return false
		}
		reports := make([]Report, 200)
		for i := range reports {
			reports[i] = Report{Bit: r.Intn(bits), Value: r.Uint64n(2)}
		}
		res, err := Aggregate(Config{Bits: bits, Probs: p}, reports)
		if err != nil {
			return false
		}
		return res.Estimate >= 0 && res.Estimate < float64(uint64(1)<<bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
