package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
)

func TestPluginVarianceMatchesEmpirical(t *testing.T) {
	values := encodeNormal(t, 500, 80, 5000, 12, 80)
	p, _ := GeometricProbs(12, 1)
	cfg := Config{Bits: 12, Probs: p}
	r := frand.New(81)
	var plugins, ests []float64
	for rep := 0; rep < 400; rep++ {
		res, err := Run(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		plugins = append(plugins, PluginVariance(res, nil))
		ests = append(ests, res.Estimate)
	}
	var mean, ss float64
	for _, e := range ests {
		mean += e
	}
	mean /= float64(len(ests))
	for _, e := range ests {
		ss += (e - mean) * (e - mean)
	}
	empirical := ss / float64(len(ests))
	var pluginMean float64
	for _, v := range plugins {
		pluginMean += v
	}
	pluginMean /= float64(len(plugins))
	// Plug-in variance should be close to (and, due to the without-
	// replacement QMC assignment, at least as large as most of) the
	// empirical estimator variance.
	if pluginMean < 0.5*empirical || pluginMean > 2.5*empirical {
		t.Fatalf("plugin variance %v vs empirical %v", pluginMean, empirical)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	values := encodeNormal(t, 500, 80, 5000, 12, 82)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(12, 1)
	cfg := Config{Bits: 12, Probs: p}
	r := frand.New(83)
	covered := 0
	const reps = 300
	for rep := 0; rep < reps; rep++ {
		res, err := Run(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := ConfidenceInterval(res, nil, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truth) {
			covered++
		}
	}
	// Nominal 95%; the finite-population correction makes plug-in
	// intervals conservative, so coverage should be at least ~92%.
	if rate := float64(covered) / reps; rate < 0.92 {
		t.Fatalf("95%% interval covered truth %v of the time", rate)
	}
}

func TestConfidenceIntervalWiderUnderDP(t *testing.T) {
	values := encodeNormal(t, 500, 80, 10000, 12, 84)
	p, _ := GeometricProbs(12, 1)
	rr, _ := ldp.NewRandomizedResponse(1)
	r := frand.New(85)
	plain, err := Run(Config{Bits: 12, Probs: p}, values, r)
	if err != nil {
		t.Fatal(err)
	}
	private, err := Run(Config{Bits: 12, Probs: p, RR: rr}, values, r)
	if err != nil {
		t.Fatal(err)
	}
	ivPlain, _ := ConfidenceInterval(plain, nil, 1.96)
	ivDP, _ := ConfidenceInterval(private, rr, 1.96)
	if ivDP.Width() <= 2*ivPlain.Width() {
		t.Fatalf("DP interval width %v not well above plain %v", ivDP.Width(), ivPlain.Width())
	}
}

func TestConfidenceIntervalValidation(t *testing.T) {
	res := &Result{BitMeans: []float64{0.5}, Counts: []int{10}, Squashed: []bool{false}}
	for _, z := range []float64{0, -1, math.Inf(1)} {
		if _, err := ConfidenceInterval(res, nil, z); !errors.Is(err, ErrInput) {
			t.Errorf("z=%v: %v", z, err)
		}
	}
}

func TestPluginVarianceSkipsSquashedAndEmpty(t *testing.T) {
	res := &Result{
		BitMeans: []float64{0.5, 0.5, 0.5},
		Counts:   []int{100, 0, 100},
		Squashed: []bool{false, false, true},
	}
	// Only bit 0 contributes: 4^0 * 0.25/100.
	if got, want := PluginVariance(res, nil), 0.0025; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PluginVariance = %v, want %v", got, want)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5}
	if iv.Width() != 3 {
		t.Errorf("Width = %v", iv.Width())
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.1) || iv.Contains(1.9) {
		t.Error("Contains wrong")
	}
}
