package core

import (
	"reflect"
	"testing"

	"repro/internal/frand"
	"repro/internal/ldp"
)

func scratchTestValues(n, bits int) []uint64 {
	r := frand.New(99)
	values := make([]uint64, n)
	for i := range values {
		values[i] = r.Uint64n(1 << uint(bits))
	}
	return values
}

func scratchConfigs(t *testing.T, bits int) map[string]Config {
	t.Helper()
	probs, err := GeometricProbs(bits, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Config{
		"plain": {Bits: bits, Probs: probs},
		"rr":    {Bits: bits, Probs: probs, RR: rr, SquashMultiple: 2},
		"bsend": {Bits: bits, Probs: probs, BSend: 3},
		"local": {Bits: bits, Probs: probs, Randomness: LocalRandomness},
		"rrlocal": {
			Bits: bits, Probs: probs, RR: rr, Randomness: LocalRandomness,
		},
	}
}

// TestMakeReportsIntoMatchesMakeReports locks the stream-compatibility
// contract: the Into variant emits identical reports and leaves the RNG in
// an identical state, for every configuration shape.
func TestMakeReportsIntoMatchesMakeReports(t *testing.T) {
	const bits, n = 10, 500
	values := scratchTestValues(n, bits)
	for name, cfg := range scratchConfigs(t, bits) {
		t.Run(name, func(t *testing.T) {
			r1 := frand.New(7)
			r2 := frand.New(7)
			want, err := MakeReports(cfg, values, r1)
			if err != nil {
				t.Fatal(err)
			}
			var s Scratch
			got, err := MakeReportsInto(cfg, values, r2, &s)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Error("reports differ between MakeReports and MakeReportsInto")
			}
			if r1.Uint64() != r2.Uint64() {
				t.Error("RNG streams diverged")
			}
		})
	}
}

// TestRunIntoMatchesRun checks full-round equivalence including the
// aggregated result and repeated reuse of one Scratch.
func TestRunIntoMatchesRun(t *testing.T) {
	const bits, n = 10, 500
	values := scratchTestValues(n, bits)
	for name, cfg := range scratchConfigs(t, bits) {
		t.Run(name, func(t *testing.T) {
			var s Scratch
			for trial := uint64(0); trial < 3; trial++ {
				r1 := frand.New(100 + trial)
				r2 := frand.New(100 + trial)
				want, err := Run(cfg, values, r1)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunInto(cfg, values, r2, &s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("trial %d: results differ between Run and RunInto", trial)
				}
			}
		})
	}
}

// TestRunAdaptiveIntoMatchesRunAdaptive checks the two-round protocol, with
// and without DP and caching.
func TestRunAdaptiveIntoMatchesRunAdaptive(t *testing.T) {
	const bits, n = 10, 500
	values := scratchTestValues(n, bits)
	rr, err := ldp.NewRandomizedResponse(2)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := map[string]AdaptiveConfig{
		"plain":   {Bits: bits},
		"rr":      {Bits: bits, RR: rr, SquashMultiple: 2},
		"nocache": {Bits: bits, NoCache: true},
		"local":   {Bits: bits, Randomness: LocalRandomness},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			var s Scratch
			for trial := uint64(0); trial < 3; trial++ {
				r1 := frand.New(200 + trial)
				r2 := frand.New(200 + trial)
				want, err := RunAdaptive(cfg, values, r1)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunAdaptiveInto(cfg, values, r2, &s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Result, *got) {
					t.Errorf("trial %d: RunAdaptiveInto differs from RunAdaptive's final Result", trial)
				}
				if r1.Uint64() != r2.Uint64() {
					t.Errorf("trial %d: RNG streams diverged", trial)
				}
			}
		})
	}
}

// TestRunIntoAllocationFree is the perf regression guard: once a Scratch is
// warm, a full round allocates nothing.
func TestRunIntoAllocationFree(t *testing.T) {
	const bits, n = 10, 500
	values := scratchTestValues(n, bits)
	for name, cfg := range scratchConfigs(t, bits) {
		t.Run(name, func(t *testing.T) {
			var s Scratch
			r := frand.New(5)
			if _, err := RunInto(cfg, values, r, &s); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := RunInto(cfg, values, r, &s); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("RunInto allocates %.1f objects per run, want 0", allocs)
			}
		})
	}
}

// TestRunAdaptiveIntoAllocationBound guards the adaptive path. LearnedProbs
// intentionally returns fresh probability vectors (they are part of the
// protocol transcript), so the bound is a small constant rather than zero.
func TestRunAdaptiveIntoAllocationBound(t *testing.T) {
	const bits, n = 10, 500
	values := scratchTestValues(n, bits)
	cfg := AdaptiveConfig{Bits: bits}
	var s Scratch
	r := frand.New(5)
	if _, err := RunAdaptiveInto(cfg, values, r, &s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunAdaptiveInto(cfg, values, r, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("RunAdaptiveInto allocates %.1f objects per run, want <= 8", allocs)
	}
}

// TestMakeReportsIntoAllocationFree guards the client-side path on its own.
func TestMakeReportsIntoAllocationFree(t *testing.T) {
	const bits, n = 10, 500
	values := scratchTestValues(n, bits)
	cfg := scratchConfigs(t, bits)["rr"]
	var s Scratch
	r := frand.New(5)
	if _, err := MakeReportsInto(cfg, values, r, &s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := MakeReportsInto(cfg, values, r, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MakeReportsInto allocates %.1f objects per run, want 0", allocs)
	}
}
