package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
)

// The basic single-round protocol: every client contributes one bit of a
// 4-bit value, the server reconstructs the mean from per-bit means.
func ExampleRun() {
	values := []uint64{3, 9, 12, 7, 5, 11, 8, 10, 6, 9, 4, 12, 7, 8, 9, 10}
	probs, _ := core.GeometricProbs(4, 1)
	res, _ := core.Run(core.Config{Bits: 4, Probs: probs}, values, frand.New(11))
	fmt.Printf("exact %.2f, estimate %.2f from %d one-bit reports\n",
		fixedpoint.Mean(values), res.Estimate, res.Reports)
	// Output:
	// exact 8.12, estimate 9.33 from 16 one-bit reports
}

// Algorithm 2: the first round finds which bits carry signal, the second
// concentrates sampling there. Values using only 6 of 12 bits keep their
// high bits out of round 2 entirely.
func ExampleRunAdaptive() {
	r := frand.New(5)
	values := make([]uint64, 4000)
	for i := range values {
		values[i] = 20 + r.Uint64n(24) // 6 active bits in a 12-bit budget
	}
	res, _ := core.RunAdaptive(core.AdaptiveConfig{Bits: 12}, values, r)
	high := 0
	for j := 6; j < 12; j++ {
		if res.Probs2[j] > 0 {
			high++
		}
	}
	fmt.Printf("round-2 probability on bits 6-11: %d positions\n", high)
	fmt.Printf("estimate within 2%% of exact: %v\n",
		res.Estimate > 0.98*fixedpoint.Mean(values) && res.Estimate < 1.02*fixedpoint.Mean(values))
	// Output:
	// round-2 probability on bits 6-11: 0 positions
	// estimate within 2% of exact: true
}

// Aggregation with an ε-LDP layer: each reported bit passes through
// randomized response and the server unbiases the means.
func ExampleConfig_randomizedResponse() {
	r := frand.New(9)
	values := make([]uint64, 20000)
	for i := range values {
		values[i] = 100 + r.Uint64n(56)
	}
	rr, _ := ldp.NewRandomizedResponse(2)
	probs, _ := core.GeometricProbs(8, 1)
	res, _ := core.Run(core.Config{Bits: 8, Probs: probs, RR: rr}, values, r)
	exact := fixedpoint.Mean(values)
	fmt.Printf("relative error under ε=2 below 5%%: %v\n",
		res.Estimate > 0.95*exact && res.Estimate < 1.05*exact)
	// Output:
	// relative error under ε=2 below 5%: true
}

// Lemma 3.3: the optimal allocation is proportional to the square roots
// of the per-bit variances β_j = 4^j m_j(1-m_j).
func ExampleOptimalProbs() {
	probs, _ := core.OptimalProbs([]float64{0.5, 0.5, 0, 0.5})
	fmt.Printf("p = [%.2f %.2f %.2f %.2f]\n", probs[0], probs[1], probs[2], probs[3])
	// Output:
	// p = [0.09 0.18 0.00 0.73]
}
