package core

import "testing"

func TestIsolatedActiveBits(t *testing.T) {
	res := &Result{
		// Dense region bits 0-4, dead 5-14, poisoned bit 15.
		BitMeans: []float64{0.5, 0.4, 0.3, 0.3, 0.2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0.02},
		Counts:   []int{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9},
		Squashed: make([]bool, 16),
	}
	got := res.IsolatedActiveBits(3, 0.01)
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("IsolatedActiveBits = %v, want [15]", got)
	}
}

func TestIsolatedActiveBitsContiguousClean(t *testing.T) {
	res := &Result{
		BitMeans: []float64{0.5, 0.5, 0.4, 0.6, 0.9, 0.3, 0, 0},
		Counts:   []int{5, 5, 5, 5, 5, 5, 5, 5},
		Squashed: make([]bool, 8),
	}
	if got := res.IsolatedActiveBits(3, 0.01); len(got) != 0 {
		t.Fatalf("contiguous means flagged: %v", got)
	}
}

func TestIsolatedActiveBitsRespectsSquashAndFloor(t *testing.T) {
	res := &Result{
		BitMeans: []float64{0.5, 0, 0, 0, 0, 0, 0.3, 0.005},
		Counts:   []int{5, 5, 5, 5, 5, 5, 5, 5},
		Squashed: []bool{false, false, false, false, false, false, true, false},
	}
	// Bit 6 is squashed, bit 7 below the floor: nothing isolated.
	if got := res.IsolatedActiveBits(3, 0.01); len(got) != 0 {
		t.Fatalf("squashed/floored bits flagged: %v", got)
	}
	// Unsquash bit 6: isolated above the gap from bit 0.
	res.Squashed[6] = false
	if got := res.IsolatedActiveBits(3, 0.01); len(got) != 1 || got[0] != 6 {
		t.Fatalf("IsolatedActiveBits = %v, want [6]", got)
	}
}

func TestIsolatedActiveBitsGapClamped(t *testing.T) {
	res := &Result{
		BitMeans: []float64{0.5, 0, 0.5},
		Counts:   []int{5, 5, 5},
		Squashed: make([]bool, 3),
	}
	// gap < 1 clamps to 1: bit 2 is 2 positions above bit 0 -> isolated.
	if got := res.IsolatedActiveBits(0, 0.01); len(got) != 1 || got[0] != 2 {
		t.Fatalf("IsolatedActiveBits = %v, want [2]", got)
	}
}

func TestNewBoundTrackerPanics(t *testing.T) {
	for _, c := range []struct{ w, tol int }{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBoundTracker(%d,%d) did not panic", c.w, c.tol)
				}
			}()
			NewBoundTracker(c.w, c.tol)
		}()
	}
}

func TestBoundTrackerBaselineNeverFlags(t *testing.T) {
	tr := NewBoundTracker(3, 1)
	for i := 0; i < 3; i++ {
		if tr.ObserveBit(10 + i*5) {
			t.Fatalf("flagged during baseline window at round %d", i)
		}
	}
}

func TestBoundTrackerFlagsJumpUp(t *testing.T) {
	tr := NewBoundTracker(3, 2)
	for i := 0; i < 3; i++ {
		tr.ObserveBit(8)
	}
	if tr.ObserveBit(9) {
		t.Fatal("within-tolerance move flagged")
	}
	if !tr.ObserveBit(12) {
		t.Fatal("jump of 4 bits over window max not flagged")
	}
	if tr.Flags() != 1 {
		t.Fatalf("Flags = %d", tr.Flags())
	}
}

func TestBoundTrackerFlagsDropDown(t *testing.T) {
	tr := NewBoundTracker(2, 3)
	tr.ObserveBit(20)
	tr.ObserveBit(20)
	if !tr.ObserveBit(10) {
		t.Fatal("large drop not flagged")
	}
}

func TestBoundTrackerStableStreamNeverFlags(t *testing.T) {
	tr := NewBoundTracker(5, 2)
	for i := 0; i < 100; i++ {
		if tr.ObserveBit(7 + i%2) {
			t.Fatalf("stable stream flagged at round %d", i)
		}
	}
	if tr.Rounds() != 100 {
		t.Fatalf("Rounds = %d", tr.Rounds())
	}
}

func TestBoundTrackerHeavyTailScenario(t *testing.T) {
	// A metric that normally uses ~8 bits suddenly sees an order-of-
	// magnitude outlier burst (b_max jumps to 15): must flag.
	tr := NewBoundTracker(4, 3)
	for i := 0; i < 10; i++ {
		tr.ObserveBit(8)
	}
	if !tr.ObserveBit(15) {
		t.Fatal("heavy-tail burst not flagged")
	}
}

func TestBoundTrackerObserveResult(t *testing.T) {
	tr := NewBoundTracker(1, 1)
	res := &Result{
		BitMeans: []float64{0.2, 0.4, 0},
		Squashed: []bool{false, false, false},
	}
	tr.Observe(res) // baseline: highest active bit = 1
	res2 := &Result{
		BitMeans: []float64{0.2, 0.4, 0.5},
		Squashed: []bool{false, false, false},
	}
	if !tr.Observe(res2) {
		t.Fatal("bit growth via Observe not flagged")
	}
}

func TestBoundTrackerWindowSlides(t *testing.T) {
	// After the window slides past old small values, a previously large
	// value becomes the baseline and no longer flags.
	tr := NewBoundTracker(2, 2)
	tr.ObserveBit(5)
	tr.ObserveBit(5)
	if !tr.ObserveBit(9) {
		t.Fatal("first jump not flagged")
	}
	tr.ObserveBit(9)
	if tr.ObserveBit(9) {
		t.Fatal("steady state after window slide still flagged")
	}
}
