package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestVarianceMethodString(t *testing.T) {
	if CenteredVariance.String() != "centered" || MomentVariance.String() != "moment" {
		t.Error("VarianceMethod strings wrong")
	}
	if VarianceMethod(7).String() == "" {
		t.Error("unknown method should stringify")
	}
}

func TestEstimateVarianceValidation(t *testing.T) {
	values := []uint64{1, 2, 3, 4, 5}
	if _, err := EstimateVariance(VarianceConfig{Bits: 0}, values, frand.New(1)); !errors.Is(err, ErrBits) {
		t.Errorf("bits=0 err = %v", err)
	}
	if _, err := EstimateVariance(VarianceConfig{Bits: 8, MeanFraction: 1.5}, values, frand.New(1)); !errors.Is(err, ErrInput) {
		t.Errorf("fraction=1.5 err = %v", err)
	}
	if _, err := EstimateVariance(VarianceConfig{Bits: 8}, values[:3], frand.New(1)); !errors.Is(err, ErrInput) {
		t.Errorf("too few clients err = %v", err)
	}
	if _, err := EstimateVariance(VarianceConfig{Bits: 8, Method: VarianceMethod(9)}, values, frand.New(1)); !errors.Is(err, ErrInput) {
		t.Errorf("unknown method err = %v", err)
	}
}

func varianceNRMSE(t *testing.T, method VarianceMethod, mu, sigma float64, n, bits, reps int, seed uint64) float64 {
	t.Helper()
	vals := workload.Normal{Mu: mu, Sigma: sigma}.Sample(frand.New(seed), n)
	values := fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals)
	truth := fixedpoint.Variance(values)
	cfg := VarianceConfig{Bits: bits, Method: method}
	r := frand.New(seed + 1)
	var ests []float64
	for rep := 0; rep < reps; rep++ {
		v, err := EstimateVariance(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, v)
	}
	return stats.NRMSE(ests, truth)
}

func TestCenteredVarianceAccurate(t *testing.T) {
	// 100K clients as in Figure 1b; the paper reports errors in the 1-2%
	// range for the adaptive approach.
	nrmse := varianceNRMSE(t, CenteredVariance, 1000, 100, 100000, 12, 15, 60)
	if nrmse > 0.1 {
		t.Fatalf("centered variance NRMSE %v too large", nrmse)
	}
}

func TestMomentVarianceWorks(t *testing.T) {
	nrmse := varianceNRMSE(t, MomentVariance, 300, 100, 100000, 10, 15, 61)
	if nrmse > 0.35 {
		t.Fatalf("moment variance NRMSE %v too large", nrmse)
	}
}

func TestCenteredBeatsMomentAtLargeMean(t *testing.T) {
	// Lemma 3.5: centered estimation variance ∝ (σ² + x̄²/n)²/n versus
	// moment-based (σ² + x̄²)²/n — the gap widens as the mean dominates
	// the spread.
	const mu, sigma, n, bits, reps = 3000, 100, 50000, 12, 25
	centered := varianceNRMSE(t, CenteredVariance, mu, sigma, n, bits, reps, 62)
	moment := varianceNRMSE(t, MomentVariance, mu, sigma, n, bits, reps, 62)
	if centered >= moment {
		t.Fatalf("centered NRMSE %v not below moment NRMSE %v at large mean", centered, moment)
	}
}

func TestVarianceDeterministic(t *testing.T) {
	vals := workload.Normal{Mu: 100, Sigma: 20}.Sample(frand.New(63), 2000)
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(vals)
	cfg := VarianceConfig{Bits: 8}
	a, err := EstimateVariance(cfg, values, frand.New(64))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateVariance(cfg, values, frand.New(64))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic variance: %v vs %v", a, b)
	}
}

func TestSquareCapped(t *testing.T) {
	cases := []struct {
		v    uint64
		bits int
		want uint64
	}{
		{0, 8, 0},
		{3, 8, 9},
		{15, 8, 225},
		{16, 8, 255},             // 256 overflows 8 bits -> clipped to 255
		{1 << 30, 40, 1<<40 - 1}, // (2^30)^2 = 2^60 clips to 2^40-1
	}
	for _, c := range cases {
		if got := squareCapped(c.v, c.bits); got != c.want {
			t.Errorf("squareCapped(%d, %d) = %d, want %d", c.v, c.bits, got, c.want)
		}
	}
}

func TestSquareCappedNoOverflow(t *testing.T) {
	// v*v would overflow uint64; the guard must clip instead of wrapping.
	if got := squareCapped(1<<33, 52); got != 1<<52-1 {
		t.Fatalf("squareCapped(2^33, 52) = %d, want 2^52-1", got)
	}
}

func TestClampToBits(t *testing.T) {
	if clampToBits(-5, 8) != 0 {
		t.Error("negative should clamp to 0")
	}
	if clampToBits(math.NaN(), 8) != 0 {
		t.Error("NaN should clamp to 0")
	}
	if clampToBits(300, 8) != 255 {
		t.Error("overflow should clamp to max")
	}
	if clampToBits(42.4, 8) != 42 {
		t.Error("should round")
	}
	if clampToBits(42.6, 8) != 43 {
		t.Error("should round up")
	}
}

func TestVarianceConstantPopulation(t *testing.T) {
	values := make([]uint64, 1000)
	for i := range values {
		values[i] = 9
	}
	v, err := EstimateVariance(VarianceConfig{Bits: 8}, values, frand.New(65))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 1e-9 {
		t.Fatalf("constant population variance estimate %v, want 0", v)
	}
}
