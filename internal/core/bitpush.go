package core

import (
	"fmt"
	"math"

	"repro/internal/frand"
	"repro/internal/ldp"
)

// Config parametrizes one round of basic bit-pushing (Algorithm 1).
type Config struct {
	// Bits is the bit depth b; clients report binary digits of their value
	// at indices [0, Bits).
	Bits int
	// Probs is the bit-sampling probability vector p (length Bits, sums to
	// 1). See UniformProbs, GeometricProbs, WeightedProbs.
	Probs []float64
	// RR, when non-nil, applies ε-LDP randomized response to every
	// reported bit; the aggregator unbiases the resulting means (§3.3).
	RR *ldp.RandomizedResponse
	// BSend is the number of bits each client reports (Corollary 3.2).
	// Zero means 1, the paper's default and privacy stance.
	BSend int
	// Randomness selects central (QMC, default) or local bit selection.
	Randomness RandomnessMode
	// SquashThreshold, when positive, zeroes any bit mean whose magnitude
	// falls below it before the final estimate ("bit squashing", §3.3).
	SquashThreshold float64
	// SquashMultiple, when positive and RR is set, squashes each bit whose
	// mean magnitude falls below SquashMultiple times that bit's own
	// expected DP-noise standard deviation (which depends on how many
	// reports the bit received). This is the Figure 4a x-axis — "the
	// threshold for bit squashing as a multiple of the expected amount of
	// DP noise" — calibrated per bit rather than globally, so sparsely
	// sampled bits are held to a proportionally looser threshold.
	SquashMultiple float64
}

func (c *Config) bsend() int {
	if c.BSend == 0 {
		return 1
	}
	return c.BSend
}

func (c *Config) validate() error {
	if err := checkBits(c.Bits); err != nil {
		return err
	}
	if len(c.Probs) != c.Bits {
		return fmt.Errorf("%w: %d probabilities for %d bits", ErrProbs, len(c.Probs), c.Bits)
	}
	if _, err := checkProbs(c.Probs); err != nil {
		return err
	}
	if b := c.bsend(); b < 1 || b > c.Bits {
		return fmt.Errorf("%w: BSend=%d with %d bits", ErrInput, c.BSend, c.Bits)
	}
	if c.SquashThreshold < 0 || math.IsNaN(c.SquashThreshold) {
		return fmt.Errorf("%w: SquashThreshold=%v", ErrInput, c.SquashThreshold)
	}
	if c.SquashMultiple < 0 || math.IsNaN(c.SquashMultiple) {
		return fmt.Errorf("%w: SquashMultiple=%v", ErrInput, c.SquashMultiple)
	}
	return nil
}

// Report is one client's disclosure: the index of the sampled bit and the
// (possibly randomized-response perturbed) bit value. This is the entire
// private payload a client transmits — the paper's "at most one bit per
// value" tenet.
type Report struct {
	Bit   int
	Value uint64
}

// Result holds the aggregator's view after one or more pooled rounds.
type Result struct {
	// Estimate is the estimated mean in encoded (integer) units, after
	// unbiasing and squashing.
	Estimate float64
	// BitMeans are the per-bit unbiased mean estimates m_j, before
	// squashing. Under DP noise they may fall outside [0, 1] (Figure 4b).
	BitMeans []float64
	// Counts are the number of reports received per bit.
	Counts []int
	// Sums are the raw (pre-unbiasing) sums of reported bit values.
	Sums []float64
	// Squashed flags bits whose means were zeroed by the squash threshold.
	Squashed []bool
	// Reports is the total number of bit reports aggregated.
	Reports int
}

// HighestActiveBit returns the largest bit index whose mean survived
// squashing and is non-zero, or -1 if none. This is the aggregator's
// estimate of b_max, used for upper-bound tracking (§3.2, §4.3).
func (r *Result) HighestActiveBit() int {
	for j := len(r.BitMeans) - 1; j >= 0; j-- {
		if !r.Squashed[j] && r.BitMeans[j] > 0 {
			return j
		}
	}
	return -1
}

// UpperBound returns 2^(HighestActiveBit+1) - 1, an upper bound on the
// magnitude the aggregated values appear to use. §1.1: "our method can
// report an upper bound on the aggregated samples, and flag when this
// bound changes significantly over time."
func (r *Result) UpperBound() uint64 {
	h := r.HighestActiveBit()
	if h < 0 {
		return 0
	}
	return 1<<uint(h+1) - 1
}

// MakeReports runs the client side of Algorithm 1: assign each of the n
// clients to bit indices per cfg.Probs and cfg.Randomness, read the bits of
// their private values, and apply randomized response when configured.
// With BSend > 1 each client contributes BSend reports drawn by repeating
// the assignment process.
func MakeReports(cfg Config, values []uint64, r *frand.RNG) ([]Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(values)
	reports := make([]Report, 0, n*cfg.bsend())
	probs, err := Normalize(cfg.Probs)
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < cfg.bsend(); pass++ {
		var assignment []int
		switch cfg.Randomness {
		case LocalRandomness:
			assignment = AssignLocal(probs, n, r)
		default:
			counts, err := Allocate(probs, n)
			if err != nil {
				return nil, err
			}
			assignment = Assign(counts, r)
		}
		for i, j := range assignment {
			bit := (values[i] >> uint(j)) & 1
			if cfg.RR != nil {
				bit = cfg.RR.Apply(bit, r)
			}
			reports = append(reports, Report{Bit: j, Value: bit})
		}
	}
	return reports, nil
}

// Aggregate runs the server side of Algorithm 1 over a batch of reports:
// per-bit sums and counts, unbiased means, squashing, and the weighted
// reconstruction r = Σ_j 2^j · m_j.
func Aggregate(cfg Config, reports []Report) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	if err := aggregateInto(cfg, reports, res); err != nil {
		return nil, err
	}
	return res, nil
}

// finalize computes unbiased means, applies squashing and reconstructs the
// estimate from the (possibly squashed) means.
func finalize(cfg Config, res *Result) {
	// The noise-scaled squash test runs once per bit, so an escaped noise
	// excursion anywhere among b bits corrupts the estimate by 2^j times
	// its magnitude. Correct for the implicit max over b tests with the
	// Gaussian maximal-inequality term sqrt(2 ln b) added to the caller's
	// multiple; without it, a 2σ threshold at b=24 lets some vacuous bit
	// through in roughly half of all runs.
	bonferroni := math.Sqrt(2 * math.Log(float64(cfg.Bits)))
	for j := 0; j < cfg.Bits; j++ {
		res.Squashed[j] = false
		if res.Counts[j] == 0 {
			res.BitMeans[j] = 0
			continue
		}
		m := res.Sums[j] / float64(res.Counts[j])
		if cfg.RR != nil {
			m = cfg.RR.UnbiasMean(m)
		}
		res.BitMeans[j] = m
		thr := cfg.SquashThreshold
		if cfg.SquashMultiple > 0 && cfg.RR != nil {
			thr = math.Max(thr, (cfg.SquashMultiple+bonferroni)*cfg.RR.NoiseStdForMean(res.Counts[j]))
		}
		if thr > 0 && math.Abs(m) < thr {
			res.Squashed[j] = true
		}
	}
	recomputeEstimate(res)
}

// recomputeEstimate rebuilds the mean reconstruction r = Σ_j 2^j · m_j
// from the current bit means, skipping squashed bits.
func recomputeEstimate(res *Result) {
	res.Estimate = 0
	for j, m := range res.BitMeans {
		if res.Squashed[j] {
			continue
		}
		res.Estimate += math.Ldexp(m, j)
	}
}

// Pool combines the raw sums and counts of several per-round aggregates —
// the "caching" of §3.2 — and recomputes unbiased means, squashing and the
// estimate under cfg. All parts must have cfg.Bits bit positions.
func Pool(cfg Config, parts ...*Result) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pooled := &Result{
		BitMeans: make([]float64, cfg.Bits),
		Counts:   make([]int, cfg.Bits),
		Sums:     make([]float64, cfg.Bits),
		Squashed: make([]bool, cfg.Bits),
	}
	for _, part := range parts {
		if len(part.Sums) != cfg.Bits || len(part.Counts) != cfg.Bits {
			return nil, fmt.Errorf("%w: pooling result with %d bits into %d", ErrInput, len(part.Sums), cfg.Bits)
		}
		for j := 0; j < cfg.Bits; j++ {
			pooled.Sums[j] += part.Sums[j]
			pooled.Counts[j] += part.Counts[j]
		}
		pooled.Reports += part.Reports
	}
	finalize(cfg, pooled)
	return pooled, nil
}

// Run executes one full round of basic bit-pushing over the encoded client
// values and returns the aggregate result. It is the reference entry point
// for Algorithm 1; the federated package drives the same MakeReports /
// Aggregate pair across a transport instead.
func Run(cfg Config, values []uint64, r *frand.RNG) (*Result, error) {
	reports, err := MakeReports(cfg, values, r)
	if err != nil {
		return nil, err
	}
	return Aggregate(cfg, reports)
}

// SquashFromNoise converts a squash level expressed as a multiple of the
// expected DP noise (the x-axis of Figure 4a) into an absolute bit-mean
// threshold: multiple × the std of a bit mean aggregated from
// reportsPerBit unbiased randomized-response reports. A nil rr or
// non-positive multiple disables squashing (returns 0).
func SquashFromNoise(rr *ldp.RandomizedResponse, reportsPerBit int, multiple float64) float64 {
	if rr == nil || multiple <= 0 || reportsPerBit <= 0 {
		return 0
	}
	return multiple * rr.NoiseStdForMean(reportsPerBit)
}
