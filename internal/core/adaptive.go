package core

import (
	"fmt"
	"math"

	"repro/internal/frand"
	"repro/internal/ldp"
)

// AdaptiveConfig parametrizes two-round adaptive bit-pushing (Algorithm 2).
type AdaptiveConfig struct {
	// Bits is the bit depth b.
	Bits int
	// Gamma shapes the data-independent round-1 allocation
	// p1[j] ∝ (2^j)^Gamma. Zero means the paper's default 0.5.
	Gamma float64
	// Alpha shapes the learned round-2 allocation
	// p2[j] ∝ (4^j · m_j (1-m_j))^Alpha. Zero means the default 0.5;
	// the evaluation also runs Alpha = 1.
	Alpha float64
	// Delta is the fraction of clients spent on round 1. Zero means the
	// paper's analysis-guided default 1/3.
	Delta float64
	// RR optionally applies ε-LDP randomized response to every bit.
	RR *ldp.RandomizedResponse
	// Randomness selects central (default) or local bit selection.
	Randomness RandomnessMode
	// SquashThreshold zeroes small-magnitude bit means both when learning
	// round-2 weights and in the final estimate (§3.3).
	SquashThreshold float64
	// SquashMultiple is the per-bit noise-scaled squash threshold of
	// Config.SquashMultiple, applied in both rounds and the pooled result.
	SquashMultiple float64
	// NoCache disables pooling of round-1 reports into the final estimate,
	// the §3.2 "caching" ablation. By default both rounds' reports are
	// combined, per Algorithm 2's final aggregation step.
	NoCache bool
}

func (c *AdaptiveConfig) gamma() float64 {
	if c.Gamma == 0 {
		return 0.5
	}
	return c.Gamma
}

func (c *AdaptiveConfig) alpha() float64 {
	if c.Alpha == 0 {
		return 0.5
	}
	return c.Alpha
}

func (c *AdaptiveConfig) delta() float64 {
	if c.Delta == 0 {
		return 1.0 / 3.0
	}
	return c.Delta
}

func (c *AdaptiveConfig) validate() error {
	if err := checkBits(c.Bits); err != nil {
		return err
	}
	if g := c.gamma(); math.IsNaN(g) || math.IsInf(g, 0) {
		return fmt.Errorf("%w: Gamma=%v", ErrInput, c.Gamma)
	}
	if a := c.alpha(); !(a > 0) || math.IsInf(a, 0) {
		return fmt.Errorf("%w: Alpha=%v", ErrInput, c.Alpha)
	}
	if d := c.delta(); !(d > 0 && d < 1) {
		return fmt.Errorf("%w: Delta=%v (need 0 < δ < 1)", ErrInput, c.Delta)
	}
	if c.SquashThreshold < 0 || math.IsNaN(c.SquashThreshold) {
		return fmt.Errorf("%w: SquashThreshold=%v", ErrInput, c.SquashThreshold)
	}
	if c.SquashMultiple < 0 || math.IsNaN(c.SquashMultiple) {
		return fmt.Errorf("%w: SquashMultiple=%v", ErrInput, c.SquashMultiple)
	}
	return nil
}

// LearnedProbs computes the round-2 allocation of Algorithm 2 from a
// round-1 aggregate: p2[j] ∝ (4^j · m_j (1-m_j))^alpha.
//
// Edge handling matters for correctness:
//
//   - A bit is declared DEAD (zero probability, later discarded from the
//     estimate) only when round 1 observed it confidently — at least 16
//     reports with a mean of zero, or squashed under DP. Under-sampled
//     bits keep a pseudo-count prior of 1/2, so a large bit depth cannot
//     silently drop an active low bit the geometric round-1 allocation
//     barely touched.
//   - A SATURATED bit (mean clamped at 1) carries its full weight 2^j in
//     the estimate even though it has no variance; its mean is smoothed to
//     1 - 1/(count+1) so it retains a sliver of round-2 probability and is
//     never confused with a dead bit.
//
// With this smoothing, a zero entry in the returned allocation identifies
// exactly the bits judged dead.
func LearnedProbs(round1 *Result, alpha float64) ([]float64, error) {
	learned := make([]float64, len(round1.BitMeans))
	for j, raw := range round1.BitMeans {
		count := round1.Counts[j]
		m := math.Max(0, math.Min(1, raw))
		switch {
		case count < deadConfidence:
			// Too few reports to trust the mean — or a squash decision
			// made from them. Blend toward the uninformative prior so the
			// bit stays sampled in round 2.
			m = (m*float64(count) + 0.5) / (float64(count) + 1)
		case round1.Squashed[j]:
			m = 0
		case m >= 1: // clamped above, so >= is the exact saturation test
			m = 1 - 1/float64(count+1)
		}
		learned[j] = m
	}
	return WeightedProbs(learned, alpha)
}

// deadConfidence is the minimum number of round-1 reports before a bit may
// be declared dead.
const deadConfidence = 16

// confidentlyDead reports whether round 1 established that bit j carries
// no signal: enough reports, and a mean of zero (exact without DP, or
// squashed below the noise threshold with DP).
func confidentlyDead(round1 *Result, j int) bool {
	if round1.Counts[j] < deadConfidence {
		return false
	}
	return round1.Squashed[j] || round1.BitMeans[j] <= 0
}

// LearnedProbsDP computes the round-2 allocation for the differentially
// private protocol: p_j ∝ 2^j restricted to bits round 1 did not judge
// dead. Under randomized response the per-report variance is the constant
// exp(ε)/(exp(ε)-1)² regardless of the bit mean (§3.3), so the §3.3
// optimal allocation p_j ∝ 2^j applies — the variance-weighted learning of
// LearnedProbs "holds no advantage here" (§4.2). What the first round DOES
// contribute under DP is the set of live bits: concentrating the 2^j
// allocation on them is what keeps the adaptive method flat as the bit
// depth grows (Figure 4c).
func LearnedProbsDP(round1 *Result) ([]float64, error) {
	probs := make([]float64, len(round1.BitMeans))
	any := false
	for j := range probs {
		if !confidentlyDead(round1, j) {
			probs[j] = math.Ldexp(1, j)
			any = true
		}
	}
	if !any {
		return UniformProbs(len(probs))
	}
	return Normalize(probs)
}

// PoolAdaptive pools the two rounds of an adaptive run and discards the
// bits the learned allocation judged dead (zero entries of probs2) —
// §4.1: "The adaptive approach ... is able to identify the redundant bits
// in the first round, and discards them in round two." Re-thresholding
// those bits' pooled round-1 noise instead would let occasional large
// noise excursions on high-order bits back into the estimate.
func PoolAdaptive(cfg Config, probs2 []float64, parts ...*Result) (*Result, error) {
	pooled, err := Pool(cfg, parts...)
	if err != nil {
		return nil, err
	}
	if len(probs2) != cfg.Bits {
		return nil, fmt.Errorf("%w: %d round-2 probabilities for %d bits", ErrProbs, len(probs2), cfg.Bits)
	}
	for j, p := range probs2 {
		if p == 0 {
			pooled.Squashed[j] = true
		}
	}
	recomputeEstimate(pooled)
	return pooled, nil
}

// AdaptiveResult extends Result with the per-round detail of Algorithm 2.
type AdaptiveResult struct {
	Result
	// Round1 and Round2 are the per-round aggregates.
	Round1, Round2 *Result
	// Probs1 and Probs2 are the allocations used in each round.
	Probs1, Probs2 []float64
}

// RunAdaptive executes two-round adaptive bit-pushing (Algorithm 2) over
// the encoded client values:
//
//	round 1: a δ fraction of clients report under p1[j] ∝ (2^j)^γ;
//	round 2: the rest report under p2[j] ∝ (4^j m1_j (1-m1_j))^α, where
//	         m1 are the round-1 bit-mean estimates;
//	final:   reports from both rounds are pooled (unless NoCache) and the
//	         mean is reconstructed from the combined bit means.
//
// Bits the first round reveals as unused (mean 0, or squashed under DP)
// receive zero round-2 probability — "unused bits ... do not need to be
// sampled" (§1.1) — which is what makes the adaptive protocol oblivious to
// overestimated bit depths (Figures 1c, 2c, 4c).
func RunAdaptive(cfg AdaptiveConfig, values []uint64, r *frand.RNG) (*AdaptiveResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(values)
	if n < 2 {
		return nil, fmt.Errorf("%w: adaptive bit-pushing needs at least 2 clients, got %d", ErrInput, n)
	}
	n1 := int(math.Round(cfg.delta() * float64(n)))
	if n1 < 1 {
		n1 = 1
	}
	if n1 >= n {
		n1 = n - 1
	}
	// Random split of the population into the two rounds.
	perm := r.Perm(n)
	round1 := make([]uint64, n1)
	round2 := make([]uint64, n-n1)
	for i, idx := range perm {
		if i < n1 {
			round1[i] = values[idx]
		} else {
			round2[i-n1] = values[idx]
		}
	}

	probs1, err := GeometricProbs(cfg.Bits, cfg.gamma())
	if err != nil {
		return nil, err
	}
	cfg1 := Config{
		Bits: cfg.Bits, Probs: probs1, RR: cfg.RR,
		Randomness: cfg.Randomness, SquashThreshold: cfg.SquashThreshold,
		SquashMultiple: cfg.SquashMultiple,
	}
	res1, err := Run(cfg1, round1, r)
	if err != nil {
		return nil, err
	}

	var probs2 []float64
	if cfg.RR != nil {
		probs2, err = LearnedProbsDP(res1)
	} else {
		probs2, err = LearnedProbs(res1, cfg.alpha())
	}
	if err != nil {
		return nil, err
	}
	cfg2 := cfg1
	cfg2.Probs = probs2
	res2, err := Run(cfg2, round2, r)
	if err != nil {
		return nil, err
	}

	out := &AdaptiveResult{Round1: res1, Round2: res2, Probs1: probs1, Probs2: probs2}
	if cfg.NoCache {
		out.Result = *res2
		return out, nil
	}
	pooled, err := PoolAdaptive(cfg1, probs2, res1, res2)
	if err != nil {
		return nil, err
	}
	out.Result = *pooled
	return out, nil
}
