package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/stats"
)

func TestAdaptiveConfigDefaults(t *testing.T) {
	cfg := AdaptiveConfig{Bits: 8}
	if cfg.gamma() != 0.5 || cfg.alpha() != 0.5 || math.Abs(cfg.delta()-1.0/3) > 1e-12 {
		t.Fatalf("defaults: gamma=%v alpha=%v delta=%v", cfg.gamma(), cfg.alpha(), cfg.delta())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	values := []uint64{1, 2, 3, 4}
	cases := []AdaptiveConfig{
		{Bits: 0},
		{Bits: 8, Alpha: -1},
		{Bits: 8, Delta: 1.5},
		{Bits: 8, Delta: -0.1},
		{Bits: 8, Gamma: math.NaN()},
		{Bits: 8, SquashThreshold: -1},
	}
	for i, cfg := range cases {
		if _, err := RunAdaptive(cfg, values, frand.New(1)); err == nil {
			t.Errorf("case %d: invalid adaptive config accepted: %+v", i, cfg)
		}
	}
	if _, err := RunAdaptive(AdaptiveConfig{Bits: 8}, []uint64{1}, frand.New(1)); !errors.Is(err, ErrInput) {
		t.Errorf("single client err = %v", err)
	}
}

func TestAdaptiveUnbiased(t *testing.T) {
	values := encodeNormal(t, 700, 100, 6000, 12, 30)
	truth := fixedpoint.Mean(values)
	cfg := AdaptiveConfig{Bits: 12}
	r := frand.New(31)
	var s stats.Stream
	for rep := 0; rep < 300; rep++ {
		res, err := RunAdaptive(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(res.Estimate)
	}
	if math.Abs(s.Mean()-truth) > 3.5*s.StdErr() {
		t.Fatalf("adaptive mean %v vs truth %v (se %v): biased", s.Mean(), truth, s.StdErr())
	}
}

func TestAdaptiveSplitsPopulation(t *testing.T) {
	values := make([]uint64, 900)
	cfg := AdaptiveConfig{Bits: 8, Delta: 1.0 / 3}
	res, err := RunAdaptive(cfg, values, frand.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Round1.Reports != 300 {
		t.Errorf("round-1 reports = %d, want 300", res.Round1.Reports)
	}
	if res.Round2.Reports != 600 {
		t.Errorf("round-2 reports = %d, want 600", res.Round2.Reports)
	}
	if res.Reports != 900 {
		t.Errorf("pooled reports = %d, want 900", res.Reports)
	}
}

func TestAdaptiveDropsUnusedHighBits(t *testing.T) {
	// Values fit in 7 bits; protocol runs at 20. Round 2 must give zero
	// probability to the bits round 1 saw as empty.
	values := encodeNormal(t, 64, 10, 20000, 20, 33)
	cfg := AdaptiveConfig{Bits: 20}
	res, err := RunAdaptive(cfg, values, frand.New(34))
	if err != nil {
		t.Fatal(err)
	}
	for j := 10; j < 20; j++ {
		if res.Probs2[j] != 0 {
			t.Errorf("round-2 prob for empty bit %d = %v, want 0", j, res.Probs2[j])
		}
	}
	active := 0.0
	for j := 0; j < 8; j++ {
		active += res.Probs2[j]
	}
	if math.Abs(active-1) > 1e-9 {
		t.Errorf("round-2 mass on active bits = %v, want 1", active)
	}
}

func TestAdaptiveObliviousToBitDepth(t *testing.T) {
	// Figures 1c/2c: one-round methods degrade as the assumed bit depth
	// grows, the adaptive method barely moves.
	mkValues := func(bits int, seed uint64) []uint64 {
		return encodeNormal(t, 800, 100, 10000, bits, seed)
	}
	truthFor := fixedpoint.Mean
	rmseAdaptive := func(bits int) float64 {
		values := mkValues(bits, 35)
		r := frand.New(36)
		var ests []float64
		for rep := 0; rep < 60; rep++ {
			res, err := RunAdaptive(AdaptiveConfig{Bits: bits}, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.NRMSE(ests, truthFor(values))
	}
	rmseWeighted := func(bits int) float64 {
		values := mkValues(bits, 35)
		p, _ := GeometricProbs(bits, 1)
		r := frand.New(37)
		var ests []float64
		for rep := 0; rep < 60; rep++ {
			res, err := Run(Config{Bits: bits, Probs: p}, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.NRMSE(ests, truthFor(values))
	}
	a12, a24 := rmseAdaptive(12), rmseAdaptive(24)
	w12, w24 := rmseWeighted(12), rmseWeighted(24)
	if w24 < 2*w12 {
		t.Fatalf("weighted method unexpectedly insensitive to bit depth: %v -> %v", w12, w24)
	}
	if a24 > 3*a12 {
		t.Fatalf("adaptive method degraded with depth: %v -> %v", a12, a24)
	}
	if a24 >= w24 {
		t.Fatalf("at depth 24 adaptive %v not below weighted %v", a24, w24)
	}
}

func TestAdaptiveCachingPoolsBothRounds(t *testing.T) {
	values := encodeNormal(t, 200, 30, 3000, 10, 38)
	r := frand.New(39)
	res, err := RunAdaptive(AdaptiveConfig{Bits: 10}, values, r)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if res.Counts[j] != res.Round1.Counts[j]+res.Round2.Counts[j] {
			t.Fatalf("pooled count[%d] = %d, rounds %d+%d", j, res.Counts[j], res.Round1.Counts[j], res.Round2.Counts[j])
		}
	}
}

func TestAdaptiveNoCacheUsesRoundTwoOnly(t *testing.T) {
	values := encodeNormal(t, 200, 30, 3000, 10, 40)
	r := frand.New(41)
	res, err := RunAdaptive(AdaptiveConfig{Bits: 10, NoCache: true}, values, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != res.Round2.Reports {
		t.Fatalf("NoCache pooled %d reports, round 2 had %d", res.Reports, res.Round2.Reports)
	}
	if res.Estimate != res.Round2.Estimate {
		t.Fatalf("NoCache estimate %v != round-2 estimate %v", res.Estimate, res.Round2.Estimate)
	}
}

func TestAdaptiveCachingImprovesAccuracy(t *testing.T) {
	// §3.2: pooling both rounds' reports "should only improve the observed
	// accuracy". The effect is cleanest when every bit is active (a
	// full-range uniform population), so pooling strictly increases every
	// per-bit report count; there the pooled estimator's variance is a
	// (1-δ) fraction of the round-2-only one.
	r := frand.New(43)
	values := make([]uint64, 4000)
	for i := range values {
		values[i] = r.Uint64n(1 << 12)
	}
	truth := fixedpoint.Mean(values)
	rmse := func(noCache bool) float64 {
		var ests []float64
		for rep := 0; rep < 300; rep++ {
			res, err := RunAdaptive(AdaptiveConfig{Bits: 12, NoCache: noCache}, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.RMSE(ests, truth)
	}
	withCache, without := rmse(false), rmse(true)
	if withCache >= without {
		t.Fatalf("caching RMSE %v not below no-cache RMSE %v", withCache, without)
	}
}

func TestAdaptiveWithDPAndSquashing(t *testing.T) {
	rr, _ := ldp.NewRandomizedResponse(2)
	values := encodeNormal(t, 600, 100, 30000, 18, 44)
	truth := fixedpoint.Mean(values)
	thr := SquashFromNoise(rr, len(values)/18, 2)
	cfg := AdaptiveConfig{Bits: 18, RR: rr, SquashThreshold: thr}
	r := frand.New(45)
	var ests []float64
	for rep := 0; rep < 40; rep++ {
		res, err := RunAdaptive(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, res.Estimate)
	}
	if nrmse := stats.NRMSE(ests, truth); nrmse > 0.2 {
		t.Fatalf("DP adaptive NRMSE %v too large", nrmse)
	}
}

func TestAdaptiveBeatsSingleRoundOnNarrowRange(t *testing.T) {
	// The headline claim: when values occupy a narrow unknown range inside
	// a wide bit budget, adaptive wins (§5, "bit-pushing greatly
	// outperforms prior techniques when aggregated values are in a narrow
	// range unknown in advance").
	values := encodeNormal(t, 3000, 50, 10000, 16, 46)
	truth := fixedpoint.Mean(values)
	r := frand.New(47)
	var adaptiveEsts, weightedEsts []float64
	p, _ := GeometricProbs(16, 1)
	for rep := 0; rep < 80; rep++ {
		ar, err := RunAdaptive(AdaptiveConfig{Bits: 16}, values, r)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveEsts = append(adaptiveEsts, ar.Estimate)
		wr, err := Run(Config{Bits: 16, Probs: p}, values, r)
		if err != nil {
			t.Fatal(err)
		}
		weightedEsts = append(weightedEsts, wr.Estimate)
	}
	ae, we := stats.RMSE(adaptiveEsts, truth), stats.RMSE(weightedEsts, truth)
	if ae >= we {
		t.Fatalf("adaptive RMSE %v not below weighted RMSE %v", ae, we)
	}
}

func TestAdaptiveConstantPopulation(t *testing.T) {
	// Constant data: round-1 means are all 0/1, round 2 falls back to a
	// uniform allocation and the estimate is still sane.
	values := make([]uint64, 1000)
	for i := range values {
		values[i] = 5
	}
	res, err := RunAdaptive(AdaptiveConfig{Bits: 8}, values, frand.New(48))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-5) > 1e-9 {
		t.Fatalf("constant population estimate %v, want 5", res.Estimate)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	values := encodeNormal(t, 100, 20, 2000, 10, 49)
	a, err := RunAdaptive(AdaptiveConfig{Bits: 10}, values, frand.New(50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptive(AdaptiveConfig{Bits: 10}, values, frand.New(50))
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatal("adaptive run not deterministic for fixed seed")
	}
}

func TestAdaptiveTinyPopulations(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(i % 4)
		}
		if _, err := RunAdaptive(AdaptiveConfig{Bits: 4}, values, frand.New(51)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
