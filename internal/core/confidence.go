package core

import (
	"fmt"
	"math"

	"repro/internal/ldp"
)

// PluginVariance estimates the sampling variance of a Result's mean
// estimate by plugging the estimated bit means into the Lemma 3.1 formula:
//
//	V[X̂] = Σ_j 4^j · v_j / c_j,
//
// where c_j is bit j's report count and v_j is the per-report variance —
// m_j(1-m_j) without DP, or the mean-independent exp(ε)/(exp(ε)-1)² under
// randomized response (§3.3). Squashed bits contribute nothing (their
// means are treated as known zeros). Bits with no reports contribute
// nothing either; callers who care should check Counts.
func PluginVariance(res *Result, rr *ldp.RandomizedResponse) float64 {
	var v float64
	for j, m := range res.BitMeans {
		if res.Squashed[j] || res.Counts[j] == 0 {
			continue
		}
		var perReport float64
		if rr != nil {
			perReport = rr.ReportVariance()
		} else {
			mc := math.Max(0, math.Min(1, m))
			perReport = mc * (1 - mc)
		}
		v += math.Ldexp(perReport/float64(res.Counts[j]), 2*j)
	}
	return v
}

// Interval is a symmetric confidence interval around an estimate.
type Interval struct {
	Lo, Hi float64
}

// ConfidenceInterval returns the plug-in normal-approximation interval
// Estimate ± z·√(PluginVariance) for the mean estimate. z = 1.96 gives a
// nominal 95% interval; the approximation leans on the CLT across many
// independent bit reports, which holds in the cohort sizes the protocol
// targets (§4.3: "10s of thousands of devices").
func ConfidenceInterval(res *Result, rr *ldp.RandomizedResponse, z float64) (Interval, error) {
	if !(z > 0) || math.IsInf(z, 0) {
		return Interval{}, fmt.Errorf("%w: z=%v", ErrInput, z)
	}
	sd := math.Sqrt(PluginVariance(res, rr))
	return Interval{Lo: res.Estimate - z*sd, Hi: res.Estimate + z*sd}, nil
}

// Width returns the interval's width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }
