package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/ldp"
	"repro/internal/stats"
	"repro/internal/workload"
)

// encodeNormal draws a Normal population and encodes it at the given depth.
func encodeNormal(t *testing.T, mu, sigma float64, n, bits int, seed uint64) []uint64 {
	t.Helper()
	vals := workload.Normal{Mu: mu, Sigma: sigma}.Sample(frand.New(seed), n)
	return fixedpoint.MustCodec(bits, 0, 1).EncodeAll(vals)
}

func TestConfigValidation(t *testing.T) {
	p, _ := UniformProbs(8)
	cases := []Config{
		{Bits: 0, Probs: p},
		{Bits: 8, Probs: p[:4]},
		{Bits: 8, Probs: make([]float64, 8)}, // all-zero probs
		{Bits: 8, Probs: p, BSend: 9},
		{Bits: 8, Probs: p, BSend: -1},
		{Bits: 8, Probs: p, SquashThreshold: -0.1},
		{Bits: 8, Probs: p, SquashThreshold: math.NaN()},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, []uint64{1}, frand.New(1)); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestAggregateExactRecovery(t *testing.T) {
	// If every client reports every bit, the reconstruction is exact: the
	// linear-decomposition identity of §3.1 at the protocol level.
	values := []uint64{3, 9, 250, 17, 88, 255, 128, 0}
	bits := 8
	p, _ := UniformProbs(bits)
	cfg := Config{Bits: bits, Probs: p}
	var reports []Report
	for _, v := range values {
		for j := 0; j < bits; j++ {
			reports = append(reports, Report{Bit: j, Value: (v >> uint(j)) & 1})
		}
	}
	res, err := Aggregate(cfg, reports)
	if err != nil {
		t.Fatal(err)
	}
	want := fixedpoint.Mean(values)
	if math.Abs(res.Estimate-want) > 1e-9 {
		t.Fatalf("full-census estimate %v, want %v", res.Estimate, want)
	}
	if res.Reports != len(reports) {
		t.Errorf("Reports = %d", res.Reports)
	}
}

func TestAggregateRejectsBadReports(t *testing.T) {
	p, _ := UniformProbs(4)
	cfg := Config{Bits: 4, Probs: p}
	if _, err := Aggregate(cfg, []Report{{Bit: 4, Value: 0}}); !errors.Is(err, ErrInput) {
		t.Errorf("out-of-range bit err = %v", err)
	}
	if _, err := Aggregate(cfg, []Report{{Bit: -1, Value: 0}}); !errors.Is(err, ErrInput) {
		t.Errorf("negative bit err = %v", err)
	}
	if _, err := Aggregate(cfg, []Report{{Bit: 0, Value: 2}}); !errors.Is(err, ErrInput) {
		t.Errorf("non-bit value err = %v", err)
	}
}

func TestRunUnbiased(t *testing.T) {
	// Lemma 3.1: the estimator is unbiased. Average many independent runs
	// against the exact mean of a fixed population.
	values := encodeNormal(t, 1000, 100, 5000, 12, 1)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(12, 1)
	cfg := Config{Bits: 12, Probs: p}
	r := frand.New(2)
	var s stats.Stream
	for rep := 0; rep < 400; rep++ {
		res, err := Run(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(res.Estimate)
	}
	if math.Abs(s.Mean()-truth) > 3*s.StdErr()+1e-9 {
		t.Fatalf("mean of estimates %v vs truth %v (3·se = %v): biased", s.Mean(), truth, 3*s.StdErr())
	}
}

func TestRunVarianceMatchesLemma31(t *testing.T) {
	// Empirical variance across runs must be close to (and, because QMC
	// samples without replacement from a finite population, not exceed)
	// the Lemma 3.1 prediction (1/n) Σ 4^j m_j(1-m_j)/p_j.
	values := encodeNormal(t, 400, 80, 2000, 10, 3)
	bitMeans := fixedpoint.BitMeans(values, 10)
	p, _ := GeometricProbs(10, 1)
	predicted := PredictedVariance(bitMeans, p, len(values))
	cfg := Config{Bits: 10, Probs: p}
	r := frand.New(4)
	var s stats.Stream
	for rep := 0; rep < 1500; rep++ {
		res, err := Run(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(res.Estimate)
	}
	got := s.Variance()
	if got > 1.15*predicted {
		t.Fatalf("empirical variance %v exceeds Lemma 3.1 bound %v", got, predicted)
	}
	if got < 0.4*predicted {
		t.Fatalf("empirical variance %v implausibly far below prediction %v", got, predicted)
	}
}

func TestOptimalProbsReduceEmpiricalError(t *testing.T) {
	// Using the optimal allocation must beat uniform on real runs.
	values := encodeNormal(t, 900, 60, 4000, 12, 5)
	truth := fixedpoint.Mean(values)
	bitMeans := fixedpoint.BitMeans(values, 12)
	opt, _ := OptimalProbs(bitMeans)
	uni, _ := UniformProbs(12)
	r := frand.New(6)
	errFor := func(p []float64) float64 {
		cfg := Config{Bits: 12, Probs: p}
		var ests []float64
		for rep := 0; rep < 150; rep++ {
			res, err := Run(cfg, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.RMSE(ests, truth)
	}
	if eOpt, eUni := errFor(opt), errFor(uni); eOpt >= eUni {
		t.Fatalf("optimal RMSE %v not below uniform RMSE %v", eOpt, eUni)
	}
}

func TestBSendReducesVariance(t *testing.T) {
	// Corollary 3.2: sending more bits per client shrinks variance.
	values := encodeNormal(t, 500, 90, 2000, 10, 7)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(10, 1)
	r := frand.New(8)
	errFor := func(bsend int) float64 {
		cfg := Config{Bits: 10, Probs: p, BSend: bsend}
		var ests []float64
		for rep := 0; rep < 200; rep++ {
			res, err := Run(cfg, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.RMSE(ests, truth)
	}
	e1, e4 := errFor(1), errFor(4)
	if e4 >= e1 {
		t.Fatalf("BSend=4 RMSE %v not below BSend=1 RMSE %v", e4, e1)
	}
}

func TestBSendReportCount(t *testing.T) {
	values := make([]uint64, 100)
	p, _ := UniformProbs(8)
	reports, err := MakeReports(Config{Bits: 8, Probs: p, BSend: 3}, values, frand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 300 {
		t.Fatalf("BSend=3 produced %d reports, want 300", len(reports))
	}
}

func TestRandomizedResponseIntegrationUnbiased(t *testing.T) {
	rr, _ := ldp.NewRandomizedResponse(1.5)
	values := encodeNormal(t, 600, 100, 20000, 10, 10)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(10, 1)
	cfg := Config{Bits: 10, Probs: p, RR: rr}
	r := frand.New(11)
	var s stats.Stream
	for rep := 0; rep < 300; rep++ {
		res, err := Run(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(res.Estimate)
	}
	if math.Abs(s.Mean()-truth) > 3.5*s.StdErr() {
		t.Fatalf("DP estimate mean %v vs truth %v (se %v): biased", s.Mean(), truth, s.StdErr())
	}
}

func TestRandomizedResponseIncreasesError(t *testing.T) {
	values := encodeNormal(t, 600, 100, 5000, 10, 12)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(10, 1)
	r := frand.New(13)
	errFor := func(rr *ldp.RandomizedResponse) float64 {
		cfg := Config{Bits: 10, Probs: p, RR: rr}
		var ests []float64
		for rep := 0; rep < 100; rep++ {
			res, err := Run(cfg, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.RMSE(ests, truth)
	}
	rr, _ := ldp.NewRandomizedResponse(1)
	plain, private := errFor(nil), errFor(rr)
	if private <= 2*plain {
		t.Fatalf("eps=1 RMSE %v not well above noise-free RMSE %v", private, plain)
	}
}

func TestSquashingZeroesNoiseBits(t *testing.T) {
	// Values fit in 6 bits but the protocol runs at 16 bits with DP noise;
	// squashing must flag the vacuous high bits.
	rr, _ := ldp.NewRandomizedResponse(2)
	values := encodeNormal(t, 40, 5, 30000, 16, 14)
	p, _ := GeometricProbs(16, 0.5)
	thr := SquashFromNoise(rr, len(values)/16, 3)
	cfg := Config{Bits: 16, Probs: p, RR: rr, SquashThreshold: thr}
	res, err := Run(cfg, values, frand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	for j := 10; j < 16; j++ {
		if !res.Squashed[j] {
			t.Errorf("vacuous bit %d not squashed (mean %v, thr %v)", j, res.BitMeans[j], thr)
		}
	}
	for j := 2; j <= 5; j++ {
		if res.Squashed[j] {
			t.Errorf("active bit %d squashed (mean %v)", j, res.BitMeans[j])
		}
	}
}

func TestSquashingImprovesDPAccuracy(t *testing.T) {
	// Figure 4a/4c: with many vacuous high bits under DP, squashing cuts
	// the error dramatically.
	rr, _ := ldp.NewRandomizedResponse(2)
	values := encodeNormal(t, 800, 100, 20000, 20, 16)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(20, 0.5)
	r := frand.New(17)
	errFor := func(thr float64) float64 {
		cfg := Config{Bits: 20, Probs: p, RR: rr, SquashThreshold: thr}
		var ests []float64
		for rep := 0; rep < 60; rep++ {
			res, err := Run(cfg, values, r)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, res.Estimate)
		}
		return stats.RMSE(ests, truth)
	}
	noSquash := errFor(0)
	squash := errFor(0.05)
	if squash >= noSquash/2 {
		t.Fatalf("squash RMSE %v not well below unsquashed %v", squash, noSquash)
	}
}

func TestHighestActiveBitAndUpperBound(t *testing.T) {
	res := &Result{
		BitMeans: []float64{0.5, 0, 0.25, 0.01, 0},
		Squashed: []bool{false, false, false, true, false},
	}
	if got := res.HighestActiveBit(); got != 2 {
		t.Fatalf("HighestActiveBit = %d, want 2", got)
	}
	if got := res.UpperBound(); got != 7 {
		t.Fatalf("UpperBound = %d, want 7", got)
	}
	empty := &Result{BitMeans: []float64{0, 0}, Squashed: []bool{false, false}}
	if empty.HighestActiveBit() != -1 || empty.UpperBound() != 0 {
		t.Error("all-zero result should report no active bit")
	}
}

func TestLocalRandomnessAlsoUnbiased(t *testing.T) {
	values := encodeNormal(t, 300, 50, 5000, 10, 18)
	truth := fixedpoint.Mean(values)
	p, _ := GeometricProbs(10, 1)
	cfg := Config{Bits: 10, Probs: p, Randomness: LocalRandomness}
	r := frand.New(19)
	var s stats.Stream
	for rep := 0; rep < 300; rep++ {
		res, err := Run(cfg, values, r)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(res.Estimate)
	}
	if math.Abs(s.Mean()-truth) > 3.5*s.StdErr() {
		t.Fatalf("local-randomness mean %v vs truth %v: biased", s.Mean(), truth)
	}
}

func TestRunDeterministic(t *testing.T) {
	values := encodeNormal(t, 100, 10, 1000, 8, 20)
	p, _ := GeometricProbs(8, 0.5)
	cfg := Config{Bits: 8, Probs: p}
	a, err := Run(cfg, values, frand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, values, frand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatalf("non-deterministic: %v vs %v", a.Estimate, b.Estimate)
	}
}

func TestRunEmptyPopulation(t *testing.T) {
	p, _ := UniformProbs(4)
	res, err := Run(Config{Bits: 4, Probs: p}, nil, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 || res.Reports != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestCountsMatchAllocation(t *testing.T) {
	values := make([]uint64, 1000)
	p, _ := GeometricProbs(6, 1)
	counts, _ := Allocate(p, 1000)
	res, err := Run(Config{Bits: 6, Probs: p}, values, frand.New(22))
	if err != nil {
		t.Fatal(err)
	}
	for j := range counts {
		if res.Counts[j] != counts[j] {
			t.Fatalf("bit %d received %d reports, want %d", j, res.Counts[j], counts[j])
		}
	}
}

func TestSquashFromNoise(t *testing.T) {
	rr, _ := ldp.NewRandomizedResponse(2)
	if got := SquashFromNoise(nil, 100, 1); got != 0 {
		t.Errorf("nil rr: %v", got)
	}
	if got := SquashFromNoise(rr, 100, 0); got != 0 {
		t.Errorf("zero multiple: %v", got)
	}
	if got := SquashFromNoise(rr, 0, 1); got != 0 {
		t.Errorf("zero reports: %v", got)
	}
	want := 2 * rr.NoiseStdForMean(400)
	if got := SquashFromNoise(rr, 400, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("SquashFromNoise = %v, want %v", got, want)
	}
}
