package core

import (
	"fmt"
	"math"

	"repro/internal/frand"
)

// Scratch holds the reusable buffers behind the allocation-lean protocol
// variants (MakeReportsInto, RunInto, RunAdaptiveInto). A Scratch belongs to
// exactly one goroutine at a time — parallel engines allocate one per
// worker. Results returned by the Into variants alias Scratch storage and
// remain valid only until the next call that uses the same Scratch; copy
// what must outlive the cell.
//
// The Into variants consume the identical RNG stream and perform the
// identical floating-point arithmetic as their allocating counterparts, so
// swapping them in cannot perturb a seeded simulation.
type Scratch struct {
	reports    []Report
	probs      []float64 // once-normalized copy of Config.Probs
	counts     []int
	rems       []allocRem
	cdf        []float64
	assignment []int
	bits       []uint64 // batched randomized-response buffer
	perm       []int
	round1     []uint64
	round2     []uint64

	res, res1, res2, pooled Result

	// GeometricProbs cache: sweeps re-run one (bits, gamma) shape per cell.
	geomProbs []float64
	geomBits  int
	geomGamma float64
}

// resizeF returns s with length n, reusing capacity.
func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeU(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func resizeRems(s []allocRem, n int) []allocRem {
	if cap(s) < n {
		return make([]allocRem, n)
	}
	return s[:n]
}

// resetResult sizes res for bits bit positions and zeroes every field.
func resetResult(res *Result, bits int) {
	res.Estimate = 0
	res.Reports = 0
	res.BitMeans = resizeF(res.BitMeans, bits)
	res.Sums = resizeF(res.Sums, bits)
	res.Counts = resizeInts(res.Counts, bits)
	if cap(res.Squashed) < bits {
		res.Squashed = make([]bool, bits)
	} else {
		res.Squashed = res.Squashed[:bits]
	}
	for j := 0; j < bits; j++ {
		res.BitMeans[j] = 0
		res.Sums[j] = 0
		res.Counts[j] = 0
		res.Squashed[j] = false
	}
}

// GeometricProbs caches core.GeometricProbs(bits, gamma); sweeps call it
// with the same shape for every repetition. The returned slice aliases s
// and must not be mutated.
func (s *Scratch) GeometricProbs(bits int, gamma float64) ([]float64, error) {
	// The cache key is the exact bit pattern of gamma, not a numeric
	// tolerance: two gammas that differ in any bit produce different
	// probability tables and must not share an entry.
	if s.geomProbs != nil && s.geomBits == bits && math.Float64bits(s.geomGamma) == math.Float64bits(gamma) {
		return s.geomProbs, nil
	}
	p, err := GeometricProbs(bits, gamma)
	if err != nil {
		return nil, err
	}
	s.geomProbs, s.geomBits, s.geomGamma = p, bits, gamma
	return p, nil
}

// MakeReportsInto is MakeReports writing into the Scratch's report slab:
// identical reports, identical RNG consumption, no per-call garbage once
// the buffers are warm. Randomized response is applied as a batched pass
// over each round's fresh reports, which draws the same Bernoulli sequence
// as the per-report application because no other draws interleave.
//
// The returned slice aliases s and is valid until the next use of s.
func MakeReportsInto(cfg Config, values []uint64, r *frand.RNG, s *Scratch) ([]Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(values)
	total, err := checkProbs(cfg.Probs)
	if err != nil {
		return nil, err
	}
	s.probs = resizeF(s.probs, cfg.Bits)
	for j, v := range cfg.Probs {
		s.probs[j] = v / total
	}
	if cap(s.reports) < n*cfg.bsend() {
		s.reports = make([]Report, 0, n*cfg.bsend())
	}
	s.reports = s.reports[:0]
	s.assignment = resizeInts(s.assignment, n)
	for pass := 0; pass < cfg.bsend(); pass++ {
		switch cfg.Randomness {
		case LocalRandomness:
			s.cdf = resizeF(s.cdf, cfg.Bits)
			assignLocalInto(s.assignment, s.cdf, s.probs, r)
		default:
			s.counts = resizeInts(s.counts, cfg.Bits)
			s.rems = resizeRems(s.rems, cfg.Bits)
			if err := allocateInto(s.counts, s.rems, s.probs, n); err != nil {
				return nil, err
			}
			assignInto(s.assignment, s.counts, r)
		}
		if cfg.RR != nil {
			s.bits = resizeU(s.bits, n)
			for i, j := range s.assignment {
				s.bits[i] = (values[i] >> uint(j)) & 1
			}
			cfg.RR.ApplyBatch(s.bits, r)
			for i, j := range s.assignment {
				s.reports = append(s.reports, Report{Bit: j, Value: s.bits[i]})
			}
		} else {
			for i, j := range s.assignment {
				s.reports = append(s.reports, Report{Bit: j, Value: (values[i] >> uint(j)) & 1})
			}
		}
	}
	return s.reports, nil
}

// aggregateInto is the server side of Aggregate writing into a reused
// Result. cfg must already be validated.
func aggregateInto(cfg Config, reports []Report, res *Result) error {
	resetResult(res, cfg.Bits)
	for _, rep := range reports {
		if rep.Bit < 0 || rep.Bit >= cfg.Bits {
			return fmt.Errorf("%w: report for bit %d outside [0,%d)", ErrInput, rep.Bit, cfg.Bits)
		}
		if rep.Value > 1 {
			return fmt.Errorf("%w: report value %d is not a bit", ErrInput, rep.Value)
		}
		res.Sums[rep.Bit] += float64(rep.Value)
		res.Counts[rep.Bit]++
		res.Reports++
	}
	finalize(cfg, res)
	return nil
}

// runInto executes one bit-pushing round into the given Result buffer.
func runInto(cfg Config, values []uint64, r *frand.RNG, s *Scratch, res *Result) error {
	reports, err := MakeReportsInto(cfg, values, r, s)
	if err != nil {
		return err
	}
	return aggregateInto(cfg, reports, res)
}

// RunInto is Run reusing the Scratch's buffers: same estimate, same RNG
// stream, zero steady-state allocations. The returned Result aliases s and
// is valid until the next use of s.
func RunInto(cfg Config, values []uint64, r *frand.RNG, s *Scratch) (*Result, error) {
	if err := runInto(cfg, values, r, s, &s.res); err != nil {
		return nil, err
	}
	return &s.res, nil
}

// poolAdaptiveInto is Pool followed by the PoolAdaptive dead-bit discard,
// writing into a reused Result. cfg must already be validated.
func poolAdaptiveInto(cfg Config, probs2 []float64, pooled *Result, parts ...*Result) error {
	resetResult(pooled, cfg.Bits)
	for _, part := range parts {
		if len(part.Sums) != cfg.Bits || len(part.Counts) != cfg.Bits {
			return fmt.Errorf("%w: pooling result with %d bits into %d", ErrInput, len(part.Sums), cfg.Bits)
		}
		for j := 0; j < cfg.Bits; j++ {
			pooled.Sums[j] += part.Sums[j]
			pooled.Counts[j] += part.Counts[j]
		}
		pooled.Reports += part.Reports
	}
	finalize(cfg, pooled)
	if len(probs2) != cfg.Bits {
		return fmt.Errorf("%w: %d round-2 probabilities for %d bits", ErrProbs, len(probs2), cfg.Bits)
	}
	for j, p := range probs2 {
		if p == 0 {
			pooled.Squashed[j] = true
		}
	}
	recomputeEstimate(pooled)
	return nil
}

// RunAdaptiveInto is RunAdaptive reusing the Scratch's buffers and
// returning only the final pooled Result (the per-round detail of
// AdaptiveResult stays internal to the Scratch). It consumes the identical
// RNG stream as RunAdaptive, so both produce the same estimate from the
// same seed. The returned Result aliases s and is valid until the next use
// of s.
func RunAdaptiveInto(cfg AdaptiveConfig, values []uint64, r *frand.RNG, s *Scratch) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(values)
	if n < 2 {
		return nil, fmt.Errorf("%w: adaptive bit-pushing needs at least 2 clients, got %d", ErrInput, n)
	}
	n1 := int(math.Round(cfg.delta() * float64(n)))
	if n1 < 1 {
		n1 = 1
	}
	if n1 >= n {
		n1 = n - 1
	}
	// Random split of the population into the two rounds.
	s.perm = resizeInts(s.perm, n)
	r.PermInto(s.perm)
	s.round1 = resizeU(s.round1, n1)
	s.round2 = resizeU(s.round2, n-n1)
	for i, idx := range s.perm {
		if i < n1 {
			s.round1[i] = values[idx]
		} else {
			s.round2[i-n1] = values[idx]
		}
	}

	probs1, err := s.GeometricProbs(cfg.Bits, cfg.gamma())
	if err != nil {
		return nil, err
	}
	cfg1 := Config{
		Bits: cfg.Bits, Probs: probs1, RR: cfg.RR,
		Randomness: cfg.Randomness, SquashThreshold: cfg.SquashThreshold,
		SquashMultiple: cfg.SquashMultiple,
	}
	if err := runInto(cfg1, s.round1, r, s, &s.res1); err != nil {
		return nil, err
	}

	var probs2 []float64
	if cfg.RR != nil {
		probs2, err = LearnedProbsDP(&s.res1)
	} else {
		probs2, err = LearnedProbs(&s.res1, cfg.alpha())
	}
	if err != nil {
		return nil, err
	}
	cfg2 := cfg1
	cfg2.Probs = probs2
	if err := runInto(cfg2, s.round2, r, s, &s.res2); err != nil {
		return nil, err
	}
	if cfg.NoCache {
		return &s.res2, nil
	}
	if err := poolAdaptiveInto(cfg1, probs2, &s.pooled, &s.res1, &s.res2); err != nil {
		return nil, err
	}
	return &s.pooled, nil
}
