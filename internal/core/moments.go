package core

import (
	"fmt"
	"math"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
)

// This file implements the §3.4 extensions: "Other functions, e.g., higher
// moments, products and geometric means, can also be approximated via
// bit-pushing". Each reduces to mean estimation of a locally derived
// value, keeping the one-bit-per-client disclosure.

// MomentConfig parametrizes higher-moment estimation.
type MomentConfig struct {
	// Bits is the bit depth of the raw values.
	Bits int
	// MeanFraction is the client split used by central moments (phase 1
	// estimates the mean, phase 2 reports powers of deviations). Zero
	// means 1/2.
	MeanFraction float64
	// Adaptive carries the shared protocol knobs; its Bits is ignored.
	Adaptive AdaptiveConfig
}

func (c *MomentConfig) meanFraction() float64 {
	if c.MeanFraction == 0 {
		return 0.5
	}
	return c.MeanFraction
}

// powBits returns the bit depth for k-th powers, capped at the exact-float
// maximum. Values whose powers exceed it are clipped, the §4.3
// winsorization applied to the derived quantity.
func powBits(bits, k int) int {
	pb := bits * k
	if pb > maxBits {
		pb = maxBits
	}
	return pb
}

// powCapped returns x^k clipped to the given bit depth, without overflow.
func powCapped(x uint64, k, bits int) uint64 {
	max := uint64(1)<<uint(bits) - 1
	acc := uint64(1)
	for i := 0; i < k; i++ {
		if x != 0 && acc > max/x {
			return max
		}
		acc *= x
		if acc > max {
			return max
		}
	}
	return acc
}

// EstimateRawMoment estimates E[X^k] with one bit per client: every client
// locally raises its value to the k-th power and the population bit-pushes
// the result at depth min(k·Bits, 52).
func EstimateRawMoment(cfg MomentConfig, k int, values []uint64, r *frand.RNG) (float64, error) {
	if err := checkBits(cfg.Bits); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("%w: moment order %d", ErrInput, k)
	}
	if len(values) < 2 {
		return 0, fmt.Errorf("%w: raw moment needs at least 2 clients", ErrInput)
	}
	pb := powBits(cfg.Bits, k)
	powered := make([]uint64, len(values))
	for i, v := range values {
		powered[i] = powCapped(v, k, pb)
	}
	acfg := cfg.Adaptive
	acfg.Bits = pb
	res, err := RunAdaptive(acfg, powered, r)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// EstimateCentralMoment estimates E[(X - E[X])^k] with one bit per client.
// A MeanFraction split of clients first estimates the mean; the rest
// report bits of (x - μ̂)^k.
//
// Odd moments are signed. Encoding them around a 2^(kb) offset would make
// the estimator's error scale with the offset's magnitude instead of the
// moment's, so the signed case is decomposed into two non-negative means
// on disjoint halves of the reporting cohort:
//
//	E[d^k] = E[max(d,0)^k] - E[max(-d,0)^k],
//
// each of which bit-pushing estimates with error proportional to its own
// (small) magnitude.
//
// For k = 2 this coincides with CenteredVariance (Lemma 3.5's recommended
// form); k = 3 and 4 feed Skewness and Kurtosis.
func EstimateCentralMoment(cfg MomentConfig, k int, values []uint64, r *frand.RNG) (float64, error) {
	if err := checkBits(cfg.Bits); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("%w: moment order %d", ErrInput, k)
	}
	if f := cfg.meanFraction(); !(f > 0 && f < 1) {
		return 0, fmt.Errorf("%w: MeanFraction=%v", ErrInput, cfg.MeanFraction)
	}
	n := len(values)
	if n < 4 {
		return 0, fmt.Errorf("%w: central moment needs at least 4 clients, got %d", ErrInput, n)
	}
	n1 := int(math.Round(cfg.meanFraction() * float64(n)))
	if n1 < 2 {
		n1 = 2
	}
	if n1 > n-2 {
		n1 = n - 2
	}
	perm := r.Perm(n)
	phase1 := make([]uint64, n1)
	phase2 := make([]uint64, n-n1)
	for i, idx := range perm {
		if i < n1 {
			phase1[i] = values[idx]
		} else {
			phase2[i-n1] = values[idx]
		}
	}

	acfg := cfg.Adaptive
	acfg.Bits = cfg.Bits
	meanRes, err := RunAdaptive(acfg, phase1, r)
	if err != nil {
		return 0, err
	}
	mu := meanRes.Estimate

	pb := powBits(cfg.Bits, k)
	acfg.Bits = pb
	if k%2 == 0 {
		encoded := make([]uint64, len(phase2))
		for i, v := range phase2 {
			d := math.Pow(float64(v)-mu, float64(k))
			encoded[i] = clampToBits(d, pb)
		}
		devRes, err := RunAdaptive(acfg, encoded, r)
		if err != nil {
			return 0, err
		}
		return devRes.Estimate, nil
	}
	// Signed (odd) case: split the reporting cohort and estimate the
	// positive and negative parts separately.
	half := len(phase2) / 2
	if half < 2 {
		return 0, fmt.Errorf("%w: odd central moment needs at least 8 clients, got %d", ErrInput, n)
	}
	pos := make([]uint64, half)
	for i, v := range phase2[:half] {
		if d := float64(v) - mu; d > 0 {
			pos[i] = clampToBits(math.Pow(d, float64(k)), pb)
		}
	}
	neg := make([]uint64, len(phase2)-half)
	for i, v := range phase2[half:] {
		if d := mu - float64(v); d > 0 {
			neg[i] = clampToBits(math.Pow(d, float64(k)), pb)
		}
	}
	posRes, err := RunAdaptive(acfg, pos, r)
	if err != nil {
		return 0, err
	}
	negRes, err := RunAdaptive(acfg, neg, r)
	if err != nil {
		return 0, err
	}
	return posRes.Estimate - negRes.Estimate, nil
}

// EstimateSkewness estimates the population skewness m3 / m2^(3/2): three
// disjoint client cohorts estimate the mean, the variance and the third
// central moment, each with one bit per client.
func EstimateSkewness(cfg MomentConfig, values []uint64, r *frand.RNG) (float64, error) {
	m2, m3, err := centralPair(cfg, values, r)
	if err != nil {
		return 0, err
	}
	if m2 <= 0 {
		return 0, fmt.Errorf("%w: non-positive variance estimate %v", ErrInput, m2)
	}
	return m3 / math.Pow(m2, 1.5), nil
}

// EstimateKurtosis estimates the population kurtosis m4 / m2^2 (3 for a
// Normal distribution).
func EstimateKurtosis(cfg MomentConfig, values []uint64, r *frand.RNG) (float64, error) {
	if err := checkBits(cfg.Bits); err != nil {
		return 0, err
	}
	if len(values) < 8 {
		return 0, fmt.Errorf("%w: kurtosis needs at least 8 clients", ErrInput)
	}
	half := len(values) / 2
	perm := r.Perm(len(values))
	a := make([]uint64, half)
	b := make([]uint64, len(values)-half)
	for i, idx := range perm {
		if i < half {
			a[i] = values[idx]
		} else {
			b[i-half] = values[idx]
		}
	}
	m2, err := EstimateCentralMoment(cfg, 2, a, r)
	if err != nil {
		return 0, err
	}
	m4, err := EstimateCentralMoment(cfg, 4, b, r)
	if err != nil {
		return 0, err
	}
	if m2 <= 0 {
		return 0, fmt.Errorf("%w: non-positive variance estimate %v", ErrInput, m2)
	}
	return m4 / (m2 * m2), nil
}

// centralPair estimates (m2, m3) on disjoint halves.
func centralPair(cfg MomentConfig, values []uint64, r *frand.RNG) (m2, m3 float64, err error) {
	if err := checkBits(cfg.Bits); err != nil {
		return 0, 0, err
	}
	if len(values) < 8 {
		return 0, 0, fmt.Errorf("%w: skewness needs at least 8 clients", ErrInput)
	}
	half := len(values) / 2
	perm := r.Perm(len(values))
	a := make([]uint64, half)
	b := make([]uint64, len(values)-half)
	for i, idx := range perm {
		if i < half {
			a[i] = values[idx]
		} else {
			b[i-half] = values[idx]
		}
	}
	if m2, err = EstimateCentralMoment(cfg, 2, a, r); err != nil {
		return 0, 0, err
	}
	if m3, err = EstimateCentralMoment(cfg, 3, b, r); err != nil {
		return 0, 0, err
	}
	return m2, m3, nil
}

// GeoConfig parametrizes geometric-mean / log-product estimation.
type GeoConfig struct {
	// FracBits is the fixed-point resolution of the log transform: logs
	// are encoded with 2^FracBits steps per unit. Zero means 10
	// (~0.001 resolution).
	FracBits int
	// MaxLog bounds the encodable natural log; values above exp(MaxLog)
	// clip. Zero means 48 (values up to ~7·10^20).
	MaxLog float64
	// Adaptive carries the shared protocol knobs; its Bits is ignored.
	Adaptive AdaptiveConfig
}

func (c *GeoConfig) fracBits() int {
	if c.FracBits == 0 {
		return 10
	}
	return c.FracBits
}

func (c *GeoConfig) maxLog() float64 {
	if c.MaxLog == 0 {
		return 48
	}
	return c.MaxLog
}

// EstimateLogMean estimates E[ln X] over strictly positive values with one
// bit per client: each client encodes ln(x) as a fixed-point value and the
// population bit-pushes it. Values below 1 clip to ln = 0 (the codec's
// domain is non-negative); the count of such values is returned so callers
// can judge the clipping.
func EstimateLogMean(cfg GeoConfig, values []float64, r *frand.RNG) (logMean float64, clipped int, err error) {
	frac := cfg.fracBits()
	intBits := fixedpoint.HighestBit(uint64(math.Ceil(cfg.maxLog()))) + 1
	bits := frac + intBits
	if bits > maxBits {
		return 0, 0, fmt.Errorf("%w: FracBits=%d with MaxLog=%v exceeds %d bits", ErrInput, frac, cfg.maxLog(), maxBits)
	}
	if len(values) < 2 {
		return 0, 0, fmt.Errorf("%w: log mean needs at least 2 clients", ErrInput)
	}
	codec, err := fixedpoint.NewCodec(bits, 0, math.Ldexp(1, frac))
	if err != nil {
		return 0, 0, err
	}
	encoded := make([]uint64, len(values))
	for i, v := range values {
		l := 0.0
		if v > 1 {
			l = math.Log(v)
		}
		if v <= 1 || l > cfg.maxLog() {
			clipped++
		}
		encoded[i] = codec.Encode(l)
	}
	acfg := cfg.Adaptive
	acfg.Bits = bits
	res, err := RunAdaptive(acfg, encoded, r)
	if err != nil {
		return 0, clipped, err
	}
	return codec.DecodeMean(res.Estimate), clipped, nil
}

// EstimateGeometricMean estimates (Π x_i)^(1/n) = exp(E[ln X]).
func EstimateGeometricMean(cfg GeoConfig, values []float64, r *frand.RNG) (float64, error) {
	logMean, _, err := EstimateLogMean(cfg, values, r)
	if err != nil {
		return 0, err
	}
	return math.Exp(logMean), nil
}

// EstimateLogProduct estimates ln(Π x_i) = n · E[ln X]. The product itself
// overflows float64 for large cohorts, so the log is the useful form.
func EstimateLogProduct(cfg GeoConfig, values []float64, r *frand.RNG) (float64, error) {
	logMean, _, err := EstimateLogMean(cfg, values, r)
	if err != nil {
		return 0, err
	}
	return float64(len(values)) * logMean, nil
}
