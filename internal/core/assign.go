package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/frand"
)

// RandomnessMode selects who decides which bit a client reports (§3.1,
// "Local vs. central randomness").
type RandomnessMode int

const (
	// CentralRandomness has the server partition clients across bits so
	// that exactly round(n·p_j) clients report bit j — the quasi-Monte
	// Carlo sampling the paper adopts by default. It reduces the variance
	// of report counts and blunts poisoning: a malicious client cannot
	// choose to report the most significant bit.
	CentralRandomness RandomnessMode = iota
	// LocalRandomness has each client draw its own bit index from p. The
	// paper notes this "is more vulnerable to clients who may try to
	// poison the response by distorting the reported values of high-order
	// bits"; the poisoning ablation quantifies that.
	LocalRandomness
)

// String implements fmt.Stringer.
func (m RandomnessMode) String() string {
	switch m {
	case CentralRandomness:
		return "central"
	case LocalRandomness:
		return "local"
	default:
		return fmt.Sprintf("RandomnessMode(%d)", int(m))
	}
}

// allocRem carries one bit's fractional remainder through largest-remainder
// rounding.
type allocRem struct {
	j    int
	frac float64
}

// allocateInto is Allocate with caller-provided buffers: counts and rems
// must have len(probs). probs need not be normalized; the division happens
// inline, so the arithmetic matches Allocate exactly.
func allocateInto(counts []int, rems []allocRem, probs []float64, n int) error {
	total, err := checkProbs(probs)
	if err != nil {
		return err
	}
	assigned := 0
	for j, v := range probs {
		exact := v / total * float64(n)
		counts[j] = int(exact)
		assigned += counts[j]
		rems[j] = allocRem{j: j, frac: exact - float64(counts[j])}
	}
	slices.SortFunc(rems, func(a, b allocRem) int {
		if a.frac > b.frac {
			return -1
		}
		if a.frac < b.frac {
			return 1
		}
		return b.j - a.j // deterministic tie-break toward high bits
	})
	for i := 0; assigned < n; i++ {
		counts[rems[i%len(rems)].j]++
		assigned++
	}
	return nil
}

// Allocate converts a probability vector into exact per-bit report counts
// summing to n, using largest-remainder rounding so counts match n·p_j to
// within one report. probs must be normalized (Normalize).
func Allocate(probs []float64, n int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrInput, n)
	}
	counts := make([]int, len(probs))
	rems := make([]allocRem, len(probs))
	if err := allocateInto(counts, rems, probs, n); err != nil {
		return nil, err
	}
	return counts, nil
}

// assignInto realizes counts as a per-client bit assignment in the
// caller-provided slice (length = sum of counts), consuming exactly the
// draws Assign would.
func assignInto(assignment []int, counts []int, r *frand.RNG) {
	i := 0
	for j, c := range counts {
		for k := 0; k < c; k++ {
			assignment[i] = j
			i++
		}
	}
	r.ShuffleInts(assignment)
}

// Assign maps each of n clients to the bit index it must report, realizing
// the Allocate counts with a seeded Fisher–Yates shuffle (central
// randomness / QMC). The returned slice has length n; entry i is client
// i's bit index.
func Assign(counts []int, r *frand.RNG) []int {
	n := 0
	for _, c := range counts {
		n += c
	}
	assignment := make([]int, n)
	assignInto(assignment, counts, r)
	return assignment
}

// assignLocalInto draws one bit index per client into the caller-provided
// assignment slice, building the CDF in cdf (length = len(probs)).
func assignLocalInto(assignment []int, cdf, probs []float64, r *frand.RNG) {
	acc := 0.0
	for j, p := range probs {
		acc += p
		cdf[j] = acc
	}
	for i := range assignment {
		u := r.Float64()
		j := sort.SearchFloat64s(cdf, u)
		if j >= len(cdf) {
			j = len(cdf) - 1
		}
		assignment[i] = j
	}
}

// AssignLocal draws one bit index per client independently from probs
// (local randomness). probs must be normalized.
func AssignLocal(probs []float64, n int, r *frand.RNG) []int {
	cdf := make([]float64, len(probs))
	assignment := make([]int, n)
	assignLocalInto(assignment, cdf, probs, r)
	return assignment
}
