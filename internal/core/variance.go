package core

import (
	"fmt"
	"math"

	"repro/internal/frand"
)

// VarianceMethod selects which decomposition of §3.4 (Lemma 3.5) estimates
// the population variance.
type VarianceMethod int

const (
	// CenteredVariance estimates V[X] = E[(X - E[X])^2]: a first phase
	// estimates the mean, then the remaining clients bit-push their
	// squared deviations from it. Lemma 3.5 shows its estimation variance
	// is proportional to (σ² + x̄²/n)²/n — the recommended form.
	CenteredVariance VarianceMethod = iota
	// MomentVariance estimates V[X] = E[X²] - (E[X])² by bit-pushing the
	// values and their squares on disjoint halves of the population. Its
	// estimation variance is proportional to (σ² + x̄²)²/n, worse when the
	// mean is large relative to the spread.
	MomentVariance
)

// String implements fmt.Stringer.
func (m VarianceMethod) String() string {
	switch m {
	case CenteredVariance:
		return "centered"
	case MomentVariance:
		return "moment"
	default:
		return fmt.Sprintf("VarianceMethod(%d)", int(m))
	}
}

// VarianceConfig parametrizes bit-pushing variance estimation. The
// underlying mean estimations reuse the adaptive protocol, which is what
// the paper's Figures 1b and 2b evaluate.
type VarianceConfig struct {
	// Bits is the bit depth of the raw values; squared quantities use
	// 2*Bits (capped at the representable maximum).
	Bits int
	// Method selects the Lemma 3.5 decomposition. The zero value is
	// CenteredVariance.
	Method VarianceMethod
	// MeanFraction is the fraction of clients used to estimate the mean
	// (centered) or the first moment (moment-based). Zero means 1/2.
	MeanFraction float64
	// Adaptive carries the protocol knobs shared with mean estimation.
	// Its Bits field is ignored; this config's bit depths are used.
	Adaptive AdaptiveConfig
	// SingleRoundGamma, when positive, replaces the two-round adaptive
	// inner protocol with the single-round weighted one (p_j ∝ 2^{γj}),
	// so the evaluation can compare the paper's "weighted" method on
	// variance estimation (Figures 1b, 2b).
	SingleRoundGamma float64
}

// runMean executes the configured inner mean-estimation protocol at the
// given bit depth.
func (c *VarianceConfig) runMean(bits int, values []uint64, r *frand.RNG) (float64, error) {
	if c.SingleRoundGamma > 0 {
		probs, err := GeometricProbs(bits, c.SingleRoundGamma)
		if err != nil {
			return 0, err
		}
		res, err := Run(Config{
			Bits:            bits,
			Probs:           probs,
			RR:              c.Adaptive.RR,
			Randomness:      c.Adaptive.Randomness,
			SquashThreshold: c.Adaptive.SquashThreshold,
		}, values, r)
		if err != nil {
			return 0, err
		}
		return res.Estimate, nil
	}
	acfg := c.Adaptive
	acfg.Bits = bits
	res, err := RunAdaptive(acfg, values, r)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

func (c *VarianceConfig) meanFraction() float64 {
	if c.MeanFraction == 0 {
		return 0.5
	}
	return c.MeanFraction
}

// squaredBits returns the bit depth used for squared quantities.
func (c *VarianceConfig) squaredBits() int {
	sb := 2 * c.Bits
	if sb > maxBits {
		sb = maxBits
	}
	return sb
}

// EstimateVariance estimates the population variance of the encoded values
// with at most one transmitted bit per client: each client participates in
// exactly one of the two phases.
func EstimateVariance(cfg VarianceConfig, values []uint64, r *frand.RNG) (float64, error) {
	if err := checkBits(cfg.Bits); err != nil {
		return 0, err
	}
	if f := cfg.meanFraction(); !(f > 0 && f < 1) {
		return 0, fmt.Errorf("%w: MeanFraction=%v", ErrInput, cfg.MeanFraction)
	}
	n := len(values)
	if n < 4 {
		return 0, fmt.Errorf("%w: variance estimation needs at least 4 clients, got %d", ErrInput, n)
	}
	n1 := int(math.Round(cfg.meanFraction() * float64(n)))
	if n1 < 2 {
		n1 = 2
	}
	if n1 > n-2 {
		n1 = n - 2
	}
	perm := r.Perm(n)
	phase1 := make([]uint64, n1)
	phase2 := make([]uint64, n-n1)
	for i, idx := range perm {
		if i < n1 {
			phase1[i] = values[idx]
		} else {
			phase2[i-n1] = values[idx]
		}
	}

	switch cfg.Method {
	case MomentVariance:
		// E[X] from phase 1 at depth b; E[X²] from phase 2 at depth 2b.
		mean, err := cfg.runMean(cfg.Bits, phase1, r)
		if err != nil {
			return 0, err
		}
		sqValues := make([]uint64, len(phase2))
		for i, v := range phase2 {
			sqValues[i] = squareCapped(v, cfg.squaredBits())
		}
		meanSq, err := cfg.runMean(cfg.squaredBits(), sqValues, r)
		if err != nil {
			return 0, err
		}
		return meanSq - mean*mean, nil

	case CenteredVariance:
		// Phase 1 estimates the mean; phase 2 bit-pushes squared
		// deviations from that broadcast estimate.
		mu, err := cfg.runMean(cfg.Bits, phase1, r)
		if err != nil {
			return 0, err
		}
		devValues := make([]uint64, len(phase2))
		for i, v := range phase2 {
			d := float64(v) - mu
			devValues[i] = clampToBits(d*d, cfg.squaredBits())
		}
		return cfg.runMean(cfg.squaredBits(), devValues, r)

	default:
		return 0, fmt.Errorf("%w: unknown variance method %d", ErrInput, cfg.Method)
	}
}

// squareCapped squares v, clipping to the given bit depth.
func squareCapped(v uint64, bits int) uint64 {
	max := uint64(1)<<uint(bits) - 1
	if v > 0 && v > max/v {
		return max
	}
	sq := v * v
	if sq > max {
		return max
	}
	return sq
}

// clampToBits rounds a non-negative float into [0, 2^bits - 1].
func clampToBits(x float64, bits int) uint64 {
	if math.IsNaN(x) || x <= 0 {
		return 0
	}
	max := float64(uint64(1)<<uint(bits) - 1)
	r := math.Round(x)
	if r >= max {
		return uint64(max)
	}
	return uint64(r)
}
