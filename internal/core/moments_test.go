package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fixedpoint"
	"repro/internal/frand"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestPowCapped(t *testing.T) {
	cases := []struct {
		x    uint64
		k    int
		bits int
		want uint64
	}{
		{0, 3, 8, 0},
		{1, 5, 8, 1},
		{3, 2, 8, 9},
		{3, 3, 8, 27},
		{4, 4, 8, 255},              // 256 clips
		{2, 10, 8, 255},             // 1024 clips
		{1 << 20, 3, 52, 1<<52 - 1}, // overflow-guarded clip
		{7, 1, 8, 7},
	}
	for _, c := range cases {
		if got := powCapped(c.x, c.k, c.bits); got != c.want {
			t.Errorf("powCapped(%d,%d,%d) = %d, want %d", c.x, c.k, c.bits, got, c.want)
		}
	}
}

func TestPowBits(t *testing.T) {
	if powBits(8, 2) != 16 || powBits(20, 3) != 52 || powBits(10, 1) != 10 {
		t.Error("powBits wrong")
	}
}

func TestEstimateRawMomentValidation(t *testing.T) {
	values := []uint64{1, 2, 3}
	r := frand.New(1)
	if _, err := EstimateRawMoment(MomentConfig{Bits: 0}, 2, values, r); !errors.Is(err, ErrBits) {
		t.Errorf("bits=0: %v", err)
	}
	if _, err := EstimateRawMoment(MomentConfig{Bits: 8}, 0, values, r); !errors.Is(err, ErrInput) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := EstimateRawMoment(MomentConfig{Bits: 8}, 2, values[:1], r); !errors.Is(err, ErrInput) {
		t.Errorf("n=1: %v", err)
	}
}

func TestEstimateRawMomentSecond(t *testing.T) {
	vals := workload.Normal{Mu: 120, Sigma: 20}.Sample(frand.New(2), 50000)
	values := fixedpoint.MustCodec(8, 0, 1).EncodeAll(vals)
	var truth float64
	for _, v := range values {
		truth += float64(v) * float64(v)
	}
	truth /= float64(len(values))
	r := frand.New(3)
	var ests []float64
	for rep := 0; rep < 20; rep++ {
		m, err := EstimateRawMoment(MomentConfig{Bits: 8}, 2, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, m)
	}
	if nrmse := stats.NRMSE(ests, truth); nrmse > 0.05 {
		t.Fatalf("E[X^2] NRMSE %v (truth %v)", nrmse, truth)
	}
}

func TestRawMomentOrderOneIsMean(t *testing.T) {
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 60}.Sample(frand.New(4), 20000))
	truth := fixedpoint.Mean(values)
	r := frand.New(5)
	var ests []float64
	for rep := 0; rep < 20; rep++ {
		m, err := EstimateRawMoment(MomentConfig{Bits: 10}, 1, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, m)
	}
	if nrmse := stats.NRMSE(ests, truth); nrmse > 0.03 {
		t.Fatalf("E[X] via raw moment NRMSE %v", nrmse)
	}
}

func exactCentral(values []uint64, k int) float64 {
	mu := fixedpoint.Mean(values)
	var s float64
	for _, v := range values {
		s += math.Pow(float64(v)-mu, float64(k))
	}
	return s / float64(len(values))
}

func TestEstimateCentralMomentSecondMatchesVariance(t *testing.T) {
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 80}.Sample(frand.New(6), 50000))
	truth := fixedpoint.Variance(values)
	r := frand.New(7)
	var ests []float64
	for rep := 0; rep < 15; rep++ {
		m, err := EstimateCentralMoment(MomentConfig{Bits: 10}, 2, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, m)
	}
	if nrmse := stats.NRMSE(ests, truth); nrmse > 0.1 {
		t.Fatalf("m2 NRMSE %v", nrmse)
	}
}

func TestEstimateCentralMomentThirdSigned(t *testing.T) {
	// A right-skewed distribution has positive third central moment; the
	// signed offset encoding must preserve the sign and magnitude.
	vals := workload.Exponential{Mean: 60}.Sample(frand.New(8), 100000)
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(vals)
	truth := exactCentral(values, 3)
	r := frand.New(9)
	var ests []float64
	for rep := 0; rep < 15; rep++ {
		m, err := EstimateCentralMoment(MomentConfig{Bits: 10}, 3, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, m)
	}
	mean := stats.Mean(ests)
	if mean <= 0 {
		t.Fatalf("third central moment estimate %v not positive for right-skewed data (truth %v)", mean, truth)
	}
	if math.Abs(mean-truth) > 0.35*truth {
		t.Fatalf("m3 estimate %v, truth %v", mean, truth)
	}
}

func TestEstimateCentralMomentSymmetricThirdNearZero(t *testing.T) {
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 50}.Sample(frand.New(10), 100000))
	r := frand.New(11)
	var ests []float64
	for rep := 0; rep < 10; rep++ {
		m, err := EstimateCentralMoment(MomentConfig{Bits: 10}, 3, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, m)
	}
	// σ^3 = 125000; a symmetric distribution's m3 must be small vs that.
	if m := math.Abs(stats.Mean(ests)); m > 30000 {
		t.Fatalf("symmetric m3 estimate %v too far from 0", m)
	}
}

func TestEstimateSkewness(t *testing.T) {
	// Exponential distribution has skewness 2; clipping at 2^10 softens it
	// slightly. Accept the right ballpark and the right sign.
	vals := workload.Exponential{Mean: 80}.Sample(frand.New(12), 200000)
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(vals)
	r := frand.New(13)
	var ests []float64
	for rep := 0; rep < 10; rep++ {
		s, err := EstimateSkewness(MomentConfig{Bits: 10}, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, s)
	}
	mean := stats.Mean(ests)
	if mean < 1 || mean > 3 {
		t.Fatalf("exponential skewness estimate %v, want ~2", mean)
	}
}

func TestEstimateKurtosisNormal(t *testing.T) {
	values := fixedpoint.MustCodec(10, 0, 1).EncodeAll(
		workload.Normal{Mu: 500, Sigma: 60}.Sample(frand.New(14), 200000))
	r := frand.New(15)
	var ests []float64
	for rep := 0; rep < 10; rep++ {
		k, err := EstimateKurtosis(MomentConfig{Bits: 10}, values, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, k)
	}
	mean := stats.Mean(ests)
	if mean < 2.3 || mean > 3.7 {
		t.Fatalf("normal kurtosis estimate %v, want ~3", mean)
	}
}

func TestSkewnessKurtosisValidation(t *testing.T) {
	r := frand.New(16)
	small := []uint64{1, 2, 3}
	if _, err := EstimateSkewness(MomentConfig{Bits: 8}, small, r); !errors.Is(err, ErrInput) {
		t.Errorf("skewness small n: %v", err)
	}
	if _, err := EstimateKurtosis(MomentConfig{Bits: 8}, small, r); !errors.Is(err, ErrInput) {
		t.Errorf("kurtosis small n: %v", err)
	}
}

func TestEstimateLogMean(t *testing.T) {
	vals := workload.LogNormal{Mu: 4, Sigma: 0.5}.Sample(frand.New(17), 50000)
	var truth float64
	counted := 0
	for _, v := range vals {
		if v > 1 {
			truth += math.Log(v)
			counted++
		}
	}
	truth /= float64(len(vals))
	r := frand.New(18)
	var ests []float64
	for rep := 0; rep < 15; rep++ {
		lm, clipped, err := EstimateLogMean(GeoConfig{}, vals, r)
		if err != nil {
			t.Fatal(err)
		}
		if clipped > len(vals)/100 {
			t.Fatalf("clipped %d of %d lognormal values", clipped, len(vals))
		}
		ests = append(ests, lm)
	}
	if nrmse := stats.NRMSE(ests, truth); nrmse > 0.02 {
		t.Fatalf("log mean NRMSE %v (truth %v)", nrmse, truth)
	}
}

func TestEstimateGeometricMean(t *testing.T) {
	vals := workload.LogNormal{Mu: 3, Sigma: 0.4}.Sample(frand.New(19), 50000)
	// Geometric mean of LogNormal(3, .4) concentrates near e^3 ≈ 20.1.
	r := frand.New(20)
	var ests []float64
	for rep := 0; rep < 15; rep++ {
		g, err := EstimateGeometricMean(GeoConfig{}, vals, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, g)
	}
	mean := stats.Mean(ests)
	if mean < 18 || mean > 22.5 {
		t.Fatalf("geometric mean estimate %v, want ~20.1", mean)
	}
}

func TestEstimateLogProduct(t *testing.T) {
	// 5000 clients all holding 8: ln(8^5000) = 5000 ln 8 ≈ 10397.
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = 8
	}
	r := frand.New(21)
	var ests []float64
	for rep := 0; rep < 20; rep++ {
		lp, err := EstimateLogProduct(GeoConfig{}, vals, r)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, lp)
	}
	want := 5000 * math.Log(8)
	if nrmse := stats.NRMSE(ests, want); nrmse > 0.02 {
		t.Fatalf("log product NRMSE %v (want ~%v)", nrmse, want)
	}
}

func TestLogMeanValidation(t *testing.T) {
	r := frand.New(22)
	if _, _, err := EstimateLogMean(GeoConfig{FracBits: 50, MaxLog: 60}, []float64{2, 3}, r); !errors.Is(err, ErrInput) {
		t.Errorf("oversized config: %v", err)
	}
	if _, _, err := EstimateLogMean(GeoConfig{}, []float64{2}, r); !errors.Is(err, ErrInput) {
		t.Errorf("n=1: %v", err)
	}
}

func TestLogMeanClippingCounted(t *testing.T) {
	r := frand.New(23)
	vals := []float64{0.5, -3, 2, 4, 8, 16}
	_, clipped, err := EstimateLogMean(GeoConfig{}, vals, r)
	if err != nil {
		t.Fatal(err)
	}
	if clipped != 2 {
		t.Fatalf("clipped = %d, want 2 (values <= 1)", clipped)
	}
}
