package core

import "fmt"

// BoundTracker watches the upper bound reported by successive aggregation
// rounds and flags significant movement. §1.1: for high-skew quantities
// "our method can report an upper bound on the aggregated samples, and
// flag when this bound changes significantly over time, indicating a
// heavy-tail and/or non-stationary distribution."
//
// The tracker compares each round's highest active bit against the highest
// seen over a trailing window; a jump of Tolerance or more bits in either
// direction raises a flag. The zero value is not valid; use NewBoundTracker.
type BoundTracker struct {
	window    int
	tolerance int
	history   []int // ring buffer of recent highest-active-bit values
	pos       int
	filled    bool
	flags     int
	rounds    int
}

// NewBoundTracker returns a tracker comparing each observation against the
// preceding `window` rounds and flagging moves of at least `tolerance`
// bits (each bit is a 2x change in magnitude). It panics on non-positive
// parameters, a configuration error.
func NewBoundTracker(window, tolerance int) *BoundTracker {
	if window < 1 || tolerance < 1 {
		panic(fmt.Sprintf("core: NewBoundTracker(%d, %d): parameters must be positive", window, tolerance))
	}
	return &BoundTracker{
		window:    window,
		tolerance: tolerance,
		history:   make([]int, window),
	}
}

// Observe records one round's result and reports whether the round's
// upper bound moved significantly relative to the trailing window. The
// first `window` observations establish a baseline and never flag.
func (t *BoundTracker) Observe(res *Result) bool {
	return t.ObserveBit(res.HighestActiveBit())
}

// ObserveBit is Observe for a raw highest-active-bit value (useful when a
// deployment computes b_max elsewhere).
func (t *BoundTracker) ObserveBit(highest int) bool {
	t.rounds++
	flagged := false
	if t.filled {
		lo, hi := t.history[0], t.history[0]
		for _, h := range t.history[1:] {
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		if highest >= hi+t.tolerance || highest <= lo-t.tolerance {
			flagged = true
			t.flags++
		}
	}
	t.history[t.pos] = highest
	t.pos++
	if t.pos == t.window {
		t.pos = 0
		t.filled = true
	}
	return flagged
}

// Flags returns the number of flagged rounds so far.
func (t *BoundTracker) Flags() int { return t.flags }

// Rounds returns the number of observed rounds.
func (t *BoundTracker) Rounds() int { return t.rounds }

// IsolatedActiveBits returns the indices of active bits separated from the
// next active bit below them by more than `gap` inactive positions. Binary
// expansions of real value distributions have contiguously decaying bit
// means, so an isolated active high bit — for example, mean 0.02 at bit 15
// above a dense region ending at bit 4 — is the §5 poisoning signature: a
// byzantine cohort deterministically asserting the most significant bit.
// (A population genuinely concentrated near an isolated power of two also
// triggers this; treat it as an advisory, not proof.)
//
// A bit counts as active when it received reports, survived squashing, and
// its mean clears `floor` (use a small constant like 0.01 to ignore
// numerically trivial means).
func (r *Result) IsolatedActiveBits(gap int, floor float64) []int {
	if gap < 1 {
		gap = 1
	}
	last := -1
	var isolated []int
	for j := range r.BitMeans {
		active := r.Counts[j] > 0 && !r.Squashed[j] && r.BitMeans[j] > floor
		if !active {
			continue
		}
		if last >= 0 && j-last > gap {
			isolated = append(isolated, j)
		}
		last = j
	}
	return isolated
}
