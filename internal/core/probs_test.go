package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frand"
)

func sumsToOne(t *testing.T, p []float64) {
	t.Helper()
	var s float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability %v in %v", v, p)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v: %v", s, p)
	}
}

func TestUniformProbs(t *testing.T) {
	p, err := UniformProbs(8)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p)
	for _, v := range p {
		if v != 0.125 {
			t.Fatalf("uniform prob %v, want 0.125", v)
		}
	}
	if _, err := UniformProbs(0); !errors.Is(err, ErrBits) {
		t.Errorf("UniformProbs(0) err = %v", err)
	}
	if _, err := UniformProbs(maxBits + 1); !errors.Is(err, ErrBits) {
		t.Errorf("UniformProbs(53) err = %v", err)
	}
}

func TestGeometricProbs(t *testing.T) {
	p, err := GeometricProbs(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p)
	// p_j ∝ 2^j: ratios must double.
	for j := 1; j < 4; j++ {
		if math.Abs(p[j]/p[j-1]-2) > 1e-9 {
			t.Fatalf("gamma=1 ratio p[%d]/p[%d] = %v, want 2", j, j-1, p[j]/p[j-1])
		}
	}
	// Closed form: p_j = 2^j/(2^b - 1).
	for j := range p {
		want := math.Ldexp(1, j) / 15
		if math.Abs(p[j]-want) > 1e-12 {
			t.Fatalf("p[%d] = %v, want %v", j, p[j], want)
		}
	}
}

func TestGeometricProbsGammaHalf(t *testing.T) {
	p, err := GeometricProbs(6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p)
	for j := 1; j < 6; j++ {
		if math.Abs(p[j]/p[j-1]-math.Sqrt2) > 1e-9 {
			t.Fatalf("gamma=0.5 ratio = %v, want sqrt(2)", p[j]/p[j-1])
		}
	}
}

func TestGeometricProbsGammaZeroIsUniform(t *testing.T) {
	p, err := GeometricProbs(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("gamma=0 prob %v, want 0.2", v)
		}
	}
}

func TestGeometricProbsRejectsNaN(t *testing.T) {
	if _, err := GeometricProbs(4, math.NaN()); !errors.Is(err, ErrProbs) {
		t.Errorf("NaN gamma err = %v", err)
	}
	if _, err := GeometricProbs(4, math.Inf(1)); !errors.Is(err, ErrProbs) {
		t.Errorf("Inf gamma err = %v", err)
	}
}

func TestWeightedProbsZeroesUnusedBits(t *testing.T) {
	means := []float64{0.5, 0, 0.25, 1, 0.5}
	p, err := WeightedProbs(means, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p)
	if p[1] != 0 || p[3] != 0 {
		t.Fatalf("bits with mean 0 or 1 not zeroed: %v", p)
	}
	if p[0] <= 0 || p[2] <= 0 || p[4] <= 0 {
		t.Fatalf("active bits zeroed: %v", p)
	}
}

func TestWeightedProbsConstantDataFallsBackToUniform(t *testing.T) {
	p, err := WeightedProbs([]float64{0, 1, 0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("fallback not uniform: %v", p)
		}
	}
}

func TestWeightedProbsClampsNoisyMeans(t *testing.T) {
	// DP noise can push means outside [0,1]; these must behave like
	// saturated bits (zero weight), not NaN.
	p, err := WeightedProbs([]float64{-0.3, 0.5, 1.7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p)
	if p[0] != 0 || p[2] != 0 {
		t.Fatalf("out-of-range means not clamped to zero weight: %v", p)
	}
}

func TestWeightedProbsValidation(t *testing.T) {
	if _, err := WeightedProbs([]float64{0.5}, 0); !errors.Is(err, ErrProbs) {
		t.Errorf("alpha=0 err = %v", err)
	}
	if _, err := WeightedProbs([]float64{math.NaN()}, 1); !errors.Is(err, ErrProbs) {
		t.Errorf("NaN mean err = %v", err)
	}
	if _, err := WeightedProbs(nil, 1); !errors.Is(err, ErrBits) {
		t.Errorf("empty means err = %v", err)
	}
}

func TestOptimalProbsMatchesLemma33(t *testing.T) {
	// p_j must be proportional to sqrt(beta_j) with beta_j = 4^j m(1-m).
	means := []float64{0.5, 0.25, 0.1, 0.5}
	p, err := OptimalProbs(means)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p)
	var norm float64
	betas := make([]float64, len(means))
	for j, m := range means {
		betas[j] = math.Ldexp(m*(1-m), 2*j)
		norm += math.Sqrt(betas[j])
	}
	for j := range p {
		want := math.Sqrt(betas[j]) / norm
		if math.Abs(p[j]-want) > 1e-12 {
			t.Fatalf("p[%d] = %v, want %v", j, p[j], want)
		}
	}
}

func TestOptimalProbsMinimizeVariance(t *testing.T) {
	// Lemma 3.3: the sqrt-beta allocation is the global minimum of the
	// Lemma 3.1 variance. Perturbing it in any sampled direction (staying
	// in the simplex) must not reduce predicted variance.
	means := []float64{0.5, 0.3, 0.45, 0.2, 0.5, 0.35}
	opt, err := OptimalProbs(means)
	if err != nil {
		t.Fatal(err)
	}
	base := PredictedVariance(means, opt, 1000)
	r := frand.New(42)
	for trial := 0; trial < 200; trial++ {
		perturbed := make([]float64, len(opt))
		for j := range perturbed {
			perturbed[j] = opt[j] * math.Exp(0.2*(r.Float64()-0.5))
		}
		norm, err := Normalize(perturbed)
		if err != nil {
			t.Fatal(err)
		}
		if v := PredictedVariance(means, norm, 1000); v < base-1e-9 {
			t.Fatalf("perturbed allocation %v has lower variance %v < %v", norm, v, base)
		}
	}
}

func TestOptimalBeatsUniformAndGeometric(t *testing.T) {
	means := []float64{0.5, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01}
	opt, _ := OptimalProbs(means)
	uni, _ := UniformProbs(len(means))
	geo, _ := GeometricProbs(len(means), 1)
	vOpt := PredictedVariance(means, opt, 1000)
	vUni := PredictedVariance(means, uni, 1000)
	vGeo := PredictedVariance(means, geo, 1000)
	if vOpt > vUni || vOpt > vGeo {
		t.Fatalf("optimal %v not <= uniform %v and geometric %v", vOpt, vUni, vGeo)
	}
}

func TestNormalize(t *testing.T) {
	p, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("Normalize = %v", p)
	}
	for _, bad := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := Normalize(bad); !errors.Is(err, ErrProbs) {
			t.Errorf("Normalize(%v) err = %v", bad, err)
		}
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{2, 2}
	if _, err := Normalize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 2 || in[1] != 2 {
		t.Fatal("Normalize mutated its input")
	}
}

func TestPredictedVariance(t *testing.T) {
	// Single bit with mean 0.5, p=1, n=100: variance = 0.25/100.
	if v := PredictedVariance([]float64{0.5}, []float64{1}, 100); math.Abs(v-0.0025) > 1e-12 {
		t.Fatalf("PredictedVariance = %v, want 0.0025", v)
	}
	// Zero-probability bit with nonzero beta: infinite.
	if v := PredictedVariance([]float64{0.5, 0.5}, []float64{1, 0}, 100); !math.IsInf(v, 1) {
		t.Fatalf("expected +Inf, got %v", v)
	}
	// Zero-probability bit with zero beta: fine.
	if v := PredictedVariance([]float64{0.5, 0}, []float64{1, 0}, 100); math.IsInf(v, 1) {
		t.Fatal("zero-beta bit should not cost infinity")
	}
	// Mismatched lengths or bad n: infinite.
	if v := PredictedVariance([]float64{0.5}, []float64{1, 0}, 100); !math.IsInf(v, 1) {
		t.Fatal("length mismatch should be +Inf")
	}
	if v := PredictedVariance([]float64{0.5}, []float64{1}, 0); !math.IsInf(v, 1) {
		t.Fatal("n=0 should be +Inf")
	}
}

func TestWeightedProbsAlphaOneSharper(t *testing.T) {
	// alpha=1 must concentrate more mass on the highest-variance bit than
	// alpha=0.5.
	means := []float64{0.5, 0.5, 0.5, 0.5}
	half, _ := WeightedProbs(means, 0.5)
	one, _ := WeightedProbs(means, 1)
	if one[3] <= half[3] {
		t.Fatalf("alpha=1 top-bit mass %v not above alpha=0.5 mass %v", one[3], half[3])
	}
}

func TestProbsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > maxBits {
			return true
		}
		means := make([]float64, len(raw))
		for i, b := range raw {
			means[i] = float64(b) / 255
		}
		p, err := WeightedProbs(means, 0.5)
		if err != nil {
			return false
		}
		var s float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
