package ldp_test

import (
	"fmt"

	"repro/internal/frand"
	"repro/internal/ldp"
)

// Randomized response with ε = ln 3 reports the truth with probability
// 3/4; the server inverts the bias on aggregated means.
func ExampleRandomizedResponse() {
	rr, _ := ldp.NewRandomizedResponse(1.0986122886681098) // ln 3
	fmt.Printf("truth probability %.2f\n", rr.P)

	r := frand.New(1)
	const n = 100000
	reported := 0.0
	for i := 0; i < n; i++ {
		bit := uint64(0)
		if i%10 < 3 { // true bit mean 0.3
			bit = 1
		}
		reported += float64(rr.Apply(bit, r))
	}
	unbiased := rr.UnbiasMean(reported / n)
	fmt.Printf("unbiased mean within 0.01 of 0.3: %v\n", unbiased > 0.29 && unbiased < 0.31)
	// Output:
	// truth probability 0.75
	// unbiased mean within 0.01 of 0.3: true
}

// The piecewise mechanism outputs values concentrated around the input,
// giving unbiased mean estimates under ε-LDP.
func ExamplePiecewise() {
	p, _ := ldp.NewPiecewise(2, 0, 100)
	r := frand.New(2)
	values := make([]float64, 50000)
	for i := range values {
		values[i] = 42
	}
	est := p.EstimateMean(values, r)
	fmt.Printf("estimate within 1 of 42: %v\n", est > 41 && est < 43)
	// Output:
	// estimate within 1 of 42: true
}
