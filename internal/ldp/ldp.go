// Package ldp implements the local differential privacy mechanisms the
// paper builds on and compares against (§2, §3.3, §4.2): binary randomized
// response (the privacy layer of bit-pushing), the Laplace mechanism, Duchi
// et al.'s randomized rounding, and the piecewise mechanism of Wang et al.
//
// All mechanisms provide ε-LDP: for any two inputs, the probability of any
// given output differs by at most a factor of exp(ε).
package ldp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/frand"
)

// ErrEpsilon reports a non-positive privacy parameter.
var ErrEpsilon = errors.New("ldp: epsilon must be positive")

// RandomizedResponse masks a single bit: with probability P the true bit is
// reported, otherwise its complement (Warner 1965). With
// P = exp(ε)/(1+exp(ε)) the mechanism is ε-LDP (§3.3).
type RandomizedResponse struct {
	Eps float64 // privacy parameter ε > 0
	P   float64 // probability of reporting truthfully, in (1/2, 1)
}

// NewRandomizedResponse returns the ε-LDP randomized response mechanism.
func NewRandomizedResponse(eps float64) (*RandomizedResponse, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, eps)
	}
	e := math.Exp(eps)
	return &RandomizedResponse{Eps: eps, P: e / (1 + e)}, nil
}

// Apply perturbs one bit.
func (rr *RandomizedResponse) Apply(bit uint64, r *frand.RNG) uint64 {
	if bit > 1 {
		panic("ldp: randomized response input not a bit")
	}
	if r.Bernoulli(rr.P) {
		return bit
	}
	return 1 - bit
}

// ApplyBatch perturbs every bit in place, drawing one Bernoulli variate per
// element in slice order — exactly the stream Apply consumes applied
// element-wise, so batched and per-report randomization are
// interchangeable bit for bit.
func (rr *RandomizedResponse) ApplyBatch(bits []uint64, r *frand.RNG) {
	for i, bit := range bits {
		if bit > 1 {
			panic("ldp: randomized response input not a bit")
		}
		if !r.Bernoulli(rr.P) {
			bits[i] = 1 - bit
		}
	}
}

// UnbiasMean converts a mean of perturbed bits into an unbiased estimate of
// the mean of the true bits: (m - (1-p)) / (2p - 1) (§3.3).
func (rr *RandomizedResponse) UnbiasMean(m float64) float64 {
	return (m - (1 - rr.P)) / (2*rr.P - 1)
}

// BiasMean is the inverse of UnbiasMean: the expected perturbed mean for a
// given true bit mean.
func (rr *RandomizedResponse) BiasMean(m float64) float64 {
	return m*(2*rr.P-1) + (1 - rr.P)
}

// ReportVariance is the variance of a single unbiased report,
// exp(ε)/(exp(ε)-1)^2, which is independent of the true bit mean (§3.3).
func (rr *RandomizedResponse) ReportVariance() float64 {
	e := math.Exp(rr.Eps)
	return e / ((e - 1) * (e - 1))
}

// NoiseStdForMean returns the standard deviation of DP noise on the
// estimated mean of a single bit aggregated over k unbiased reports. The
// bit-squashing heuristic (§3.3) thresholds bit means against a multiple of
// this quantity.
func (rr *RandomizedResponse) NoiseStdForMean(k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(rr.ReportVariance() / float64(k))
}

// Laplace is the classic ε-DP Laplace mechanism on a bounded interval.
// The paper's evaluation reports it as uniformly worse than the one-bit
// methods ("errors 2-3 times larger in all cases"); it is included as the
// omitted baseline.
type Laplace struct {
	Eps    float64
	Lo, Hi float64 // value bounds; sensitivity is Hi - Lo
}

// NewLaplace returns a Laplace mechanism for values in [lo, hi].
func NewLaplace(eps, lo, hi float64) (*Laplace, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, eps)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("ldp: invalid bounds [%v, %v]", lo, hi)
	}
	return &Laplace{Eps: eps, Lo: lo, Hi: hi}, nil
}

// Perturb clamps x to the bounds and adds Laplace((hi-lo)/ε) noise.
func (l *Laplace) Perturb(x float64, r *frand.RNG) float64 {
	x = math.Max(l.Lo, math.Min(l.Hi, x))
	return x + r.Laplace(0, (l.Hi-l.Lo)/l.Eps)
}

// EstimateMean perturbs every value and returns the mean of the noisy
// reports, which is unbiased for the clamped population mean.
func (l *Laplace) EstimateMean(values []float64, r *frand.RNG) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += l.Perturb(v, r)
	}
	return sum / float64(len(values))
}

// Duchi implements the one-bit mechanism of Duchi, Jordan and Wainwright:
// the input is scaled to [0,1], randomly rounded to a bit with probability
// equal to its value, and the bit is passed through randomized response (§2).
type Duchi struct {
	RR     RandomizedResponse
	Lo, Hi float64
}

// NewDuchi returns the Duchi et al. mechanism for values in [lo, hi].
func NewDuchi(eps, lo, hi float64) (*Duchi, error) {
	rr, err := NewRandomizedResponse(eps)
	if err != nil {
		return nil, err
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("ldp: invalid bounds [%v, %v]", lo, hi)
	}
	return &Duchi{RR: *rr, Lo: lo, Hi: hi}, nil
}

// Perturb returns the single private bit for value x.
func (d *Duchi) Perturb(x float64, r *frand.RNG) uint64 {
	scaled := (x - d.Lo) / (d.Hi - d.Lo)
	scaled = math.Max(0, math.Min(1, scaled))
	bit := uint64(0)
	if r.Bernoulli(scaled) { // randomized rounding
		bit = 1
	}
	return d.RR.Apply(bit, r)
}

// EstimateMean gathers one perturbed bit per value and returns the unbiased
// mean estimate scaled back to [lo, hi].
func (d *Duchi) EstimateMean(values []float64, r *frand.RNG) float64 {
	if len(values) == 0 {
		return 0
	}
	var ones float64
	for _, v := range values {
		ones += float64(d.Perturb(v, r))
	}
	m := d.RR.UnbiasMean(ones / float64(len(values)))
	return d.Lo + m*(d.Hi-d.Lo)
}

// Piecewise implements the piecewise-constant mechanism of Wang et al.
// (ICDE 2019): for input x in [-1, 1] it outputs a value in [-C, C] whose
// density is high on a window around x and low elsewhere, giving an
// unbiased ε-LDP estimate with lower variance than randomized rounding for
// moderate ε (§2, §4.2).
type Piecewise struct {
	Eps    float64
	Lo, Hi float64
	c      float64 // output range bound C
}

// NewPiecewise returns the piecewise mechanism for values in [lo, hi].
func NewPiecewise(eps, lo, hi float64) (*Piecewise, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("%w: %v", ErrEpsilon, eps)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("ldp: invalid bounds [%v, %v]", lo, hi)
	}
	e2 := math.Exp(eps / 2)
	return &Piecewise{Eps: eps, Lo: lo, Hi: hi, c: (e2 + 1) / (e2 - 1)}, nil
}

// C returns the output range bound.
func (p *Piecewise) C() float64 { return p.c }

// Perturb maps x to [-1,1], samples the piecewise output, and returns it
// (still in [-C, C] on the normalized scale).
func (p *Piecewise) Perturb(x float64, r *frand.RNG) float64 {
	t := 2*(x-p.Lo)/(p.Hi-p.Lo) - 1
	t = math.Max(-1, math.Min(1, t))
	e2 := math.Exp(p.Eps / 2)
	l := (p.c+1)/2*t - (p.c-1)/2
	rt := l + p.c - 1
	if r.Bernoulli(e2 / (e2 + 1)) {
		// High-density window [l, r].
		return l + (rt-l)*r.Float64()
	}
	// Low-density tails [-C, l) ∪ (r, C], chosen proportional to length.
	leftLen := l + p.c
	rightLen := p.c - rt
	u := r.Float64() * (leftLen + rightLen)
	if u < leftLen {
		return -p.c + u
	}
	return rt + (u - leftLen)
}

// EstimateMean perturbs every value and returns the mean estimate scaled
// back to [lo, hi]. The piecewise output is already unbiased on the
// normalized scale.
func (p *Piecewise) EstimateMean(values []float64, r *frand.RNG) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += p.Perturb(v, r)
	}
	t := sum / float64(len(values))
	return p.Lo + (t+1)/2*(p.Hi-p.Lo)
}
