package ldp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/frand"
)

func TestNewRandomizedResponseValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.NaN()} {
		if _, err := NewRandomizedResponse(eps); !errors.Is(err, ErrEpsilon) {
			t.Errorf("eps=%v: err = %v, want ErrEpsilon", eps, err)
		}
	}
}

func TestRandomizedResponseTruthProbability(t *testing.T) {
	rr, err := NewRandomizedResponse(math.Log(3)) // p should be 3/4
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rr.P-0.75) > 1e-12 {
		t.Fatalf("P = %v, want 0.75", rr.P)
	}
}

func TestRandomizedResponseLDPRatio(t *testing.T) {
	// P(report 1 | bit 1) / P(report 1 | bit 0) must equal exp(eps).
	for _, eps := range []float64{0.1, 0.5, 1, 2, 5} {
		rr, _ := NewRandomizedResponse(eps)
		ratio := rr.P / (1 - rr.P)
		if math.Abs(ratio-math.Exp(eps)) > 1e-9*math.Exp(eps) {
			t.Errorf("eps=%v: likelihood ratio %v, want %v", eps, ratio, math.Exp(eps))
		}
	}
}

func TestRandomizedResponseEmpiricalFlipRate(t *testing.T) {
	rr, _ := NewRandomizedResponse(1)
	r := frand.New(1)
	const n = 200000
	kept := 0
	for i := 0; i < n; i++ {
		if rr.Apply(1, r) == 1 {
			kept++
		}
	}
	got := float64(kept) / n
	if math.Abs(got-rr.P) > 0.005 {
		t.Fatalf("empirical truth rate %v, want %v", got, rr.P)
	}
}

func TestRandomizedResponsePanicsOnNonBit(t *testing.T) {
	rr, _ := NewRandomizedResponse(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply(2) did not panic")
		}
	}()
	rr.Apply(2, frand.New(1))
}

func TestUnbiasMeanInvertsBias(t *testing.T) {
	rr, _ := NewRandomizedResponse(0.7)
	for _, m := range []float64{0, 0.2, 0.5, 0.9, 1} {
		got := rr.UnbiasMean(rr.BiasMean(m))
		if math.Abs(got-m) > 1e-12 {
			t.Errorf("unbias(bias(%v)) = %v", m, got)
		}
	}
}

func TestUnbiasMeanEmpirical(t *testing.T) {
	rr, _ := NewRandomizedResponse(1.5)
	r := frand.New(2)
	const n = 300000
	trueMean := 0.3
	var reported float64
	for i := 0; i < n; i++ {
		bit := uint64(0)
		if r.Bernoulli(trueMean) {
			bit = 1
		}
		reported += float64(rr.Apply(bit, r))
	}
	est := rr.UnbiasMean(reported / n)
	if math.Abs(est-trueMean) > 0.01 {
		t.Fatalf("unbiased estimate %v, want ~%v", est, trueMean)
	}
}

func TestReportVariance(t *testing.T) {
	// Empirical variance of the unbiased single-bit estimator must match
	// exp(eps)/(exp(eps)-1)^2 when the true bit is constant.
	rr, _ := NewRandomizedResponse(1)
	r := frand.New(3)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		rep := rr.UnbiasMean(float64(rr.Apply(0, r)))
		sum += rep
		sumSq += rep * rep
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := rr.ReportVariance()
	if math.Abs(variance-want) > 0.05*want {
		t.Fatalf("empirical report variance %v, want ~%v", variance, want)
	}
}

func TestNoiseStdForMean(t *testing.T) {
	rr, _ := NewRandomizedResponse(2)
	v := rr.ReportVariance()
	if got := rr.NoiseStdForMean(100); math.Abs(got-math.Sqrt(v/100)) > 1e-12 {
		t.Errorf("NoiseStdForMean(100) = %v", got)
	}
	if !math.IsInf(rr.NoiseStdForMean(0), 1) {
		t.Error("NoiseStdForMean(0) should be +Inf")
	}
}

func TestLaplaceValidation(t *testing.T) {
	if _, err := NewLaplace(0, 0, 1); !errors.Is(err, ErrEpsilon) {
		t.Errorf("eps=0: err = %v", err)
	}
	if _, err := NewLaplace(1, 1, 1); err == nil {
		t.Error("equal bounds accepted")
	}
}

func TestLaplaceUnbiased(t *testing.T) {
	l, err := NewLaplace(1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(4)
	values := make([]float64, 50000)
	for i := range values {
		values[i] = 400
	}
	// Average several repetitions: a single sample mean of Laplace(0,1000)
	// noise over 50k reports still has std ~6.3, so one run is too noisy
	// for a tight assertion.
	var est float64
	const reps = 10
	for i := 0; i < reps; i++ {
		est += l.EstimateMean(values, r)
	}
	est /= reps
	if math.Abs(est-400) > 8 {
		t.Fatalf("laplace mean estimate %v, want ~400", est)
	}
}

func TestLaplaceClampsInput(t *testing.T) {
	l, _ := NewLaplace(10, 0, 10)
	r := frand.New(5)
	// A wildly out-of-range value must be clamped before noising, bounding
	// its influence (sensitivity control).
	var s float64
	const n = 20000
	for i := 0; i < n; i++ {
		s += l.Perturb(1e9, r)
	}
	if got := s / n; math.Abs(got-10) > 0.5 {
		t.Fatalf("clamped perturbation mean %v, want ~10", got)
	}
}

func TestDuchiUnbiased(t *testing.T) {
	d, err := NewDuchi(2, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(6)
	values := make([]float64, 100000)
	for i := range values {
		values[i] = 37
	}
	est := d.EstimateMean(values, r)
	if math.Abs(est-37) > 1.5 {
		t.Fatalf("duchi estimate %v, want ~37", est)
	}
}

func TestDuchiOutputIsBit(t *testing.T) {
	d, _ := NewDuchi(1, 0, 1)
	r := frand.New(7)
	for i := 0; i < 1000; i++ {
		if b := d.Perturb(r.Float64(), r); b > 1 {
			t.Fatalf("Duchi emitted non-bit %d", b)
		}
	}
}

func TestDuchiClampsOutOfRange(t *testing.T) {
	d, _ := NewDuchi(5, 0, 10)
	r := frand.New(8)
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += int(d.Perturb(-50, r))
	}
	// Clamped to 0: rounding bit always 0; reported 1s only from RR flips,
	// with rate 1-P.
	got := float64(ones) / n
	want := 1 - d.RR.P
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("clamped-input one-rate %v, want ~%v", got, want)
	}
}

func TestPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise(0, 0, 1); !errors.Is(err, ErrEpsilon) {
		t.Errorf("eps=0: err = %v", err)
	}
	if _, err := NewPiecewise(1, 2, 2); err == nil {
		t.Error("equal bounds accepted")
	}
}

func TestPiecewiseOutputRange(t *testing.T) {
	p, err := NewPiecewise(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(9)
	for i := 0; i < 10000; i++ {
		out := p.Perturb(r.Float64(), r)
		if out < -p.C()-1e-9 || out > p.C()+1e-9 {
			t.Fatalf("piecewise output %v outside [-C, C], C=%v", out, p.C())
		}
	}
}

func TestPiecewiseUnbiased(t *testing.T) {
	p, err := NewPiecewise(1.5, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(10)
	values := make([]float64, 100000)
	for i := range values {
		values[i] = 130
	}
	est := p.EstimateMean(values, r)
	if math.Abs(est-130) > 2 {
		t.Fatalf("piecewise estimate %v, want ~130", est)
	}
}

func TestPiecewiseWindowConcentration(t *testing.T) {
	// Most probability mass must sit in the high-density window around the
	// input: for eps=4 the window captures e^2/(e^2+1) ≈ 88% of outputs.
	p, _ := NewPiecewise(4, -1, 1)
	r := frand.New(11)
	x := 0.5
	e2 := math.Exp(2.0)
	l := (p.C()+1)/2*x - (p.C()-1)/2
	rt := l + p.C() - 1
	in := 0
	const n = 50000
	for i := 0; i < n; i++ {
		out := p.Perturb(x, r)
		if out >= l && out <= rt {
			in++
		}
	}
	got := float64(in) / n
	want := e2 / (e2 + 1)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("window mass %v, want ~%v", got, want)
	}
}

func TestPiecewiseVarianceBeatsDuchiAtModerateEps(t *testing.T) {
	// Wang et al.'s headline: piecewise beats randomized rounding for
	// moderate-to-large eps. Compare empirical squared errors at eps=3.
	const eps, truth, n, reps = 3.0, 0.42, 5000, 40
	r := frand.New(12)
	var pwErr, duErr float64
	pw, _ := NewPiecewise(eps, 0, 1)
	du, _ := NewDuchi(eps, 0, 1)
	values := make([]float64, n)
	for i := range values {
		values[i] = truth
	}
	for rep := 0; rep < reps; rep++ {
		e1 := pw.EstimateMean(values, r) - truth
		e2 := du.EstimateMean(values, r) - truth
		pwErr += e1 * e1
		duErr += e2 * e2
	}
	if pwErr >= duErr {
		t.Fatalf("piecewise MSE %v not below duchi MSE %v at eps=%v", pwErr/reps, duErr/reps, eps)
	}
}

func TestEstimateMeanEmptyInputs(t *testing.T) {
	l, _ := NewLaplace(1, 0, 1)
	d, _ := NewDuchi(1, 0, 1)
	p, _ := NewPiecewise(1, 0, 1)
	r := frand.New(13)
	if l.EstimateMean(nil, r) != 0 || d.EstimateMean(nil, r) != 0 || p.EstimateMean(nil, r) != 0 {
		t.Error("empty estimate should be 0")
	}
}
