// Package distdp implements the distributed differential-privacy
// components of §3.3: Bernoulli noise addition for binary histograms
// (after Balcer and Cheu) and sample-and-threshold privacy (after
// Bharadwaj and Cormode), plus the central-model count thresholding the
// deployment applies inside the aggregation enclave (§4.3, "achieving a
// central differential privacy guarantee by having the enclave apply
// thresholding to the reported bit counts").
//
// The data gathered by bit-pushing is "essentially a collection of binary
// histograms (counts of 0 and 1 bits for each bit index)" (§3.3); both
// mechanisms operate on such count vectors.
package distdp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/frand"
)

// Errors returned by the constructors.
var (
	ErrParam = errors.New("distdp: invalid parameter")
)

// BernoulliNoise adds distributed binomial noise to counts: each of the n
// participating clients contributes one extra Bernoulli(Q) increment, so a
// true count c becomes c + Binomial(n, Q). The aggregate noise concentrates
// like Gaussian noise with variance nQ(1-Q), giving an (ε, δ)-DP guarantee
// in the distributed model while each client adds only a single biased
// coin (§3.3, "each client add only a small amount of noise").
type BernoulliNoise struct {
	Q float64 // per-client noise probability in (0, 1)
	N int     // number of noise-contributing clients
}

// NewBernoulliNoise validates and returns the mechanism.
func NewBernoulliNoise(q float64, n int) (*BernoulliNoise, error) {
	if !(q > 0 && q < 1) {
		return nil, fmt.Errorf("%w: q=%v", ErrParam, q)
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrParam, n)
	}
	return &BernoulliNoise{Q: q, N: n}, nil
}

// QForPrivacy returns a per-client noise probability calibrated so the
// aggregate binomial noise masks a single contribution with (ε, δ)-DP,
// using the standard Gaussian-mechanism calibration σ² ≥ 2 ln(1.25/δ)/ε²
// applied to the binomial's variance nq(1-q) ≈ nq. The result is clamped
// to (0, 1/2].
func QForPrivacy(eps, delta float64, n int) (float64, error) {
	if !(eps > 0) || !(delta > 0 && delta < 1) || n < 1 {
		return 0, fmt.Errorf("%w: eps=%v delta=%v n=%d", ErrParam, eps, delta, n)
	}
	sigma2 := 2 * math.Log(1.25/delta) / (eps * eps)
	q := sigma2 / float64(n)
	if q > 0.5 {
		q = 0.5
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	return q, nil
}

// Perturb adds the distributed noise to a true count: each of the N clients
// flips one Q-coin.
func (b *BernoulliNoise) Perturb(count uint64, r *frand.RNG) uint64 {
	extra := uint64(0)
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(b.Q) {
			extra++
		}
	}
	return count + extra
}

// Unbias removes the expected noise N*Q from a perturbed count, flooring at
// zero on the natural scale.
func (b *BernoulliNoise) Unbias(noisy uint64) float64 {
	return float64(noisy) - float64(b.N)*b.Q
}

// NoiseStd returns the standard deviation of the added noise.
func (b *BernoulliNoise) NoiseStd() float64 {
	return math.Sqrt(float64(b.N) * b.Q * (1 - b.Q))
}

// SampleThreshold implements sample-and-threshold DP: every unit of count
// is retained independently with probability Gamma, then any count below
// Tau is removed entirely. Bharadwaj and Cormode show that random sampling
// plus small-count removal yields (ε, δ)-DP for histograms (§3.3), and the
// deployment found the introduced error "negligible ... compared to the
// non-thresholded sample" (§4.3).
type SampleThreshold struct {
	Gamma float64 // sampling rate in (0, 1]
	Tau   uint64  // counts strictly below Tau are zeroed
}

// NewSampleThreshold validates and returns the mechanism.
func NewSampleThreshold(gamma float64, tau uint64) (*SampleThreshold, error) {
	if !(gamma > 0 && gamma <= 1) {
		return nil, fmt.Errorf("%w: gamma=%v", ErrParam, gamma)
	}
	return &SampleThreshold{Gamma: gamma, Tau: tau}, nil
}

// TauForPrivacy returns a removal threshold calibrated for (ε, δ)-DP at
// sampling rate gamma, following the sample-and-threshold analysis: a
// count that survives sampling must be large enough that its presence or
// absence cannot be attributed to one client, which holds once
// τ ≥ 1 + ln(1/δ)/ε scaled by the retained fraction.
func TauForPrivacy(eps, delta, gamma float64) (uint64, error) {
	if !(eps > 0) || !(delta > 0 && delta < 1) || !(gamma > 0 && gamma <= 1) {
		return 0, fmt.Errorf("%w: eps=%v delta=%v gamma=%v", ErrParam, eps, delta, gamma)
	}
	tau := (1 + math.Log(1/delta)/eps) * gamma
	return uint64(math.Ceil(tau)) + 1, nil
}

// Apply samples each count binomially at rate Gamma and zeroes counts below
// Tau. The returned slice is freshly allocated.
func (s *SampleThreshold) Apply(counts []uint64, r *frand.RNG) []uint64 {
	out := make([]uint64, len(counts))
	for i, c := range counts {
		kept := binomial(c, s.Gamma, r)
		if kept < s.Tau {
			kept = 0
		}
		out[i] = kept
	}
	return out
}

// Unbias rescales a sampled count back to the population scale.
func (s *SampleThreshold) Unbias(sampled uint64) float64 {
	return float64(sampled) / s.Gamma
}

// binomial draws Binomial(n, p). For large n it uses a normal
// approximation; exact coin flips below the cutoff keep small counts exact,
// which matters for the thresholding behaviour.
func binomial(n uint64, p float64, r *frand.RNG) uint64 {
	if p >= 1 {
		return n
	}
	if p <= 0 || n == 0 {
		return 0
	}
	const exactCutoff = 256
	if n <= exactCutoff {
		var k uint64
		for i := uint64(0); i < n; i++ {
			if r.Bernoulli(p) {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	std := math.Sqrt(float64(n) * p * (1 - p))
	draw := math.Round(r.Normal(mean, std))
	if draw < 0 {
		return 0
	}
	if draw > float64(n) {
		return n
	}
	return uint64(draw)
}

// ThresholdCounts zeroes every count strictly below tau, the central-model
// post-processing the deployment's enclave applies (§4.3). Post-processing
// preserves any DP guarantee already in place.
func ThresholdCounts(counts []uint64, tau uint64) []uint64 {
	out := make([]uint64, len(counts))
	for i, c := range counts {
		if c >= tau {
			out[i] = c
		}
	}
	return out
}
