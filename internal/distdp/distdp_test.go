package distdp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/frand"
	"repro/internal/stats"
)

func TestNewBernoulliNoiseValidation(t *testing.T) {
	cases := []struct {
		q float64
		n int
	}{{0, 10}, {1, 10}, {-0.1, 10}, {0.5, 0}}
	for _, c := range cases {
		if _, err := NewBernoulliNoise(c.q, c.n); !errors.Is(err, ErrParam) {
			t.Errorf("NewBernoulliNoise(%v,%d): err = %v", c.q, c.n, err)
		}
	}
}

func TestBernoulliNoiseUnbiased(t *testing.T) {
	b, err := NewBernoulliNoise(0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(1)
	var s stats.Stream
	for i := 0; i < 2000; i++ {
		s.Add(b.Unbias(b.Perturb(500, r)))
	}
	if math.Abs(s.Mean()-500) > 1.5 {
		t.Fatalf("unbiased mean %v, want ~500", s.Mean())
	}
}

func TestBernoulliNoiseStd(t *testing.T) {
	b, _ := NewBernoulliNoise(0.2, 400)
	r := frand.New(2)
	var s stats.Stream
	for i := 0; i < 5000; i++ {
		s.Add(float64(b.Perturb(0, r)))
	}
	if math.Abs(s.StdDev()-b.NoiseStd()) > 0.05*b.NoiseStd() {
		t.Fatalf("empirical noise std %v, analytic %v", s.StdDev(), b.NoiseStd())
	}
}

func TestQForPrivacy(t *testing.T) {
	q, err := QForPrivacy(1, 1e-6, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if q <= 0 || q > 0.5 {
		t.Fatalf("q = %v out of (0, 0.5]", q)
	}
	// Stricter privacy (smaller eps) needs more noise.
	q2, _ := QForPrivacy(0.1, 1e-6, 10000)
	if q2 <= q {
		t.Fatalf("q(eps=0.1)=%v not above q(eps=1)=%v", q2, q)
	}
	// Larger cohorts need smaller per-client noise.
	q3, _ := QForPrivacy(1, 1e-6, 1000000)
	if q3 >= q {
		t.Fatalf("q(n=1e6)=%v not below q(n=1e4)=%v", q3, q)
	}
}

func TestQForPrivacyValidation(t *testing.T) {
	for _, c := range []struct {
		eps, delta float64
		n          int
	}{{0, 0.1, 10}, {1, 0, 10}, {1, 1, 10}, {1, 0.1, 0}} {
		if _, err := QForPrivacy(c.eps, c.delta, c.n); !errors.Is(err, ErrParam) {
			t.Errorf("QForPrivacy(%v,%v,%d): err = %v", c.eps, c.delta, c.n, err)
		}
	}
}

func TestNewSampleThresholdValidation(t *testing.T) {
	for _, g := range []float64{0, -1, 1.1} {
		if _, err := NewSampleThreshold(g, 1); !errors.Is(err, ErrParam) {
			t.Errorf("gamma=%v: err = %v", g, err)
		}
	}
}

func TestSampleThresholdUnbiasedAboveThreshold(t *testing.T) {
	st, err := NewSampleThreshold(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := frand.New(3)
	var s stats.Stream
	for i := 0; i < 3000; i++ {
		out := st.Apply([]uint64{10000}, r)
		s.Add(st.Unbias(out[0]))
	}
	if math.Abs(s.Mean()-10000) > 30 {
		t.Fatalf("unbiased sampled count %v, want ~10000", s.Mean())
	}
}

func TestSampleThresholdRemovesSmallCounts(t *testing.T) {
	st, _ := NewSampleThreshold(1, 5)
	r := frand.New(4)
	out := st.Apply([]uint64{0, 1, 4, 5, 100}, r)
	want := []uint64{0, 0, 0, 5, 100}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Apply[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestSampleThresholdGammaOne(t *testing.T) {
	st, _ := NewSampleThreshold(1, 0)
	r := frand.New(5)
	in := []uint64{7, 300, 0}
	out := st.Apply(in, r)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("gamma=1 changed counts: %v -> %v", in, out)
		}
	}
}

func TestTauForPrivacy(t *testing.T) {
	tau, err := TauForPrivacy(1, 1e-6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 2 {
		t.Fatalf("tau = %d implausibly small", tau)
	}
	tighter, _ := TauForPrivacy(0.1, 1e-6, 0.5)
	if tighter <= tau {
		t.Fatalf("tau(eps=0.1)=%d not above tau(eps=1)=%d", tighter, tau)
	}
	if _, err := TauForPrivacy(0, 0.1, 0.5); !errors.Is(err, ErrParam) {
		t.Errorf("TauForPrivacy eps=0: err = %v", err)
	}
}

func TestBinomialSmallExact(t *testing.T) {
	r := frand.New(6)
	var s stats.Stream
	for i := 0; i < 20000; i++ {
		s.Add(float64(binomial(100, 0.3, r)))
	}
	if math.Abs(s.Mean()-30) > 0.3 {
		t.Fatalf("binomial(100,0.3) mean %v, want ~30", s.Mean())
	}
	if math.Abs(s.Variance()-21) > 1.5 {
		t.Fatalf("binomial variance %v, want ~21", s.Variance())
	}
}

func TestBinomialLargeApprox(t *testing.T) {
	r := frand.New(7)
	var s stats.Stream
	for i := 0; i < 5000; i++ {
		v := binomial(100000, 0.25, r)
		if v > 100000 {
			t.Fatalf("binomial exceeded n: %d", v)
		}
		s.Add(float64(v))
	}
	if math.Abs(s.Mean()-25000) > 20 {
		t.Fatalf("binomial(1e5,0.25) mean %v", s.Mean())
	}
}

func TestBinomialEdges(t *testing.T) {
	r := frand.New(8)
	if binomial(10, 0, r) != 0 {
		t.Error("p=0 should give 0")
	}
	if binomial(10, 1, r) != 10 {
		t.Error("p=1 should give n")
	}
	if binomial(0, 0.5, r) != 0 {
		t.Error("n=0 should give 0")
	}
}

func TestThresholdCounts(t *testing.T) {
	out := ThresholdCounts([]uint64{0, 2, 5, 6, 100}, 6)
	want := []uint64{0, 0, 0, 6, 100}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("ThresholdCounts[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestThresholdCountsDoesNotMutate(t *testing.T) {
	in := []uint64{1, 2, 3}
	ThresholdCounts(in, 10)
	if in[0] != 1 || in[1] != 2 || in[2] != 3 {
		t.Error("ThresholdCounts mutated input")
	}
}
