package field

import (
	"encoding/binary"
	"io"
)

// RandElement draws a uniform field element from r by rejection sampling:
// each 8-byte read is truncated to 61 bits and accepted only when it falls
// below the modulus. A plain mod-P reduction of 64-bit draws would
// over-represent small residues; rejection keeps the distribution exactly
// uniform, and with P = 2^61 - 1 only the single value 2^61 - 1 is ever
// rejected, so the expected cost is one read.
//
// r may be crypto/rand.Reader for share and mask material, or any
// deterministic stream (e.g. an AES-CTR keystream) when reproducibility is
// required and the seed itself is secret.
func RandElement(r io.Reader) (Element, error) {
	var b [8]byte
	for {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(b[:]) & (1<<61 - 1)
		if v < P {
			return v, nil
		}
	}
}
