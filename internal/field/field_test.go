package field

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/frand"
)

var bigP = new(big.Int).SetUint64(P)

func bigMod(x uint64) *big.Int {
	return new(big.Int).Mod(new(big.Int).SetUint64(x), bigP)
}

func TestReduce(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{P - 1, P - 1},
		{P, 0},
		{P + 1, 1},
		{1<<64 - 1, (1<<64 - 1) % P},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestReduceMatchesBig(t *testing.T) {
	f := func(x uint64) bool {
		return Reduce(x) == bigMod(x).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubMatchBig(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Reduce(x), Reduce(y)
		sum := new(big.Int).Add(bigMod(a), bigMod(b))
		sum.Mod(sum, bigP)
		if Add(a, b) != sum.Uint64() {
			return false
		}
		diff := new(big.Int).Sub(bigMod(a), bigMod(b))
		diff.Mod(diff, bigP)
		return Sub(a, b) == diff.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := Reduce(x), Reduce(y)
		prod := new(big.Int).Mul(bigMod(a), bigMod(b))
		prod.Mod(prod, bigP)
		return Mul(a, b) == prod.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulEdgeCases(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, P - 1, 0},
		{1, P - 1, P - 1},
		{P - 1, P - 1, 1}, // (-1)^2 = 1
		{2, P - 1, P - 2}, // 2*(-1) = -2
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNeg(t *testing.T) {
	if Neg(0) != 0 {
		t.Error("Neg(0) != 0")
	}
	f := func(x uint64) bool {
		a := Reduce(x)
		return Add(a, Neg(a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	if got := Pow(2, 61); got != 1 { // 2^61 mod (2^61-1) = 1
		t.Errorf("Pow(2,61) = %d, want 1", got)
	}
	if got := Pow(3, 0); got != 1 {
		t.Errorf("Pow(3,0) = %d, want 1", got)
	}
	if got := Pow(0, 5); got != 0 {
		t.Errorf("Pow(0,5) = %d, want 0", got)
	}
	if got := Pow(7, 1); got != 7 {
		t.Errorf("Pow(7,1) = %d, want 7", got)
	}
}

func TestFermat(t *testing.T) {
	// a^(P-1) == 1 for a != 0 (Fermat's little theorem).
	r := frand.New(1)
	for i := 0; i < 20; i++ {
		a := Reduce(r.Uint64())
		if a == 0 {
			continue
		}
		if Pow(a, P-1) != 1 {
			t.Fatalf("a^(P-1) != 1 for a = %d", a)
		}
	}
}

func TestInv(t *testing.T) {
	r := frand.New(2)
	for i := 0; i < 50; i++ {
		a := Reduce(r.Uint64())
		if a == 0 {
			continue
		}
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a = %d", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDiv(t *testing.T) {
	if got := Div(10, 2); got != 5 {
		t.Errorf("Div(10,2) = %d, want 5", got)
	}
	f := func(x, y uint64) bool {
		a, b := Reduce(x), Reduce(y)
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVecOps(t *testing.T) {
	a := []Element{1, 2, P - 1}
	b := []Element{5, P - 1, 1}
	AddVec(a, b)
	want := []Element{6, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("AddVec[%d] = %d, want %d", i, a[i], want[i])
		}
	}
	SubVec(a, b)
	want = []Element{1, 2, P - 1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("SubVec[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { AddVec([]Element{1}, []Element{1, 2}) },
		func() { SubVec([]Element{1, 2}, []Element{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on length mismatch")
				}
			}()
			f()
		}()
	}
}

func TestAssociativityDistributivity(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := Reduce(x), Reduce(y), Reduce(z)
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := Reduce(0x123456789abcdef), Reduce(0xfedcba987654321)
	var sink Element
	for i := 0; i < b.N; i++ {
		sink = Mul(x, sink^y)
	}
	_ = sink
}
