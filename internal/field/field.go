// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime), the algebra underlying the Shamir
// secret sharing and additive masking used by the secure-aggregation
// substrate (paper §3.3, "Secure aggregation").
//
// Elements are represented as uint64 values in [0, p). All operations are
// constant-time with respect to branching on secret values except where
// noted; this repository's secure aggregation is a protocol simulation, not
// a hardened implementation (see DESIGN.md §2).
package field

import "math/bits"

// P is the field modulus, the Mersenne prime 2^61 - 1.
const P uint64 = 1<<61 - 1

// Element is a field element in [0, P).
type Element = uint64

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) Element {
	// Fold the top bits: x = lo + hi*2^61 ≡ lo + hi (mod 2^61-1).
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns a + b mod P. Inputs must already be reduced.
func Add(a, b Element) Element {
	s := a + b // < 2^62, no overflow
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a - b mod P. Inputs must already be reduced.
func Sub(a, b Element) Element {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns -a mod P.
func Neg(a Element) Element {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a * b mod P using 128-bit multiplication and Mersenne folding.
func Mul(a, b Element) Element {
	hi, lo := bits.Mul64(a, b)
	// product = hi*2^64 + lo, with hi < 2^58 because a, b < 2^61.
	// Split at bit 61: product = (lo & P) + ((hi<<3 | lo>>61)) * 2^61.
	low := lo & P
	high := hi<<3 | lo>>61
	s := low + (high & P) + (high >> 61)
	s = (s & P) + (s >> 61)
	if s >= P {
		s -= P
	}
	return s
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Element, e uint64) Element {
	result := Element(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a via Fermat's little theorem
// (a^(P-2)). It panics on a == 0, which has no inverse.
func Inv(a Element) Element {
	if a == 0 {
		panic("field: inverse of zero")
	}
	return Pow(a, P-2)
}

// Div returns a / b mod P. It panics on b == 0.
func Div(a, b Element) Element {
	return Mul(a, Inv(b))
}

// AddVec adds b into a element-wise. The slices must have equal length.
func AddVec(a, b []Element) {
	if len(a) != len(b) {
		panic("field: AddVec length mismatch")
	}
	for i := range a {
		a[i] = Add(a[i], b[i])
	}
}

// SubVec subtracts b from a element-wise. The slices must have equal length.
func SubVec(a, b []Element) {
	if len(a) != len(b) {
		panic("field: SubVec length mismatch")
	}
	for i := range a {
		a[i] = Sub(a[i], b[i])
	}
}
