package noprintflog

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/transport", // positives: Logf field/method, fmt/log prints; negatives: slog, Sprintf, test file
		"repro/cmd/tool",           // negative: package main may print
	)
}
