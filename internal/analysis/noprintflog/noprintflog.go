// Package noprintflog enforces the slog migration completed in PR 2–3:
// library packages must not print to stdout/stderr behind the operator's
// back. fmt.Print* and log.Print*/Fatal*/Panic* calls are flagged in every
// non-main package (outside tests), and protocol packages may never grow
// back a printf-shaped `Logf` hook — the deprecated transport shim that PR 4
// deleted. Structured slog output is what the observability stack (obs
// package, fednumd -log-format) parses; stray prints bypass level filtering
// and corrupt machine-read logs.
package noprintflog

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// banned lists the package-level print functions that bypass slog.
var banned = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// Analyzer is the noprintflog check.
var Analyzer = &analysis.Analyzer{
	Name: "noprintflog",
	Doc: "ban fmt.Print*/log.Print* in non-main packages and printf-shaped Logf hooks in protocol packages. " +
		"Operational output must flow through slog so the observability stack can parse it.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	cls := policy.Classify(pass.PkgPath)
	if cls == policy.Main {
		return nil, nil
	}
	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.Field:
				if cls == policy.Protocol {
					checkLogfField(pass, n)
				}
			case *ast.FuncDecl:
				if cls == policy.Protocol && n.Name.Name == "Logf" {
					pass.Reportf(n.Name.Pos(), "printf-shaped Logf hooks are banned in protocol packages (the deprecated transport shim was deleted): expose a *slog.Logger instead")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkCall flags calls to the banned fmt/log printers.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.CalleeObject(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if names, ok := banned[obj.Pkg().Path()]; ok && names[obj.Name()] {
		pass.Reportf(call.Pos(), "%s.%s in a library package bypasses slog: use the package's *slog.Logger (obs.Logger) so output respects -log-format and -log-level", obj.Pkg().Path(), obj.Name())
	}
}

// checkLogfField flags struct fields named Logf with a function type — the
// shape of the deleted transport shim.
func checkLogfField(pass *analysis.Pass, field *ast.Field) {
	if _, ok := field.Type.(*ast.FuncType); !ok {
		return
	}
	for _, name := range field.Names {
		if name.Name == "Logf" {
			pass.Reportf(name.Pos(), "printf-shaped Logf hooks are banned in protocol packages (the deprecated transport shim was deleted): expose a *slog.Logger instead")
		}
	}
}
