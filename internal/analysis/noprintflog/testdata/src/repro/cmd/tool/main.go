// Command tool fixture: package main owns its stdout and may print.
package main

import (
	"fmt"
	"log"
)

func main() {
	fmt.Println("operator-facing output is fine in main")
	log.Printf("and so is the standard logger")
}
