// Test files may print: t.Logf and debugging output never reach the
// production log stream.
package transport

import (
	"fmt"
	"testing"
)

func TestPrintAllowed(t *testing.T) {
	fmt.Println("debugging output is fine in tests")
	t.Logf("so is t.Logf")
}
