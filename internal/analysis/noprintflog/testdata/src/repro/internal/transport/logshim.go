// Package transport fixture: protocol-class code where printf-shaped
// logging hooks and direct printing are banned.
package transport

import (
	"fmt"
	"log"
	"log/slog"
)

// Server shows the banned shim shape next to the required slog hook.
type Server struct {
	Logger *slog.Logger
	Logf   func(format string, args ...any) // want `printf-shaped Logf hooks are banned in protocol packages`
	Addr   string                           // non-function Logf lookalikes are fine
}

// Admin hosts the method variant of the shim.
type Admin struct {
	Logger *slog.Logger
}

// Logf as a method is the same shim in disguise.
func (a *Admin) Logf(format string, args ...any) { // want `printf-shaped Logf hooks are banned in protocol packages`
	a.Logger.Info(fmt.Sprintf(format, args...))
}

// Serve prints where it must not.
func (s *Server) Serve() error {
	fmt.Println("listening on", s.Addr) // want `fmt.Println in a library package bypasses slog`
	log.Printf("serving %s", s.Addr)    // want `log.Printf in a library package bypasses slog`
	s.Logger.Info("serving", "addr", s.Addr)
	return nil
}

// Describe may format strings all it wants — only printing is banned.
func (s *Server) Describe() string {
	return fmt.Sprintf("server on %s", s.Addr)
}
