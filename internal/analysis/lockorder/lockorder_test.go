package lockorder

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer, "repro/lockfix/order")
}

// TestLockGraphArtifact asserts the FEDLINT_LOCKGRAPH side channel dumps
// the package's acquisition edges as a DOT fragment CI can stitch into
// the repo-wide graph.
func TestLockGraphArtifact(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("FEDLINT_LOCKGRAPH", dir)
	probe := &analysis.Analyzer{Name: Analyzer.Name, Doc: Analyzer.Doc, Run: Analyzer.Run}
	checktest.RunCollect(t, "testdata", probe, []string{"repro/lockfix/order"}, func(analysis.Diagnostic) {})

	data, err := os.ReadFile(filepath.Join(dir, "repro__lockfix__order.dot"))
	if err != nil {
		t.Fatalf("reading lock graph fragment: %v", err)
	}
	got := string(data)
	for _, edge := range []string{
		`"repro/lockfix/order.muA" -> "repro/lockfix/order.muB";`,
		`"repro/lockfix/order.muB" -> "repro/lockfix/order.muA";`,
		`"repro/lockfix/order.muC" -> "repro/lockfix/order.muD";`,
	} {
		if !strings.Contains(got, edge) {
			t.Errorf("lock graph fragment missing edge %s\ngot:\n%s", edge, got)
		}
	}
}
