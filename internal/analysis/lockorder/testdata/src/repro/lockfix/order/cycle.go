package order

import "sync"

var muA, muB sync.Mutex

// takeAB and takeBA disagree on acquisition order: the classic ABBA
// deadlock the moment the two paths interleave.
func takeAB() {
	muA.Lock()
	muB.Lock() // want `muB is acquired while muA is held`
	muB.Unlock()
	muA.Unlock()
}

func takeBA() {
	muB.Lock()
	muA.Lock() // want `muA is acquired while muB is held`
	muA.Unlock()
	muB.Unlock()
}
