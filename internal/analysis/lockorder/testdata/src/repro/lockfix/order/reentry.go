package order

import "sync"

type Box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Direct re-acquisition: Go mutexes are not reentrant.
func (b *Box) double() {
	b.mu.Lock()
	b.mu.Lock() // want `lock Box\.mu acquired while already held`
	b.mu.Unlock()
	b.mu.Unlock()
}

// Re-entry through a same-package callee, found via the fixed-point
// may-acquire summaries.
func (b *Box) outer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inner() // want `call to inner may re-acquire Box\.mu`
}

func (b *Box) inner() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Stacked read locks are permitted: concurrent readers are the point of
// an RWMutex (writer starvation is a latency concern, not a deadlock).
func (b *Box) readers() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	b.rw.RLock()
	n := b.n
	b.rw.RUnlock()
	return n
}
