package order

import "sync"

var muC, muD sync.Mutex

// Consistent one-way nesting never deadlocks.
func nestCD() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func nestCDAgain() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	defer muD.Unlock()
}

// Release-then-reacquire is not re-entry.
func relock() {
	muC.Lock()
	muC.Unlock()
	muC.Lock()
	muC.Unlock()
}

// A branch that unlocks and returns does not leak a stale held set into
// the fall-through path.
func branchy(cond bool) {
	muC.Lock()
	if cond {
		muC.Unlock()
		return
	}
	muC.Unlock()
}
