// Package lockorder builds the mutex-acquisition graph — an edge A → B
// for every site that acquires lock class B while holding lock class A,
// directly or through a call — and diagnoses the two shapes that
// deadlock: a lock re-acquired while already held (self-deadlock on Go's
// non-reentrant mutexes), and a cycle in the graph (two paths that take
// the same pair of locks in opposite orders deadlock the moment they
// interleave).
//
// Lock identity is the declared field or variable ("transport.Server.mu",
// "wal.WAL.flushMu"), not the instance: deadlock ordering is a property
// of lock classes. Edges follow same-package calls transitively
// (flow-insensitively: a callee that may acquire is treated as
// acquiring) and cross package boundaries through the curated
// policy.LockFacts table, which is how the transport → wal nesting
// (Server.mu → WAL.mu on the append path) enters the graph.
//
// Because a callee's acquisition may be conditional, the re-entry
// diagnosis distinguishes direct re-acquisition (always reported) from
// re-entry through a call (reported — the *Locked naming convention
// exists so helpers that expect the lock held never re-lock it).
//
// Set FEDLINT_LOCKGRAPH to a directory to dump each package's edges as a
// DOT fragment — CI stitches them into the repo-wide reviewable graph.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lockset"
	"repro/internal/analysis/policy"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the mutex-acquisition graph and diagnose self-deadlocks and cyclic (inconsistent) " +
		"acquisition orders before they can interleave into a real deadlock.",
	Run: run,
}

// edge is one observed "to acquired while from held" pair with a
// representative site.
type edge struct {
	from, to string
	pos      token.Pos
	fromName string
	toName   string
}

func run(pass *analysis.Pass) (any, error) {
	acquires := lockset.Acquires(pass.Files, pass.TypesInfo, policy.LockFacts)

	edges := make(map[[2]string]edge)
	record := func(held []lockset.Held, toID, toName string, pos token.Pos) {
		for _, h := range held {
			if h.ID == toID {
				continue // re-entry is reported separately, not an order edge
			}
			key := [2]string{h.ID, toID}
			if _, seen := edges[key]; !seen {
				edges[key] = edge{from: h.ID, to: toID, pos: pos, fromName: h.Name, toName: toName}
			}
		}
	}

	for _, f := range pass.Files {
		if policy.IsTestFile(pass.FileName(f)) {
			continue
		}
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			lockset.WalkFunc(pass.TypesInfo, fd.Body, lockset.Callbacks{
				Acquire: func(held []lockset.Held, acq lockset.Held) {
					for _, h := range held {
						if h.ID == acq.ID && !(h.Read && acq.Read) {
							pass.Reportf(acq.Pos,
								"lock %s acquired while already held (acquired at %s): Go mutexes are not reentrant, this deadlocks",
								acq.Name, pass.Position(h.Pos))
							return
						}
					}
					record(held, acq.ID, acq.Name, acq.Pos)
				},
				Call: func(held []lockset.Held, call *ast.CallExpr) {
					if len(held) == 0 {
						return
					}
					callee, isFn := analysis.CalleeObject(pass.TypesInfo, call).(*types.Func)
					if !isFn {
						return
					}
					var ids map[string]token.Pos
					if m, ok := acquires[callee]; ok {
						ids = m
					} else if facts := policy.LockFacts[callee.FullName()]; len(facts) > 0 {
						ids = make(map[string]token.Pos, len(facts))
						for _, id := range facts {
							ids[id] = call.Pos()
						}
					}
					for id := range ids {
						for _, h := range held {
							if h.ID == id {
								pass.Reportf(call.Pos(),
									"call to %s may re-acquire %s, which is already held (acquired at %s): use a *Locked variant or restructure",
									callee.Name(), h.Name, pass.Position(h.Pos))
							}
						}
						record(held, id, shortLock(id), call.Pos())
					}
				},
			})
		}
	}

	reportCycles(pass, edges)

	if dir := os.Getenv("FEDLINT_LOCKGRAPH"); dir != "" && len(edges) > 0 {
		writeGraph(pass, dir, edges)
	}
	return nil, nil
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports every edge inside one: each such edge is half of an
// inconsistent-order pair.
func reportCycles(pass *analysis.Pass, edges map[[2]string]edge) {
	adj := make(map[string][]string)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	comp := scc(adj)

	var keys [][2]string
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return edges[keys[i]].pos < edges[keys[j]].pos })
	for _, key := range keys {
		e := edges[key]
		if comp[e.from] != comp[e.to] || comp[e.from] == 0 {
			continue
		}
		// Both endpoints sit in one nontrivial SCC: name the reverse path's
		// witness when it is a direct edge, so the diagnostic shows both
		// halves of the inversion.
		msg := fmt.Sprintf("%s is acquired while %s is held, but the acquisition graph also orders %s before %s — inconsistent lock order can deadlock",
			e.toName, e.fromName, e.toName, e.fromName)
		if rev, ok := edges[[2]string{e.to, e.from}]; ok {
			msg = fmt.Sprintf("%s is acquired while %s is held, but at %s %s is acquired while %s is held — inconsistent lock order deadlocks when the two paths interleave",
				e.toName, e.fromName, pass.Position(rev.pos), rev.toName, rev.fromName)
		}
		pass.Reportf(e.pos, "%s", msg)
	}
}

// scc assigns each node a component id; nodes in a nontrivial strongly
// connected component (size > 1 or self-loop) share a nonzero id, all
// others get 0. Iterative Tarjan, small graphs.
func scc(adj map[string][]string) map[string]int {
	var nodes []string
	seen := make(map[string]bool)
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)
	for _, tos := range adj {
		sort.Strings(tos)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return comp
}

// writeGraph dumps this package's edges as a DOT fragment into dir; the
// CI lint job concatenates the fragments into the repo-wide graph
// artifact. Failures are silent — the artifact is advisory, the
// diagnostics are the gate.
func writeGraph(pass *analysis.Pass, dir string, edges map[[2]string]edge) {
	pkg := policy.Normalize(pass.PkgPath)
	var b strings.Builder
	fmt.Fprintf(&b, "// lock-acquisition edges observed in %s\n", pkg)
	var keys [][2]string
	for key := range edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		e := edges[key]
		fmt.Fprintf(&b, "%q -> %q; // %s\n", e.from, e.to, pass.Position(e.pos))
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return
	}
	name := strings.ReplaceAll(pkg, "/", "__") + ".dot"
	_ = os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o666)
}

// shortLock trims a lock ID to its display name ("pkg/path.Type.field" →
// "Type.field").
func shortLock(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		id = id[i+1:]
	}
	if i := strings.Index(id, "."); i >= 0 {
		return id[i+1:]
	}
	return id
}
