// Package checktest is a stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads fixture packages
// from an analyzer's testdata/src tree, runs the analyzer, and compares the
// diagnostics against `// want "regexp"` comments in the fixtures.
//
// Fixture layout mirrors analysistest: testdata/src/<import/path>/*.go, and
// fixtures may import each other by those paths (e.g. a stub
// repro/internal/transport/wire lives beside the package under test).
// Standard-library imports resolve through the toolchain's importer. A
// line expecting diagnostics carries one or more quoted regexps:
//
//	v := rand.Int() // want `math/rand is forbidden`
//
// Lines without a want comment must produce no diagnostics; both unmatched
// expectations and unexpected diagnostics fail the test.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package below testdata/src, applies the analyzer,
// and checks diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		src:  filepath.Join(testdata, "src"),
		pkgs: make(map[string]*fixture),
		std:  importer.Default(),
	}
	for _, path := range pkgPaths {
		fx, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		checkPackage(t, ld.fset, a, fx)
	}
}

// RunCollect loads the fixture packages and hands every diagnostic, in
// file-position order, to collect — without checking want comments. Tests
// use it to inspect machine-readable parts of diagnostics (suggested
// fixes) that want regexps cannot express.
func RunCollect(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths []string, collect func(analysis.Diagnostic)) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		src:  filepath.Join(testdata, "src"),
		pkgs: make(map[string]*fixture),
		std:  importer.Default(),
	}
	for _, path := range pkgPaths {
		fx, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     fx.files,
			Pkg:       fx.pkg,
			TypesInfo: fx.info,
			PkgPath:   fx.path,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer failed on %s: %v", a.Name, fx.path, err)
			continue
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			collect(d)
		}
	}
}

// fixture is one loaded testdata package.
type fixture struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture-to-fixture imports
// before falling back to the standard library importer.
type loader struct {
	fset *token.FileSet
	src  string
	pkgs map[string]*fixture
	std  types.Importer
}

// Import implements types.Importer over the fixture tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.src, path)); err == nil && fi.IsDir() {
		fx, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fx.pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks the fixture package at the given import path.
func (ld *loader) load(path string) (*fixture, error) {
	if fx, ok := ld.pkgs[path]; ok {
		return fx, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	cfg := types.Config{Importer: ld}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	fx := &fixture{path: path, files: files, pkg: pkg, info: info}
	ld.pkgs[path] = fx
	return fx, nil
}

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkPackage runs the analyzer over one fixture and diffs diagnostics
// against expectations.
func checkPackage(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, fx *fixture) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     fx.files,
		Pkg:       fx.pkg,
		TypesInfo: fx.info,
		PkgPath:   fx.path,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer failed on %s: %v", a.Name, fx.path, err)
		return
	}

	expects, err := collectWants(fset, fx.files)
	if err != nil {
		t.Errorf("%s: %v", fx.path, err)
		return
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				a.Name, e.re, e.file, e.line)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line that
// matches its message.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRE extracts the quoted patterns from a want comment: double-quoted
// (backslash escapes allowed) or backtick-quoted Go strings.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans fixture comments for `// want "re"...` expectations,
// anchored to the line the comment starts on.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[i+len("want "):], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(pat)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}
