// Package wire fixture: the defining package of the Code vocabulary.
// Spelling values out as literals is necessarily legal here.
package wire

// Code is a machine-readable wire error code.
type Code string

// The closed retry-contract vocabulary.
const (
	CodeExpired     Code = "expired"
	CodeNotFound    Code = "not_found"
	CodeUnavailable Code = "unavailable"
	CodeNotPrimary  Code = "not_primary"
)

// Error is the JSON error envelope.
type Error struct {
	Error string `json:"error"`
	Code  Code   `json:"code,omitempty"`
}

// Retryable classifies a code; literals are fine in the defining package.
func Retryable(c Code) bool { return c == "unavailable" }
