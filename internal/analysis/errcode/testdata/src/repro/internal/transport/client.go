// Package transport fixture: a consumer of the wire vocabulary where code
// literals are banned in every syntactic position.
package transport

import (
	"repro/internal/transport/wire"
)

// StatusError mirrors the real client error carrying a typed code.
type StatusError struct {
	Status int
	Code   wire.Code
}

// Classify exercises comparison, switch, composite-literal, assignment,
// conversion, and call-argument positions.
func Classify(e *StatusError) (wire.Error, bool) {
	if e.Code == "expired" { // want `string literal "expired" used as a wire.Code: use wire.CodeExpired`
		return wire.Error{}, false
	}
	if e.Code == wire.CodeNotFound { // typed constant: allowed
		return wire.Error{}, false
	}
	if e.Code == "not_primary" { // want `string literal "not_primary" used as a wire.Code: use wire.CodeNotPrimary`
		return wire.Error{}, true
	}
	if e.Code != "" { // zero value "no envelope": allowed
		switch e.Code {
		case "unavailable": // want `string literal "unavailable" used as a wire.Code: use wire.CodeUnavailable`
			return wire.Error{}, true
		case wire.CodeExpired:
			return wire.Error{}, false
		}
	}
	env := wire.Error{Error: "gone", Code: "expired"}              // want `string literal "expired" used as a wire.Code: use wire.CodeExpired`
	env.Code = "bogus_code"                                        // want `string literal "bogus_code" used as a wire.Code`
	c := wire.Code("not_found")                                    // want `string literal "not_found" used as a wire.Code: use wire.CodeNotFound`
	return env, wire.Retryable(c) && wire.Retryable("unavailable") // want `string literal "unavailable" used as a wire.Code: use wire.CodeUnavailable`
}

// Describe shows ordinary string literals stay untouched.
func Describe(e *StatusError) string {
	if e.Status >= 500 {
		return "server error"
	}
	return "client error"
}
