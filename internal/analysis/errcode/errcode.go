// Package errcode keeps the transport's machine-readable failure contract
// honest: wire error codes are a closed vocabulary (wire.Code constants),
// and clients branch on them to decide retry behaviour. A string literal
// standing in for a constant ("expired" instead of wire.CodeExpired)
// compiles today, silently diverges the day a code is renamed, and turns a
// typed protocol into stringly-typed guesswork. Outside the defining
// package (internal/transport/wire), any string literal in a wire.Code
// position — comparison, assignment, composite literal, case clause,
// argument, or conversion — is flagged; the empty string (the "no envelope"
// zero value) is exempt. When the literal's value matches a declared code
// constant, the diagnostic carries a mechanical suggested fix
// (`fedlint -fix`) replacing it with the constant.
package errcode

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/analysis/policy"
)

// wirePath is the package defining the Code type and its constants.
const wirePath = "repro/internal/transport/wire"

// Analyzer is the errcode check.
var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "wire error codes must be the typed wire.Code constants, never string literals. " +
		"Literals silently diverge from the closed retry-contract vocabulary; -fix rewrites known values to their constants.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if policy.Normalize(pass.PkgPath) == wirePath {
		return nil, nil // the defining package necessarily spells values out
	}
	codeType, consts := lookupCodeType(pass.Pkg)
	if codeType == nil {
		return nil, nil // package doesn't touch the wire vocabulary
	}
	for _, f := range pass.Files {
		wireName := wireImportName(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || tv.Type == nil || !types.Identical(tv.Type, codeType) {
				return true
			}
			if tv.Value != nil && constant.StringVal(tv.Value) == "" {
				return true // zero value: "server sent no envelope"
			}
			report(pass, lit, tv, consts, wireName)
			return true
		})
	}
	return nil, nil
}

// report emits the diagnostic, attaching a rewrite to the matching declared
// constant when one exists.
func report(pass *analysis.Pass, lit *ast.BasicLit, tv types.TypeAndValue, consts map[string]string, wireName string) {
	d := analysis.Diagnostic{
		Pos:     lit.Pos(),
		End:     lit.End(),
		Message: fmt.Sprintf("string literal %s used as a wire.Code: use the typed constant so the retry contract stays a closed vocabulary", lit.Value),
	}
	if tv.Value != nil && wireName != "" {
		if name, ok := consts[constant.StringVal(tv.Value)]; ok {
			repl := wireName + "." + name
			d.Message = fmt.Sprintf("string literal %s used as a wire.Code: use %s so the retry contract stays a closed vocabulary", lit.Value, repl)
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message:   fmt.Sprintf("replace %s with %s", lit.Value, repl),
				TextEdits: []analysis.TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: []byte(repl)}},
			}}
		}
	}
	pass.Report(d)
}

// lookupCodeType finds the wire Code named type among the package's direct
// imports and indexes its declared constants by string value.
func lookupCodeType(pkg *types.Package) (types.Type, map[string]string) {
	for _, imp := range pkg.Imports() {
		if imp.Path() != wirePath {
			continue
		}
		tn, ok := imp.Scope().Lookup("Code").(*types.TypeName)
		if !ok {
			return nil, nil
		}
		consts := make(map[string]string)
		for _, name := range imp.Scope().Names() {
			c, ok := imp.Scope().Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), tn.Type()) {
				continue
			}
			consts[constant.StringVal(c.Val())] = name
		}
		return tn.Type(), consts
	}
	return nil, nil
}

// wireImportName returns the identifier the file uses for the wire package
// ("" when the file doesn't import it, "wire" or the chosen alias
// otherwise; dot imports qualify with the bare constant name).
func wireImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != wirePath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." {
				return "."
			}
			return imp.Name.Name
		}
		return "wire"
	}
	return ""
}
