package errcode

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checktest"
)

func TestAnalyzer(t *testing.T) {
	checktest.Run(t, "testdata", Analyzer,
		"repro/internal/transport/wire", // negative: the defining package
		"repro/internal/transport",      // positives in every literal position
	)
}

// TestSuggestedFix asserts the mechanical rewrite is attached whenever the
// literal matches a declared constant.
func TestSuggestedFix(t *testing.T) {
	var fixes []string
	probe := &analysis.Analyzer{Name: Analyzer.Name, Doc: Analyzer.Doc, Run: Analyzer.Run}
	checktest.RunCollect(t, "testdata", probe, []string{"repro/internal/transport"}, func(d analysis.Diagnostic) {
		for _, f := range d.SuggestedFixes {
			fixes = append(fixes, f.Message)
		}
	})
	want := []string{
		`replace "expired" with wire.CodeExpired`,
		`replace "not_primary" with wire.CodeNotPrimary`,
		`replace "unavailable" with wire.CodeUnavailable`,
		`replace "expired" with wire.CodeExpired`,
		`replace "not_found" with wire.CodeNotFound`,
		`replace "unavailable" with wire.CodeUnavailable`,
	}
	if got := strings.Join(fixes, "\n"); got != strings.Join(want, "\n") {
		t.Errorf("suggested fixes:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}
